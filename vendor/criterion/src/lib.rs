//! Offline stand-in for the `criterion` benchmark harness.
//!
//! Implements the subset this workspace's benches use:
//! `criterion_group!` / `criterion_main!`, benchmark groups with
//! `sample_size`, `bench_function`, `bench_with_input`, and
//! `Bencher::iter`. Each benchmark is warmed up briefly, then timed for
//! a fixed number of samples; mean and median per-iteration times are
//! printed. No statistics beyond that — the numbers are for relative
//! comparisons, not publication.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Top-level harness state.
#[derive(Debug)]
pub struct Criterion {
    default_sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Self {
            default_sample_size: 20,
        }
    }
}

impl Criterion {
    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        println!("\nbenchmark group: {name}");
        let sample_size = self.default_sample_size;
        BenchmarkGroup {
            _criterion: self,
            group: name.to_owned(),
            sample_size,
        }
    }

    /// Benchmarks a single function outside any group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: impl Into<BenchmarkId>, f: F) {
        let sample_size = self.default_sample_size;
        run_benchmark(&id.into().label, sample_size, f);
    }
}

/// A named benchmark identifier.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// An id made of a function name and a parameter.
    pub fn new(name: impl std::fmt::Display, parameter: impl std::fmt::Display) -> Self {
        Self {
            label: format!("{name}/{parameter}"),
        }
    }

    /// An id made of a parameter alone.
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        Self {
            label: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        Self {
            label: s.to_owned(),
        }
    }
}

impl From<String> for BenchmarkId {
    fn from(label: String) -> Self {
        Self { label }
    }
}

/// A group of related benchmarks sharing settings.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    group: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Benchmarks `f` under `id`.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: impl Into<BenchmarkId>, f: F) {
        let label = format!("{}/{}", self.group, id.into().label);
        run_benchmark(&label, self.sample_size, f);
    }

    /// Benchmarks `f` with an input value under `id`.
    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) {
        let label = format!("{}/{}", self.group, id.into().label);
        run_benchmark(&label, self.sample_size, |b| f(b, input));
    }

    /// Ends the group (formatting no-op in the stand-in).
    pub fn finish(self) {}
}

/// Passed to benchmark closures; runs and times the measured routine.
#[derive(Debug, Default)]
pub struct Bencher {
    /// Per-iteration times of the current sample batch.
    samples: Vec<Duration>,
}

impl Bencher {
    /// Times one sample of `routine` (called repeatedly by the runner).
    pub fn iter<O>(&mut self, mut routine: impl FnMut() -> O) {
        let start = Instant::now();
        black_box(routine());
        self.samples.push(start.elapsed());
    }
}

fn run_benchmark<F: FnMut(&mut Bencher)>(label: &str, sample_size: usize, mut f: F) {
    // Warm-up: run until ~200 ms or 5 samples, whichever first.
    let warmup_start = Instant::now();
    let mut bencher = Bencher::default();
    for _ in 0..5 {
        f(&mut bencher);
        if warmup_start.elapsed() > Duration::from_millis(200) {
            break;
        }
    }
    bencher.samples.clear();
    for _ in 0..sample_size {
        f(&mut bencher);
    }
    let mut times = bencher.samples;
    if times.is_empty() {
        println!("  {label}: no samples (Bencher::iter never called)");
        return;
    }
    times.sort_unstable();
    let median = times[times.len() / 2];
    let total: Duration = times.iter().sum();
    let mean = total / times.len() as u32;
    println!(
        "  {label}: median {} mean {} ({} samples)",
        format_duration(median),
        format_duration(mean),
        times.len()
    );
}

fn format_duration(d: Duration) -> String {
    let nanos = d.as_nanos();
    if nanos >= 1_000_000_000 {
        format!("{:.3} s", d.as_secs_f64())
    } else if nanos >= 1_000_000 {
        format!("{:.3} ms", d.as_secs_f64() * 1e3)
    } else if nanos >= 1_000 {
        format!("{:.3} µs", d.as_secs_f64() * 1e6)
    } else {
        format!("{nanos} ns")
    }
}

/// Declares a benchmark group function calling each target in turn.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        /// Runs this group's benchmark functions.
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares `fn main` running the listed benchmark groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}
