//! Offline stand-in for the `serde` crate.
//!
//! Real serde abstracts over data formats; this workspace only ever
//! serializes to JSON, so the stand-in collapses the two layers: the
//! [`Serialize`] trait writes directly into a streaming [`JsonWriter`],
//! and the derive macros (re-exported from `serde_derive`) generate
//! field-by-field implementations. `#[derive(Deserialize)]` is accepted
//! for source compatibility and expands to nothing.

pub use serde_derive::{Deserialize, Serialize};

/// A streaming JSON writer with automatic comma management.
///
/// # Examples
///
/// ```
/// let mut w = serde::JsonWriter::new();
/// w.begin_object();
/// w.field("x");
/// w.write_u64(3);
/// w.field("y");
/// w.write_str("hi");
/// w.end_object();
/// assert_eq!(w.finish(), r#"{"x":3,"y":"hi"}"#);
/// ```
#[derive(Debug, Default)]
pub struct JsonWriter {
    out: String,
    /// One entry per open container: `true` once it has at least one
    /// element, so the next element knows to emit a comma.
    has_items: Vec<bool>,
}

impl JsonWriter {
    /// Creates an empty writer.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Returns the accumulated JSON text.
    #[must_use]
    pub fn finish(self) -> String {
        self.out
    }

    /// Opens a JSON object.
    pub fn begin_object(&mut self) {
        self.out.push('{');
        self.has_items.push(false);
    }

    /// Closes the innermost object.
    pub fn end_object(&mut self) {
        self.has_items.pop();
        self.out.push('}');
    }

    /// Starts the named field of an object (comma, key, colon). The
    /// caller writes the value next.
    pub fn field(&mut self, name: &str) {
        self.separate();
        self.write_escaped(name);
        self.out.push(':');
    }

    /// Opens a JSON array.
    pub fn begin_array(&mut self) {
        self.out.push('[');
        self.has_items.push(false);
    }

    /// Closes the innermost array.
    pub fn end_array(&mut self) {
        self.has_items.pop();
        self.out.push(']');
    }

    /// Starts the next array element (comma if needed). The caller
    /// writes the value next.
    pub fn element(&mut self) {
        self.separate();
    }

    fn separate(&mut self) {
        if let Some(has) = self.has_items.last_mut() {
            if *has {
                self.out.push(',');
            }
            *has = true;
        }
    }

    fn write_escaped(&mut self, s: &str) {
        self.out.push('"');
        for c in s.chars() {
            match c {
                '"' => self.out.push_str("\\\""),
                '\\' => self.out.push_str("\\\\"),
                '\n' => self.out.push_str("\\n"),
                '\r' => self.out.push_str("\\r"),
                '\t' => self.out.push_str("\\t"),
                c if (c as u32) < 0x20 => {
                    self.out.push_str(&format!("\\u{:04x}", c as u32));
                }
                c => self.out.push(c),
            }
        }
        self.out.push('"');
    }

    /// Writes a JSON string value.
    pub fn write_str(&mut self, s: &str) {
        self.write_escaped(s);
    }

    /// Writes a boolean value.
    pub fn write_bool(&mut self, b: bool) {
        self.out.push_str(if b { "true" } else { "false" });
    }

    /// Writes `null`.
    pub fn write_null(&mut self) {
        self.out.push_str("null");
    }

    /// Writes a pre-formatted decimal number.
    pub fn write_raw_number(&mut self, decimal: &str) {
        self.out.push_str(decimal);
    }

    /// Writes an unsigned integer value.
    pub fn write_u64(&mut self, v: u64) {
        self.out.push_str(&v.to_string());
    }

    /// Writes a signed integer value.
    pub fn write_i64(&mut self, v: i64) {
        self.out.push_str(&v.to_string());
    }

    /// Writes a float value (`null` for non-finite values, matching
    /// what lenient JSON emitters do).
    pub fn write_f64(&mut self, v: f64) {
        if v.is_finite() {
            // Rust's shortest-roundtrip formatting is deterministic,
            // which the sweep determinism test relies on.
            self.out.push_str(&v.to_string());
        } else {
            self.write_null();
        }
    }
}

/// Types serializable to JSON.
pub trait Serialize {
    /// Writes `self` as one JSON value.
    fn serialize(&self, w: &mut JsonWriter);
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn serialize(&self, w: &mut JsonWriter) {
        (**self).serialize(w);
    }
}

macro_rules! serialize_unsigned {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize(&self, w: &mut JsonWriter) {
                w.write_u64(u64::from(*self));
            }
        }
    )*};
}
serialize_unsigned!(u8, u16, u32, u64);

macro_rules! serialize_signed {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize(&self, w: &mut JsonWriter) {
                w.write_i64(i64::from(*self));
            }
        }
    )*};
}
serialize_signed!(i8, i16, i32, i64);

impl Serialize for u128 {
    fn serialize(&self, w: &mut JsonWriter) {
        // Within u64 range this matches write_u64; beyond it, emit the
        // full decimal (JSON numbers are unbounded).
        w.write_raw_number(&self.to_string());
    }
}

impl Serialize for i128 {
    fn serialize(&self, w: &mut JsonWriter) {
        w.write_raw_number(&self.to_string());
    }
}

impl Serialize for usize {
    fn serialize(&self, w: &mut JsonWriter) {
        w.write_u64(*self as u64);
    }
}

impl Serialize for isize {
    fn serialize(&self, w: &mut JsonWriter) {
        w.write_i64(*self as i64);
    }
}

impl Serialize for f64 {
    fn serialize(&self, w: &mut JsonWriter) {
        w.write_f64(*self);
    }
}

impl Serialize for f32 {
    fn serialize(&self, w: &mut JsonWriter) {
        w.write_f64(f64::from(*self));
    }
}

impl Serialize for bool {
    fn serialize(&self, w: &mut JsonWriter) {
        w.write_bool(*self);
    }
}

impl Serialize for str {
    fn serialize(&self, w: &mut JsonWriter) {
        w.write_str(self);
    }
}

impl Serialize for String {
    fn serialize(&self, w: &mut JsonWriter) {
        w.write_str(self);
    }
}

impl Serialize for char {
    fn serialize(&self, w: &mut JsonWriter) {
        w.write_str(&self.to_string());
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn serialize(&self, w: &mut JsonWriter) {
        match self {
            Some(v) => v.serialize(w),
            None => w.write_null(),
        }
    }
}

fn serialize_seq<'a, T: Serialize + 'a>(
    items: impl IntoIterator<Item = &'a T>,
    w: &mut JsonWriter,
) {
    w.begin_array();
    for item in items {
        w.element();
        item.serialize(w);
    }
    w.end_array();
}

impl<T: Serialize> Serialize for [T] {
    fn serialize(&self, w: &mut JsonWriter) {
        serialize_seq(self, w);
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn serialize(&self, w: &mut JsonWriter) {
        serialize_seq(self, w);
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn serialize(&self, w: &mut JsonWriter) {
        serialize_seq(self, w);
    }
}

impl<T: Serialize> Serialize for std::collections::BTreeSet<T> {
    fn serialize(&self, w: &mut JsonWriter) {
        serialize_seq(self, w);
    }
}

impl<T: Serialize> Serialize for std::collections::VecDeque<T> {
    fn serialize(&self, w: &mut JsonWriter) {
        serialize_seq(self, w);
    }
}

impl<K: std::fmt::Display, V: Serialize> Serialize for std::collections::BTreeMap<K, V> {
    fn serialize(&self, w: &mut JsonWriter) {
        w.begin_object();
        for (k, v) in self {
            w.field(&k.to_string());
            v.serialize(w);
        }
        w.end_object();
    }
}

impl<A: Serialize, B: Serialize> Serialize for (A, B) {
    fn serialize(&self, w: &mut JsonWriter) {
        w.begin_array();
        w.element();
        self.0.serialize(w);
        w.element();
        self.1.serialize(w);
        w.end_array();
    }
}

impl<A: Serialize, B: Serialize, C: Serialize> Serialize for (A, B, C) {
    fn serialize(&self, w: &mut JsonWriter) {
        w.begin_array();
        w.element();
        self.0.serialize(w);
        w.element();
        self.1.serialize(w);
        w.element();
        self.2.serialize(w);
        w.end_array();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn json<T: Serialize>(v: &T) -> String {
        let mut w = JsonWriter::new();
        v.serialize(&mut w);
        w.finish()
    }

    #[test]
    fn scalars() {
        assert_eq!(json(&3u8), "3");
        assert_eq!(json(&-4i32), "-4");
        assert_eq!(json(&1.5f64), "1.5");
        assert_eq!(json(&f64::NAN), "null");
        assert_eq!(json(&true), "true");
        assert_eq!(json(&"a\"b".to_owned()), r#""a\"b""#);
    }

    #[test]
    fn containers() {
        assert_eq!(json(&vec![1u8, 2, 3]), "[1,2,3]");
        assert_eq!(json(&Some(5u8)), "5");
        assert_eq!(json(&Option::<u8>::None), "null");
        assert_eq!(json(&(1u8, "x")), r#"[1,"x"]"#);
        let set: std::collections::BTreeSet<u16> = [3, 1, 2].into_iter().collect();
        assert_eq!(json(&set), "[1,2,3]");
    }

    #[test]
    fn nested_objects_manage_commas() {
        let mut w = JsonWriter::new();
        w.begin_object();
        w.field("a");
        w.begin_array();
        w.element();
        w.write_u64(1);
        w.element();
        w.begin_object();
        w.end_object();
        w.end_array();
        w.field("b");
        w.write_null();
        w.end_object();
        assert_eq!(w.finish(), r#"{"a":[1,{}],"b":null}"#);
    }
}
