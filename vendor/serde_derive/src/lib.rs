//! Offline stand-in for `serde_derive`.
//!
//! `#[derive(Serialize)]` generates an implementation of the JSON-only
//! `serde::Serialize` trait of the vendored `serde` crate. The parser is
//! hand-rolled over `proc_macro::TokenStream` (no `syn`/`quote`, which
//! are unavailable offline) and supports what this workspace defines:
//! non-generic named structs, tuple structs (newtype and
//! `#[serde(transparent)]` semantics), unit structs, and enums with
//! unit, tuple and struct variants. `#[derive(Deserialize)]` is accepted
//! for source compatibility and expands to nothing.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// Derives `serde::Serialize` (JSON-only; see crate docs).
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let code = match parse_item(input) {
        Ok(item) => generate(&item),
        Err(msg) => format!("compile_error!({msg:?});"),
    };
    code.parse().expect("generated code parses")
}

/// Accepts `#[derive(Deserialize)]` and expands to nothing (nothing in
/// this workspace deserializes).
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

struct Item {
    name: String,
    transparent: bool,
    kind: Kind,
}

enum Kind {
    UnitStruct,
    TupleStruct(usize),
    NamedStruct(Vec<String>),
    Enum(Vec<Variant>),
}

struct Variant {
    name: String,
    fields: VariantFields,
}

enum VariantFields {
    Unit,
    Tuple(usize),
    Named(Vec<String>),
}

struct Cursor {
    tokens: Vec<TokenTree>,
    pos: usize,
}

impl Cursor {
    fn peek(&self) -> Option<&TokenTree> {
        self.tokens.get(self.pos)
    }

    fn next(&mut self) -> Option<TokenTree> {
        let t = self.tokens.get(self.pos).cloned();
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    /// Skips attributes (`#[...]`), returning `true` if any of them was
    /// `#[serde(transparent)]`.
    fn skip_attributes(&mut self) -> bool {
        let mut transparent = false;
        loop {
            match self.peek() {
                Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                    self.pos += 1;
                    if let Some(TokenTree::Group(g)) = self.peek() {
                        if g.delimiter() == Delimiter::Bracket
                            && attribute_is_serde_transparent(g.stream())
                        {
                            transparent = true;
                        }
                        self.pos += 1;
                    }
                }
                _ => return transparent,
            }
        }
    }

    /// Skips `pub`, `pub(crate)`, `pub(in ...)` etc.
    fn skip_visibility(&mut self) {
        if let Some(TokenTree::Ident(i)) = self.peek() {
            if i.to_string() == "pub" {
                self.pos += 1;
                if let Some(TokenTree::Group(g)) = self.peek() {
                    if g.delimiter() == Delimiter::Parenthesis {
                        self.pos += 1;
                    }
                }
            }
        }
    }

    fn expect_ident(&mut self, what: &str) -> Result<String, String> {
        match self.next() {
            Some(TokenTree::Ident(i)) => Ok(i.to_string()),
            other => Err(format!(
                "serde stub derive: expected {what}, found {other:?}"
            )),
        }
    }

    /// Skips tokens until a comma at angle-bracket depth zero (groups
    /// are atomic tokens, so only `<`/`>` need tracking). Consumes the
    /// comma. Returns `false` at end of input.
    fn skip_past_top_level_comma(&mut self) -> bool {
        let mut angle_depth = 0i32;
        while let Some(token) = self.next() {
            if let TokenTree::Punct(p) = token {
                match p.as_char() {
                    '<' => angle_depth += 1,
                    '>' => angle_depth -= 1,
                    ',' if angle_depth == 0 => return true,
                    _ => {}
                }
            }
        }
        false
    }
}

fn attribute_is_serde_transparent(stream: TokenStream) -> bool {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    match tokens.as_slice() {
        [TokenTree::Ident(name), TokenTree::Group(args)] if name.to_string() == "serde" => args
            .stream()
            .into_iter()
            .any(|t| matches!(&t, TokenTree::Ident(i) if i.to_string() == "transparent")),
        _ => false,
    }
}

fn cursor_for(stream: TokenStream) -> Cursor {
    Cursor {
        tokens: stream.into_iter().collect(),
        pos: 0,
    }
}

fn parse_item(input: TokenStream) -> Result<Item, String> {
    let mut c = cursor_for(input);
    let transparent = c.skip_attributes();
    c.skip_visibility();
    let keyword = c.expect_ident("`struct` or `enum`")?;
    let name = c.expect_ident("a type name")?;
    if let Some(TokenTree::Punct(p)) = c.peek() {
        if p.as_char() == '<' {
            return Err(format!(
                "serde stub derive: generic type `{name}` is not supported"
            ));
        }
    }
    let kind = match keyword.as_str() {
        "struct" => match c.next() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Kind::NamedStruct(parse_named_fields(g.stream())?)
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                Kind::TupleStruct(count_tuple_fields(g.stream()))
            }
            Some(TokenTree::Punct(p)) if p.as_char() == ';' => Kind::UnitStruct,
            other => {
                return Err(format!(
                    "serde stub derive: unsupported struct body for `{name}`: {other:?}"
                ))
            }
        },
        "enum" => match c.next() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Kind::Enum(parse_variants(g.stream())?)
            }
            other => {
                return Err(format!(
                    "serde stub derive: unsupported enum body for `{name}`: {other:?}"
                ))
            }
        },
        other => {
            return Err(format!(
                "serde stub derive: unsupported item kind `{other}`"
            ))
        }
    };
    Ok(Item {
        name,
        transparent,
        kind,
    })
}

fn parse_named_fields(stream: TokenStream) -> Result<Vec<String>, String> {
    let mut c = cursor_for(stream);
    let mut fields = Vec::new();
    loop {
        c.skip_attributes();
        c.skip_visibility();
        if c.peek().is_none() {
            return Ok(fields);
        }
        let field = c.expect_ident("a field name")?;
        match c.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => {}
            other => {
                return Err(format!(
                    "serde stub derive: expected `:` after field `{field}`, found {other:?}"
                ))
            }
        }
        fields.push(field);
        if !c.skip_past_top_level_comma() {
            return Ok(fields);
        }
    }
}

fn count_tuple_fields(stream: TokenStream) -> usize {
    let mut angle_depth = 0i32;
    let mut fields = 0usize;
    let mut pending_tokens = false;
    for token in stream {
        if let TokenTree::Punct(p) = &token {
            match p.as_char() {
                '<' => angle_depth += 1,
                '>' => angle_depth -= 1,
                ',' if angle_depth == 0 => {
                    fields += 1;
                    pending_tokens = false;
                    continue;
                }
                _ => {}
            }
        }
        pending_tokens = true;
    }
    fields + usize::from(pending_tokens)
}

fn parse_variants(stream: TokenStream) -> Result<Vec<Variant>, String> {
    let mut c = cursor_for(stream);
    let mut variants = Vec::new();
    loop {
        c.skip_attributes();
        if c.peek().is_none() {
            return Ok(variants);
        }
        let name = c.expect_ident("a variant name")?;
        let fields = match c.peek() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let arity = count_tuple_fields(g.stream());
                c.pos += 1;
                VariantFields::Tuple(arity)
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let named = parse_named_fields(g.stream())?;
                c.pos += 1;
                VariantFields::Named(named)
            }
            _ => VariantFields::Unit,
        };
        variants.push(Variant { name, fields });
        // Skip an optional `= discriminant` and the separating comma.
        if !c.skip_past_top_level_comma() {
            return Ok(variants);
        }
    }
}

fn serialize_named_fields(fields: &[String], access_prefix: &str) -> String {
    let mut body = String::from("__w.begin_object();\n");
    for f in fields {
        body.push_str(&format!(
            "__w.field({f:?});\n::serde::Serialize::serialize(&{access_prefix}{f}, __w);\n"
        ));
    }
    body.push_str("__w.end_object();\n");
    body
}

fn generate(item: &Item) -> String {
    let name = &item.name;
    let body = match &item.kind {
        Kind::UnitStruct => "__w.write_null();\n".to_owned(),
        // Newtype and `#[serde(transparent)]` structs serialize as the
        // inner value; wider tuple structs as an array.
        Kind::TupleStruct(1) => "::serde::Serialize::serialize(&self.0, __w);\n".to_owned(),
        Kind::TupleStruct(n) => {
            let mut body = String::from("__w.begin_array();\n");
            for i in 0..*n {
                body.push_str(&format!(
                    "__w.element();\n::serde::Serialize::serialize(&self.{i}, __w);\n"
                ));
            }
            body.push_str("__w.end_array();\n");
            body
        }
        Kind::NamedStruct(fields) => match (item.transparent, fields.as_slice()) {
            (true, [only]) => {
                format!("::serde::Serialize::serialize(&self.{only}, __w);\n")
            }
            _ => serialize_named_fields(fields, "self."),
        },
        Kind::Enum(variants) => {
            let mut arms = String::new();
            for v in variants {
                let vname = &v.name;
                match &v.fields {
                    VariantFields::Unit => {
                        arms.push_str(&format!(
                            "Self::{vname} => {{ __w.write_str({vname:?}); }}\n"
                        ));
                    }
                    VariantFields::Tuple(n) => {
                        let binders: Vec<String> = (0..*n).map(|i| format!("__f{i}")).collect();
                        let mut inner = String::new();
                        if *n == 1 {
                            inner.push_str("::serde::Serialize::serialize(__f0, __w);\n");
                        } else {
                            inner.push_str("__w.begin_array();\n");
                            for b in &binders {
                                inner.push_str(&format!(
                                    "__w.element();\n::serde::Serialize::serialize({b}, __w);\n"
                                ));
                            }
                            inner.push_str("__w.end_array();\n");
                        }
                        arms.push_str(&format!(
                            "Self::{vname}({binds}) => {{ __w.begin_object(); \
                             __w.field({vname:?});\n{inner}__w.end_object(); }}\n",
                            binds = binders.join(", ")
                        ));
                    }
                    VariantFields::Named(fields) => {
                        let inner = serialize_named_fields(fields, "");
                        arms.push_str(&format!(
                            "Self::{vname} {{ {binds} }} => {{ __w.begin_object(); \
                             __w.field({vname:?});\n{inner}__w.end_object(); }}\n",
                            binds = fields.join(", ")
                        ));
                    }
                }
            }
            format!("match self {{\n{arms}}}\n")
        }
    };
    format!(
        "#[automatically_derived]\n\
         impl ::serde::Serialize for {name} {{\n\
             fn serialize(&self, __w: &mut ::serde::JsonWriter) {{\n{body}}}\n\
         }}\n"
    )
}
