//! Offline stand-in for `serde_json`: compact and pretty JSON emission
//! over the vendored `serde::Serialize` trait, plus a minimal [`Value`]
//! parser for the line-oriented readers (sweep journals, perf-smoke
//! baselines) — the workspace's one JSON-reading code path.

use serde::{JsonWriter, Serialize};

/// Serialization error. The JSON-only stand-in cannot fail; the type
/// exists so call sites keep the real crate's `Result` signature.
#[derive(Debug)]
pub struct Error(());

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("JSON serialization error")
    }
}

impl std::error::Error for Error {}

/// Serializes a value to compact JSON.
///
/// # Errors
///
/// Never fails in the stand-in; the `Result` mirrors the real crate.
///
/// # Examples
///
/// ```
/// assert_eq!(serde_json::to_string(&vec![1u8, 2]).unwrap(), "[1,2]");
/// ```
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut w = JsonWriter::new();
    value.serialize(&mut w);
    Ok(w.finish())
}

/// Serializes a value to two-space-indented JSON.
///
/// # Errors
///
/// Never fails in the stand-in; the `Result` mirrors the real crate.
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    Ok(prettify(&to_string(value)?))
}

/// Re-indents compact JSON (string-literal aware).
fn prettify(compact: &str) -> String {
    let mut out = String::with_capacity(compact.len() * 2);
    let mut indent = 0usize;
    let mut in_string = false;
    let mut escaped = false;
    let mut chars = compact.chars().peekable();
    while let Some(c) = chars.next() {
        if in_string {
            out.push(c);
            if escaped {
                escaped = false;
            } else if c == '\\' {
                escaped = true;
            } else if c == '"' {
                in_string = false;
            }
            continue;
        }
        match c {
            '"' => {
                in_string = true;
                out.push(c);
            }
            '{' | '[' => {
                out.push(c);
                // Keep empty containers on one line.
                if let Some(&close) = chars.peek() {
                    if (c == '{' && close == '}') || (c == '[' && close == ']') {
                        out.push(close);
                        chars.next();
                        continue;
                    }
                }
                indent += 1;
                out.push('\n');
                out.push_str(&"  ".repeat(indent));
            }
            '}' | ']' => {
                indent = indent.saturating_sub(1);
                out.push('\n');
                out.push_str(&"  ".repeat(indent));
                out.push(c);
            }
            ',' => {
                out.push(c);
                out.push('\n');
                out.push_str(&"  ".repeat(indent));
            }
            ':' => {
                out.push(c);
                out.push(' ');
            }
            c => out.push(c),
        }
    }
    out
}

/// A parsed JSON document, mirroring the real crate's `Value` (the
/// object variant is an ordered field list instead of a map, and
/// numbers keep their source text so integers beyond 2^53 — e.g. the
/// sweep engine's 64-bit seeds — survive a parse → serialize round trip
/// byte-exactly).
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A number, kept as its raw decimal source text.
    Number(String),
    /// A string (unescaped).
    String(String),
    /// An array.
    Array(Vec<Value>),
    /// An object, as the field list in source order.
    Object(Vec<(String, Value)>),
}

impl Value {
    /// The value of object field `key`, if this is an object with one.
    #[must_use]
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Self::Object(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The element at `index`, if this is an array with one.
    #[must_use]
    pub fn index(&self, index: usize) -> Option<&Value> {
        match self {
            Self::Array(items) => items.get(index),
            _ => None,
        }
    }

    /// The string content, if this is a string.
    #[must_use]
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Self::String(s) => Some(s),
            _ => None,
        }
    }

    /// The boolean, if this is a boolean.
    #[must_use]
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Self::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The number as `f64`, if this is a number.
    #[must_use]
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Self::Number(raw) => raw.parse().ok(),
            _ => None,
        }
    }

    /// The number as `u64`, if this is a non-negative integer in range.
    #[must_use]
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Self::Number(raw) => raw.parse().ok(),
            _ => None,
        }
    }

    /// The number as `i64`, if this is an integer in range.
    #[must_use]
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Self::Number(raw) => raw.parse().ok(),
            _ => None,
        }
    }

    /// The elements, if this is an array.
    #[must_use]
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Self::Array(items) => Some(items),
            _ => None,
        }
    }

    /// The fields in source order, if this is an object.
    #[must_use]
    pub fn as_object(&self) -> Option<&[(String, Value)]> {
        match self {
            Self::Object(fields) => Some(fields),
            _ => None,
        }
    }
}

/// Error from parsing JSON text, with the byte offset of the problem.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Byte offset into the input where parsing failed.
    pub offset: usize,
    /// What went wrong.
    pub message: String,
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "JSON parse error at byte {}: {}",
            self.offset, self.message
        )
    }
}

impl std::error::Error for ParseError {}

impl std::str::FromStr for Value {
    type Err = ParseError;

    /// Parses one JSON document (as the real crate's `Value: FromStr`).
    ///
    /// # Examples
    ///
    /// ```
    /// let v: serde_json::Value = r#"{"seed":18446744073709551615}"#.parse().unwrap();
    /// assert_eq!(v.get("seed").and_then(|s| s.as_u64()), Some(u64::MAX));
    /// ```
    fn from_str(text: &str) -> Result<Self, ParseError> {
        let mut p = Parser {
            text,
            bytes: text.as_bytes(),
            pos: 0,
        };
        p.skip_whitespace();
        let value = p.parse_value()?;
        p.skip_whitespace();
        if p.pos != p.bytes.len() {
            return Err(p.error("trailing characters after the document"));
        }
        Ok(value)
    }
}

struct Parser<'a> {
    text: &'a str,
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn error(&self, message: impl Into<String>) -> ParseError {
        ParseError {
            offset: self.pos,
            message: message.into(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_whitespace(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, byte: u8) -> Result<(), ParseError> {
        if self.peek() == Some(byte) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.error(format!("expected '{}'", byte as char)))
        }
    }

    fn expect_literal(&mut self, literal: &str) -> Result<(), ParseError> {
        if self.bytes[self.pos..].starts_with(literal.as_bytes()) {
            self.pos += literal.len();
            Ok(())
        } else {
            Err(self.error(format!("expected '{literal}'")))
        }
    }

    fn parse_value(&mut self) -> Result<Value, ParseError> {
        match self.peek() {
            Some(b'{') => self.parse_object(),
            Some(b'[') => self.parse_array(),
            Some(b'"') => Ok(Value::String(self.parse_string()?)),
            Some(b't') => self.expect_literal("true").map(|()| Value::Bool(true)),
            Some(b'f') => self.expect_literal("false").map(|()| Value::Bool(false)),
            Some(b'n') => self.expect_literal("null").map(|()| Value::Null),
            Some(b'-' | b'0'..=b'9') => self.parse_number(),
            _ => Err(self.error("expected a JSON value")),
        }
    }

    fn parse_object(&mut self) -> Result<Value, ParseError> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_whitespace();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(fields));
        }
        loop {
            self.skip_whitespace();
            let key = self.parse_string()?;
            self.skip_whitespace();
            self.expect(b':')?;
            self.skip_whitespace();
            let value = self.parse_value()?;
            fields.push((key, value));
            self.skip_whitespace();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(fields));
                }
                _ => return Err(self.error("expected ',' or '}' in object")),
            }
        }
    }

    fn parse_array(&mut self) -> Result<Value, ParseError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_whitespace();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_whitespace();
            items.push(self.parse_value()?);
            self.skip_whitespace();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(self.error("expected ',' or ']' in array")),
            }
        }
    }

    fn parse_string(&mut self) -> Result<String, ParseError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let Some(byte) = self.peek() else {
                return Err(self.error("unterminated string"));
            };
            match byte {
                b'"' => {
                    self.pos += 1;
                    return Ok(out);
                }
                b'\\' => {
                    self.pos += 1;
                    let Some(escape) = self.peek() else {
                        return Err(self.error("unterminated escape"));
                    };
                    self.pos += 1;
                    match escape {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .ok_or_else(|| self.error("truncated \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.error("invalid \\u escape"))?;
                            self.pos += 4;
                            // Surrogate pairs are not produced by the
                            // writer (it only \u-escapes controls), so a
                            // lone surrogate is rejected rather than
                            // paired.
                            let c = char::from_u32(code)
                                .ok_or_else(|| self.error("\\u escape is not a scalar value"))?;
                            out.push(c);
                        }
                        other => {
                            return Err(self.error(format!("unknown escape '\\{}'", other as char)))
                        }
                    }
                }
                _ => {
                    // Consume one UTF-8 scalar; `pos` only ever rests on
                    // char boundaries, so slicing the source is safe.
                    let c = self.text[self.pos..]
                        .chars()
                        .next()
                        .ok_or_else(|| self.error("unexpected end"))?;
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn parse_number(&mut self) -> Result<Value, ParseError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let raw = std::str::from_utf8(&self.bytes[start..self.pos])
            .expect("digits are ASCII")
            .to_owned();
        if raw.is_empty() || raw == "-" || raw.parse::<f64>().is_err() {
            return Err(self.error("invalid number"));
        }
        Ok(Value::Number(raw))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pretty_roundtrips_structure() {
        let compact = r#"{"a":[1,2],"b":{"c":"x,y:{z}"},"d":[]}"#;
        let pretty = prettify(compact);
        assert!(pretty.contains("\"a\": [\n"));
        assert!(
            pretty.contains("\"x,y:{z}\""),
            "strings untouched: {pretty}"
        );
        assert!(pretty.contains("\"d\": []"));
        // Stripping whitespace outside strings recovers the compact form.
        let mut stripped = String::new();
        let mut in_string = false;
        let mut escaped = false;
        for c in pretty.chars() {
            if in_string {
                stripped.push(c);
                if escaped {
                    escaped = false;
                } else if c == '\\' {
                    escaped = true;
                } else if c == '"' {
                    in_string = false;
                }
            } else if c == '"' {
                in_string = true;
                stripped.push(c);
            } else if !c.is_whitespace() {
                stripped.push(c);
            }
        }
        assert_eq!(stripped, compact);
    }

    #[test]
    fn parses_scalars_and_containers() {
        let v: Value = r#"{"a":[1,2.5,-3e2],"b":{"c":"x"},"d":null,"e":true,"f":[]}"#
            .parse()
            .expect("parses");
        assert_eq!(
            v.get("a").and_then(|a| a.index(1)).and_then(Value::as_f64),
            Some(2.5)
        );
        assert_eq!(
            v.get("a").and_then(|a| a.index(2)).and_then(Value::as_f64),
            Some(-300.0)
        );
        assert_eq!(
            v.get("b").and_then(|b| b.get("c")).and_then(Value::as_str),
            Some("x")
        );
        assert_eq!(v.get("d"), Some(&Value::Null));
        assert_eq!(v.get("e").and_then(Value::as_bool), Some(true));
        assert_eq!(
            v.get("f").and_then(Value::as_array).map(<[Value]>::len),
            Some(0)
        );
    }

    #[test]
    fn numbers_keep_raw_text_for_exact_u64() {
        let v: Value = format!("{{\"seed\":{}}}", u64::MAX)
            .parse()
            .expect("parses");
        assert_eq!(v.get("seed").and_then(Value::as_u64), Some(u64::MAX));
        // f64 view of a big integer is lossy, but the u64 view is exact.
        assert_eq!(v.get("seed").and_then(Value::as_i64), None);
    }

    #[test]
    fn strings_unescape() {
        let v: Value = r#""a\"b\\c\nA""#.parse().expect("parses");
        assert_eq!(v.as_str(), Some("a\"b\\c\nA"));
    }

    #[test]
    fn serialize_parse_roundtrip_is_lossless() {
        // The property the sweep journal relies on: Rust's shortest
        // float formatting parses back to the same bits, so parse →
        // re-serialize reproduces the source bytes.
        for x in [0.1f64, 1.0 / 3.0, 6.25e-2, f64::MIN_POSITIVE, 1e300] {
            let text = to_string(&x).expect("serializes");
            let v: Value = text.parse().expect("parses");
            assert_eq!(
                to_string(&v.as_f64().expect("number")).expect("serializes"),
                text
            );
        }
    }

    #[test]
    fn errors_carry_offsets() {
        let err = "{\"a\":}".parse::<Value>().expect_err("invalid");
        assert_eq!(err.offset, 5);
        assert!(err.to_string().contains("byte 5"), "{err}");
        assert!("[1,2".parse::<Value>().is_err());
        assert!("1 2".parse::<Value>().is_err());
        assert!("tru".parse::<Value>().is_err());
    }
}
