//! Offline stand-in for `serde_json`: compact and pretty JSON emission
//! over the vendored `serde::Serialize` trait.

use serde::{JsonWriter, Serialize};

/// Serialization error. The JSON-only stand-in cannot fail; the type
/// exists so call sites keep the real crate's `Result` signature.
#[derive(Debug)]
pub struct Error(());

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("JSON serialization error")
    }
}

impl std::error::Error for Error {}

/// Serializes a value to compact JSON.
///
/// # Errors
///
/// Never fails in the stand-in; the `Result` mirrors the real crate.
///
/// # Examples
///
/// ```
/// assert_eq!(serde_json::to_string(&vec![1u8, 2]).unwrap(), "[1,2]");
/// ```
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut w = JsonWriter::new();
    value.serialize(&mut w);
    Ok(w.finish())
}

/// Serializes a value to two-space-indented JSON.
///
/// # Errors
///
/// Never fails in the stand-in; the `Result` mirrors the real crate.
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    Ok(prettify(&to_string(value)?))
}

/// Re-indents compact JSON (string-literal aware).
fn prettify(compact: &str) -> String {
    let mut out = String::with_capacity(compact.len() * 2);
    let mut indent = 0usize;
    let mut in_string = false;
    let mut escaped = false;
    let mut chars = compact.chars().peekable();
    while let Some(c) = chars.next() {
        if in_string {
            out.push(c);
            if escaped {
                escaped = false;
            } else if c == '\\' {
                escaped = true;
            } else if c == '"' {
                in_string = false;
            }
            continue;
        }
        match c {
            '"' => {
                in_string = true;
                out.push(c);
            }
            '{' | '[' => {
                out.push(c);
                // Keep empty containers on one line.
                if let Some(&close) = chars.peek() {
                    if (c == '{' && close == '}') || (c == '[' && close == ']') {
                        out.push(close);
                        chars.next();
                        continue;
                    }
                }
                indent += 1;
                out.push('\n');
                out.push_str(&"  ".repeat(indent));
            }
            '}' | ']' => {
                indent = indent.saturating_sub(1);
                out.push('\n');
                out.push_str(&"  ".repeat(indent));
                out.push(c);
            }
            ',' => {
                out.push(c);
                out.push('\n');
                out.push_str(&"  ".repeat(indent));
            }
            ':' => {
                out.push(c);
                out.push(' ');
            }
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pretty_roundtrips_structure() {
        let compact = r#"{"a":[1,2],"b":{"c":"x,y:{z}"},"d":[]}"#;
        let pretty = prettify(compact);
        assert!(pretty.contains("\"a\": [\n"));
        assert!(
            pretty.contains("\"x,y:{z}\""),
            "strings untouched: {pretty}"
        );
        assert!(pretty.contains("\"d\": []"));
        // Stripping whitespace outside strings recovers the compact form.
        let mut stripped = String::new();
        let mut in_string = false;
        let mut escaped = false;
        for c in pretty.chars() {
            if in_string {
                stripped.push(c);
                if escaped {
                    escaped = false;
                } else if c == '\\' {
                    escaped = true;
                } else if c == '"' {
                    in_string = false;
                }
            } else if c == '"' {
                in_string = true;
                stripped.push(c);
            } else if !c.is_whitespace() {
                stripped.push(c);
            }
        }
        assert_eq!(stripped, compact);
    }
}
