//! Offline stand-in for the `rayon` crate.
//!
//! Implements the subset this workspace uses: `par_iter()` /
//! `into_par_iter()` followed by `map(..).collect::<Vec<_>>()`, plus
//! `ThreadPoolBuilder::num_threads(n).build()?.install(..)` to pin the
//! worker count. Parallelism is real — `std::thread::scope` workers
//! draining a shared atomic work index — and results are returned in
//! input order regardless of scheduling, like the real crate's indexed
//! parallel iterators.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// The conventional import surface.
pub mod prelude {
    pub use crate::{IntoParallelIterator, IntoParallelRefIterator, ParallelIterator};
}

std::thread_local! {
    static THREAD_OVERRIDE: std::cell::Cell<usize> = const { std::cell::Cell::new(0) };
}

/// The number of worker threads parallel calls will use on this thread.
#[must_use]
pub fn current_num_threads() -> usize {
    let overridden = THREAD_OVERRIDE.with(std::cell::Cell::get);
    if overridden > 0 {
        return overridden;
    }
    std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get)
}

/// Error returned by [`ThreadPoolBuilder::build`]. The stand-in cannot
/// fail; the type keeps the real crate's `Result` signature.
#[derive(Debug)]
pub struct ThreadPoolBuildError(());

impl std::fmt::Display for ThreadPoolBuildError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("thread pool build error")
    }
}

impl std::error::Error for ThreadPoolBuildError {}

/// Builder mirroring `rayon::ThreadPoolBuilder`.
#[derive(Debug, Default)]
pub struct ThreadPoolBuilder {
    num_threads: usize,
}

impl ThreadPoolBuilder {
    /// Creates a builder with the default thread count.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Pins the worker count (`0` means the default).
    #[must_use]
    pub fn num_threads(mut self, n: usize) -> Self {
        self.num_threads = n;
        self
    }

    /// Builds the pool.
    ///
    /// # Errors
    ///
    /// Never fails in the stand-in; the `Result` mirrors the real crate.
    pub fn build(self) -> Result<ThreadPool, ThreadPoolBuildError> {
        Ok(ThreadPool {
            num_threads: self.num_threads,
        })
    }
}

/// A pool pinning the worker count for parallel calls made inside
/// [`ThreadPool::install`]. Workers are spawned per call (scoped
/// threads), not kept alive — adequate for the coarse-grained tasks
/// this workspace runs.
#[derive(Debug)]
pub struct ThreadPool {
    num_threads: usize,
}

impl ThreadPool {
    /// Runs `op` with this pool's thread count as the default for
    /// parallel iterators used inside it (on this thread).
    pub fn install<R>(&self, op: impl FnOnce() -> R) -> R {
        let previous = THREAD_OVERRIDE.with(|c| c.replace(self.num_threads));
        let result = op();
        THREAD_OVERRIDE.with(|c| c.set(previous));
        result
    }
}

/// A parallel iterator: an eagerly collected item list plus a mapping
/// stage. Only the shapes this workspace uses are provided.
pub struct ParIter<T> {
    items: Vec<T>,
}

/// The mapped form of [`ParIter`].
pub struct ParMap<T, F> {
    items: Vec<T>,
    map: F,
}

/// Conversion into a parallel iterator (by value).
pub trait IntoParallelIterator {
    /// Element type.
    type Item: Send;
    /// Converts into a parallel iterator.
    fn into_par_iter(self) -> ParIter<Self::Item>;
}

impl<T: Send> IntoParallelIterator for Vec<T> {
    type Item = T;
    fn into_par_iter(self) -> ParIter<T> {
        ParIter { items: self }
    }
}

impl<'a, T: Sync> IntoParallelIterator for &'a [T] {
    type Item = &'a T;
    fn into_par_iter(self) -> ParIter<&'a T> {
        ParIter {
            items: self.iter().collect(),
        }
    }
}

impl<'a, T: Sync> IntoParallelIterator for &'a Vec<T> {
    type Item = &'a T;
    fn into_par_iter(self) -> ParIter<&'a T> {
        self.as_slice().into_par_iter()
    }
}

impl IntoParallelIterator for std::ops::Range<usize> {
    type Item = usize;
    fn into_par_iter(self) -> ParIter<usize> {
        ParIter {
            items: self.collect(),
        }
    }
}

/// Conversion into a parallel iterator over references.
pub trait IntoParallelRefIterator<'a> {
    /// Element type.
    type Item: Send + 'a;
    /// Returns a parallel iterator over references.
    fn par_iter(&'a self) -> ParIter<Self::Item>;
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for [T] {
    type Item = &'a T;
    fn par_iter(&'a self) -> ParIter<&'a T> {
        self.into_par_iter()
    }
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for Vec<T> {
    type Item = &'a T;
    fn par_iter(&'a self) -> ParIter<&'a T> {
        self.as_slice().into_par_iter()
    }
}

/// Operations on parallel iterators.
pub trait ParallelIterator: Sized {
    /// Element type.
    type Item: Send;

    /// Maps each element through `f` in parallel.
    fn map<O: Send, F: Fn(Self::Item) -> O + Sync>(self, f: F) -> ParMap<Self::Item, F>;
}

impl<T: Send> ParallelIterator for ParIter<T> {
    type Item = T;

    fn map<O: Send, F: Fn(T) -> O + Sync>(self, f: F) -> ParMap<T, F> {
        ParMap {
            items: self.items,
            map: f,
        }
    }
}

impl<T: Send, O: Send, F: Fn(T) -> O + Sync> ParMap<T, F> {
    /// Runs the map stage on the pool and collects results in input
    /// order.
    #[must_use]
    pub fn collect<C: FromParallelResults<O>>(self) -> C {
        C::from_results(run_indexed(self.items, &self.map))
    }
}

/// Sink types for [`ParMap::collect`].
pub trait FromParallelResults<O> {
    /// Builds the collection from in-order results.
    fn from_results(results: Vec<O>) -> Self;
}

impl<O> FromParallelResults<O> for Vec<O> {
    fn from_results(results: Vec<O>) -> Self {
        results
    }
}

/// Executes `f` over `items` on `current_num_threads()` scoped workers
/// pulling from a shared index, writing each result into its input
/// slot.
fn run_indexed<T: Send, O: Send>(items: Vec<T>, f: &(impl Fn(T) -> O + Sync)) -> Vec<O> {
    let n = items.len();
    let workers = current_num_threads().clamp(1, n.max(1));
    if workers <= 1 || n <= 1 {
        return items.into_iter().map(f).collect();
    }
    let work: Vec<Mutex<Option<T>>> = items.into_iter().map(|i| Mutex::new(Some(i))).collect();
    let results: Vec<Mutex<Option<O>>> = (0..n).map(|_| Mutex::new(None)).collect();
    let next = AtomicUsize::new(0);
    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= n {
                    return;
                }
                let item = work[i]
                    .lock()
                    .expect("work slot poisoned")
                    .take()
                    .expect("each slot is claimed once");
                let output = f(item);
                *results[i].lock().expect("result slot poisoned") = Some(output);
            });
        }
    });
    results
        .into_iter()
        .map(|slot| {
            slot.into_inner()
                .expect("result slot poisoned")
                .expect("every slot was filled")
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use super::*;

    #[test]
    fn map_collect_preserves_order() {
        let squares: Vec<usize> = (0..1000).into_par_iter().map(|i| i * i).collect();
        assert_eq!(squares.len(), 1000);
        assert!(squares.iter().enumerate().all(|(i, &s)| s == i * i));
    }

    #[test]
    fn par_iter_over_slice() {
        let data = vec![1u64, 2, 3, 4];
        let doubled: Vec<u64> = data.par_iter().map(|&x| x * 2).collect();
        assert_eq!(doubled, vec![2, 4, 6, 8]);
    }

    #[test]
    fn install_pins_thread_count() {
        let pool = ThreadPoolBuilder::new().num_threads(3).build().unwrap();
        pool.install(|| assert_eq!(current_num_threads(), 3));
        let pool1 = ThreadPoolBuilder::new().num_threads(1).build().unwrap();
        let out: Vec<usize> = pool1.install(|| (0..10).into_par_iter().map(|i| i).collect());
        assert_eq!(out, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn really_runs_on_multiple_threads() {
        let pool = ThreadPoolBuilder::new().num_threads(4).build().unwrap();
        let ids: Vec<std::thread::ThreadId> = pool.install(|| {
            (0..64)
                .into_par_iter()
                .map(|_| {
                    std::thread::sleep(std::time::Duration::from_millis(1));
                    std::thread::current().id()
                })
                .collect()
        });
        let unique: std::collections::HashSet<_> = ids.into_iter().collect();
        assert!(unique.len() > 1, "expected >1 worker, got {}", unique.len());
    }
}
