//! Offline stand-in for the `proptest` crate.
//!
//! Implements the subset this workspace's property tests use: the
//! [`proptest!`] macro, [`Strategy`] with `prop_map`/`prop_flat_map`,
//! numeric range strategies, tuple strategies, and
//! [`collection::btree_set`]. Failing cases are reported with their
//! case number via ordinary panics; there is no shrinking. Sampling is
//! deterministic per test (seeded from the test's module path and
//! name), so CI failures reproduce locally.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// The conventional import surface.
pub mod prelude {
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, proptest, ProptestConfig, Strategy,
    };
}

/// The RNG handed to strategies.
pub type TestRng = SmallRng;

/// Builds the deterministic RNG for one property test.
#[must_use]
pub fn rng_for_test(unique_name: &str) -> TestRng {
    // FNV-1a over the fully qualified test name.
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    for byte in unique_name.bytes() {
        hash ^= u64::from(byte);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    SmallRng::seed_from_u64(hash)
}

/// Per-test configuration.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of cases sampled per test.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 64 }
    }
}

impl ProptestConfig {
    /// A configuration running `cases` samples.
    #[must_use]
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

/// A value-generation strategy.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Samples one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Builds a dependent strategy from each generated value.
    fn prop_flat_map<S: Strategy, F: Fn(Self::Value) -> S>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
    {
        FlatMap { inner: self, f }
    }
}

/// See [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn sample(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.sample(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
#[derive(Debug, Clone)]
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
    type Value = S2::Value;
    fn sample(&self, rng: &mut TestRng) -> S2::Value {
        (self.f)(self.inner.sample(rng)).sample(rng)
    }
}

/// A strategy returning a fixed value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}
range_strategy!(u8, u16, u32, u64, usize);

impl Strategy for std::ops::Range<f64> {
    type Value = f64;
    fn sample(&self, rng: &mut TestRng) -> f64 {
        rng.gen_range(self.clone())
    }
}

macro_rules! tuple_strategy {
    ($(($($s:ident / $idx:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.sample(rng),)+)
            }
        }
    )*};
}
tuple_strategy! {
    (A / 0, B / 1)
    (A / 0, B / 1, C / 2)
    (A / 0, B / 1, C / 2, D / 3)
}

/// Collection strategies.
pub mod collection {
    use super::{Strategy, TestRng};
    use rand::Rng;

    /// A size specification for collection strategies.
    #[derive(Debug, Clone)]
    pub struct SizeRange {
        min: usize,
        max: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            Self { min: n, max: n }
        }
    }

    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(r: std::ops::Range<usize>) -> Self {
            Self {
                min: r.start,
                max: r.end.saturating_sub(1),
            }
        }
    }

    impl From<std::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: std::ops::RangeInclusive<usize>) -> Self {
            Self {
                min: *r.start(),
                max: *r.end(),
            }
        }
    }

    /// Strategy for `BTreeSet`s with sizes in `size` and elements from
    /// `element`. If the element domain is smaller than the drawn size,
    /// the set saturates at the domain size (bounded retries).
    pub fn btree_set<S: Strategy>(element: S, size: impl Into<SizeRange>) -> BTreeSetStrategy<S> {
        BTreeSetStrategy {
            element,
            size: size.into(),
        }
    }

    /// See [`btree_set`].
    #[derive(Debug, Clone)]
    pub struct BTreeSetStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for BTreeSetStrategy<S>
    where
        S::Value: Ord,
    {
        type Value = std::collections::BTreeSet<S::Value>;

        fn sample(&self, rng: &mut TestRng) -> Self::Value {
            let target = if self.size.min >= self.size.max {
                self.size.min
            } else {
                rng.gen_range(self.size.min..=self.size.max)
            };
            let mut set = std::collections::BTreeSet::new();
            let mut attempts = 0usize;
            while set.len() < target && attempts < target * 20 + 20 {
                set.insert(self.element.sample(rng));
                attempts += 1;
            }
            set
        }
    }

    /// Strategy for `Vec`s with sizes in `size` and elements from
    /// `element`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    /// See [`vec()`].
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn sample(&self, rng: &mut TestRng) -> Self::Value {
            let len = if self.size.min >= self.size.max {
                self.size.min
            } else {
                rng.gen_range(self.size.min..=self.size.max)
            };
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }
}

/// Asserts a condition inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)*) => { assert!($cond, $($fmt)*) };
}

/// Asserts equality inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => { assert_eq!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)*) => { assert_eq!($a, $b, $($fmt)*) };
}

/// Asserts inequality inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => { assert_ne!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)*) => { assert_ne!($a, $b, $($fmt)*) };
}

/// Declares property tests: each `fn name(pat in strategy, ...) { .. }`
/// becomes a `#[test]` running `cases` sampled inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { config = $config; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { config = $crate::ProptestConfig::default(); $($rest)* }
    };
}

/// Implementation detail of [`proptest!`].
#[macro_export]
#[doc(hidden)]
macro_rules! __proptest_impl {
    (config = $config:expr; $(
        $(#[$meta:meta])*
        fn $name:ident($($pat:pat in $strategy:expr),+ $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let __config: $crate::ProptestConfig = $config;
            let mut __rng =
                $crate::rng_for_test(concat!(module_path!(), "::", stringify!($name)));
            for __case in 0..__config.cases {
                let __run = || {
                    $( let $pat = $crate::Strategy::sample(&($strategy), &mut __rng); )+
                    $body
                };
                if let Err(payload) = std::panic::catch_unwind(
                    std::panic::AssertUnwindSafe(__run),
                ) {
                    eprintln!(
                        "proptest stub: {} failed at case {}/{}",
                        stringify!($name),
                        __case + 1,
                        __config.cases
                    );
                    std::panic::resume_unwind(payload);
                }
            }
        }
    )*};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use super::Strategy;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_stay_in_bounds(x in 3u16..9, y in 0u64..=5, f in 0.5f64..2.0) {
            prop_assert!((3..9).contains(&x));
            prop_assert!(y <= 5);
            prop_assert!((0.5..2.0).contains(&f));
        }

        #[test]
        fn tuples_and_maps_compose((a, b) in (1u16..=4, 1u16..=4), c in (0u32..10).prop_map(|v| v * 2)) {
            prop_assert!((1..=4).contains(&a) && (1..=4).contains(&b));
            prop_assert_eq!(c % 2, 0);
        }

        #[test]
        fn flat_map_depends_on_outer(v in (2usize..6).prop_flat_map(|n| crate::collection::vec(0u8..10, n..=n))) {
            prop_assert!((2..6).contains(&v.len()));
        }

        #[test]
        fn btree_sets_respect_bounds(s in crate::collection::btree_set(2u16..8, 0..=4usize)) {
            prop_assert!(s.len() <= 4);
            prop_assert!(s.iter().all(|&x| (2..8).contains(&x)));
        }
    }

    #[test]
    fn deterministic_sampling() {
        let mut a = crate::rng_for_test("x");
        let mut b = crate::rng_for_test("x");
        let s = 0u64..1000;
        for _ in 0..50 {
            assert_eq!(s.sample(&mut a), s.sample(&mut b));
        }
    }
}
