//! Offline stand-in for the `rand` crate.
//!
//! Implements the API subset this workspace uses — `SmallRng`,
//! [`SeedableRng::seed_from_u64`], [`Rng::gen`], [`Rng::gen_range`] and
//! [`Rng::gen_bool`] — with the same module paths as the real crate so
//! it can be swapped back in from `[workspace.dependencies]`.
//!
//! The generator is xoshiro256++ seeded through SplitMix64. The stream
//! does not match the real `rand::rngs::SmallRng` (which is not stable
//! across `rand` versions either); everything in this workspace treats
//! the stream as an implementation detail and only relies on it being
//! deterministic for a given seed.

/// Pseudo-random generators.
pub mod rngs {
    pub use crate::small::SmallRng;
}

mod small {
    use crate::{RngCore, SeedableRng};

    /// A small, fast, deterministic generator (xoshiro256++).
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    #[inline]
    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut state = seed;
            let s = [
                splitmix64(&mut state),
                splitmix64(&mut state),
                splitmix64(&mut state),
                splitmix64(&mut state),
            ];
            Self { s }
        }
    }

    impl RngCore for SmallRng {
        #[inline]
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

/// The raw generator interface: a source of uniform `u64`s.
pub trait RngCore {
    /// Returns the next uniformly distributed 64-bit value.
    fn next_u64(&mut self) -> u64;

    /// Returns the next uniformly distributed 32-bit value.
    #[inline]
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    #[inline]
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Generators constructible from a `u64` seed.
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types samplable uniformly from a generator via [`Rng::gen`].
pub trait Standard: Sized {
    /// Samples one value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    /// Uniform in `[0, 1)` with 53 bits of precision.
    #[inline]
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    /// Uniform in `[0, 1)` with 24 bits of precision.
    #[inline]
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl Standard for bool {
    #[inline]
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            #[inline]
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Ranges samplable via [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Samples one value from the range.
    ///
    /// Panics if the range is empty.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Maps a uniform `u64` onto `0..span` with a widening multiply
/// (Lemire's method without the rejection step; the bias is below
/// 2^-32 for every span this workspace uses).
#[inline]
fn index_below(rng: &mut (impl RngCore + ?Sized), span: u64) -> u64 {
    ((u128::from(rng.next_u64()) * u128::from(span)) >> 64) as u64
}

macro_rules! sample_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for std::ops::Range<$t> {
            #[inline]
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as u64).wrapping_sub(self.start as u64);
                self.start + index_below(rng, span) as $t
            }
        }
        impl SampleRange<$t> for std::ops::RangeInclusive<$t> {
            #[inline]
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as u64).wrapping_sub(lo as u64).wrapping_add(1);
                if span == 0 {
                    // Full u64 domain.
                    return rng.next_u64() as $t;
                }
                lo + index_below(rng, span) as $t
            }
        }
    )*};
}
sample_int_range!(u8, u16, u32, u64, usize);

impl SampleRange<f64> for std::ops::Range<f64> {
    #[inline]
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        let unit = f64::sample(rng);
        self.start + unit * (self.end - self.start)
    }
}

/// The user-facing generator interface.
pub trait Rng: RngCore {
    /// Samples a value of a [`Standard`]-samplable type.
    #[inline]
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Samples uniformly from a range.
    #[inline]
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// Returns `true` with probability `p`.
    #[inline]
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        f64::sample(self) < p
    }
}

impl<R: RngCore> Rng for R {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rngs::SmallRng;

    #[test]
    fn deterministic_for_seed() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = SmallRng::seed_from_u64(1);
        let mut b = SmallRng::seed_from_u64(2);
        assert_ne!(
            (0..4).map(|_| a.next_u64()).collect::<Vec<_>>(),
            (0..4).map(|_| b.next_u64()).collect::<Vec<_>>()
        );
    }

    #[test]
    fn unit_interval_and_ranges_are_in_bounds() {
        let mut rng = SmallRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let f: f64 = rng.gen();
            assert!((0.0..1.0).contains(&f));
            let u = rng.gen_range(3usize..17);
            assert!((3..17).contains(&u));
            let b = rng.gen_range(0..100u8);
            assert!(b < 100);
            let i = rng.gen_range(5u16..=9);
            assert!((5..=9).contains(&i));
        }
    }

    #[test]
    fn gen_range_covers_whole_span() {
        let mut rng = SmallRng::seed_from_u64(11);
        let mut seen = [false; 10];
        for _ in 0..1000 {
            seen[rng.gen_range(0usize..10)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = SmallRng::seed_from_u64(13);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((2_000..3_000).contains(&hits), "hits {hits}");
    }
}
