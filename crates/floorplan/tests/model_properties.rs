//! Model-level properties of the floorplan crate: monotonicity and
//! consistency relations that must hold for any topology.

use shg_floorplan::{predict, ArchParams, ModelOptions};
use shg_topology::{generators, Grid};
use shg_units::{
    AspectRatio, BitsPerCycle, GateEquivalents, Hertz, RouterAreaModel, Technology, Transport,
};

fn params(grid: Grid) -> ArchParams {
    ArchParams {
        grid,
        endpoint_area: GateEquivalents::mega(35.0),
        endpoints_per_tile: 1,
        aspect_ratio: AspectRatio::square(),
        frequency: Hertz::giga(1.2),
        bandwidth: BitsPerCycle::new(512),
        technology: Technology::example_22nm(),
        transport: Transport::axi_like(),
        router_model: RouterAreaModel::input_queued(8, 32),
    }
}

fn fast_options() -> ModelOptions {
    ModelOptions {
        cell_scale: 4.0,
        ..ModelOptions::default()
    }
}

#[test]
fn adding_links_never_shrinks_area() {
    // Growing the skip sets monotonically grows the chip.
    let grid = Grid::new(8, 8);
    let p = params(grid);
    let configs: Vec<Vec<u16>> = vec![vec![], vec![4], vec![2, 4], vec![2, 3, 4]];
    let mut last_area = 0.0;
    for sr in configs {
        let sr_set: std::collections::BTreeSet<u16> = sr.iter().copied().collect();
        let sc_set = sr_set.clone();
        let topology = generators::row_column_skip(grid, &sr_set, &sc_set).expect("valid");
        let prediction = predict(&p, &topology, &fast_options());
        let area = prediction.estimates.total_area.value();
        assert!(
            area >= last_area - 1e-9,
            "area shrank: {last_area} → {area} for SR={sr_set:?}"
        );
        last_area = area;
    }
}

#[test]
fn higher_bandwidth_needs_more_area() {
    let grid = Grid::new(8, 8);
    let topology = generators::torus(grid);
    let mut p = params(grid);
    let narrow = predict(&p, &topology, &fast_options());
    p.bandwidth = BitsPerCycle::new(1024);
    let wide = predict(&p, &topology, &fast_options());
    assert!(wide.estimates.total_area > narrow.estimates.total_area);
    assert!(wide.estimates.area_overhead > narrow.estimates.area_overhead);
}

#[test]
fn higher_frequency_raises_link_latencies() {
    let grid = Grid::new(8, 8);
    let topology = generators::torus(grid);
    let mut p = params(grid);
    let slow_clock = predict(&p, &topology, &fast_options());
    p.frequency = Hertz::giga(3.0);
    let fast_clock = predict(&p, &topology, &fast_options());
    // Same wires, shorter cycles ⇒ more pipeline stages per link.
    assert!(fast_clock.estimates.mean_link_latency() >= slow_clock.estimates.mean_link_latency());
    assert!(fast_clock.estimates.max_link_latency() > slow_clock.estimates.max_link_latency());
}

#[test]
fn coarser_cells_approximate_fine_cells() {
    // cell_scale trades precision for speed; area estimates must stay
    // within a modest band of the fine-grained result.
    let grid = Grid::new(8, 8);
    let p = params(grid);
    let sr = [4].into_iter().collect();
    let sc = [2, 5].into_iter().collect();
    let topology = generators::row_column_skip(grid, &sr, &sc).expect("valid");
    let fine = predict(&p, &topology, &ModelOptions::default());
    let coarse = predict(
        &p,
        &topology,
        &ModelOptions {
            cell_scale: 4.0,
            ..ModelOptions::default()
        },
    );
    let rel = (coarse.estimates.total_area.value() - fine.estimates.total_area.value()).abs()
        / fine.estimates.total_area.value();
    assert!(rel < 0.10, "coarse vs fine area differ by {rel}");
    let rel_power = (coarse.estimates.noc_power.value() - fine.estimates.noc_power.value()).abs()
        / fine.estimates.noc_power.value().max(1e-9);
    assert!(
        rel_power < 0.35,
        "coarse vs fine NoC power differ by {rel_power}"
    );
}

#[test]
fn area_overhead_decomposition_is_consistent() {
    let grid = Grid::new(8, 8);
    let p = params(grid);
    let topology = generators::mesh(grid);
    let prediction = predict(&p, &topology, &fast_options());
    let e = &prediction.estimates;
    let recomputed = (e.total_area.value() - e.area_no_noc.value()) / e.total_area.value();
    assert!((recomputed - e.area_overhead).abs() < 1e-12);
}

#[test]
fn bigger_grid_means_bigger_chip() {
    let small = predict(
        &params(Grid::new(4, 4)),
        &generators::mesh(Grid::new(4, 4)),
        &fast_options(),
    );
    let large = predict(
        &params(Grid::new(8, 8)),
        &generators::mesh(Grid::new(8, 8)),
        &fast_options(),
    );
    assert!(large.estimates.total_area.value() > 3.0 * small.estimates.total_area.value());
}

#[test]
fn link_latency_vector_covers_every_link() {
    let grid = Grid::new(8, 8);
    let p = params(grid);
    for topology in [
        generators::ring(grid),
        generators::torus(grid),
        generators::flattened_butterfly(grid),
    ] {
        let prediction = predict(&p, &topology, &fast_options());
        assert_eq!(
            prediction.estimates.link_latencies.len(),
            topology.num_links()
        );
        assert!(prediction
            .estimates
            .link_latencies
            .iter()
            .all(|c| c.value() >= 1));
    }
}
