//! Approximate floorplanning and link routing for NoC cost prediction.
//!
//! This crate implements the five-step model of Section IV-B of the Sparse
//! Hamming Graph paper (Fig. 4/5). It bridges the gap between fast but
//! coarse high-level models and accurate but slow low-level (RTL) models
//! by estimating implementation details — channel spacing, wire lengths,
//! collisions — from an approximate floorplan:
//!
//! 1. [`TilePlacement`] — tile area estimate and placement in the R×C grid,
//! 2. [`GlobalRouting`] — greedy global routing in the grid of tiles,
//! 3. [`Spacings`] — estimation of spacing between rows and columns,
//! 4. [`UnitGrid`] — discretization of the chip into same-sized unit cells,
//! 5. [`DetailedRoutes`] — detailed routing in the grid of unit cells.
//!
//! The combined outputs are the NoC's **area overhead**, **power
//! consumption** and **per-link latencies** ([`NocEstimates`]); the
//! latencies annotate the topology fed to the cycle-accurate simulator.
//!
//! # Examples
//!
//! ```
//! use shg_floorplan::{predict, ArchParams, ModelOptions};
//! use shg_topology::{generators, Grid};
//! use shg_units::{
//!     AspectRatio, BitsPerCycle, GateEquivalents, Hertz, RouterAreaModel, Technology,
//!     Transport,
//! };
//!
//! let params = ArchParams {
//!     grid: Grid::new(8, 8),
//!     endpoint_area: GateEquivalents::mega(35.0),
//!     endpoints_per_tile: 1,
//!     aspect_ratio: AspectRatio::square(),
//!     frequency: Hertz::giga(1.2),
//!     bandwidth: BitsPerCycle::new(512),
//!     technology: Technology::example_22nm(),
//!     transport: Transport::axi_like(),
//!     router_model: RouterAreaModel::input_queued(8, 32),
//! };
//! let mesh = generators::mesh(params.grid);
//! let prediction = predict(&params, &mesh, &ModelOptions::default());
//! assert!(prediction.estimates.area_overhead < 0.15);
//! ```

mod detailed_route;
mod estimate;
mod global_route;
mod params;
mod placement;
mod spacing;
mod unitcell;

pub use detailed_route::{DetailedRoutes, LinkRoute};
pub use estimate::NocEstimates;
pub use global_route::{ChannelLoads, GlobalRouting, Segment};
pub use params::{ArchParams, DetailedRouting, ModelOptions, PortPlacement};
pub use placement::TilePlacement;
pub use spacing::Spacings;
pub use unitcell::{CellRect, Face, UnitGrid};

use serde::{Deserialize, Serialize};
use shg_topology::Topology;

/// The full output of one model run: every intermediate step plus the
/// final estimates, exposed per C-INTERMEDIATE so that callers (e.g. the
/// ablation benches) can inspect channel loads or routing collisions.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Prediction {
    /// Step 1 output.
    pub placement: TilePlacement,
    /// Step 2 output.
    pub global: GlobalRouting,
    /// Step 3 output.
    pub spacings: Spacings,
    /// Step 4 output.
    pub unit_grid: UnitGrid,
    /// Step 5 output.
    pub detailed: DetailedRoutes,
    /// Final area/power/latency estimates.
    pub estimates: NocEstimates,
}

/// Runs the full five-step model on a topology.
///
/// # Examples
///
/// See the [crate-level documentation](crate).
#[must_use]
pub fn predict(params: &ArchParams, topology: &Topology, options: &ModelOptions) -> Prediction {
    assert_eq!(
        params.grid,
        topology.grid(),
        "parameter grid and topology grid must agree"
    );
    let placement = TilePlacement::compute(params, topology);
    let global = GlobalRouting::route(topology, options.port_placement);
    let spacings = Spacings::compute(params, &global.loads);
    let unit_grid = UnitGrid::build(params, options, &placement, &spacings);
    let detailed = DetailedRoutes::route(topology, &unit_grid, &global, options);
    let mut estimates = NocEstimates::compute(params, &unit_grid, &detailed);
    // Expanded-grid instantiations annotate die-crossing links; the
    // floorplan model charges them the database's boundary-crossing
    // latency on top of the wire-length estimate. Flat topologies carry
    // no metadata, so their latencies (and every downstream cell
    // fingerprint) are untouched.
    let boundary = topology.boundary_latency();
    if boundary > 0 {
        for (i, latency) in estimates.link_latencies.iter_mut().enumerate() {
            if topology.link_crosses_die(shg_topology::LinkId::new(i as u32)) {
                *latency += shg_units::Cycles::new(u64::from(boundary));
            }
        }
    }
    Prediction {
        placement,
        global,
        spacings,
        unit_grid,
        detailed,
        estimates,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use shg_topology::{generators, Grid};
    use shg_units::{
        AspectRatio, BitsPerCycle, GateEquivalents, Hertz, RouterAreaModel, Technology, Transport,
    };

    fn params(grid: Grid) -> ArchParams {
        ArchParams {
            grid,
            endpoint_area: GateEquivalents::mega(35.0),
            endpoints_per_tile: 1,
            aspect_ratio: AspectRatio::square(),
            frequency: Hertz::giga(1.2),
            bandwidth: BitsPerCycle::new(512),
            technology: Technology::example_22nm(),
            transport: Transport::axi_like(),
            router_model: RouterAreaModel::input_queued(8, 32),
        }
    }

    #[test]
    fn cost_ordering_matches_figure_6() {
        // Fig. 6a cost panel: mesh < torus ≲ sparse Hamming (customized)
        // < flattened butterfly in area overhead.
        let grid = Grid::new(8, 8);
        let p = params(grid);
        let options = ModelOptions::default();
        let mesh = predict(&p, &generators::mesh(grid), &options);
        let torus = predict(&p, &generators::torus(grid), &options);
        let sr = [4].into_iter().collect();
        let sc = [2, 5].into_iter().collect();
        let shg = predict(
            &p,
            &generators::row_column_skip(grid, &sr, &sc).expect("scenario a"),
            &options,
        );
        let fb = predict(&p, &generators::flattened_butterfly(grid), &options);
        let (m, t, s, f) = (
            mesh.estimates.area_overhead,
            torus.estimates.area_overhead,
            shg.estimates.area_overhead,
            fb.estimates.area_overhead,
        );
        assert!(m < t, "mesh {m} < torus {t}");
        assert!(t < s, "torus {t} < shg {s}");
        assert!(s < f, "shg {s} < fb {f}");
    }

    #[test]
    #[should_panic(expected = "must agree")]
    fn grid_mismatch_panics() {
        let p = params(Grid::new(4, 4));
        let mesh = generators::mesh(Grid::new(8, 8));
        let _ = predict(&p, &mesh, &ModelOptions::default());
    }

    #[test]
    fn prediction_is_deterministic() {
        let grid = Grid::new(4, 4);
        let p = params(grid);
        let torus = generators::torus(grid);
        let a = predict(&p, &torus, &ModelOptions::default());
        let b = predict(&p, &torus, &ModelOptions::default());
        assert_eq!(a.estimates, b.estimates);
    }

    #[test]
    fn boundary_latency_is_charged_on_die_crossing_links_only() {
        use shg_topology::db::TopologyDb;
        use shg_topology::LinkId;

        let spec = |latency: u32| {
            format!("die a 4x4 mesh; die b 4x4 mesh; boundary every=2 latency={latency}")
        };
        let with = TopologyDb::parse(&spec(7)).unwrap().instantiate().unwrap();
        let without = TopologyDb::parse(&spec(0)).unwrap().instantiate().unwrap();
        assert_eq!(with.links(), without.links());
        let p = params(with.grid());
        let options = ModelOptions::default();
        let charged = predict(&p, &with, &options).estimates.link_latencies;
        let base = predict(&p, &without, &options).estimates.link_latencies;
        let mut crossings = 0;
        for i in 0..with.num_links() {
            let id = LinkId::new(i as u32);
            if with.link_crosses_die(id) {
                crossings += 1;
                assert_eq!(charged[i], base[i] + shg_units::Cycles::new(7), "{id}");
            } else {
                assert_eq!(charged[i], base[i], "{id}");
            }
        }
        assert_eq!(crossings, 2);
    }
}
