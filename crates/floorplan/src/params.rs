//! Architectural parameters — the model inputs of Table II.

use serde::{Deserialize, Serialize};

use shg_topology::Grid;
use shg_units::{
    AspectRatio, BitsPerCycle, GateEquivalents, Hertz, RouterAreaModel, Technology, Transport,
};

/// The full set of architectural parameters the prediction model needs
/// (Table II of the paper).
///
/// # Examples
///
/// ```
/// use shg_floorplan::ArchParams;
/// use shg_topology::Grid;
/// use shg_units::{
///     AspectRatio, BitsPerCycle, GateEquivalents, Hertz, RouterAreaModel, Technology,
///     Transport,
/// };
///
/// // The KNC-like scenario (a): 64 tiles, 35 MGE, 512 bits/cycle, 1.2 GHz.
/// let params = ArchParams {
///     grid: Grid::new(8, 8),
///     endpoint_area: GateEquivalents::mega(35.0),
///     endpoints_per_tile: 1,
///     aspect_ratio: AspectRatio::square(),
///     frequency: Hertz::giga(1.2),
///     bandwidth: BitsPerCycle::new(512),
///     technology: Technology::example_22nm(),
///     transport: Transport::axi_like(),
///     router_model: RouterAreaModel::input_queued(8, 32),
/// };
/// assert_eq!(params.grid.num_tiles(), 64);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ArchParams {
    /// Tile grid (`N_T = R × C`).
    pub grid: Grid,
    /// Combined area of all endpoints in a tile (`A_E`).
    pub endpoint_area: GateEquivalents,
    /// Number of endpoints attached to each tile's local router.
    pub endpoints_per_tile: u32,
    /// Tile aspect ratio, height : width (`R_T`).
    pub aspect_ratio: AspectRatio,
    /// NoC clock frequency (`F`).
    pub frequency: Hertz,
    /// Per-link bandwidth (`B`).
    pub bandwidth: BitsPerCycle,
    /// Technology-node functions.
    pub technology: Technology,
    /// Transport-protocol wire model (`f_bw→wires`).
    pub transport: Transport,
    /// Router area model (`f_AR`).
    pub router_model: RouterAreaModel,
}

impl ArchParams {
    /// Wires per router-to-router link under the configured transport.
    #[must_use]
    pub fn wires_per_link(&self) -> shg_units::Wires {
        self.transport.bw_to_wires(self.bandwidth)
    }

    /// Router area for a tile with `radix` network ports
    /// (`f_AR(m, s, B)` with `m = s = radix + endpoints`).
    #[must_use]
    pub fn router_area(&self, radix: usize) -> GateEquivalents {
        let ports = radix as u32 + self.endpoints_per_tile;
        self.router_model.area(ports, ports, self.bandwidth)
    }
}

/// Options controlling the floorplan model's heuristics.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ModelOptions {
    /// Port placement policy (ablation A1: `Optimized` vs `NorthOnly`).
    pub port_placement: PortPlacement,
    /// Detailed-routing mode (ablation A2).
    pub detailed_routing: DetailedRouting,
    /// Multiplier on the unit-cell dimensions; values > 1 coarsen the
    /// detailed-routing grid, trading accuracy for speed.
    pub cell_scale: f64,
    /// A* cost penalty per same-direction collision in a unit cell.
    pub collision_penalty: f64,
}

impl Default for ModelOptions {
    fn default() -> Self {
        Self {
            port_placement: PortPlacement::Optimized,
            detailed_routing: DetailedRouting::CollisionAware,
            cell_scale: 1.0,
            collision_penalty: 4.0,
        }
    }
}

/// Where ports sit on a tile's perimeter.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum PortPlacement {
    /// One port region per face; each link leaves through the face it
    /// heads toward (the mesh-style placement of design principle ❷ OPP).
    Optimized,
    /// All ports crowd the north face (the ring-style anti-pattern the
    /// paper calls out; used as the A1 ablation baseline).
    NorthOnly,
}

/// Detailed-routing heuristic selection.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum DetailedRouting {
    /// A* with collision penalties (the paper's step 5 heuristic).
    CollisionAware,
    /// Shortest paths that ignore congestion entirely (A2 ablation
    /// baseline).
    CongestionBlind,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn params() -> ArchParams {
        ArchParams {
            grid: Grid::new(8, 8),
            endpoint_area: GateEquivalents::mega(35.0),
            endpoints_per_tile: 1,
            aspect_ratio: AspectRatio::square(),
            frequency: Hertz::giga(1.2),
            bandwidth: BitsPerCycle::new(512),
            technology: Technology::example_22nm(),
            transport: Transport::axi_like(),
            router_model: RouterAreaModel::input_queued(8, 32),
        }
    }

    #[test]
    fn wires_per_link_is_affine_in_bandwidth() {
        let p = params();
        let w = p.wires_per_link();
        assert_eq!(w.value(), (2.1f64 * 512.0).ceil() as u64 + 80);
    }

    #[test]
    fn router_area_grows_with_radix() {
        let p = params();
        assert!(p.router_area(8).value() > p.router_area(4).value());
    }

    #[test]
    fn default_options_are_optimized() {
        let o = ModelOptions::default();
        assert_eq!(o.port_placement, PortPlacement::Optimized);
        assert_eq!(o.detailed_routing, DetailedRouting::CollisionAware);
    }
}
