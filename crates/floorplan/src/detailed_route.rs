//! Step 5 — detailed routing in the grid of unit cells (Fig. 5e).
//!
//! Each channel-routed link is routed cell-by-cell from its source port to
//! its destination port with A*. Tiles are blocked; each unit cell can
//! carry exactly one horizontal and one vertical link without penalty. The
//! heuristic reduces both the number of collisions (multiple parallel
//! links in the same cell) and the link lengths, matching the paper's
//! description of the custom step-5 algorithm.
//!
//! Links between grid-adjacent tiles cross their (possibly zero-width)
//! gap directly and are handled analytically.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use serde::{Deserialize, Serialize};

use shg_topology::{LinkId, Topology};

use crate::global_route::{GlobalRouting, Segment};
use crate::params::{DetailedRouting as RoutingMode, ModelOptions};
use crate::unitcell::{Face, UnitGrid};

/// Cell-level route of one link.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct LinkRoute {
    /// Cells entered by horizontal moves (`N^H_cell` of the latency
    /// formula).
    pub h_moves: u32,
    /// Cells entered by vertical moves (`N^V_cell`).
    pub v_moves: u32,
}

/// The outcome of detailed routing.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DetailedRoutes {
    /// Per-link cell route.
    pub routes: Vec<LinkRoute>,
    /// Cells carrying at least one horizontal wire segment (`N^H_cell` of
    /// the power formula).
    pub h_occupied_cells: usize,
    /// Cells carrying at least one vertical wire segment.
    pub v_occupied_cells: usize,
    /// Total over-capacity cell usages (a collision is a second or later
    /// same-direction link in one cell).
    pub collisions: u64,
}

impl DetailedRoutes {
    /// Routes every link of `topology` through `unit_grid`, using the
    /// global-routing `plans` to pick the tile face each link leaves
    /// through.
    ///
    /// Links are processed longest-first. In
    /// [`RoutingMode::CollisionAware`] mode, occupied cells cost extra; in
    /// [`RoutingMode::CongestionBlind`] mode the router simply takes
    /// shortest paths (the A2 ablation baseline).
    #[must_use]
    pub fn route(
        topology: &Topology,
        unit_grid: &UnitGrid,
        global: &GlobalRouting,
        options: &ModelOptions,
    ) -> Self {
        let ports = PortAssignment::compute(topology, unit_grid, global);
        let mut astar = AStar::new(unit_grid);
        let mut h_occ = vec![0u16; unit_grid.num_cells()];
        let mut v_occ = vec![0u16; unit_grid.num_cells()];
        let mut routes = vec![LinkRoute::default(); topology.num_links()];
        let penalty = match options.detailed_routing {
            RoutingMode::CollisionAware => (options.collision_penalty * 10.0).round() as u32,
            RoutingMode::CongestionBlind => 0,
        };
        let mut order: Vec<LinkId> = (0..topology.num_links() as u32).map(LinkId::new).collect();
        order.sort_by_key(|&id| Reverse(topology.link_length(id)));
        for id in order {
            match ports.endpoints(id) {
                Endpoints::Direct => {
                    routes[id.index()] =
                        direct_route(topology, unit_grid, id, &mut h_occ, &mut v_occ);
                }
                Endpoints::Routed(from, to) => {
                    let (from, to) = (*from, *to);
                    let path =
                        astar.search(from, to, &h_occ, &v_occ, penalty, unit_grid.capacity());
                    let mut route = LinkRoute::default();
                    let mut prev = from;
                    for &(x, y) in &path {
                        if x != prev.0 {
                            route.h_moves += 1;
                            h_occ[unit_grid.index(x, y)] += 1;
                        } else {
                            route.v_moves += 1;
                            v_occ[unit_grid.index(x, y)] += 1;
                        }
                        prev = (x, y);
                    }
                    routes[id.index()] = route;
                }
            }
        }
        // Normalize occupancy to scale-1 cell equivalents so that power
        // accounting is invariant under `cell_scale` coarsening.
        let cap = unit_grid.capacity();
        let cell_equivalents = |occ: &[u16]| -> usize {
            let total: u64 = occ.iter().map(|&o| o as u64).sum();
            (total as f64 / cap as f64).round() as usize
        };
        let h_occupied_cells = cell_equivalents(&h_occ);
        let v_occupied_cells = cell_equivalents(&v_occ);
        let collisions = h_occ
            .iter()
            .chain(v_occ.iter())
            .map(|&o| o.saturating_sub(cap) as u64)
            .sum();
        Self {
            routes,
            h_occupied_cells,
            v_occupied_cells,
            collisions,
        }
    }
}

/// A direct link between grid-adjacent tiles crosses one gap straight.
fn direct_route(
    topology: &Topology,
    unit_grid: &UnitGrid,
    id: LinkId,
    h_occ: &mut [u16],
    v_occ: &mut [u16],
) -> LinkRoute {
    let grid = topology.grid();
    let link = topology.link(id);
    let (a, b) = (grid.coord(link.a), grid.coord(link.b));
    let rect_a = unit_grid.tile_rect(link.a);
    if a.row == b.row {
        // Crossing the vertical gap between the two columns.
        let gap = a.col.max(b.col);
        let width = unit_grid.v_gap_width(gap);
        let x0 = unit_grid.v_gap_start(gap);
        let y = (rect_a.y0 + rect_a.y1) / 2;
        for x in x0..x0 + width {
            h_occ[unit_grid.index(x, y)] += 1;
        }
        LinkRoute {
            h_moves: width as u32,
            v_moves: 0,
        }
    } else {
        let gap = a.row.max(b.row);
        let height = unit_grid.h_gap_height(gap);
        let y0 = unit_grid.h_gap_start(gap);
        let x = (rect_a.x0 + rect_a.x1) / 2;
        for y in y0..y0 + height {
            v_occ[unit_grid.index(x, y)] += 1;
        }
        LinkRoute {
            h_moves: 0,
            v_moves: height as u32,
        }
    }
}

/// How a link's endpoints map onto the cell grid.
enum Endpoints {
    /// Grid-adjacent link: crosses its gap directly, no A* needed.
    Direct,
    /// Channel-routed link with source and destination port cells.
    Routed((usize, usize), (usize, usize)),
}

/// Port cells for every link endpoint, derived from the global plan: a
/// link leaves its tile through the face adjacent to the channel its plan
/// starts in, which guarantees the face's gap is nonzero.
struct PortAssignment {
    cells: Vec<Endpoints>,
}

impl PortAssignment {
    fn compute(topology: &Topology, unit_grid: &UnitGrid, global: &GlobalRouting) -> Self {
        let grid = topology.grid();
        let face_idx = |f: Face| -> usize {
            match f {
                Face::North => 0,
                Face::South => 1,
                Face::East => 2,
                Face::West => 3,
            }
        };
        // Face of the source endpoint given the first plan segment, and of
        // the destination endpoint given the last segment.
        let src_face = |coord: shg_topology::TileCoord, seg: &Segment| -> Face {
            match *seg {
                Segment::Direct => unreachable!("direct links have no ports"),
                Segment::Horizontal { gap, .. } => {
                    if gap == coord.row {
                        Face::North
                    } else {
                        Face::South
                    }
                }
                Segment::Vertical { gap, .. } => {
                    if gap == coord.col {
                        Face::West
                    } else {
                        Face::East
                    }
                }
            }
        };
        // First pass: count ports per (tile, face) for slot spreading.
        let mut counts = vec![[0usize; 4]; topology.num_tiles()];
        let mut faces: Vec<Option<(Face, usize, Face, usize)>> =
            Vec::with_capacity(topology.num_links());
        for (i, link) in topology.links().iter().enumerate() {
            let plan = &global.plans[i];
            if plan.len() == 1 && plan[0] == Segment::Direct {
                faces.push(None);
                continue;
            }
            let fa = src_face(grid.coord(link.a), plan.first().expect("nonempty plan"));
            let fb = src_face(grid.coord(link.b), plan.last().expect("nonempty plan"));
            let sa = counts[link.a.index()][face_idx(fa)];
            counts[link.a.index()][face_idx(fa)] += 1;
            let sb = counts[link.b.index()][face_idx(fb)];
            counts[link.b.index()][face_idx(fb)] += 1;
            faces.push(Some((fa, sa, fb, sb)));
        }
        let cells = topology
            .links()
            .iter()
            .zip(&faces)
            .map(|(link, assignment)| match assignment {
                None => Endpoints::Direct,
                Some((fa, sa, fb, sb)) => {
                    let ta = counts[link.a.index()][face_idx(*fa)];
                    let tb = counts[link.b.index()][face_idx(*fb)];
                    Endpoints::Routed(
                        unit_grid.port_cell(link.a, *fa, *sa, ta),
                        unit_grid.port_cell(link.b, *fb, *sb, tb),
                    )
                }
            })
            .collect();
        Self { cells }
    }

    fn endpoints(&self, id: LinkId) -> &Endpoints {
        &self.cells[id.index()]
    }
}

/// Reusable A* state over the unit-cell grid.
struct AStar<'a> {
    unit_grid: &'a UnitGrid,
    /// Best g-score per cell, valid when `gen == current`.
    g: Vec<u32>,
    /// Predecessor cell index, valid when `gen == current`.
    came: Vec<u32>,
    gen: Vec<u32>,
    current: u32,
}

const MOVE_COST: u32 = 10;

impl<'a> AStar<'a> {
    fn new(unit_grid: &'a UnitGrid) -> Self {
        let n = unit_grid.num_cells();
        Self {
            unit_grid,
            g: vec![0; n],
            came: vec![u32::MAX; n],
            gen: vec![0; n],
            current: 0,
        }
    }

    /// Shortest (collision-penalized) path from `from` to `to`, returned
    /// as the sequence of cells *after* `from`.
    ///
    /// # Panics
    ///
    /// Panics if no path exists — ports always sit in loaded (nonzero)
    /// channels, whose strips span the chip and intersect, so this
    /// indicates an internal inconsistency.
    fn search(
        &mut self,
        from: (usize, usize),
        to: (usize, usize),
        h_occ: &[u16],
        v_occ: &[u16],
        penalty: u32,
        capacity: u16,
    ) -> Vec<(usize, usize)> {
        if from == to {
            return Vec::new();
        }
        self.current += 1;
        let ug = self.unit_grid;
        let (w, h) = (ug.cells_x, ug.cells_y);
        let idx = |x: usize, y: usize| y * w + x;
        let heuristic = |x: usize, y: usize| -> u32 {
            (x.abs_diff(to.0) + y.abs_diff(to.1)) as u32 * MOVE_COST
        };
        let start = idx(from.0, from.1);
        self.g[start] = 0;
        self.gen[start] = self.current;
        self.came[start] = u32::MAX;
        let mut heap: BinaryHeap<Reverse<(u32, u32)>> = BinaryHeap::new();
        heap.push(Reverse((heuristic(from.0, from.1), start as u32)));
        while let Some(Reverse((f, node))) = heap.pop() {
            let node = node as usize;
            let (x, y) = (node % w, node / w);
            let g_here = self.g[node];
            if f > g_here + heuristic(x, y) {
                continue; // stale entry
            }
            if (x, y) == to {
                // Reconstruct.
                let mut path = Vec::new();
                let mut at = node;
                while at != start {
                    path.push((at % w, at / w));
                    at = self.came[at] as usize;
                }
                path.reverse();
                return path;
            }
            let mut try_move =
                |nx: usize,
                 ny: usize,
                 horizontal: bool,
                 heap: &mut BinaryHeap<Reverse<(u32, u32)>>| {
                    if ug.is_blocked(nx, ny) {
                        return;
                    }
                    let ni = idx(nx, ny);
                    let occ = if horizontal { h_occ[ni] } else { v_occ[ni] };
                    let over = (occ + 1).saturating_sub(capacity) as u32;
                    let step = MOVE_COST + penalty * over;
                    let ng = g_here + step;
                    if self.gen[ni] != self.current || ng < self.g[ni] {
                        self.gen[ni] = self.current;
                        self.g[ni] = ng;
                        self.came[ni] = node as u32;
                        heap.push(Reverse((ng + heuristic(nx, ny), ni as u32)));
                    }
                };
            if x + 1 < w {
                try_move(x + 1, y, true, &mut heap);
            }
            if x > 0 {
                try_move(x - 1, y, true, &mut heap);
            }
            if y + 1 < h {
                try_move(x, y + 1, false, &mut heap);
            }
            if y > 0 {
                try_move(x, y - 1, false, &mut heap);
            }
        }
        panic!("no route between cells {from:?} and {to:?}");
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::ArchParams;
    use crate::placement::TilePlacement;
    use crate::spacing::Spacings;
    use shg_topology::{generators, Grid, Topology};
    use shg_units::{
        AspectRatio, BitsPerCycle, GateEquivalents, Hertz, RouterAreaModel, Technology, Transport,
    };

    fn params(grid: Grid) -> ArchParams {
        ArchParams {
            grid,
            endpoint_area: GateEquivalents::mega(2.0),
            endpoints_per_tile: 1,
            aspect_ratio: AspectRatio::square(),
            frequency: Hertz::giga(1.2),
            bandwidth: BitsPerCycle::new(512),
            technology: Technology::example_22nm(),
            transport: Transport::axi_like(),
            router_model: RouterAreaModel::input_queued(8, 32),
        }
    }

    fn route_all(topology: &Topology, options: &ModelOptions) -> (DetailedRoutes, UnitGrid) {
        let p = params(topology.grid());
        let placement = TilePlacement::compute(&p, topology);
        let global = GlobalRouting::route(topology, options.port_placement);
        let spacings = Spacings::compute(&p, &global.loads);
        let ug = UnitGrid::build(&p, options, &placement, &spacings);
        (DetailedRoutes::route(topology, &ug, &global, options), ug)
    }

    #[test]
    fn mesh_routes_are_zero_length() {
        // A pure mesh has zero-width gaps: direct links cross for free.
        let mesh = generators::mesh(Grid::new(4, 4));
        let (routes, _) = route_all(&mesh, &ModelOptions::default());
        for route in &routes.routes {
            assert_eq!(route.h_moves + route.v_moves, 0);
        }
        assert_eq!(routes.collisions, 0);
    }

    #[test]
    fn skip_links_are_much_longer_than_mesh_links() {
        let grid = Grid::new(4, 4);
        let sr = [3].into_iter().collect();
        let sc = std::collections::BTreeSet::new();
        let shg = generators::row_column_skip(grid, &sr, &sc).expect("valid");
        let (routes, ug) = route_all(&shg, &ModelOptions::default());
        let tile_w = {
            let r = ug.tile_rect(shg_topology::TileId::new(0));
            (r.x1 - r.x0) as u32
        };
        for i in 0..shg.num_links() {
            let id = LinkId::new(i as u32);
            let total = routes.routes[i].h_moves + routes.routes[i].v_moves;
            if shg.link_length(id) == 3 {
                // Skip-3 links detour around two interior tiles.
                assert!(total >= 2 * tile_w, "skip link {i}: {total} cells");
            } else {
                assert!(total <= tile_w / 2, "mesh link {i}: {total} cells");
            }
        }
    }

    #[test]
    fn collision_aware_no_worse_than_congestion_blind() {
        let grid = Grid::new(8, 8);
        let sr = [2, 4].into_iter().collect();
        let sc = [2, 4].into_iter().collect();
        let shg = generators::row_column_skip(grid, &sr, &sc).expect("valid");
        let aware = route_all(&shg, &ModelOptions::default()).0;
        let blind = route_all(
            &shg,
            &ModelOptions {
                detailed_routing: RoutingMode::CongestionBlind,
                ..ModelOptions::default()
            },
        )
        .0;
        assert!(
            aware.collisions <= blind.collisions,
            "aware {} vs blind {}",
            aware.collisions,
            blind.collisions
        );
    }

    #[test]
    fn routes_are_deterministic() {
        let grid = Grid::new(4, 4);
        let torus = generators::torus(grid);
        let a = route_all(&torus, &ModelOptions::default()).0;
        let b = route_all(&torus, &ModelOptions::default()).0;
        assert_eq!(a, b);
    }

    #[test]
    fn torus_wrap_links_occupy_channels() {
        let torus = generators::torus(Grid::new(4, 4));
        let (routes, ug) = route_all(&torus, &ModelOptions::default());
        assert!(routes.h_occupied_cells > 0);
        assert!(routes.v_occupied_cells > 0);
        // Wrap links span roughly two interior tile widths.
        let tile = ug.tile_rect(shg_topology::TileId::new(0));
        let tile_w = (tile.x1 - tile.x0) as u32;
        let max_route = routes
            .routes
            .iter()
            .map(|r| r.h_moves + r.v_moves)
            .max()
            .expect("links exist");
        assert!(
            max_route >= 2 * tile_w,
            "longest wrap route {max_route} cells vs tile width {tile_w}"
        );
    }

    #[test]
    fn slimnoc_diagonals_route() {
        let slim = generators::slim_noc(Grid::new(10, 5)).expect("50 tiles");
        let (routes, _) = route_all(&slim, &ModelOptions::default());
        assert_eq!(routes.routes.len(), slim.num_links());
        // Diagonal links have both horizontal and vertical moves.
        let has_diag = routes.routes.iter().any(|r| r.h_moves > 0 && r.v_moves > 0);
        assert!(has_diag);
    }
}
