//! Model outputs: area overhead, power consumption and per-link latencies
//! (Section IV-B.2.b–d of the paper).

use serde::{Deserialize, Serialize};

use shg_topology::LinkId;
use shg_units::{Cycles, Mm, Mm2, Watts};

use crate::detailed_route::DetailedRoutes;
use crate::params::ArchParams;
use crate::placement::TilePlacement;
use crate::unitcell::UnitGrid;

/// The cost and link-latency estimates of the floorplan model.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct NocEstimates {
    /// Total chip area `A_tot = N_cell · A_C`.
    pub total_area: Mm2,
    /// Area of the chip without a NoC, `A_noNoC = f_GE→mm²(N_T · A_E)`.
    pub area_no_noc: Mm2,
    /// NoC area overhead `(A_tot − A_noNoC) / A_tot`, in `[0, 1)`.
    pub area_overhead: f64,
    /// Total chip power `P_tot`.
    pub total_power: Watts,
    /// Chip power without a NoC, `P_noNoC`.
    pub power_no_noc: Watts,
    /// NoC power `P_NoC = P_tot − P_noNoC`.
    pub noc_power: Watts,
    /// Physical wire length of every link.
    pub link_lengths: Vec<Mm>,
    /// Pipeline latency of every link in cycles (≥ 1).
    pub link_latencies: Vec<Cycles>,
    /// Detailed-routing collisions (over-capacity cell usages).
    pub collisions: u64,
}

impl NocEstimates {
    /// Assembles the final estimates from the five model steps.
    #[must_use]
    pub fn compute(params: &ArchParams, unit_grid: &UnitGrid, detailed: &DetailedRoutes) -> Self {
        let tech = &params.technology;
        let cell_area = unit_grid.cell_area();
        // Area (Section IV-B.2.b).
        let total_area = unit_grid.total_area();
        let area_no_noc = tech.ge_to_mm2(params.endpoint_area * params.grid.num_tiles() as f64);
        let area_overhead = (total_area.value() - area_no_noc.value()) / total_area.value();
        // Power (Section IV-B.2.c).
        let logic_area = cell_area * unit_grid.logic_cells() as f64;
        let wire_cells = detailed.h_occupied_cells + detailed.v_occupied_cells;
        let wire_area = cell_area * (wire_cells as f64 / 2.0);
        let total_power = tech.logic_power(logic_area) + tech.wire_power(wire_area);
        let power_no_noc = tech.logic_power(area_no_noc);
        let noc_power = Watts::new((total_power.value() - power_no_noc.value()).max(0.0));
        // Link latency (Section IV-B.2.d).
        let link_lengths: Vec<Mm> = detailed
            .routes
            .iter()
            .map(|route| {
                unit_grid.cell_width * route.h_moves as f64
                    + unit_grid.cell_height * route.v_moves as f64
            })
            .collect();
        let link_latencies = link_lengths
            .iter()
            .map(|&len| tech.wire_latency(len, params.frequency))
            .collect();
        Self {
            total_area,
            area_no_noc,
            area_overhead,
            total_power,
            power_no_noc,
            noc_power,
            link_lengths,
            link_latencies,
            collisions: detailed.collisions,
        }
    }

    /// Latency of a specific link.
    ///
    /// # Panics
    ///
    /// Panics if the link id is out of range.
    #[must_use]
    pub fn link_latency(&self, link: LinkId) -> Cycles {
        self.link_latencies[link.index()]
    }

    /// The longest link latency.
    #[must_use]
    pub fn max_link_latency(&self) -> Cycles {
        self.link_latencies
            .iter()
            .copied()
            .max()
            .unwrap_or(Cycles::one())
    }

    /// Mean link latency in cycles.
    #[must_use]
    pub fn mean_link_latency(&self) -> f64 {
        if self.link_latencies.is_empty() {
            return 0.0;
        }
        self.link_latencies
            .iter()
            .map(|c| c.value() as f64)
            .sum::<f64>()
            / self.link_latencies.len() as f64
    }

    /// Router area from step 1, re-exposed for reporting: callers keep the
    /// [`TilePlacement`]; this type stores only the chip-level outputs.
    #[must_use]
    pub fn router_share_of_tile(placement: &TilePlacement) -> f64 {
        placement.router_area.value() / placement.tile_area.value()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::detailed_route::DetailedRoutes;
    use crate::global_route::GlobalRouting;
    use crate::params::ModelOptions;
    use crate::spacing::Spacings;
    use shg_topology::{generators, Grid};
    use shg_units::{
        AspectRatio, BitsPerCycle, GateEquivalents, Hertz, RouterAreaModel, Technology, Transport,
    };

    fn params(grid: Grid) -> ArchParams {
        ArchParams {
            grid,
            endpoint_area: GateEquivalents::mega(35.0),
            endpoints_per_tile: 1,
            aspect_ratio: AspectRatio::square(),
            frequency: Hertz::giga(1.2),
            bandwidth: BitsPerCycle::new(512),
            technology: Technology::example_22nm(),
            transport: Transport::axi_like(),
            router_model: RouterAreaModel::input_queued(8, 32),
        }
    }

    fn estimate(topology: &shg_topology::Topology) -> NocEstimates {
        let p = params(topology.grid());
        let options = ModelOptions::default();
        let placement = TilePlacement::compute(&p, topology);
        let global = GlobalRouting::route(topology, options.port_placement);
        let spacings = Spacings::compute(&p, &global.loads);
        let ug = UnitGrid::build(&p, &options, &placement, &spacings);
        let detailed = DetailedRoutes::route(topology, &ug, &global, &options);
        let _ = &placement;
        NocEstimates::compute(&p, &ug, &detailed)
    }

    #[test]
    fn mesh_overhead_is_small() {
        let est = estimate(&generators::mesh(Grid::new(8, 8)));
        assert!(
            est.area_overhead > 0.0 && est.area_overhead < 0.15,
            "mesh overhead {}",
            est.area_overhead
        );
    }

    #[test]
    fn flattened_butterfly_costs_more_than_mesh() {
        let grid = Grid::new(8, 8);
        let mesh = estimate(&generators::mesh(grid));
        let fb = estimate(&generators::flattened_butterfly(grid));
        assert!(fb.area_overhead > mesh.area_overhead);
        assert!(fb.noc_power > mesh.noc_power);
    }

    #[test]
    fn all_link_latencies_at_least_one_cycle() {
        let est = estimate(&generators::torus(Grid::new(8, 8)));
        assert!(est.link_latencies.iter().all(|c| c.value() >= 1));
    }

    #[test]
    fn torus_wrap_links_are_slower_than_mesh_links() {
        let grid = Grid::new(8, 8);
        let torus = generators::torus(grid);
        let est = estimate(&torus);
        let mut wrap_latency = 0;
        let mut unit_latency = u64::MAX;
        for i in 0..torus.num_links() {
            let id = LinkId::new(i as u32);
            let lat = est.link_latencies[i].value();
            if torus.link_length(id) > 1 {
                wrap_latency = wrap_latency.max(lat);
            } else {
                unit_latency = unit_latency.min(lat);
            }
        }
        assert!(
            wrap_latency > unit_latency,
            "wrap {wrap_latency} vs unit {unit_latency}"
        );
    }

    #[test]
    fn power_decomposition_is_consistent() {
        let est = estimate(&generators::mesh(Grid::new(4, 4)));
        let sum = est.power_no_noc.value() + est.noc_power.value();
        assert!((sum - est.total_power.value()).abs() < 1e-9);
    }

    #[test]
    fn knc_chip_power_is_plausible() {
        // A KNC-like chip burned ~150–300 W; the logic power of the
        // no-NoC baseline should land in that range.
        let est = estimate(&generators::mesh(Grid::new(8, 8)));
        let p = est.power_no_noc.value();
        assert!(p > 100.0 && p < 400.0, "baseline power {p} W");
    }
}
