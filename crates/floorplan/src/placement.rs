//! Step 1 — tile area estimate and placement in the R×C grid (Fig. 5a).
//!
//! The tile area is `A_T = A_E + A_R`, where `A_R = f_AR(m, s, B)` is the
//! local router's area; the tile's height and width follow from the aspect
//! ratio. Because the chip is built from *identical* tiles (Section II-A),
//! the router is sized for the topology's maximum radix.

use serde::{Deserialize, Serialize};

use shg_topology::Topology;
use shg_units::{GateEquivalents, Mm, Mm2};

use crate::params::ArchParams;

/// The result of step 1: tile dimensions and derived areas.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TilePlacement {
    /// Router area per tile (`A_R`).
    pub router_area: GateEquivalents,
    /// Total tile area (`A_T = A_E + A_R`).
    pub tile_area: GateEquivalents,
    /// Tile height `H_T = sqrt(R_T · f_GE→mm²(A_T))`.
    pub tile_height: Mm,
    /// Tile width `W_T = sqrt(f_GE→mm²(A_T) / R_T)`.
    pub tile_width: Mm,
}

impl TilePlacement {
    /// Computes step 1 for a topology under the given parameters.
    ///
    /// # Examples
    ///
    /// ```
    /// # use shg_floorplan::{ArchParams, TilePlacement};
    /// # use shg_topology::{generators, Grid};
    /// # use shg_units::*;
    /// let params = ArchParams {
    ///     grid: Grid::new(8, 8),
    ///     endpoint_area: GateEquivalents::mega(35.0),
    ///     endpoints_per_tile: 1,
    ///     aspect_ratio: AspectRatio::square(),
    ///     frequency: Hertz::giga(1.2),
    ///     bandwidth: BitsPerCycle::new(512),
    ///     technology: Technology::example_22nm(),
    ///     transport: Transport::axi_like(),
    ///     router_model: RouterAreaModel::input_queued(8, 32),
    /// };
    /// let mesh = generators::mesh(params.grid);
    /// let placement = TilePlacement::compute(&params, &mesh);
    /// // Square aspect ratio: width == height.
    /// assert!((placement.tile_width.value() - placement.tile_height.value()).abs() < 1e-9);
    /// ```
    #[must_use]
    pub fn compute(params: &ArchParams, topology: &Topology) -> Self {
        let router_area = params.router_area(topology.max_degree());
        let tile_area = params.endpoint_area + router_area;
        let silicon: Mm2 = params.technology.ge_to_mm2(tile_area);
        let rt = params.aspect_ratio.value();
        let tile_height = Mm::new((rt * silicon.value()).sqrt());
        let tile_width = Mm::new((silicon.value() / rt).sqrt());
        Self {
            router_area,
            tile_area,
            tile_height,
            tile_width,
        }
    }

    /// Tile silicon area in mm².
    #[must_use]
    pub fn tile_silicon(&self) -> Mm2 {
        self.tile_height * self.tile_width
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use shg_topology::{generators, Grid};
    use shg_units::{AspectRatio, BitsPerCycle, Hertz, RouterAreaModel, Technology, Transport};

    fn params(aspect: f64) -> ArchParams {
        ArchParams {
            grid: Grid::new(8, 8),
            endpoint_area: GateEquivalents::mega(35.0),
            endpoints_per_tile: 1,
            aspect_ratio: AspectRatio::new(aspect),
            frequency: Hertz::giga(1.2),
            bandwidth: BitsPerCycle::new(512),
            technology: Technology::example_22nm(),
            transport: Transport::axi_like(),
            router_model: RouterAreaModel::input_queued(8, 32),
        }
    }

    #[test]
    fn aspect_ratio_shapes_tile() {
        let p = params(2.0);
        let mesh = generators::mesh(p.grid);
        let placement = TilePlacement::compute(&p, &mesh);
        let ratio = placement.tile_height.value() / placement.tile_width.value();
        assert!((ratio - 2.0).abs() < 1e-9);
    }

    #[test]
    fn area_is_preserved_by_shaping() {
        let square = TilePlacement::compute(&params(1.0), &generators::mesh(Grid::new(8, 8)));
        let tall = TilePlacement::compute(&params(2.0), &generators::mesh(Grid::new(8, 8)));
        assert!((square.tile_silicon().value() - tall.tile_silicon().value()).abs() < 1e-9);
    }

    #[test]
    fn higher_radix_topology_has_bigger_tiles() {
        let p = params(1.0);
        let mesh = TilePlacement::compute(&p, &generators::mesh(p.grid));
        let fb = TilePlacement::compute(&p, &generators::flattened_butterfly(p.grid));
        assert!(fb.tile_area > mesh.tile_area);
        assert!(fb.tile_width > mesh.tile_width);
    }

    #[test]
    fn knc_tile_is_about_three_mm() {
        // 35 MGE + router at 0.3 µm²/GE ≈ 10.8 mm² ⇒ ~3.3 mm on a side.
        let p = params(1.0);
        let placement = TilePlacement::compute(&p, &generators::mesh(p.grid));
        let w = placement.tile_width.value();
        assert!(w > 2.5 && w < 4.5, "tile width {w} mm");
    }
}
