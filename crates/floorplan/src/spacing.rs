//! Step 3 — estimation of spacing between rows and columns of tiles
//! (Fig. 5c).
//!
//! If at most `N_L` parallel horizontal links run between two rows of
//! tiles, the spacing between them is
//! `S = f^H_wires→mm(N_L · f_bw→wires(B))`, and symmetrically for columns
//! with `f^V_wires→mm`.

use serde::{Deserialize, Serialize};

use shg_units::Mm;

use crate::global_route::ChannelLoads;
use crate::params::ArchParams;

/// The computed channel spacings of a floorplan.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Spacings {
    /// `row_gaps[g]`: height of horizontal channel `g ∈ 0..=R`.
    pub row_gaps: Vec<Mm>,
    /// `col_gaps[g]`: width of vertical channel `g ∈ 0..=C`.
    pub col_gaps: Vec<Mm>,
}

impl Spacings {
    /// Computes all channel spacings from the global-routing loads.
    ///
    /// # Examples
    ///
    /// ```
    /// use shg_floorplan::{GlobalRouting, PortPlacement, Spacings};
    /// # use shg_floorplan::ArchParams;
    /// # use shg_topology::{generators, Grid};
    /// # use shg_units::*;
    /// # let params = ArchParams {
    /// #     grid: Grid::new(8, 8),
    /// #     endpoint_area: GateEquivalents::mega(35.0),
    /// #     endpoints_per_tile: 1,
    /// #     aspect_ratio: AspectRatio::square(),
    /// #     frequency: Hertz::giga(1.2),
    /// #     bandwidth: BitsPerCycle::new(512),
    /// #     technology: Technology::example_22nm(),
    /// #     transport: Transport::axi_like(),
    /// #     router_model: RouterAreaModel::input_queued(8, 32),
    /// # };
    /// let mesh = generators::mesh(params.grid);
    /// let routing = GlobalRouting::route(&mesh, PortPlacement::Optimized);
    /// let spacings = Spacings::compute(&params, &routing.loads);
    /// // A mesh loads no channels: all spacings are zero.
    /// assert_eq!(spacings.total_height().value(), 0.0);
    /// ```
    #[must_use]
    pub fn compute(params: &ArchParams, loads: &ChannelLoads) -> Self {
        let wires_per_link = params.wires_per_link();
        let row_gaps = (0..loads.horizontal.len())
            .map(|g| {
                let nl = loads.max_horizontal(g as u16);
                params
                    .technology
                    .h_wires_to_mm(wires_per_link * u64::from(nl))
            })
            .collect();
        let col_gaps = (0..loads.vertical.len())
            .map(|g| {
                let nl = loads.max_vertical(g as u16);
                params
                    .technology
                    .v_wires_to_mm(wires_per_link * u64::from(nl))
            })
            .collect();
        Self { row_gaps, col_gaps }
    }

    /// Sum of all horizontal-channel heights (added chip height).
    #[must_use]
    pub fn total_height(&self) -> Mm {
        self.row_gaps.iter().copied().sum()
    }

    /// Sum of all vertical-channel widths (added chip width).
    #[must_use]
    pub fn total_width(&self) -> Mm {
        self.col_gaps.iter().copied().sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::global_route::GlobalRouting;
    use crate::params::PortPlacement;
    use shg_topology::{generators, Grid};
    use shg_units::{
        AspectRatio, BitsPerCycle, GateEquivalents, Hertz, RouterAreaModel, Technology, Transport,
    };

    fn params(grid: Grid) -> ArchParams {
        ArchParams {
            grid,
            endpoint_area: GateEquivalents::mega(35.0),
            endpoints_per_tile: 1,
            aspect_ratio: AspectRatio::square(),
            frequency: Hertz::giga(1.2),
            bandwidth: BitsPerCycle::new(512),
            technology: Technology::example_22nm(),
            transport: Transport::axi_like(),
            router_model: RouterAreaModel::input_queued(8, 32),
        }
    }

    #[test]
    fn denser_topology_needs_wider_channels() {
        let grid = Grid::new(8, 8);
        let p = params(grid);
        let fb = generators::flattened_butterfly(grid);
        let torus = generators::torus(grid);
        let fb_spacing = Spacings::compute(
            &p,
            &GlobalRouting::route(&fb, PortPlacement::Optimized).loads,
        );
        let torus_spacing = Spacings::compute(
            &p,
            &GlobalRouting::route(&torus, PortPlacement::Optimized).loads,
        );
        assert!(fb_spacing.total_height() > torus_spacing.total_height());
        assert!(fb_spacing.total_width() > torus_spacing.total_width());
    }

    #[test]
    fn spacing_scales_with_bandwidth() {
        let grid = Grid::new(8, 8);
        let mut p = params(grid);
        let torus = generators::torus(grid);
        let loads = GlobalRouting::route(&torus, PortPlacement::Optimized).loads;
        let narrow = Spacings::compute(&p, &loads);
        p.bandwidth = BitsPerCycle::new(1024);
        let wide = Spacings::compute(&p, &loads);
        assert!(wide.total_height() > narrow.total_height());
    }

    #[test]
    fn spacing_is_per_gap() {
        // A single skip link loads exactly one channel.
        let grid = Grid::new(4, 4);
        let p = params(grid);
        let sr = [3].into_iter().collect();
        let sc = std::collections::BTreeSet::new();
        let t = generators::row_column_skip(grid, &sr, &sc).expect("valid");
        let routing = GlobalRouting::route(&t, PortPlacement::Optimized);
        let spacings = Spacings::compute(&p, &routing.loads);
        let nonzero = spacings.row_gaps.iter().filter(|s| s.value() > 0.0).count();
        assert!(nonzero >= 1);
        assert_eq!(
            spacings.col_gaps.iter().filter(|s| s.value() > 0.0).count(),
            0,
            "no column links ⇒ no vertical channel spacing"
        );
    }
}
