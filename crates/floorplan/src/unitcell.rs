//! Step 4 — discretization of the chip into same-sized unit cells
//! (Fig. 5d).
//!
//! A unit cell is sized to accommodate exactly one horizontal and one
//! vertical link: `H_C = f^H_wires→mm(f_bw→wires(B))` and
//! `W_C = f^V_wires→mm(f_bw→wires(B))`. The chip becomes a grid of cells
//! in which tiles are blocked rectangles and the inter-tile channels are
//! routable space.

use serde::{Deserialize, Serialize};

use shg_topology::{Grid, TileCoord, TileId};
use shg_units::{Mm, Mm2};

use crate::params::{ArchParams, ModelOptions};
use crate::placement::TilePlacement;
use crate::spacing::Spacings;

/// A rectangle of unit cells (`x0..x1` × `y0..y1`, half-open).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct CellRect {
    /// Leftmost cell column.
    pub x0: usize,
    /// Topmost cell row.
    pub y0: usize,
    /// One past the rightmost cell column.
    pub x1: usize,
    /// One past the bottommost cell row.
    pub y1: usize,
}

impl CellRect {
    /// Number of cells covered.
    #[must_use]
    pub fn cells(&self) -> usize {
        (self.x1 - self.x0) * (self.y1 - self.y0)
    }
}

/// The discretized chip: cell dimensions, strip layout, and blocked map.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct UnitGrid {
    /// Cell width `W_C`.
    pub cell_width: Mm,
    /// Cell height `H_C`.
    pub cell_height: Mm,
    /// Number of cell columns.
    pub cells_x: usize,
    /// Number of cell rows.
    pub cells_y: usize,
    grid: Grid,
    /// Starting cell column of each vertical gap `0..=C`.
    v_gap_x0: Vec<usize>,
    /// Cell width of each vertical gap.
    v_gap_w: Vec<usize>,
    /// Starting cell row of each horizontal gap `0..=R`.
    h_gap_y0: Vec<usize>,
    /// Cell height of each horizontal gap.
    h_gap_h: Vec<usize>,
    /// Starting cell column of each tile column.
    tile_x0: Vec<usize>,
    /// Starting cell row of each tile row.
    tile_y0: Vec<usize>,
    /// Tile block size in cells.
    tile_w: usize,
    tile_h: usize,
    /// Links each cell can carry per direction: 1 at `cell_scale = 1`,
    /// proportionally more for coarse cells.
    capacity: u16,
}

impl UnitGrid {
    /// Builds the cell grid from steps 1–3.
    ///
    /// Gaps that carry no links have zero width — their tiles abut, as on
    /// a real chip where a plain mesh needs no routing channels at all.
    #[must_use]
    pub fn build(
        params: &ArchParams,
        options: &ModelOptions,
        placement: &TilePlacement,
        spacings: &Spacings,
    ) -> Self {
        let wires = params.wires_per_link();
        let cell_height = params.technology.h_wires_to_mm(wires) * options.cell_scale;
        let cell_width = params.technology.v_wires_to_mm(wires) * options.cell_scale;
        let grid = params.grid;
        let to_cells_w = |mm: Mm| -> usize { (mm.value() / cell_width.value()).ceil() as usize };
        let to_cells_h = |mm: Mm| -> usize { (mm.value() / cell_height.value()).ceil() as usize };
        let tile_w = to_cells_w(placement.tile_width).max(1);
        let tile_h = to_cells_h(placement.tile_height).max(1);
        let v_gap_w: Vec<usize> = spacings.col_gaps.iter().map(|&s| to_cells_w(s)).collect();
        let h_gap_h: Vec<usize> = spacings.row_gaps.iter().map(|&s| to_cells_h(s)).collect();
        let mut v_gap_x0 = Vec::with_capacity(v_gap_w.len());
        let mut tile_x0 = Vec::with_capacity(grid.cols() as usize);
        let mut x = 0usize;
        for &gap in v_gap_w.iter().take(grid.cols() as usize) {
            v_gap_x0.push(x);
            x += gap;
            tile_x0.push(x);
            x += tile_w;
        }
        v_gap_x0.push(x);
        x += v_gap_w[grid.cols() as usize];
        let cells_x = x;
        let mut h_gap_y0 = Vec::with_capacity(h_gap_h.len());
        let mut tile_y0 = Vec::with_capacity(grid.rows() as usize);
        let mut y = 0usize;
        for &gap in h_gap_h.iter().take(grid.rows() as usize) {
            h_gap_y0.push(y);
            y += gap;
            tile_y0.push(y);
            y += tile_h;
        }
        h_gap_y0.push(y);
        y += h_gap_h[grid.rows() as usize];
        let cells_y = y;
        Self {
            cell_width,
            cell_height,
            cells_x,
            cells_y,
            grid,
            v_gap_x0,
            v_gap_w,
            h_gap_y0,
            h_gap_h,
            tile_x0,
            tile_y0,
            tile_w,
            tile_h,
            capacity: options.cell_scale.round().max(1.0) as u16,
        }
    }

    /// Links each cell can carry per direction without a collision.
    #[must_use]
    pub fn capacity(&self) -> u16 {
        self.capacity
    }

    /// Total number of unit cells (`N_cell`).
    #[must_use]
    pub fn num_cells(&self) -> usize {
        self.cells_x * self.cells_y
    }

    /// Area of one unit cell (`A_C = H_C · W_C`).
    #[must_use]
    pub fn cell_area(&self) -> Mm2 {
        self.cell_width * self.cell_height
    }

    /// Total chip area (`A_tot = N_cell · A_C`).
    #[must_use]
    pub fn total_area(&self) -> Mm2 {
        self.cell_area() * self.num_cells() as f64
    }

    /// Chip width in mm.
    #[must_use]
    pub fn chip_width(&self) -> Mm {
        self.cell_width * self.cells_x as f64
    }

    /// Chip height in mm.
    #[must_use]
    pub fn chip_height(&self) -> Mm {
        self.cell_height * self.cells_y as f64
    }

    /// The blocked rectangle of a tile.
    ///
    /// # Panics
    ///
    /// Panics if the tile id is out of range.
    #[must_use]
    pub fn tile_rect(&self, tile: TileId) -> CellRect {
        let coord = self.grid.coord(tile);
        let x0 = self.tile_x0[coord.col as usize];
        let y0 = self.tile_y0[coord.row as usize];
        CellRect {
            x0,
            y0,
            x1: x0 + self.tile_w,
            y1: y0 + self.tile_h,
        }
    }

    /// Number of cells covered by tiles (`N^L_cell`, the logic cells).
    #[must_use]
    pub fn logic_cells(&self) -> usize {
        self.grid.num_tiles() * self.tile_w * self.tile_h
    }

    /// `true` if the cell at `(x, y)` lies inside a tile block.
    #[must_use]
    pub fn is_blocked(&self, x: usize, y: usize) -> bool {
        let in_tile_strip = |starts: &[usize], size: usize, v: usize| -> bool {
            // Strips are sorted; find the strip containing v.
            match starts.binary_search(&v) {
                Ok(_) => true,
                Err(0) => false,
                Err(i) => v < starts[i - 1] + size,
            }
        };
        in_tile_strip(&self.tile_x0, self.tile_w, x) && in_tile_strip(&self.tile_y0, self.tile_h, y)
    }

    /// Cell index for `(x, y)` into flat occupancy arrays.
    #[must_use]
    pub fn index(&self, x: usize, y: usize) -> usize {
        y * self.cells_x + x
    }

    /// Width in cells of vertical gap `g ∈ 0..=C`.
    #[must_use]
    pub fn v_gap_width(&self, gap: u16) -> usize {
        self.v_gap_w[gap as usize]
    }

    /// Height in cells of horizontal gap `g ∈ 0..=R`.
    #[must_use]
    pub fn h_gap_height(&self, gap: u16) -> usize {
        self.h_gap_h[gap as usize]
    }

    /// First cell column of vertical gap `g`.
    #[must_use]
    pub fn v_gap_start(&self, gap: u16) -> usize {
        self.v_gap_x0[gap as usize]
    }

    /// First cell row of horizontal gap `g`.
    #[must_use]
    pub fn h_gap_start(&self, gap: u16) -> usize {
        self.h_gap_y0[gap as usize]
    }

    /// The port cell of `tile` on `face`, at `slot` of `slots` evenly
    /// spread along the face. The cell lies in the adjacent gap, touching
    /// the tile.
    ///
    /// # Panics
    ///
    /// Panics if `slot ≥ slots`, if `slots == 0`, or if the adjacent gap
    /// has zero width (only faces toward loaded channels have ports).
    #[must_use]
    pub fn port_cell(&self, tile: TileId, face: Face, slot: usize, slots: usize) -> (usize, usize) {
        assert!(slot < slots && slots > 0, "slot {slot} of {slots}");
        let coord = self.grid.coord(tile);
        let gap_size = match face {
            Face::North => self.h_gap_h[coord.row as usize],
            Face::South => self.h_gap_h[coord.row as usize + 1],
            Face::West => self.v_gap_w[coord.col as usize],
            Face::East => self.v_gap_w[coord.col as usize + 1],
        };
        assert!(
            gap_size > 0,
            "tile {tile} face {face:?}: adjacent gap has zero width"
        );
        let rect = self.tile_rect(tile);
        let spread =
            |lo: usize, size: usize| -> usize { lo + (size * (slot + 1)) / (slots + 1).max(1) };
        match face {
            Face::North => {
                let gap = coord.row as usize;
                let y = self.h_gap_y0[gap] + self.h_gap_h[gap] - 1;
                (spread(rect.x0, self.tile_w).min(rect.x1 - 1), y)
            }
            Face::South => {
                let gap = coord.row as usize + 1;
                let y = self.h_gap_y0[gap];
                (spread(rect.x0, self.tile_w).min(rect.x1 - 1), y)
            }
            Face::West => {
                let gap = coord.col as usize;
                let x = self.v_gap_x0[gap] + self.v_gap_w[gap] - 1;
                (x, spread(rect.y0, self.tile_h).min(rect.y1 - 1))
            }
            Face::East => {
                let gap = coord.col as usize + 1;
                let x = self.v_gap_x0[gap];
                (x, spread(rect.y0, self.tile_h).min(rect.y1 - 1))
            }
        }
    }

    /// The face of `from` that points toward `to` (dominant axis;
    /// horizontal wins ties so aligned row links use east/west).
    #[must_use]
    pub fn facing(&self, from: TileCoord, to: TileCoord) -> Face {
        let dr = to.row as i32 - from.row as i32;
        let dc = to.col as i32 - from.col as i32;
        if dc.abs() >= dr.abs() {
            if dc >= 0 {
                Face::East
            } else {
                Face::West
            }
        } else if dr > 0 {
            Face::South
        } else {
            Face::North
        }
    }
}

/// A face of a tile.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Face {
    /// Toward row 0.
    North,
    /// Toward row R−1.
    South,
    /// Toward column C−1.
    East,
    /// Toward column 0.
    West,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::global_route::GlobalRouting;
    use crate::params::PortPlacement;
    use shg_topology::{generators, Grid};
    use shg_units::{
        AspectRatio, BitsPerCycle, GateEquivalents, Hertz, RouterAreaModel, Technology, Transport,
    };

    fn setup(grid: Grid) -> (ArchParams, ModelOptions) {
        (
            ArchParams {
                grid,
                endpoint_area: GateEquivalents::mega(35.0),
                endpoints_per_tile: 1,
                aspect_ratio: AspectRatio::square(),
                frequency: Hertz::giga(1.2),
                bandwidth: BitsPerCycle::new(512),
                technology: Technology::example_22nm(),
                transport: Transport::axi_like(),
                router_model: RouterAreaModel::input_queued(8, 32),
            },
            ModelOptions::default(),
        )
    }

    /// A grid whose channels all have a fixed nonzero spacing.
    fn build_with_channels(grid: Grid) -> UnitGrid {
        let (params, options) = setup(grid);
        let mesh = generators::mesh(grid);
        let placement = TilePlacement::compute(&params, &mesh);
        let spacings = Spacings {
            row_gaps: vec![Mm::new(0.2); grid.rows() as usize + 1],
            col_gaps: vec![Mm::new(0.2); grid.cols() as usize + 1],
        };
        UnitGrid::build(&params, &options, &placement, &spacings)
    }

    /// A mesh grid: no channel loads, so all gaps are zero-width.
    fn build_mesh(grid: Grid) -> UnitGrid {
        let (params, options) = setup(grid);
        let mesh = generators::mesh(grid);
        let placement = TilePlacement::compute(&params, &mesh);
        let routing = GlobalRouting::route(&mesh, PortPlacement::Optimized);
        let spacings = Spacings::compute(&params, &routing.loads);
        UnitGrid::build(&params, &options, &placement, &spacings)
    }

    #[test]
    fn strips_tile_the_chip_exactly() {
        let ug = build_with_channels(Grid::new(4, 4));
        let tile = ug.tile_rect(TileId::new(0));
        let expected_x: usize = ug.v_gap_w.iter().sum::<usize>() + 4 * (tile.x1 - tile.x0);
        assert_eq!(ug.cells_x, expected_x);
    }

    #[test]
    fn mesh_gaps_are_zero_width() {
        let ug = build_mesh(Grid::new(4, 4));
        for g in 0..=4 {
            assert_eq!(ug.v_gap_width(g), 0);
            assert_eq!(ug.h_gap_height(g), 0);
        }
        // The chip is then exactly the tiles.
        assert_eq!(ug.num_cells(), ug.logic_cells());
    }

    #[test]
    fn logic_cells_match_tile_rects() {
        let ug = build_with_channels(Grid::new(4, 4));
        let total: usize = (0..16).map(|i| ug.tile_rect(TileId::new(i)).cells()).sum();
        assert_eq!(ug.logic_cells(), total);
    }

    #[test]
    fn blocked_inside_tiles_free_in_gaps() {
        let ug = build_with_channels(Grid::new(4, 4));
        let rect = ug.tile_rect(TileId::new(5));
        assert!(ug.is_blocked(rect.x0, rect.y0));
        assert!(ug.is_blocked(rect.x1 - 1, rect.y1 - 1));
        // Cell just left of the tile is in a gap.
        assert!(!ug.is_blocked(rect.x0 - 1, rect.y0));
        // Origin is the chip-corner gap.
        assert!(!ug.is_blocked(0, 0));
    }

    #[test]
    fn port_cells_are_unblocked_and_adjacent() {
        let ug = build_with_channels(Grid::new(4, 4));
        for tile in (0..16).map(TileId::new) {
            let rect = ug.tile_rect(tile);
            for face in [Face::North, Face::South, Face::East, Face::West] {
                let (x, y) = ug.port_cell(tile, face, 0, 2);
                assert!(!ug.is_blocked(x, y), "{tile:?} {face:?} port blocked");
                // The port touches the tile rectangle.
                let touches = match face {
                    Face::North => y + 1 == rect.y0,
                    Face::South => y == rect.y1,
                    Face::West => x + 1 == rect.x0,
                    Face::East => x == rect.x1,
                };
                assert!(touches, "{tile:?} {face:?} port at ({x},{y}) not adjacent");
            }
        }
    }

    #[test]
    #[should_panic(expected = "zero width")]
    fn port_on_zero_width_gap_panics() {
        let ug = build_mesh(Grid::new(4, 4));
        let _ = ug.port_cell(TileId::new(5), Face::North, 0, 1);
    }

    #[test]
    fn facing_prefers_dominant_axis() {
        let ug = build_with_channels(Grid::new(4, 4));
        let a = TileCoord::new(0, 0);
        assert_eq!(ug.facing(a, TileCoord::new(0, 3)), Face::East);
        assert_eq!(ug.facing(a, TileCoord::new(3, 0)), Face::South);
        assert_eq!(ug.facing(TileCoord::new(3, 3), a), Face::West);
        assert_eq!(ug.facing(TileCoord::new(3, 0), a), Face::North);
    }

    #[test]
    fn chip_area_is_consistent() {
        let ug = build_with_channels(Grid::new(8, 8));
        let area = ug.total_area().value();
        let wh = ug.chip_width().value() * ug.chip_height().value();
        assert!((area - wh).abs() < 1e-6);
        // A 64-tile KNC-like chip should be in the several-hundred-mm² range.
        assert!(area > 300.0 && area < 2000.0, "chip area {area} mm²");
    }

    #[test]
    fn cell_scale_coarsens_grid() {
        let grid = Grid::new(4, 4);
        let (params, mut options) = setup(grid);
        let mesh = generators::mesh(grid);
        let placement = TilePlacement::compute(&params, &mesh);
        let spacings = Spacings {
            row_gaps: vec![Mm::new(0.2); 5],
            col_gaps: vec![Mm::new(0.2); 5],
        };
        let fine = UnitGrid::build(&params, &options, &placement, &spacings);
        options.cell_scale = 2.0;
        let coarse = UnitGrid::build(&params, &options, &placement, &spacings);
        assert!(coarse.num_cells() < fine.num_cells());
    }
}
