//! Step 2 — global routing in the grid of tiles (Fig. 5b).
//!
//! Links cannot be routed over tiles (tiles occupy all metal layers,
//! Section II-A), so every link is assigned to the channels between rows
//! and columns of tiles. Wire routing is NP-complete; like real VLSI flows
//! the model uses a greedy heuristic: links are routed longest-first, each
//! choosing the candidate channel assignment that adds the least
//! congestion.
//!
//! Channel conventions:
//!
//! * *Horizontal channel* `g ∈ 0..=R` runs above grid row `g` (channel `R`
//!   is below the last row). Horizontal wires in it consume vertical space,
//!   so its height is set by `f^H_wires→mm` in step 3.
//! * *Vertical channel* `g ∈ 0..=C` runs left of grid column `g`.
//!
//! A link between grid-adjacent tiles crosses the single gap between them
//! directly and loads no channel. A skip link along a row must detour
//! around the tiles in between: it runs in a horizontal channel above or
//! below its row, loading the channel at every tile-column position it
//! passes over. Diagonal links (SlimNoC) take an L through one horizontal
//! and one vertical channel.

use serde::{Deserialize, Serialize};

use shg_topology::{LinkId, Topology};

use crate::params::PortPlacement;

/// One straight run of a link inside a channel.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Segment {
    /// Direct hop across the gap between two grid-adjacent tiles.
    Direct,
    /// Run in horizontal channel `gap`, passing over tile columns
    /// `c_start..=c_end`.
    Horizontal {
        /// Channel index `0..=R`.
        gap: u16,
        /// First tile column passed over.
        c_start: u16,
        /// Last tile column passed over.
        c_end: u16,
    },
    /// Run in vertical channel `gap`, passing over tile rows
    /// `r_start..=r_end`.
    Vertical {
        /// Channel index `0..=C`.
        gap: u16,
        /// First tile row passed over.
        r_start: u16,
        /// Last tile row passed over.
        r_end: u16,
    },
}

/// Per-channel, per-position parallel link counts.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ChannelLoads {
    /// `horizontal[g][c]`: links running in horizontal channel `g` over
    /// tile column `c`.
    pub horizontal: Vec<Vec<u32>>,
    /// `vertical[g][r]`: links running in vertical channel `g` over tile
    /// row `r`.
    pub vertical: Vec<Vec<u32>>,
}

impl ChannelLoads {
    fn new(rows: u16, cols: u16) -> Self {
        Self {
            horizontal: vec![vec![0; cols as usize]; rows as usize + 1],
            vertical: vec![vec![0; rows as usize]; cols as usize + 1],
        }
    }

    /// Maximum parallel links in horizontal channel `g` (the `N_L` of the
    /// step-3 spacing formula).
    #[must_use]
    pub fn max_horizontal(&self, gap: u16) -> u32 {
        self.horizontal[gap as usize]
            .iter()
            .copied()
            .max()
            .unwrap_or(0)
    }

    /// Maximum parallel links in vertical channel `g`.
    #[must_use]
    pub fn max_vertical(&self, gap: u16) -> u32 {
        self.vertical[gap as usize]
            .iter()
            .copied()
            .max()
            .unwrap_or(0)
    }

    fn apply(&mut self, segment: Segment, delta: u32) {
        match segment {
            Segment::Direct => {}
            Segment::Horizontal {
                gap,
                c_start,
                c_end,
            } => {
                for c in c_start..=c_end {
                    self.horizontal[gap as usize][c as usize] += delta;
                }
            }
            Segment::Vertical {
                gap,
                r_start,
                r_end,
            } => {
                for r in r_start..=r_end {
                    self.vertical[gap as usize][r as usize] += delta;
                }
            }
        }
    }

    fn cost(&self, segments: &[Segment]) -> u64 {
        let mut cost = 0u64;
        for segment in segments {
            match *segment {
                Segment::Direct => {}
                Segment::Horizontal {
                    gap,
                    c_start,
                    c_end,
                } => {
                    for c in c_start..=c_end {
                        // Quadratic-ish congestion cost: prefer spreading.
                        cost += 1 + self.horizontal[gap as usize][c as usize] as u64;
                    }
                }
                Segment::Vertical {
                    gap,
                    r_start,
                    r_end,
                } => {
                    for r in r_start..=r_end {
                        cost += 1 + self.vertical[gap as usize][r as usize] as u64;
                    }
                }
            }
        }
        cost
    }
}

/// The global routing of every link plus the resulting channel loads.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GlobalRouting {
    /// `plans[link] = ` channel segments of that link.
    pub plans: Vec<Vec<Segment>>,
    /// Channel congestion after routing all links.
    pub loads: ChannelLoads,
}

impl GlobalRouting {
    /// Greedily routes all links of `topology`.
    ///
    /// # Examples
    ///
    /// ```
    /// use shg_floorplan::{GlobalRouting, PortPlacement};
    /// use shg_topology::{generators, Grid};
    ///
    /// let mesh = generators::mesh(Grid::new(4, 4));
    /// let routing = GlobalRouting::route(&mesh, PortPlacement::Optimized);
    /// // Mesh links are all direct: no channel is loaded.
    /// assert_eq!(routing.loads.max_horizontal(1), 0);
    /// ```
    #[must_use]
    pub fn route(topology: &Topology, placement: PortPlacement) -> Self {
        let grid = topology.grid();
        let mut loads = ChannelLoads::new(grid.rows(), grid.cols());
        let mut plans: Vec<Vec<Segment>> = vec![Vec::new(); topology.num_links()];
        // Longest links first: they have the fewest routing choices.
        let mut order: Vec<LinkId> = (0..topology.num_links() as u32).map(LinkId::new).collect();
        order.sort_by_key(|&id| std::cmp::Reverse(topology.link_length(id)));
        for id in order {
            let candidates = candidate_plans(topology, id, placement);
            let best = candidates
                .into_iter()
                .min_by_key(|plan| loads.cost(plan))
                .expect("at least one candidate plan");
            for &segment in &best {
                loads.apply(segment, 1);
            }
            plans[id.index()] = best;
        }
        Self { plans, loads }
    }

    /// Estimated wire length of a link's plan in *tile pitches*: channel
    /// runs count the tile columns/rows they pass over, direct hops count
    /// as one gap crossing. The detailed router (step 5) refines this.
    #[must_use]
    pub fn plan_span(&self, link: LinkId) -> u32 {
        self.plans[link.index()]
            .iter()
            .map(|segment| match *segment {
                Segment::Direct => 1,
                Segment::Horizontal { c_start, c_end, .. } => u32::from(c_end - c_start) + 1,
                Segment::Vertical { r_start, r_end, .. } => u32::from(r_end - r_start) + 1,
            })
            .sum()
    }
}

/// Enumerates the candidate channel assignments for one link.
fn candidate_plans(topology: &Topology, id: LinkId, placement: PortPlacement) -> Vec<Vec<Segment>> {
    let grid = topology.grid();
    let link = topology.link(id);
    let (a, b) = (grid.coord(link.a), grid.coord(link.b));
    match placement {
        PortPlacement::Optimized => {
            if a.manhattan(b) == 1 {
                return vec![vec![Segment::Direct]];
            }
            if a.row == b.row {
                // Row skip link: above (gap = row) or below (gap = row+1),
                // passing over the strictly-interior tile columns.
                let (c1, c2) = (a.col.min(b.col), a.col.max(b.col));
                return vec![
                    vec![Segment::Horizontal {
                        gap: a.row,
                        c_start: c1 + 1,
                        c_end: c2 - 1,
                    }],
                    vec![Segment::Horizontal {
                        gap: a.row + 1,
                        c_start: c1 + 1,
                        c_end: c2 - 1,
                    }],
                ];
            }
            if a.col == b.col {
                let (r1, r2) = (a.row.min(b.row), a.row.max(b.row));
                return vec![
                    vec![Segment::Vertical {
                        gap: a.col,
                        r_start: r1 + 1,
                        r_end: r2 - 1,
                    }],
                    vec![Segment::Vertical {
                        gap: a.col + 1,
                        r_start: r1 + 1,
                        r_end: r2 - 1,
                    }],
                ];
            }
            // Diagonal link: L-shapes. Horizontal-first from a's row to b's
            // column, then vertical to b's row — and the transposed order.
            let mut plans = Vec::with_capacity(8);
            let (c1, c2) = (a.col.min(b.col), a.col.max(b.col));
            let (r1, r2) = (a.row.min(b.row), a.row.max(b.row));
            for h_gap in [a.row, a.row + 1] {
                for v_gap in [b.col, b.col + 1] {
                    plans.push(vec![
                        Segment::Horizontal {
                            gap: h_gap,
                            c_start: c1,
                            c_end: c2,
                        },
                        Segment::Vertical {
                            gap: v_gap,
                            r_start: r1,
                            r_end: r2,
                        },
                    ]);
                }
            }
            for v_gap in [a.col, a.col + 1] {
                for h_gap in [b.row, b.row + 1] {
                    plans.push(vec![
                        Segment::Vertical {
                            gap: v_gap,
                            r_start: r1,
                            r_end: r2,
                        },
                        Segment::Horizontal {
                            gap: h_gap,
                            c_start: c1,
                            c_end: c2,
                        },
                    ]);
                }
            }
            plans
        }
        PortPlacement::NorthOnly => {
            // Every wire leaves through the north face: route via the
            // channel above the source row, then (if needed) the left
            // vertical channel, then the channel above the target row.
            let (c1, c2) = (a.col.min(b.col), a.col.max(b.col));
            let (r1, r2) = (a.row.min(b.row), a.row.max(b.row));
            let mut plan = Vec::new();
            plan.push(Segment::Horizontal {
                gap: r1,
                c_start: c1,
                c_end: c2,
            });
            if r1 != r2 {
                plan.push(Segment::Vertical {
                    gap: c2,
                    r_start: r1,
                    r_end: r2 - 1,
                });
                plan.push(Segment::Horizontal {
                    gap: r2,
                    c_start: c2,
                    c_end: c2,
                });
            }
            vec![plan]
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use shg_topology::{generators, Grid};

    #[test]
    fn mesh_routes_entirely_direct() {
        let mesh = generators::mesh(Grid::new(4, 4));
        let routing = GlobalRouting::route(&mesh, PortPlacement::Optimized);
        for plan in &routing.plans {
            assert_eq!(plan, &vec![Segment::Direct]);
        }
        for g in 0..=4 {
            assert_eq!(routing.loads.max_horizontal(g), 0);
            assert_eq!(routing.loads.max_vertical(g), 0);
        }
    }

    #[test]
    fn skip_links_balance_above_below() {
        // 1×8 row with skip distance 4: the spans overlap, so the greedy
        // router should spread them across the two horizontal channels
        // (above and below the row).
        let grid = Grid::new(1, 8);
        let sr = [4].into_iter().collect();
        let sc = std::collections::BTreeSet::new();
        let t = generators::row_column_skip(grid, &sr, &sc).expect("valid");
        let routing = GlobalRouting::route(&t, PortPlacement::Optimized);
        let above = routing.loads.max_horizontal(0);
        let below = routing.loads.max_horizontal(1);
        assert!(above > 0 && below > 0, "greedy should use both channels");
        assert!((above as i64 - below as i64).abs() <= 1);
    }

    #[test]
    fn torus_wrap_links_load_channels() {
        let torus = generators::torus(Grid::new(4, 4));
        let routing = GlobalRouting::route(&torus, PortPlacement::Optimized);
        let total_h: u32 = (0..=4).map(|g| routing.loads.max_horizontal(g)).sum();
        let total_v: u32 = (0..=4).map(|g| routing.loads.max_vertical(g)).sum();
        assert!(total_h > 0 && total_v > 0);
    }

    #[test]
    fn north_only_is_more_congested() {
        let grid = Grid::new(8, 8);
        let sr = [4].into_iter().collect();
        let sc = [2, 5].into_iter().collect();
        let shg = generators::row_column_skip(grid, &sr, &sc).expect("valid");
        let optimized = GlobalRouting::route(&shg, PortPlacement::Optimized);
        let north = GlobalRouting::route(&shg, PortPlacement::NorthOnly);
        let max_load = |r: &GlobalRouting| -> u32 {
            let h = (0..=8).map(|g| r.loads.max_horizontal(g)).max().unwrap();
            let v = (0..=8).map(|g| r.loads.max_vertical(g)).max().unwrap();
            h.max(v)
        };
        assert!(
            max_load(&north) > max_load(&optimized),
            "north-only {} vs optimized {}",
            max_load(&north),
            max_load(&optimized)
        );
    }

    #[test]
    fn diagonal_links_get_l_routes() {
        let slim = generators::slim_noc(Grid::new(16, 8)).expect("128 tiles");
        let routing = GlobalRouting::route(&slim, PortPlacement::Optimized);
        let has_l = routing.plans.iter().any(|plan| plan.len() == 2);
        assert!(has_l, "SlimNoC cross links should take L-shaped routes");
    }

    #[test]
    fn plan_span_reflects_link_length() {
        let grid = Grid::new(1, 8);
        let sr = [4].into_iter().collect();
        let sc = std::collections::BTreeSet::new();
        let t = generators::row_column_skip(grid, &sr, &sc).expect("valid");
        let routing = GlobalRouting::route(&t, PortPlacement::Optimized);
        for (i, _) in t.links().iter().enumerate() {
            let id = shg_topology::LinkId::new(i as u32);
            if t.link_length(id) == 4 {
                // Skip-4 link passes over 3 interior tiles.
                assert_eq!(routing.plan_span(id), 3);
            }
        }
    }
}
