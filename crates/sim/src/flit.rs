//! Flits — the flow-control units transported by the network.

use shg_topology::TileId;

/// A flow-control unit. Packets are sequences of flits; the head flit
/// carries the routing information (source, destination, hop index) and
/// body/tail flits follow the head's virtual-channel reservation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Flit {
    /// Packet this flit belongs to.
    pub packet: u64,
    /// Source tile.
    pub src: TileId,
    /// Destination tile.
    pub dst: TileId,
    /// `true` for the first flit of a packet.
    pub is_head: bool,
    /// `true` for the last flit of a packet (single-flit packets are both).
    pub is_tail: bool,
    /// Cycle the packet was created (including source-queue time).
    pub created: u64,
    /// Index of the *next* hop in the packet's routed path (0 before the
    /// first network hop).
    pub hop: u8,
    /// Virtual channel the flit occupies on its current link/buffer.
    pub vc: u8,
}

impl Flit {
    /// Builds the flits of one packet.
    ///
    /// # Examples
    ///
    /// ```
    /// use shg_sim::Flit;
    /// use shg_topology::TileId;
    ///
    /// let flits = Flit::packet(7, TileId::new(0), TileId::new(5), 4, 100);
    /// assert_eq!(flits.len(), 4);
    /// assert!(flits[0].is_head && !flits[0].is_tail);
    /// assert!(flits[3].is_tail && !flits[3].is_head);
    /// ```
    #[must_use]
    pub fn packet(id: u64, src: TileId, dst: TileId, len: u16, created: u64) -> Vec<Flit> {
        assert!(len > 0, "a packet needs at least one flit");
        (0..len)
            .map(|i| Flit {
                packet: id,
                src,
                dst,
                is_head: i == 0,
                is_tail: i + 1 == len,
                created,
                hop: 0,
                vc: 0,
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_flit_packet_is_head_and_tail() {
        let flits = Flit::packet(1, TileId::new(0), TileId::new(1), 1, 0);
        assert_eq!(flits.len(), 1);
        assert!(flits[0].is_head && flits[0].is_tail);
    }

    #[test]
    #[should_panic(expected = "at least one flit")]
    fn empty_packet_panics() {
        let _ = Flit::packet(1, TileId::new(0), TileId::new(1), 0, 0);
    }
}
