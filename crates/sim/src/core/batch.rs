//! The lockstep lane engine: K independent cells of one topology
//! stepped cycle-by-cycle through one struct-of-arrays core.
//!
//! Each *lane* is a complete, independent simulation — its own RNG
//! streams (the per-tile [`Injector`] reused verbatim), its own packet
//! counter, its own link-pipeline contents, its own
//! [`OutcomeRecorder`] — sharing nothing with its siblings except the
//! immutable [`CoreLayout`] and the *schedules*: one union
//! [`ActiveSet`] of routers and one of channels covers all lanes, and
//! the per-cycle sweeps walk `(member, lane)` pairs with the lane loop
//! innermost, where the lane-major state layout makes it unit-stride.
//!
//! # Why the union schedule preserves bit-identity
//!
//! For a single run the reference visits router `r` in phase C of
//! cycle `t` iff `r` is in its active set, and (because link latencies
//! give every forward at least one cycle in flight) membership at that
//! moment is equivalent to `occupied > 0`. The union set is a superset
//! of every lane's reference set, visited in the same ascending order;
//! each `(r, lane)` visit is gated on that lane's own occupancy, so
//! extra members are exact no-ops and the per-lane visit sequence —
//! and with it every arbitration decision and statistic — is the
//! reference's. Channels need no explicit gate: delivering from an
//! empty pipe is already a no-op.
//!
//! Lanes complete independently: a lane that drains (or hits its drain
//! limit — a saturated lane) finalizes its outcome, has exactly the
//! routers and channels it touched wiped back to constructed state
//! (per-lane touched sets, the analogue of `Network::reset`'s
//! O(touched) cleanup), and is refilled with the batch's next pending
//! cell while its siblings continue undisturbed.

use shg_topology::{
    routing::{Routes, NO_COMPONENT, NO_ROUTE},
    TileId, Topology,
};
use shg_units::Cycles;

use crate::config::SimConfig;
use crate::fault::{FaultEpoch, FaultSchedule, InFlightPolicy};
use crate::flit::Flit;
use crate::injection::Injector;
use crate::network::ActiveSet;
use crate::stats::{OutcomeRecorder, SimOutcome};
use crate::traffic::TrafficPattern;

use super::layout::{CoreLayout, NO_CHANNEL};
use super::state::{pack_owner, CoreState, NO_OWNER};

/// Buffers a flit into input VC `(r, p, v)` of `lane` — the core's
/// transcription of `Router::enqueue`: bump occupancy and, when the VC
/// transitions empty→nonempty, raise a VC-allocation request (or a
/// switch request if the VC already holds an output grant).
#[inline]
fn enqueue(
    state: &mut CoreState,
    layout: &CoreLayout<'_>,
    r: usize,
    p: usize,
    v: usize,
    lane: usize,
    flit: Flit,
) {
    let i = state.ivc(layout, r, p, v, lane);
    state.buffers[i].push_back(flit);
    state.occupied[r * state.lanes + lane] += 1;
    if state.buffers[i].len() == 1 {
        let s = state.islot(layout, r, p, lane);
        if state.in_active[i] {
            state.sa_vc_mask[s] |= 1 << v;
        } else {
            state.va_vc_mask[s] |= 1 << v;
        }
    }
}

/// One cell's inputs to a batched run. All jobs of a batch share the
/// topology, routes, latencies and base configuration; the per-cell
/// degrees of freedom are exactly the sweep grid's.
#[derive(Debug, Clone, Copy)]
pub(crate) struct LaneJob {
    /// The cell's derived RNG seed.
    pub(crate) seed: u64,
    /// Injection rate in flits per node per cycle.
    pub(crate) rate: f64,
    /// Traffic pattern.
    pub(crate) pattern: TrafficPattern,
}

/// The in-flight run occupying one lane.
#[derive(Debug)]
struct LaneRun {
    /// Index into the batch's job (and result) list.
    job: usize,
    now: u64,
    measure_end: u64,
    hard_stop: u64,
    next_packet: u64,
    /// Fault epochs already applied to this lane (lanes have
    /// independent clocks, so each replays the shared [`FaultSchedule`]
    /// at its own pace; a refilled lane restarts from zero).
    epoch: usize,
    pattern: TrafficPattern,
    injector: Injector,
    recorder: OutcomeRecorder,
}

impl LaneRun {
    fn start(job: usize, spec: &LaneJob, layout: &CoreLayout<'_>) -> Self {
        let config = &layout.config;
        let packet_prob = spec.rate / f64::from(config.packet_len);
        let recorder = OutcomeRecorder::new(config);
        let measure_end = recorder.measure_end();
        let hard_stop = measure_end + config.drain_limit;
        let injector = Injector::new(
            config.injection,
            spec.seed,
            layout.topology.num_tiles(),
            packet_prob,
            hard_stop,
        );
        Self {
            job,
            now: 0,
            measure_end,
            hard_stop,
            next_packet: 0,
            epoch: 0,
            pattern: spec.pattern,
            injector,
            recorder,
        }
    }
}

/// The shared engine: layout, lane-major state, union schedules and
/// the per-visit switch-allocation scratch.
#[derive(Debug)]
struct Engine<'a> {
    layout: CoreLayout<'a>,
    state: CoreState,
    /// Union over lanes of routers with occupied buffers.
    active_routers: ActiveSet,
    /// Union over lanes of channels with in-flight flits or credits.
    active_channels: ActiveSet,
    /// Per-lane monotone touched sets — what a lane's completion reset
    /// must clean (the twins of `Network::touched_routers/_channels`).
    touched_routers: Vec<ActiveSet>,
    touched_channels: Vec<ActiveSet>,
    /// Per-output-port request lists, reused serially across every
    /// `(router, lane)` visit (sized for the widest router).
    out_requests: Vec<Vec<(u8, u8)>>,
    /// Output ports with entries in `out_requests`. Per-visit scratch.
    touched_outputs: Vec<u8>,
}

impl<'a> Engine<'a> {
    fn new(layout: CoreLayout<'a>, lanes: usize) -> Self {
        let state = CoreState::new(&layout, lanes);
        let max_out_ports = (0..layout.n_routers)
            .map(|r| layout.out_ports(r))
            .max()
            .unwrap_or(0);
        let n = layout.n_routers;
        let channels = layout.n_channels;
        Self {
            layout,
            state,
            active_routers: ActiveSet::new(n),
            active_channels: ActiveSet::new(channels),
            touched_routers: (0..lanes).map(|_| ActiveSet::new(n)).collect(),
            touched_channels: (0..lanes).map(|_| ActiveSet::new(channels)).collect(),
            out_requests: vec![Vec::new(); max_out_ports],
            touched_outputs: Vec::new(),
        }
    }

    /// Phase A for one lane: packet generation through the lane's own
    /// injector and per-tile streams. `component` is the lane's current
    /// surviving-component map (`None` before the first fault epoch);
    /// gating comes *after* the destination draw, so the RNG streams
    /// advance identically with and without faults.
    fn inject(&mut self, lane: usize, run: &mut LaneRun, component: Option<&[u32]>) {
        let Self {
            layout,
            state,
            active_routers,
            touched_routers,
            ..
        } = self;
        let grid = layout.topology.grid();
        let packet_len = layout.config.packet_len;
        let now = run.now;
        let LaneRun {
            pattern,
            injector,
            recorder,
            next_packet,
            ..
        } = run;
        let pattern = *pattern;
        injector.fire_at(now, |t, stream| {
            let src = TileId::new(t as u32);
            if let Some(dst) = pattern.destination(grid, src, stream) {
                if let Some(component) = component {
                    let (a, b) = (component[t], component[dst.index()]);
                    if a == NO_COMPONENT || a != b {
                        recorder.record_unroutable(now);
                        return;
                    }
                }
                recorder.record_injection(now);
                let id = *next_packet;
                *next_packet += 1;
                let inj = layout.injection_port(t);
                for flit in Flit::packet(id, src, dst, packet_len, now) {
                    enqueue(state, layout, t, inj, 0, lane, flit);
                }
                active_routers.insert(t);
                touched_routers[lane].insert(t);
            }
        });
    }

    /// Phase B: delivers due flits and credits on the union's active
    /// channels, lane by lane (a lane without in-flight traffic on a
    /// channel is a no-op, exactly like the reference's idle channel).
    ///
    /// Under an applied drain-policy fault epoch, a lane's flits due on
    /// a dead channel — and flits arriving at an input VC mid-sink —
    /// are discarded with their credit returned upstream, exactly like
    /// `Network::deliver`.
    fn deliver(&mut self, lanes: &mut [Option<LaneRun>], schedule: Option<&FaultSchedule>) {
        let k = self.state.lanes;
        let sweep = self.active_channels.start_sweep();
        for &c in &sweep {
            let mut busy = false;
            for (lane, slot) in lanes.iter_mut().enumerate() {
                let Some(run) = slot else { continue };
                let now = run.now;
                let ci = c * k + lane;
                let dead = match (schedule, run.epoch) {
                    (Some(s), e) if e > 0 && s.policy == InFlightPolicy::Drain => {
                        Some(s.epochs[e - 1].dead_channel.as_slice())
                    }
                    _ => None,
                };
                while let Some(&(ready, _)) = self.state.data_pipe[ci].front() {
                    if ready > now {
                        break;
                    }
                    let (_, flit) = self.state.data_pipe[ci].pop_front().expect("checked front");
                    let (r, p) = self.layout.ch_dst[c];
                    if let Some(dead) = dead {
                        let s = self.state.islot(&self.layout, r, p, lane);
                        let sinking = self.state.sink_vc_mask[s] & (1 << flit.vc) != 0;
                        if dead[c] || sinking {
                            if flit.is_tail {
                                if !dead[c] {
                                    self.state.sink_vc_mask[s] &= !(1 << flit.vc);
                                }
                                run.recorder.record_drop(flit.created);
                            }
                            let lat = self.layout.latency[c];
                            self.state.credit_pipe[ci].push_back((now + lat, flit.vc));
                            continue;
                        }
                    }
                    debug_assert!(
                        self.state.buffers
                            [self.state.ivc(&self.layout, r, p, flit.vc as usize, lane)]
                        .len()
                            < self.layout.config.buffer_depth as usize,
                        "buffer overflow: credits out of sync"
                    );
                    enqueue(
                        &mut self.state,
                        &self.layout,
                        r,
                        p,
                        flit.vc as usize,
                        lane,
                        flit,
                    );
                    self.active_routers.insert(r);
                    self.touched_routers[lane].insert(r);
                }
                while let Some(&(ready, _)) = self.state.credit_pipe[ci].front() {
                    if ready > now {
                        break;
                    }
                    let (_, vc) = self.state.credit_pipe[ci]
                        .pop_front()
                        .expect("checked front");
                    let (r, o) = self.layout.ch_src[c];
                    let i = self.state.ovc(&self.layout, r, o, vc as usize, lane);
                    self.state.credits[i] += 1;
                    // No router activation: a credit alone creates no
                    // work; any flit waiting on it keeps its router
                    // active.
                }
                busy |=
                    !self.state.data_pipe[ci].is_empty() || !self.state.credit_pipe[ci].is_empty();
            }
            if busy {
                self.active_channels.keep(c);
            }
        }
        self.active_channels.finish_sweep(sweep);
    }

    /// Phase C: allocation and traversal over the union's active
    /// routers in ascending order; each `(router, lane)` visit is
    /// gated on that lane's own occupancy — the per-lane reference
    /// membership criterion.
    fn phase_c(&mut self, lanes: &mut [Option<LaneRun>], schedule: Option<&FaultSchedule>) {
        let k = self.state.lanes;
        let sweep = self.active_routers.start_sweep();
        for &r in &sweep {
            let mut busy = false;
            for (lane, slot) in lanes.iter_mut().enumerate() {
                let Some(run) = slot else { continue };
                if self.state.occupied[r * k + lane] == 0 {
                    continue;
                }
                // The lane's current routing table: the base one until
                // its first fault epoch swaps in a degraded table.
                let routes = match (schedule, run.epoch) {
                    (Some(s), e) if e > 0 => &s.epochs[e - 1].routes,
                    _ => self.layout.routes,
                };
                self.vc_allocate(r, lane, routes, run);
                self.switch_allocate_and_traverse(r, lane, run);
                busy |= self.state.occupied[r * k + lane] > 0;
            }
            if busy {
                self.active_routers.keep(r);
            }
        }
        self.active_routers.finish_sweep(sweep);
    }

    /// VC allocation for `(r, lane)`: ports ascending, each port's
    /// request word in ascending VC order — the reference's ascending
    /// (port, VC) slot order. `consider_va` only ever clears the bit
    /// it was called for, so the word snapshot stays exact.
    fn vc_allocate(&mut self, r: usize, lane: usize, routes: &Routes, run: &mut LaneRun) {
        for p in 0..self.layout.in_ports(r) {
            let s = self.state.islot(&self.layout, r, p, lane);
            let mut word = self.state.va_vc_mask[s];
            while word != 0 {
                let v = word.trailing_zeros() as usize;
                word &= word - 1;
                self.consider_va(r, p, v, lane, routes, run);
            }
        }
    }

    /// One (port, vc) step of VC allocation — the core's transcription
    /// of `Router::consider_va` (request-queue grant, which the object
    /// model pins as bit-identical to the exhaustive scan).
    fn consider_va(
        &mut self,
        r: usize,
        p: usize,
        v: usize,
        lane: usize,
        routes: &Routes,
        run: &mut LaneRun,
    ) {
        let Self {
            layout,
            state,
            active_channels,
            touched_channels,
            ..
        } = self;
        let i = state.ivc(layout, r, p, v, lane);
        if state.in_active[i] {
            return;
        }
        let Some(front) = state.buffers[i].front().copied() else {
            return;
        };
        if !front.is_head {
            // A body flit at the front of an inactive VC can only
            // happen transiently after a tail release; skip.
            return;
        }
        let (out_port, class) = layout.route(routes, r, &front);
        let s = state.islot(layout, r, p, lane);
        if out_port == NO_ROUTE {
            // No surviving route to the destination (drain fault
            // policy): sink the packet here, exactly like
            // `Router::consider_va` — discard its buffered flits
            // (crediting upstream so senders drain), account the drop
            // on the tail, and keep sinking arrivals until the tail
            // shows up.
            state.va_vc_mask[s] &= !(1 << v);
            let k = state.lanes;
            let in_ch = layout.islot_channel[layout.islot(r, p)];
            let mut saw_tail = false;
            while let Some(flit) = state.buffers[i].pop_front() {
                state.occupied[r * k + lane] -= 1;
                if in_ch != NO_CHANNEL {
                    let lat = layout.latency[in_ch];
                    state.credit_pipe[in_ch * k + lane].push_back((run.now + lat, flit.vc));
                    active_channels.insert(in_ch);
                    touched_channels[lane].insert(in_ch);
                }
                if flit.is_tail {
                    run.recorder.record_drop(flit.created);
                    saw_tail = true;
                    break;
                }
            }
            if saw_tail {
                if !state.buffers[i].is_empty() {
                    // The next packet's head is at the front now.
                    state.va_vc_mask[s] |= 1 << v;
                }
            } else {
                state.sink_vc_mask[s] |= 1 << v;
            }
            return;
        }
        if out_port as usize == layout.ejection_port(r) {
            state.in_active[i] = true;
            state.in_out_port[i] = out_port;
            state.in_out_vc[i] = 0;
            state.va_vc_mask[s] &= !(1 << v);
            state.sa_vc_mask[s] |= 1 << v;
            return;
        }
        // Grant a free output VC in the class's range, rotating: the
        // free VC with the smallest rotated distance from the pointer.
        let o = out_port as usize;
        let os = state.oslot(layout, r, o, lane);
        let class = class as usize;
        let range_start = layout.class_start[class];
        let len = layout.class_len[class];
        let start = state.va_rr[os] % len.max(1);
        let mut free = layout.class_mask[class] & !state.out_vc_used[os];
        let mut best: Option<(u8, u8)> = None;
        while free != 0 {
            let ov = free.trailing_zeros() as u8;
            free &= free - 1;
            let dist = (ov - range_start + len - start) % len;
            if best.is_none_or(|(d, _)| dist < d) {
                best = Some((dist, ov));
            }
        }
        if let Some((_, ov)) = best {
            let oi = state.ovc(layout, r, o, ov as usize, lane);
            state.out_owner[oi] = pack_owner(p, v);
            state.out_vc_used[os] |= 1 << ov;
            state.va_rr[os] = state.va_rr[os].wrapping_add(1);
            state.in_active[i] = true;
            state.in_out_port[i] = out_port;
            state.in_out_vc[i] = ov;
            state.va_vc_mask[s] &= !(1 << v);
            state.sa_vc_mask[s] |= 1 << v;
        }
    }

    /// Separable input-first switch allocation and traversal for
    /// `(r, lane)` — the core's transcription of
    /// `Router::sa_request_queue`.
    fn switch_allocate_and_traverse(&mut self, r: usize, lane: usize, run: &mut LaneRun) {
        let in_ports = self.layout.in_ports(r);
        debug_assert!(self.touched_outputs.is_empty(), "scratch leaked");
        // Input arbitration: requesting ports ascending; rotating each
        // request mask right by the pointer orders its bits exactly
        // like the scan's `(start + i) % vcs` probe sequence.
        for p in 0..in_ports {
            let s = self.state.islot(&self.layout, r, p, lane);
            let mask = self.state.sa_vc_mask[s];
            if mask == 0 {
                continue;
            }
            let start = u32::from(self.state.sa_in_rr[s]);
            let mut rot = mask.rotate_right(start);
            while rot != 0 {
                let v = ((rot.trailing_zeros() + start) & 63) as usize;
                rot &= rot - 1;
                let i = self.state.ivc(&self.layout, r, p, v, lane);
                let o = self.state.in_out_port[i] as usize;
                let is_ejection = o == self.layout.ejection_port(r);
                if !is_ejection {
                    let ci =
                        self.state
                            .ovc(&self.layout, r, o, self.state.in_out_vc[i] as usize, lane);
                    if self.state.credits[ci] == 0 {
                        continue;
                    }
                }
                if self.out_requests[o].is_empty() {
                    self.touched_outputs.push(o as u8);
                }
                self.out_requests[o].push((p as u8, v as u8));
                break;
            }
        }
        // Output arbitration + traversal, in ascending output-port
        // order; the requester with the smallest rotated distance wins.
        self.touched_outputs.sort_unstable();
        let touched = std::mem::take(&mut self.touched_outputs);
        for &o in &touched {
            let o = o as usize;
            let os = self.state.oslot(&self.layout, r, o, lane);
            let start = usize::from(self.state.sa_out_rr[os]);
            let mut requests = std::mem::take(&mut self.out_requests[o]);
            let &(p, v) = requests
                .iter()
                .min_by_key(|&&(p, _)| (p as usize + in_ports - start) % in_ports)
                .expect("touched output has a request");
            requests.clear();
            self.out_requests[o] = requests;
            self.traverse_winner(r, o, p as usize, v as usize, lane, run);
        }
        let mut touched = touched;
        touched.clear();
        self.touched_outputs = touched;
    }

    /// Moves the switch winner `(p, v) → o` through the crossbar — the
    /// core's transcription of `Router::traverse_winner`, with the
    /// pipeline pushes (which the reference routes through
    /// `TraversalOutput`) inlined. Each input and output port wins at
    /// most once per visit, so every per-channel queue receives its
    /// items in the reference's order.
    fn traverse_winner(
        &mut self,
        r: usize,
        o: usize,
        p: usize,
        v: usize,
        lane: usize,
        run: &mut LaneRun,
    ) {
        let k = self.state.lanes;
        let in_ports = self.layout.in_ports(r);
        let i = self.state.ivc(&self.layout, r, p, v, lane);
        let s = self.state.islot(&self.layout, r, p, lane);
        let os = self.state.oslot(&self.layout, r, o, lane);
        let out_vc = self.state.in_out_vc[i];
        let mut flit = self.state.buffers[i].pop_front().expect("nonempty");
        self.state.occupied[r * k + lane] -= 1;
        self.state.sa_in_rr[s] = (v as u8).wrapping_add(1) % self.layout.config.num_vcs;
        self.state.sa_out_rr[os] = (p as u8).wrapping_add(1) % in_ports as u8;
        // Return a credit upstream (the injection port has none).
        let in_ch = self.layout.islot_channel[self.layout.islot(r, p)];
        if in_ch != NO_CHANNEL {
            let lat = self.layout.latency[in_ch];
            self.state.credit_pipe[in_ch * k + lane].push_back((run.now + lat, flit.vc));
            self.active_channels.insert(in_ch);
            self.touched_channels[lane].insert(in_ch);
        }
        let now_empty = self.state.buffers[i].is_empty();
        if o == self.layout.ejection_port(r) {
            if flit.is_tail {
                self.state.in_active[i] = false;
                self.state.sa_vc_mask[s] &= !(1 << v);
                if !now_empty {
                    // The next packet's head is at the front now.
                    self.state.va_vc_mask[s] |= 1 << v;
                }
            } else if now_empty {
                self.state.sa_vc_mask[s] &= !(1 << v);
            }
            run.recorder.record_ejection(&flit, run.now);
            return;
        }
        let out_ch = self.layout.oslot_channel[self.layout.oslot(r, o)];
        flit.vc = out_vc;
        flit.hop += 1;
        let ci = self.state.ovc(&self.layout, r, o, out_vc as usize, lane);
        self.state.credits[ci] -= 1;
        if flit.is_tail {
            self.state.out_owner[ci] = NO_OWNER;
            self.state.out_vc_used[os] &= !(1u64 << out_vc);
            self.state.in_active[i] = false;
            self.state.sa_vc_mask[s] &= !(1 << v);
            if !now_empty {
                self.state.va_vc_mask[s] |= 1 << v;
            }
        } else if now_empty {
            self.state.sa_vc_mask[s] &= !(1 << v);
        }
        let lat = self.layout.latency[out_ch];
        self.state.data_pipe[out_ch * k + lane].push_back((run.now + lat, flit));
        self.active_channels.insert(out_ch);
        self.touched_channels[lane].insert(out_ch);
    }

    /// Applies one fault epoch's state change to one lane — the
    /// lane-local twin of `Network::apply_fault_epoch`.
    ///
    /// Under [`InFlightPolicy::Drop`] the lane's entire transient state
    /// is discarded (every router and channel it touched is wiped back
    /// to constructed state, counting lost measured packets by their
    /// tail flits), while the injector, packet counter and clock carry
    /// on. The union active sets are *not* cleared: stale entries are
    /// occupancy-gated no-ops for this lane and still live for its
    /// siblings.
    ///
    /// Under [`InFlightPolicy::Drain`] only the routers that die at
    /// this epoch are wiped, with each flit buffered on a network input
    /// port returning its credit upstream so senders drain.
    fn apply_fault_epoch(
        &mut self,
        lane: usize,
        run: &mut LaneRun,
        epoch: &FaultEpoch,
        policy: InFlightPolicy,
    ) {
        let Self {
            layout,
            state,
            active_channels,
            touched_routers,
            touched_channels,
            ..
        } = self;
        let k = state.lanes;
        let vcs = layout.vcs;
        let recorder = &mut run.recorder;
        match policy {
            InFlightPolicy::Drop => {
                touched_routers[lane].clear_with(|r| {
                    for p in 0..layout.in_ports(r) {
                        for v in 0..vcs {
                            let i = (layout.islot(r, p) * vcs + v) * k + lane;
                            for flit in &state.buffers[i] {
                                if flit.is_tail {
                                    recorder.record_drop(flit.created);
                                }
                            }
                        }
                    }
                    state.reset_router_lane(layout, r, lane);
                });
                touched_channels[lane].clear_with(|c| {
                    for (_, flit) in &state.data_pipe[c * k + lane] {
                        if flit.is_tail {
                            recorder.record_drop(flit.created);
                        }
                    }
                    state.reset_channel_lane(c, lane);
                });
            }
            InFlightPolicy::Drain => {
                for &r in &epoch.newly_dead_routers {
                    let r = r as usize;
                    for p in 0..layout.in_ports(r) {
                        let in_ch = layout.islot_channel[layout.islot(r, p)];
                        for v in 0..vcs {
                            let i = (layout.islot(r, p) * vcs + v) * k + lane;
                            for flit in &state.buffers[i] {
                                if flit.is_tail {
                                    recorder.record_drop(flit.created);
                                }
                                if in_ch != NO_CHANNEL {
                                    let lat = layout.latency[in_ch];
                                    state.credit_pipe[in_ch * k + lane]
                                        .push_back((run.now + lat, flit.vc));
                                    active_channels.insert(in_ch);
                                    touched_channels[lane].insert(in_ch);
                                }
                            }
                        }
                    }
                    // Same reasoning as the object model's drain arm:
                    // credit returns for flits this router sent before
                    // dying are still in flight back to it, so its
                    // counters keep their values across the wipe instead
                    // of refilling (and then overflowing as the returns
                    // land). The slice covers every lane; other lanes
                    // are written back unchanged.
                    let base = layout.oslot(r, 0) * vcs * k;
                    let len = layout.out_ports(r) * vcs * k;
                    let saved = state.credits[base..base + len].to_vec();
                    state.reset_router_lane(layout, r, lane);
                    state.credits[base..base + len].copy_from_slice(&saved);
                }
            }
        }
    }

    /// Wipes everything a finished lane touched back to constructed
    /// state, in O(touched). Union active-set entries that existed only
    /// for this lane become no-ops and drop out on the next sweep.
    fn reset_lane(&mut self, lane: usize) {
        let Self {
            layout,
            state,
            touched_routers,
            touched_channels,
            ..
        } = self;
        touched_routers[lane].clear_with(|r| state.reset_router_lane(layout, r, lane));
        touched_channels[lane].clear_with(|c| state.reset_channel_lane(c, lane));
    }
}

/// Runs `jobs` — independent cells sharing one topology, routing
/// table, latency map and base configuration — through a
/// `min(max_lanes, jobs.len())`-lane core, refilling lanes as they
/// complete, and returns one [`SimOutcome`] per job in job order.
///
/// Every outcome is bit-identical to running its cell alone on a fresh
/// [`crate::Network`] with `config.seed = job.seed` (the equivalence
/// suite pins this across the pattern × injection × allocation
/// matrix); lane count, lane assignment and refill order are
/// unobservable in the results.
pub(crate) fn run_batch(
    topology: &Topology,
    routes: &Routes,
    link_latencies: &[Cycles],
    config: &SimConfig,
    jobs: &[LaneJob],
    max_lanes: usize,
) -> Vec<SimOutcome> {
    if jobs.is_empty() {
        return Vec::new();
    }
    let k = max_lanes.max(1).min(jobs.len());
    let layout = CoreLayout::new(topology, routes, link_latencies, config.clone());
    // Compiled fault plan: `None` (the overwhelmingly common case)
    // keeps the loop on the exact fault-free path. Shared by all lanes,
    // each replaying it on its own clock.
    let schedule = FaultSchedule::build(&config.faults, topology, routes.num_vc_classes());
    let schedule = schedule.as_ref();
    let nodes = topology.num_tiles() as f64;
    let mut engine = Engine::new(layout, k);
    let mut lanes: Vec<Option<LaneRun>> = (0..k).map(|_| None).collect();
    let mut results: Vec<Option<SimOutcome>> = vec![None; jobs.len()];
    let mut next_job = 0usize;
    for slot in &mut lanes {
        if next_job < jobs.len() {
            *slot = Some(LaneRun::start(next_job, &jobs[next_job], &engine.layout));
            next_job += 1;
        }
    }
    while lanes.iter().any(Option::is_some) {
        // Phase A: per-lane packet generation (disjoint state; lane
        // order is unobservable). Fault epochs strike first, at the top
        // of their cycle on each lane's own clock, exactly like the
        // reference's top-of-loop application.
        for (lane, slot) in lanes.iter_mut().enumerate() {
            if let Some(run) = slot.as_mut() {
                if let Some(sched) = schedule {
                    while run.epoch < sched.epochs.len() && run.now >= sched.epochs[run.epoch].at {
                        engine.apply_fault_epoch(lane, run, &sched.epochs[run.epoch], sched.policy);
                        run.epoch += 1;
                    }
                }
                let component = match (schedule, run.epoch) {
                    (Some(s), e) if e > 0 => Some(s.epochs[e - 1].component.as_slice()),
                    _ => None,
                };
                engine.inject(lane, run, component);
            }
        }
        // Phase B: arrivals on the channel union.
        engine.deliver(&mut lanes, schedule);
        // Phase C: allocation + traversal on the router union.
        engine.phase_c(&mut lanes, schedule);
        // Advance each live lane's clock; finished lanes finalize,
        // reset their slice and pick up the next pending cell.
        for (lane, slot) in lanes.iter_mut().enumerate() {
            let done = match slot.as_mut() {
                Some(run) => {
                    run.now += 1;
                    (run.now >= run.measure_end && run.recorder.drained())
                        || run.now >= run.hard_stop
                }
                None => false,
            };
            if done {
                let run = slot.take().expect("finished lane was live");
                results[run.job] = Some(run.recorder.finalize(run.now, nodes));
                engine.reset_lane(lane);
                if next_job < jobs.len() {
                    *slot = Some(LaneRun::start(next_job, &jobs[next_job], &engine.layout));
                    next_job += 1;
                }
            }
        }
    }
    results
        .into_iter()
        .map(|r| r.expect("every job ran to completion"))
        .collect()
}
