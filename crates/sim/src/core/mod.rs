//! Data-oriented batched simulator core.
//!
//! The object model (`Router` + `Network`) is this crate's *reference*:
//! readable, heavily asserted, and the semantics oracle every
//! optimization is measured against — the same role it plays for the
//! scan, injection and allocation policies. This module is the fourth
//! leg of that pattern: the **hot state** of a whole network, flattened
//! into struct-of-arrays storage ([`layout`] for the immutable
//! geometry, [`state`] for the mutable arrays), plus a lane-parallel
//! driver ([`batch`]) that steps K independent sweep cells of one
//! topology through that core in lockstep.
//!
//! Bit-identity with the reference is a hard contract, not an
//! aspiration: `tests/batched_equivalence.rs` pins every lane of every
//! batch shape against a fresh per-cell `Network` across the pattern ×
//! injection × allocation matrix, and the sweep layer's serialization
//! is byte-identical whichever engine produced it.

mod batch;
mod layout;
mod state;

pub(crate) use batch::{run_batch, LaneJob};
