//! The mutable hot state of the batched core: every router and channel
//! structure of the object model, flattened into lane-major
//! struct-of-arrays storage.
//!
//! Each logical slot (an in-VC, an out-VC, a port, a router, a channel)
//! owns `K` consecutive entries — one per lane — so `array[slot * K +
//! lane]` keeps the K independent simulations of one batch adjacent in
//! memory: the per-router inner loop over lanes is a unit-stride sweep,
//! and a slot touched by several lanes in the same cycle stays in
//! cache. The field-by-field correspondence to
//! [`crate::router::Router`]:
//!
//! | object model                  | core array                | index      |
//! |-------------------------------|---------------------------|------------|
//! | `buffers[p][v]`               | `buffers`                 | in-VC · K  |
//! | `in_state[p][v]` (3 fields)   | `in_active/in_out_port/in_out_vc` | in-VC · K |
//! | `out_owner[o][v]`             | `out_owner` (packed `u16`)| out-VC · K |
//! | `credits[o][v]`               | `credits`                 | out-VC · K |
//! | `va_rr[o]` / `sa_out_rr[o]`   | `va_rr` / `sa_out_rr`     | out-slot · K |
//! | `sa_in_rr[p]`                 | `sa_in_rr`                | in-slot · K |
//! | `va_mask` / `sa_mask[p]`      | `va_vc_mask` / `sa_vc_mask` | in-slot · K |
//! | `out_vc_used[o]`              | `out_vc_used`             | out-slot · K |
//! | `occupied`                    | `occupied`                | router · K |
//! | `Network::data_pipe[c]`       | `data_pipe`               | channel · K |
//! | `Network::credit_pipe[c]`     | `credit_pipe`             | channel · K |
//!
//! The reference keeps one `va_mask` word stream over all (port, VC)
//! slots and a `sa_ports` summary bitmap; the core stores one VC-mask
//! word per in-slot for both stages instead. Iterating ports in
//! ascending order and each word's bits in ascending VC order visits
//! requests in exactly the reference's ascending (port, VC) order, so
//! the arbitration outcome is unchanged.

use std::collections::VecDeque;

use crate::flit::Flit;

use super::layout::CoreLayout;

/// Packed `out_owner` entry: `(in_port << 8) | vc`, [`NO_OWNER`] for
/// a free output VC (the object model's `None`).
pub(crate) const NO_OWNER: u16 = u16::MAX;

#[inline]
pub(crate) fn pack_owner(p: usize, v: usize) -> u16 {
    ((p as u16) << 8) | v as u16
}

/// All mutable per-lane simulation state of one batch.
#[derive(Debug)]
pub(crate) struct CoreState {
    /// Lane count `K` — the stride of every array below.
    pub(crate) lanes: usize,
    /// `buffers[ivc · K + lane]`: the flit queue of one input VC.
    pub(crate) buffers: Vec<VecDeque<Flit>>,
    /// `in_state.active`, split to its own byte array.
    pub(crate) in_active: Vec<bool>,
    /// `in_state.out_port`.
    pub(crate) in_out_port: Vec<u8>,
    /// `in_state.out_vc`.
    pub(crate) in_out_vc: Vec<u8>,
    /// Packed `out_owner[out-VC]` (see [`pack_owner`]).
    pub(crate) out_owner: Vec<u16>,
    /// Free downstream buffer slots per out-VC.
    pub(crate) credits: Vec<u16>,
    /// Occupied output VCs per out-slot (bitmask twin of `out_owner`).
    pub(crate) out_vc_used: Vec<u64>,
    /// VCs whose buffer front awaits VC allocation, per in-slot.
    pub(crate) va_vc_mask: Vec<u64>,
    /// Active VCs with buffered flits (switch requests), per in-slot.
    pub(crate) sa_vc_mask: Vec<u64>,
    /// VCs mid-packet on an unroutable destination, per in-slot: body
    /// flits arriving on a sinking VC are discarded until the tail
    /// clears the bit (the twin of `Router::sinking`; only a fault
    /// epoch can set it).
    pub(crate) sink_vc_mask: Vec<u64>,
    /// VC-allocation round-robin pointer per out-slot.
    pub(crate) va_rr: Vec<u8>,
    /// Switch-allocation input round-robin pointer per in-slot.
    pub(crate) sa_in_rr: Vec<u8>,
    /// Switch-allocation output round-robin pointer per out-slot.
    pub(crate) sa_out_rr: Vec<u8>,
    /// Occupied buffer slots per router (the active-set criterion).
    pub(crate) occupied: Vec<u32>,
    /// In-flight flits per channel: `(arrival_cycle, flit)`.
    pub(crate) data_pipe: Vec<VecDeque<(u64, Flit)>>,
    /// In-flight credits per channel (flowing source-ward).
    pub(crate) credit_pipe: Vec<VecDeque<(u64, u8)>>,
}

impl CoreState {
    /// Fresh state for `lanes` lanes over `layout`'s index spaces —
    /// per lane, exactly the just-constructed state of the object
    /// model: empty buffers, full credits, zeroed pointers and masks.
    pub(crate) fn new(layout: &CoreLayout<'_>, lanes: usize) -> Self {
        let vcs = layout.vcs;
        let ivc = layout.total_in_slots() * vcs * lanes;
        let ovc = layout.total_out_slots() * vcs * lanes;
        let islots = layout.total_in_slots() * lanes;
        let oslots = layout.total_out_slots() * lanes;
        Self {
            lanes,
            buffers: vec![VecDeque::new(); ivc],
            in_active: vec![false; ivc],
            in_out_port: vec![0; ivc],
            in_out_vc: vec![0; ivc],
            out_owner: vec![NO_OWNER; ovc],
            credits: vec![layout.config.buffer_depth; ovc],
            out_vc_used: vec![0; oslots],
            va_vc_mask: vec![0; islots],
            sa_vc_mask: vec![0; islots],
            sink_vc_mask: vec![0; islots],
            va_rr: vec![0; oslots],
            sa_in_rr: vec![0; islots],
            sa_out_rr: vec![0; oslots],
            occupied: vec![0; layout.n_routers * lanes],
            data_pipe: vec![VecDeque::new(); layout.n_channels * lanes],
            credit_pipe: vec![VecDeque::new(); layout.n_channels * lanes],
        }
    }

    /// Index of input VC `(r, p, v)` in lane `lane`.
    #[inline]
    pub(crate) fn ivc(
        &self,
        layout: &CoreLayout<'_>,
        r: usize,
        p: usize,
        v: usize,
        lane: usize,
    ) -> usize {
        (layout.islot(r, p) * layout.vcs + v) * self.lanes + lane
    }

    /// Index of output VC `(r, o, v)` in lane `lane`.
    #[inline]
    pub(crate) fn ovc(
        &self,
        layout: &CoreLayout<'_>,
        r: usize,
        o: usize,
        v: usize,
        lane: usize,
    ) -> usize {
        (layout.oslot(r, o) * layout.vcs + v) * self.lanes + lane
    }

    /// Index of in-slot `(r, p)` in lane `lane`.
    #[inline]
    pub(crate) fn islot(&self, layout: &CoreLayout<'_>, r: usize, p: usize, lane: usize) -> usize {
        layout.islot(r, p) * self.lanes + lane
    }

    /// Index of out-slot `(r, o)` in lane `lane`.
    #[inline]
    pub(crate) fn oslot(&self, layout: &CoreLayout<'_>, r: usize, o: usize, lane: usize) -> usize {
        layout.oslot(r, o) * self.lanes + lane
    }

    /// Returns one router's slice of `lane` to its just-constructed
    /// state — the core's analogue of `Router::reset`, called for each
    /// router the finished lane touched so a refilled lane starts from
    /// state indistinguishable from a fresh [`CoreState::new`].
    pub(crate) fn reset_router_lane(&mut self, layout: &CoreLayout<'_>, r: usize, lane: usize) {
        let vcs = layout.vcs;
        let k = self.lanes;
        for p in 0..layout.in_ports(r) {
            let islot = layout.islot(r, p);
            for v in 0..vcs {
                let i = (islot * vcs + v) * k + lane;
                self.buffers[i].clear();
                self.in_active[i] = false;
                self.in_out_port[i] = 0;
                self.in_out_vc[i] = 0;
            }
            let s = islot * k + lane;
            self.va_vc_mask[s] = 0;
            self.sa_vc_mask[s] = 0;
            self.sink_vc_mask[s] = 0;
            self.sa_in_rr[s] = 0;
        }
        for o in 0..layout.out_ports(r) {
            let oslot = layout.oslot(r, o);
            for v in 0..vcs {
                let i = (oslot * vcs + v) * k + lane;
                self.out_owner[i] = NO_OWNER;
                self.credits[i] = layout.config.buffer_depth;
            }
            let s = oslot * k + lane;
            self.out_vc_used[s] = 0;
            self.va_rr[s] = 0;
            self.sa_out_rr[s] = 0;
        }
        self.occupied[r * k + lane] = 0;
    }

    /// Clears one channel's lane of both link pipelines — the per-lane
    /// analogue of `Network::reset`'s touched-channel cleanup.
    pub(crate) fn reset_channel_lane(&mut self, c: usize, lane: usize) {
        let i = c * self.lanes + lane;
        self.data_pipe[i].clear();
        self.credit_pipe[i].clear();
    }
}
