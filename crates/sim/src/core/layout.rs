//! The immutable geometry of the struct-of-arrays core: flat slot
//! index spaces with precomputed strides.
//!
//! The object model ([`crate::router::Router`]) stores per-router
//! `Vec<Vec<...>>` state; the batched core instead addresses every
//! input port, output port and virtual channel in the whole network
//! through four flat index spaces, all derived here once per topology:
//!
//! * **in-slot** — one per (router, input port), laid out router-major
//!   via the [`CoreLayout::in_base`] prefix sums,
//! * **out-slot** — one per (router, output port), via
//!   [`CoreLayout::out_base`],
//! * **in-VC** — `in_slot · vcs + vc`,
//! * **out-VC** — `out_slot · vcs + vc`.
//!
//! Port enumeration is byte-for-byte the one `Network::new` performs
//! (neighbor order defines network ports, the extra last port is
//! injection/ejection), so a flit's routed port numbers mean the same
//! thing in both engines. Routing lookups are O(1) here: the reference
//! resolves a path hop's channel to an output port with a linear
//! `position` search over the router's channel list; the layout
//! precomputes that same mapping in [`CoreLayout::ch_src`].

use shg_topology::{
    routing::{RouteForm, Routes},
    ChannelId, TileId, Topology,
};
use shg_units::Cycles;

use crate::config::SimConfig;
use crate::flit::Flit;

/// Sentinel for "no channel": the injection in-slot has no upstream
/// channel to credit, the ejection out-slot has no downstream link.
pub(crate) const NO_CHANNEL: usize = usize::MAX;

/// Precomputed strides, channel endpoints and routing tables shared by
/// every lane of a batch. Immutable after construction.
#[derive(Debug)]
pub(crate) struct CoreLayout<'a> {
    pub(crate) topology: &'a Topology,
    pub(crate) routes: &'a Routes,
    /// Template configuration (per-lane runs override `seed`).
    pub(crate) config: SimConfig,
    pub(crate) vcs: usize,
    pub(crate) n_routers: usize,
    pub(crate) n_channels: usize,
    /// In-slot base per router (prefix sums; `len == n_routers + 1`).
    /// Router `r` owns in-ports `0..in_base[r+1] - in_base[r]`, the
    /// last one being its injection port.
    pub(crate) in_base: Vec<usize>,
    /// Out-slot twin of `in_base`; the last port is ejection.
    pub(crate) out_base: Vec<usize>,
    /// Channel → `(router, in_port)` it delivers into.
    pub(crate) ch_dst: Vec<(usize, usize)>,
    /// Channel → `(router, out_port)` it leaves from — also the O(1)
    /// routing lookup replacing the reference's `position` search.
    pub(crate) ch_src: Vec<(usize, usize)>,
    /// In-slot → its incoming channel ([`NO_CHANNEL`] for injection
    /// ports); the credit-return target of a traversal.
    pub(crate) islot_channel: Vec<usize>,
    /// Out-slot → its outgoing channel ([`NO_CHANNEL`] for ejection).
    pub(crate) oslot_channel: Vec<usize>,
    /// Effective per-channel latency: floorplan link latency plus
    /// router pipeline overhead (identical to `Network::latency`).
    pub(crate) latency: Vec<u64>,
    /// Per VC class: first VC of the class's range.
    pub(crate) class_start: Vec<u8>,
    /// Per VC class: number of VCs in the range.
    pub(crate) class_len: Vec<u8>,
    /// Per VC class: bitmask of the range's VCs.
    pub(crate) class_mask: Vec<u64>,
}

impl<'a> CoreLayout<'a> {
    /// Builds the layout. Panics under exactly the conditions
    /// `Network::new` panics (latency count, VC-class budget, VC cap).
    pub(crate) fn new(
        topology: &'a Topology,
        routes: &'a Routes,
        link_latencies: &[Cycles],
        config: SimConfig,
    ) -> Self {
        assert_eq!(
            link_latencies.len(),
            topology.num_links(),
            "one latency per link required"
        );
        assert!(
            routes.num_vc_classes() <= config.num_vcs,
            "routing needs {} VC classes but only {} VCs are configured",
            routes.num_vc_classes(),
            config.num_vcs
        );
        let vcs = config.num_vcs as usize;
        assert!(
            vcs <= 64,
            "the allocator's VC bitmasks support at most 64 VCs per port, got {vcs}"
        );
        let n = topology.num_tiles();
        let n_channels = topology.num_channels();
        let mut in_base = Vec::with_capacity(n + 1);
        let mut out_base = Vec::with_capacity(n + 1);
        let mut ch_dst = vec![(0usize, 0usize); n_channels];
        let mut ch_src = vec![(0usize, 0usize); n_channels];
        let mut islot_channel = Vec::new();
        let mut oslot_channel = Vec::new();
        in_base.push(0);
        out_base.push(0);
        for t in 0..n {
            let tile = TileId::new(t as u32);
            for (ports, &(_, link)) in topology.neighbors(tile).iter().enumerate() {
                let out = topology.channel_from(tile, link);
                // The paired reverse channel is this router's input.
                let reverse = ChannelId::new(out.id.index() as u32 ^ 1);
                ch_src[out.id.index()] = (t, ports);
                ch_dst[reverse.index()] = (t, ports);
                islot_channel.push(reverse.index());
                oslot_channel.push(out.id.index());
            }
            // The extra last port: injection on the input side, ejection
            // on the output side.
            islot_channel.push(NO_CHANNEL);
            oslot_channel.push(NO_CHANNEL);
            in_base.push(islot_channel.len());
            out_base.push(oslot_channel.len());
        }
        let latency = (0..n_channels)
            .map(|c| {
                link_latencies[ChannelId::new(c as u32).link().index()].value()
                    + u64::from(config.router_overhead)
            })
            .collect();
        let classes = routes.num_vc_classes().max(1);
        let mut class_start = Vec::with_capacity(classes as usize);
        let mut class_len = Vec::with_capacity(classes as usize);
        let mut class_mask = Vec::with_capacity(classes as usize);
        for class in 0..classes {
            let range = config.vc_range(class, classes);
            let len = range.len();
            class_start.push(range.start);
            class_len.push(len as u8);
            class_mask.push(if len >= 64 {
                u64::MAX
            } else {
                ((1u64 << len) - 1) << range.start
            });
        }
        Self {
            topology,
            routes,
            config,
            vcs,
            n_routers: n,
            n_channels,
            in_base,
            out_base,
            ch_dst,
            ch_src,
            islot_channel,
            oslot_channel,
            latency,
            class_start,
            class_len,
            class_mask,
        }
    }

    /// Number of input ports of router `r` (network inputs + injection).
    #[inline]
    pub(crate) fn in_ports(&self, r: usize) -> usize {
        self.in_base[r + 1] - self.in_base[r]
    }

    /// Number of output ports of router `r` (network outputs + ejection).
    #[inline]
    pub(crate) fn out_ports(&self, r: usize) -> usize {
        self.out_base[r + 1] - self.out_base[r]
    }

    /// Router `r`'s injection port (its last input port).
    #[inline]
    pub(crate) fn injection_port(&self, r: usize) -> usize {
        self.in_ports(r) - 1
    }

    /// Router `r`'s ejection port (its last output port).
    #[inline]
    pub(crate) fn ejection_port(&self, r: usize) -> usize {
        self.out_ports(r) - 1
    }

    /// Global in-slot of `(router, in_port)`.
    #[inline]
    pub(crate) fn islot(&self, r: usize, p: usize) -> usize {
        self.in_base[r] + p
    }

    /// Global out-slot of `(router, out_port)`.
    #[inline]
    pub(crate) fn oslot(&self, r: usize, o: usize) -> usize {
        self.out_base[r] + o
    }

    /// Total in-slots across the network.
    #[inline]
    pub(crate) fn total_in_slots(&self) -> usize {
        *self.in_base.last().expect("prefix sums are non-empty")
    }

    /// Total out-slots across the network.
    #[inline]
    pub(crate) fn total_out_slots(&self) -> usize {
        *self.out_base.last().expect("prefix sums are non-empty")
    }

    /// The output port and VC class the head flit needs at router `r` —
    /// the core's `route_head`, with the channel→port `position` search
    /// replaced by the precomputed [`CoreLayout::ch_src`] map. `routes`
    /// is the *current* table — [`CoreLayout::routes`] until a fault
    /// epoch swaps in a degraded table (same port numbering, so
    /// `ch_src` stays valid).
    #[inline]
    pub(crate) fn route(&self, routes: &Routes, r: usize, flit: &Flit) -> (u8, u8) {
        if flit.dst.index() == r {
            return (self.ejection_port(r) as u8, 0);
        }
        if routes.form() != RouteForm::Dense {
            // Compact forms answer (out port, class) directly in the same
            // sorted-neighbor port numbering this layout was built with.
            return routes.port_and_class(
                TileId::new(r as u32),
                flit.src,
                flit.dst,
                flit.hop as usize,
            );
        }
        let path = routes.path(flit.src, flit.dst);
        let hop = &path[flit.hop as usize];
        let (src_router, out_port) = self.ch_src[hop.channel.index()];
        debug_assert_eq!(src_router, r, "flit at wrong router for its path");
        (out_port as u8, hop.vc_class)
    }
}
