//! Simulator configuration.

use serde::{Deserialize, Serialize};

use crate::fault::FaultPlan;
use crate::injection::InjectionPolicy;
use crate::router::AllocPolicy;

/// Microarchitectural and run-control parameters of the simulator.
///
/// Defaults match the paper's evaluation setup: input-queued routers with
/// 8 virtual channels and 32-flit buffers (Section V-b).
///
/// # Examples
///
/// ```
/// use shg_sim::SimConfig;
///
/// let config = SimConfig::default();
/// assert_eq!(config.num_vcs, 8);
/// assert_eq!(config.buffer_depth, 32);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SimConfig {
    /// Virtual channels per input port.
    pub num_vcs: u8,
    /// Buffer depth per virtual channel, in flits.
    pub buffer_depth: u16,
    /// Packet length in flits.
    pub packet_len: u16,
    /// Extra per-hop router pipeline cycles added to every link's latency
    /// (allocation and traversal take one implicit cycle; realistic
    /// input-queued routers add 2–3 more for RC/VA/SA stages).
    pub router_overhead: u32,
    /// Warm-up cycles before measurement starts.
    pub warmup: u64,
    /// Measurement window in cycles.
    pub measure: u64,
    /// Maximum drain cycles after measurement; exceeding this marks the
    /// run unstable.
    pub drain_limit: u64,
    /// RNG seed for traffic generation. Every tile's private stream
    /// derives from it ([`crate::tile_stream_seed`]), so one seed still
    /// pins the whole run.
    pub seed: u64,
    /// How packet arrivals are generated each cycle (see
    /// [`InjectionPolicy`]); the event-driven default and the per-cycle
    /// scan produce bit-identical outcomes.
    pub injection: InjectionPolicy,
    /// How the router allocation stages find work each cycle (see
    /// [`AllocPolicy`]); the request-driven default and the exhaustive
    /// port × VC scan produce bit-identical outcomes.
    pub alloc: AllocPolicy,
    /// Deterministic mid-run fault injection (see [`FaultPlan`]). The
    /// default empty plan simulates bit-identically to a fault-free
    /// build; a non-empty plan kills links/routers at its scheduled
    /// cycles and reroutes over the surviving subgraph.
    pub faults: FaultPlan,
}

impl Default for SimConfig {
    fn default() -> Self {
        Self {
            num_vcs: 8,
            buffer_depth: 32,
            packet_len: 4,
            router_overhead: 2,
            warmup: 5_000,
            measure: 10_000,
            drain_limit: 30_000,
            seed: 0x5eed_1234,
            injection: InjectionPolicy::EventDriven,
            alloc: AllocPolicy::RequestQueue,
            faults: FaultPlan::default(),
        }
    }
}

impl SimConfig {
    /// A faster configuration for unit tests: smaller buffers and windows.
    #[must_use]
    pub fn fast_test() -> Self {
        Self {
            num_vcs: 8,
            buffer_depth: 8,
            packet_len: 2,
            router_overhead: 1,
            warmup: 500,
            measure: 1_500,
            drain_limit: 6_000,
            seed: 42,
            injection: InjectionPolicy::EventDriven,
            alloc: AllocPolicy::RequestQueue,
            faults: FaultPlan::default(),
        }
    }

    /// The virtual channels available to a VC class: classes partition the
    /// VC space as evenly as possible.
    ///
    /// # Panics
    ///
    /// Panics if there are more classes than virtual channels.
    #[must_use]
    pub fn vc_range(&self, class: u8, num_classes: u8) -> std::ops::Range<u8> {
        assert!(
            num_classes <= self.num_vcs,
            "{num_classes} VC classes need at least that many VCs, have {}",
            self.num_vcs
        );
        let v = self.num_vcs as u32;
        let c = num_classes as u32;
        let lo = (class as u32 * v) / c;
        let hi = ((class as u32 + 1) * v) / c;
        lo as u8..hi as u8
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vc_ranges_partition_the_vc_space() {
        let config = SimConfig::default();
        for num_classes in 1..=8u8 {
            let mut covered = Vec::new();
            for class in 0..num_classes {
                let range = config.vc_range(class, num_classes);
                assert!(!range.is_empty(), "class {class}/{num_classes} empty");
                covered.extend(range);
            }
            assert_eq!(covered.len(), 8, "classes {num_classes}");
            let unique: std::collections::HashSet<_> = covered.iter().collect();
            assert_eq!(unique.len(), 8, "overlap with {num_classes} classes");
        }
    }

    #[test]
    fn six_classes_on_eight_vcs() {
        // Row-column routing uses 6 classes; the two spare VCs land in
        // some classes.
        let config = SimConfig::default();
        let sizes: Vec<usize> = (0..6).map(|c| config.vc_range(c, 6).len()).collect();
        assert_eq!(sizes.iter().sum::<usize>(), 8);
        assert!(sizes.iter().all(|&s| s >= 1));
    }

    #[test]
    #[should_panic(expected = "VC classes")]
    fn too_many_classes_panics() {
        let config = SimConfig::default();
        let _ = config.vc_range(0, 9);
    }
}
