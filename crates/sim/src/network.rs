//! The cycle-accurate network model: orchestration of input-queued
//! virtual-channel routers (see [`crate::router`]) with credit-based
//! flow control and multi-cycle pipelined links.
//!
//! Each cycle:
//!
//! 1. **Injection** — Bernoulli packet generation into injection queues
//!    (per-tile RNG streams; see [`crate::injection`]),
//! 2. **Arrivals** — flits and credits reaching routers this cycle,
//! 3. **Allocation + traversal** — per-router VC allocation, separable
//!    switch allocation and switch traversal (the router module).
//!
//! Links that are too long for one clock cycle are pipelined (paper
//! Section II-A): a link of latency `L` holds up to `L` flits in flight.
//!
//! # Active-set scheduling
//!
//! The dominant cost of low-load and drain phases used to be scanning
//! *every* router and channel each cycle. The network now keeps an
//! **active set**: only routers with occupied buffers and channels with
//! in-flight flits or credits are visited. Activation events (injection,
//! flit delivery, pipeline pushes) re-insert members; members that go
//! idle drop out after their visit. Active members are visited in
//! ascending index order, which makes the schedule — and therefore every
//! statistic — bit-identical to the exhaustive scan; the full scan is
//! retained as [`ScanPolicy::FullScan`] for regression tests and
//! benchmarks.
//!
//! Phase A has the same two-policy structure: the default event-driven
//! injection calendar visits only the tiles that fire this cycle, and
//! [`InjectionPolicy::PerCycleScan`](crate::InjectionPolicy) retains
//! the exhaustive per-tile countdown scan as its bit-identical
//! reference (`config.injection` selects the policy).
//!
//! Phase C completes the pattern: within each visited router, the
//! default request-driven allocator
//! ([`AllocPolicy::RequestQueue`](crate::AllocPolicy)) walks only the
//! live VC/switch requests (incrementally maintained bitmasks) instead
//! of scanning every port × VC slot, with
//! [`AllocPolicy::FullScan`](crate::AllocPolicy) as its bit-identical
//! exhaustive reference (`config.alloc` selects the policy; the router
//! module documents the request structures).

use std::collections::VecDeque;

use shg_topology::{
    routing::{RouteForm, Routes, NO_COMPONENT},
    ChannelId, TileId, Topology,
};
use shg_units::Cycles;

use crate::config::SimConfig;
use crate::fault::{FaultEpoch, FaultSchedule, InFlightPolicy};
use crate::flit::Flit;
use crate::injection::Injector;
use crate::router::{AllocPolicy, Router, TraversalOutput};
use crate::stats::{OutcomeRecorder, SimOutcome};
use crate::traffic::TrafficPattern;

/// Wall-clock decomposition of one run into its simulation phases —
/// what [`Network::run_profiled`] returns alongside the outcome.
///
/// The measured spans are the phase bodies only; loop control,
/// statistics collection and the active-set sweep bookkeeping are
/// excluded, so the three durations need not sum to the run's total
/// wall time.
#[derive(Debug, Clone, Copy, Default)]
pub struct PhaseProfile {
    /// Phase A: packet generation (injection policy).
    pub injection: std::time::Duration,
    /// Phase B: flit and credit delivery on active channels.
    pub delivery: std::time::Duration,
    /// Phase C: per-router VC allocation, switch allocation and
    /// traversal (allocation policy) — including the drain of each
    /// router's traversal output into the link pipelines.
    pub allocation: std::time::Duration,
}

/// How the simulator schedules per-cycle work.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ScanPolicy {
    /// Visit only routers/channels with pending work (the default).
    #[default]
    ActiveSet,
    /// Visit every router and channel every cycle — the pre-active-set
    /// behaviour, kept as a reference for equivalence tests and the
    /// `active_set` Criterion bench.
    FullScan,
}

/// An index set over `0..len` with O(1) insertion, deduplication via a
/// membership bitmap, and deterministic (ascending) iteration order.
/// Shared with the batched struct-of-arrays core (`crate::core`), which
/// keeps one union set per structure across all of its lanes.
#[derive(Debug)]
pub(crate) struct ActiveSet {
    members: Vec<usize>,
    is_member: Vec<bool>,
    /// Last cycle's sweep buffer, recycled so the per-cycle sweep is
    /// allocation-free in steady state (two buffers ping-pong).
    scratch: Vec<usize>,
}

impl ActiveSet {
    pub(crate) fn new(len: usize) -> Self {
        Self {
            members: Vec::new(),
            is_member: vec![false; len],
            scratch: Vec::new(),
        }
    }

    #[inline]
    pub(crate) fn insert(&mut self, index: usize) {
        if !self.is_member[index] {
            self.is_member[index] = true;
            self.members.push(index);
        }
    }

    /// Moves the members out, in ascending order, and installs the
    /// recycled buffer from the previous sweep as the new (empty)
    /// member list. Call [`ActiveSet::keep`] for every index to
    /// retain, then return the buffer via [`ActiveSet::finish_sweep`].
    pub(crate) fn start_sweep(&mut self) -> Vec<usize> {
        let mut sweep = std::mem::replace(&mut self.members, std::mem::take(&mut self.scratch));
        sweep.sort_unstable();
        for &i in &sweep {
            self.is_member[i] = false;
        }
        sweep
    }

    #[inline]
    pub(crate) fn keep(&mut self, index: usize) {
        self.insert(index);
    }

    pub(crate) fn finish_sweep(&mut self, mut sweep: Vec<usize>) {
        sweep.clear();
        self.scratch = sweep;
    }

    /// Empties the set in O(members), visiting each former member.
    pub(crate) fn clear_with(&mut self, mut visit: impl FnMut(usize)) {
        for &i in &self.members {
            self.is_member[i] = false;
            visit(i);
        }
        self.members.clear();
    }
}

/// A cycle-accurate NoC simulation instance.
///
/// # Examples
///
/// ```
/// use shg_sim::{Network, SimConfig, TrafficPattern};
/// use shg_topology::{generators, routing, Grid};
/// use shg_units::Cycles;
///
/// let mesh = generators::mesh(Grid::new(4, 4));
/// let routes = routing::default_routes(&mesh).expect("mesh routes");
/// let latencies = vec![Cycles::one(); mesh.num_links()];
/// let mut network = Network::new(&mesh, &routes, &latencies, SimConfig::fast_test());
/// let outcome = network.run(0.05, TrafficPattern::UniformRandom);
/// assert!(outcome.stable);
/// assert!(outcome.avg_packet_latency > 0.0);
/// ```
#[derive(Debug)]
pub struct Network<'a> {
    topology: &'a Topology,
    routes: &'a Routes,
    config: SimConfig,
    /// Effective latency per channel: floorplan link latency plus router
    /// pipeline overhead.
    latency: Vec<u64>,
    routers: Vec<Router>,
    /// Destination `(router, in_port)` of each channel.
    ch_dst: Vec<(usize, u8)>,
    /// Source `(router, out_port)` of each channel.
    ch_src: Vec<(usize, u8)>,
    /// In-flight flits per channel: `(arrival_cycle, flit)`.
    data_pipe: Vec<VecDeque<(u64, Flit)>>,
    /// In-flight credits per channel (flowing source-ward): `(cycle, vc)`.
    credit_pipe: Vec<VecDeque<(u64, u8)>>,
    /// Routers with occupied buffers.
    active_routers: ActiveSet,
    /// Channels with in-flight flits or credits.
    active_channels: ActiveSet,
    /// Routers that have held a flit since construction (or the last
    /// [`Network::reset`]) — a monotone superset of `active_routers`.
    /// All per-router mutable state (buffers, credits, round-robin
    /// pointers, request bitmasks) only ever changes on routers in this
    /// set, so a reset cleans exactly these and leaves untouched
    /// routers alone.
    touched_routers: ActiveSet,
    /// Channels that have carried a flit or credit since construction
    /// (or the last reset) — the monotone twin for the link pipelines.
    touched_channels: ActiveSet,
}

impl<'a> Network<'a> {
    /// Builds a simulation instance.
    ///
    /// `link_latencies` come from the floorplan model (one entry per
    /// bidirectional link; both directions share it).
    ///
    /// # Panics
    ///
    /// Panics if `link_latencies` does not match the topology's link count
    /// or the routing table needs more VC classes than configured VCs.
    #[must_use]
    pub fn new(
        topology: &'a Topology,
        routes: &'a Routes,
        link_latencies: &[Cycles],
        config: SimConfig,
    ) -> Self {
        assert_eq!(
            link_latencies.len(),
            topology.num_links(),
            "one latency per link required"
        );
        assert!(
            routes.num_vc_classes() <= config.num_vcs,
            "routing needs {} VC classes but only {} VCs are configured",
            routes.num_vc_classes(),
            config.num_vcs
        );
        let n = topology.num_tiles();
        let mut routers = Vec::with_capacity(n);
        for t in 0..n {
            let tile = TileId::new(t as u32);
            let mut in_channels = Vec::new();
            let mut out_channels = Vec::new();
            for &(_, link) in topology.neighbors(tile) {
                let out = topology.channel_from(tile, link);
                out_channels.push(out.id);
                // The paired reverse channel is this router's input.
                let reverse = ChannelId::new(out.id.index() as u32 ^ 1);
                in_channels.push(reverse);
            }
            routers.push(Router::new(in_channels, out_channels, &config));
        }
        let mut ch_dst = vec![(0usize, 0u8); topology.num_channels()];
        let mut ch_src = vec![(0usize, 0u8); topology.num_channels()];
        for (r, router) in routers.iter().enumerate() {
            for (p, &c) in router.in_channels.iter().enumerate() {
                ch_dst[c.index()] = (r, p as u8);
            }
            for (p, &c) in router.out_channels.iter().enumerate() {
                ch_src[c.index()] = (r, p as u8);
            }
        }
        let latency = (0..topology.num_channels())
            .map(|c| {
                link_latencies[ChannelId::new(c as u32).link().index()].value()
                    + u64::from(config.router_overhead)
            })
            .collect();
        let channels = topology.num_channels();
        Self {
            topology,
            routes,
            config,
            latency,
            routers,
            ch_dst,
            ch_src,
            data_pipe: vec![VecDeque::new(); channels],
            credit_pipe: vec![VecDeque::new(); channels],
            active_routers: ActiveSet::new(n),
            active_channels: ActiveSet::new(channels),
            touched_routers: ActiveSet::new(n),
            touched_channels: ActiveSet::new(channels),
        }
    }

    /// Returns the instance to its just-constructed state under a new
    /// RNG seed, **without re-allocating** routers, buffers or link
    /// pipelines: only the routers and channels actually touched since
    /// construction (or the previous reset) are cleaned, so the cost is
    /// O(touched) rather than O(network).
    ///
    /// A `reset(seed)` followed by [`Network::run`] is bit-identical to
    /// a fresh [`Network::new`] with `config.seed = seed` followed by
    /// the same run — for every scan, injection and allocation policy —
    /// which is what lets a sweep backend reuse one `Network` across
    /// the cells of a topology (see `ExecBackend::Reuse` in the sweep
    /// engine). The equivalence suite pins this under
    /// [`Network::run_validated`], where any stale request or
    /// active-set state trips an invariant assertion.
    pub fn reset(&mut self, seed: u64) {
        self.config.seed = seed;
        let routers = &mut self.routers;
        let config = &self.config;
        self.touched_routers
            .clear_with(|r| routers[r].reset(config));
        let (data, credit) = (&mut self.data_pipe, &mut self.credit_pipe);
        self.touched_channels.clear_with(|c| {
            data[c].clear();
            credit[c].clear();
        });
        // The active sets are subsets of the touched sets; their
        // members' state is already clean, only the membership flags
        // remain to drop.
        self.active_routers.clear_with(|_| ());
        self.active_channels.clear_with(|_| ());
    }

    /// Runs warm-up, measurement and drain phases at the given injection
    /// rate (flits per node per cycle) under `pattern`, visiting only
    /// active routers and channels.
    #[must_use]
    pub fn run(&mut self, rate: f64, pattern: TrafficPattern) -> SimOutcome {
        self.run_with_policy(rate, pattern, ScanPolicy::ActiveSet)
    }

    /// Like [`Network::run`] with an explicit [`ScanPolicy`]. Both
    /// policies produce bit-identical outcomes; `FullScan` exists so
    /// benchmarks and equivalence tests can measure the difference.
    /// (The injection and allocation policies are orthogonal and come
    /// from `config.injection` / `config.alloc`.)
    #[must_use]
    pub fn run_with_policy(
        &mut self,
        rate: f64,
        pattern: TrafficPattern,
        policy: ScanPolicy,
    ) -> SimOutcome {
        self.run_inner(rate, pattern, policy, false, None)
    }

    /// Like [`Network::run_with_policy`], additionally asserting every
    /// router's cross-structure invariants after each cycle: the
    /// occupancy counter matches the buffer contents, credits never
    /// exceed `buffer_depth`, `out_owner` reservations agree with the
    /// input-VC states, and the request-queue bitmasks mirror the
    /// buffers exactly. A testing aid for the allocator equivalence
    /// suite — orders of magnitude slower than a plain run.
    ///
    /// # Panics
    ///
    /// Panics with a description of the first violated invariant.
    #[must_use]
    pub fn run_validated(
        &mut self,
        rate: f64,
        pattern: TrafficPattern,
        policy: ScanPolicy,
    ) -> SimOutcome {
        self.run_inner(rate, pattern, policy, true, None)
    }

    /// Like [`Network::run`], additionally timing each simulation phase
    /// (injection, delivery, allocation) — the measurement behind the
    /// phase-cost decompositions in `injection_profile` and the
    /// `allocation_phase` benchmarks. The outcome is unaffected; the
    /// per-cycle timestamping adds a few percent of overhead.
    #[must_use]
    pub fn run_profiled(
        &mut self,
        rate: f64,
        pattern: TrafficPattern,
    ) -> (SimOutcome, PhaseProfile) {
        let mut profile = PhaseProfile::default();
        let outcome = self.run_inner(
            rate,
            pattern,
            ScanPolicy::ActiveSet,
            false,
            Some(&mut profile),
        );
        (outcome, profile)
    }

    fn run_inner(
        &mut self,
        rate: f64,
        pattern: TrafficPattern,
        policy: ScanPolicy,
        validate: bool,
        mut profile: Option<&mut PhaseProfile>,
    ) -> SimOutcome {
        let config = self.config.clone();
        let packet_prob = rate / f64::from(config.packet_len);
        let mut recorder = crate::stats::OutcomeRecorder::new(&config);
        let measure_end = recorder.measure_end();
        let hard_stop = measure_end + config.drain_limit;
        let grid = self.topology.grid();
        let mut injector = Injector::new(
            config.injection,
            config.seed,
            self.topology.num_tiles(),
            packet_prob,
            hard_stop,
        );
        // Compiled fault plan: `None` (the overwhelmingly common case)
        // keeps this loop on the exact fault-free path.
        let schedule =
            FaultSchedule::build(&config.faults, self.topology, self.routes.num_vc_classes());
        let mut epoch_idx = 0usize;
        let mut routes: &Routes = self.routes;
        let mut component: Option<&[u32]> = None;
        let mut dead_channels: Option<&[bool]> = None;
        let mut next_packet = 0u64;
        let mut now = 0u64;
        let mut traversal = TraversalOutput::default();
        loop {
            // Fault epochs strike at the top of their cycle, before that
            // cycle's injection: kill state is applied, and routing
            // switches to the surviving subgraph's table.
            if let Some(sched) = schedule.as_ref() {
                while epoch_idx < sched.epochs.len() && now >= sched.epochs[epoch_idx].at {
                    let epoch = &sched.epochs[epoch_idx];
                    self.apply_fault_epoch(epoch, sched.policy, now, &mut recorder);
                    routes = &epoch.routes;
                    component = Some(&epoch.component);
                    if sched.policy == InFlightPolicy::Drain {
                        // Under `Drop` no traffic can ever reach a dead
                        // channel (all transient state died with the
                        // epoch), so delivery needs no dead mask.
                        dead_channels = Some(&epoch.dead_channel);
                    }
                    epoch_idx += 1;
                }
            }
            let mut stamp = profile.as_ref().map(|_| std::time::Instant::now());
            // Phase A: packet generation (keeps injecting during drain to
            // sustain back-pressure). The injector owns the RNG streams;
            // per-tile streams make the arrivals schedule-independent, so
            // the event-driven calendar and the per-cycle scan agree
            // bit-for-bit. Fault gating comes *after* the destination
            // draw, so the RNG streams advance identically with and
            // without faults.
            injector.fire_at(now, |t, stream| {
                let src = TileId::new(t as u32);
                if let Some(dst) = pattern.destination(grid, src, stream) {
                    if let Some(component) = component {
                        let (a, b) = (component[t], component[dst.index()]);
                        if a == NO_COMPONENT || a != b {
                            recorder.record_unroutable(now);
                            return;
                        }
                    }
                    recorder.record_injection(now);
                    let id = next_packet;
                    next_packet += 1;
                    let inj = self.routers[t].injection_port();
                    for flit in Flit::packet(id, src, dst, config.packet_len, now) {
                        self.routers[t].enqueue(inj, 0, flit);
                    }
                    self.active_routers.insert(t);
                    self.touched_routers.insert(t);
                }
            });
            if let Some(p) = profile.as_deref_mut() {
                let t = stamp.expect("profiling stamps");
                p.injection += t.elapsed();
                stamp = Some(std::time::Instant::now());
            }
            // Phase B: deliver arrivals.
            self.deliver(now, policy, dead_channels, &mut recorder);
            if let Some(p) = profile.as_deref_mut() {
                let t = stamp.expect("profiling stamps");
                p.delivery += t.elapsed();
                stamp = Some(std::time::Instant::now());
            }
            // Phase C: per-router allocation and traversal, in ascending
            // router order under both policies. The allocation policy
            // (request-driven vs. exhaustive port × VC scan) comes from
            // the configuration and is bit-identical either way.
            let alloc = self.config.alloc;
            let sweep = match policy {
                ScanPolicy::ActiveSet => self.active_routers.start_sweep(),
                ScanPolicy::FullScan => (0..self.routers.len()).collect(),
            };
            for &r in &sweep {
                self.vc_allocate(r, routes, alloc, &mut traversal);
                self.routers[r].switch_allocate_and_traverse(&self.config, alloc, &mut traversal);
                for (channel, vc) in traversal.credits.drain(..) {
                    let lat = self.latency[channel.index()];
                    self.credit_pipe[channel.index()].push_back((now + lat, vc));
                    self.active_channels.insert(channel.index());
                    self.touched_channels.insert(channel.index());
                }
                for (channel, flit) in traversal.forwards.drain(..) {
                    let lat = self.latency[channel.index()];
                    self.data_pipe[channel.index()].push_back((now + lat, flit));
                    self.active_channels.insert(channel.index());
                    self.touched_channels.insert(channel.index());
                }
                for flit in traversal.ejected.drain(..) {
                    recorder.record_ejection(&flit, now);
                }
                for created in traversal.dropped.drain(..) {
                    recorder.record_drop(created);
                }
                if policy == ScanPolicy::ActiveSet && self.routers[r].has_occupied_buffers() {
                    self.active_routers.keep(r);
                }
            }
            if policy == ScanPolicy::ActiveSet {
                self.active_routers.finish_sweep(sweep);
            }
            if let Some(p) = profile.as_deref_mut() {
                p.allocation += stamp.expect("profiling stamps").elapsed();
            }
            if validate {
                for router in &self.routers {
                    router.assert_consistent(&self.config);
                }
            }
            now += 1;
            if now >= measure_end && recorder.drained() {
                break;
            }
            if now >= hard_stop {
                break;
            }
        }
        recorder.finalize(now, self.topology.num_tiles() as f64)
    }

    /// Delivers due flits and credits on (active) channels.
    ///
    /// `dead_channels` is `Some` only under an applied drain-policy
    /// fault epoch: flits due on a dead channel — and flits arriving at
    /// an input VC mid-sink — are discarded with their credit returned
    /// upstream, so senders drain instead of wedging. Credits deliver
    /// on dead channels unchanged.
    fn deliver(
        &mut self,
        now: u64,
        policy: ScanPolicy,
        dead_channels: Option<&[bool]>,
        recorder: &mut OutcomeRecorder,
    ) {
        let sweep = match policy {
            ScanPolicy::ActiveSet => self.active_channels.start_sweep(),
            ScanPolicy::FullScan => (0..self.data_pipe.len()).collect(),
        };
        for &c in &sweep {
            while let Some(&(ready, _)) = self.data_pipe[c].front() {
                if ready > now {
                    break;
                }
                let (_, flit) = self.data_pipe[c].pop_front().expect("checked front");
                let (r, p) = self.ch_dst[c];
                if let Some(dead) = dead_channels {
                    let discard = dead[c] || self.routers[r].is_sinking(p as usize, flit.vc);
                    if discard {
                        if flit.is_tail {
                            if !dead[c] {
                                self.routers[r].clear_sink(p as usize, flit.vc);
                            }
                            recorder.record_drop(flit.created);
                        }
                        let lat = self.latency[c];
                        self.credit_pipe[c].push_back((now + lat, flit.vc));
                        continue;
                    }
                }
                let router = &mut self.routers[r];
                debug_assert!(
                    router.buffers[p as usize][flit.vc as usize].len()
                        < self.config.buffer_depth as usize,
                    "buffer overflow: credits out of sync"
                );
                router.enqueue(p as usize, flit.vc as usize, flit);
                self.active_routers.insert(r);
                self.touched_routers.insert(r);
            }
            while let Some(&(ready, _)) = self.credit_pipe[c].front() {
                if ready > now {
                    break;
                }
                let (_, vc) = self.credit_pipe[c].pop_front().expect("checked front");
                let (r, p) = self.ch_src[c];
                self.routers[r].credits[p as usize][vc as usize] += 1;
                // No router activation: a credit alone creates no work;
                // any flit waiting on it keeps its router active.
            }
            if policy == ScanPolicy::ActiveSet
                && (!self.data_pipe[c].is_empty() || !self.credit_pipe[c].is_empty())
            {
                self.active_channels.keep(c);
            }
        }
        if policy == ScanPolicy::ActiveSet {
            self.active_channels.finish_sweep(sweep);
        }
    }

    /// The output port and VC class the head flit needs at router `tile`.
    fn route_head(
        topology: &Topology,
        routes: &Routes,
        router: &Router,
        tile: usize,
        flit: &Flit,
    ) -> (u8, u8) {
        if flit.dst.index() == tile {
            return (router.ejection_port() as u8, 0);
        }
        if routes.form() != RouteForm::Dense {
            // Compact forms answer (out port, class) directly: their port
            // numbering is the position in the sorted neighbor list, the
            // same order `Network::new` created the ports in.
            return routes.port_and_class(
                TileId::new(tile as u32),
                flit.src,
                flit.dst,
                flit.hop as usize,
            );
        }
        let path = routes.path(flit.src, flit.dst);
        let hop = &path[flit.hop as usize];
        debug_assert_eq!(
            topology.channel(hop.channel).from.index(),
            tile,
            "flit at wrong router for its path"
        );
        let port = router
            .out_channels
            .iter()
            .position(|&c| c == hop.channel)
            .expect("path channel leaves this tile") as u8;
        (port, hop.vc_class)
    }

    /// VC allocation for router `r` (routing closure plumbed in here).
    /// `routes` is the *current* table — the base one until a fault
    /// epoch swaps in a degraded table over the surviving subgraph.
    fn vc_allocate(
        &mut self,
        r: usize,
        routes: &Routes,
        alloc: AllocPolicy,
        out: &mut TraversalOutput,
    ) {
        let topology = self.topology;
        let num_vc_classes = routes.num_vc_classes();
        let router = &mut self.routers[r];
        // Split borrow: the routing closure reads topology/routes only.
        let route =
            |router: &Router, flit: &Flit| Self::route_head(topology, routes, router, r, flit);
        router.vc_allocate_with(&self.config, num_vc_classes, alloc, route, out);
    }

    /// Applies one fault epoch's state change at cycle `now`.
    ///
    /// Under [`InFlightPolicy::Drop`] the entire transient state of the
    /// fabric is discarded — every touched router and channel is wiped
    /// back to constructed state, counting each lost measured packet
    /// (by its tail flit) as dropped — while the injector, packet
    /// counter and clock carry on.
    ///
    /// Under [`InFlightPolicy::Drain`] only the routers that die *at
    /// this epoch* are wiped; each flit buffered on a network input
    /// port returns its credit upstream so senders drain. Everything
    /// else keeps flowing: dead-channel arrivals and unroutable
    /// packets are sunk cycle-by-cycle in [`Network::deliver`] and VC
    /// allocation.
    fn apply_fault_epoch(
        &mut self,
        epoch: &FaultEpoch,
        policy: InFlightPolicy,
        now: u64,
        recorder: &mut OutcomeRecorder,
    ) {
        match policy {
            InFlightPolicy::Drop => {
                let routers = &mut self.routers;
                let config = &self.config;
                self.touched_routers.clear_with(|r| {
                    for port in &routers[r].buffers {
                        for buffer in port {
                            for flit in buffer {
                                if flit.is_tail {
                                    recorder.record_drop(flit.created);
                                }
                            }
                        }
                    }
                    routers[r].reset(config);
                });
                let (data, credit) = (&mut self.data_pipe, &mut self.credit_pipe);
                self.touched_channels.clear_with(|c| {
                    for (_, flit) in &data[c] {
                        if flit.is_tail {
                            recorder.record_drop(flit.created);
                        }
                    }
                    data[c].clear();
                    credit[c].clear();
                });
                self.active_routers.clear_with(|_| ());
                self.active_channels.clear_with(|_| ());
            }
            InFlightPolicy::Drain => {
                for &r in &epoch.newly_dead_routers {
                    let r = r as usize;
                    let router = &mut self.routers[r];
                    let net_ports = router.in_channels.len();
                    for p in 0..router.buffers.len() {
                        for v in 0..router.buffers[p].len() {
                            for flit in &router.buffers[p][v] {
                                if flit.is_tail {
                                    recorder.record_drop(flit.created);
                                }
                                if p < net_ports {
                                    let c = router.in_channels[p].index();
                                    let lat = self.latency[c];
                                    self.credit_pipe[c].push_back((now + lat, flit.vc));
                                    self.active_channels.insert(c);
                                    self.touched_channels.insert(c);
                                }
                            }
                        }
                    }
                    // The credit counters must survive the reset: credits
                    // for flits this router sent before dying are still in
                    // flight back to it, and delivering them onto freshly
                    // refilled counters would push past the buffer depth.
                    // Preserved, they climb back toward (never past) full
                    // as the outstanding returns arrive — the router is
                    // never allocated again, so they are otherwise inert.
                    let saved = std::mem::take(&mut router.credits);
                    router.reset(&self.config);
                    self.routers[r].credits = saved;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use shg_topology::{generators, routing, Grid};

    fn unit_latencies(t: &Topology) -> Vec<Cycles> {
        vec![Cycles::one(); t.num_links()]
    }

    #[test]
    fn mesh_low_load_is_stable_and_all_delivered() {
        let mesh = generators::mesh(Grid::new(4, 4));
        let routes = routing::default_routes(&mesh).expect("routes");
        let lats = unit_latencies(&mesh);
        let mut net = Network::new(&mesh, &routes, &lats, SimConfig::fast_test());
        let out = net.run(0.05, TrafficPattern::UniformRandom);
        assert!(out.stable, "low load must drain: {out:?}");
        assert!(out.measured_packets > 50, "{out:?}");
        assert!(
            (out.accepted_rate - out.offered_rate).abs() < 0.02,
            "accepted ≈ offered at low load: {out:?}"
        );
    }

    #[test]
    fn latency_grows_with_load() {
        let mesh = generators::mesh(Grid::new(4, 4));
        let routes = routing::default_routes(&mesh).expect("routes");
        let lats = unit_latencies(&mesh);
        let low = Network::new(&mesh, &routes, &lats, SimConfig::fast_test())
            .run(0.02, TrafficPattern::UniformRandom);
        let high = Network::new(&mesh, &routes, &lats, SimConfig::fast_test())
            .run(0.30, TrafficPattern::UniformRandom);
        assert!(
            high.avg_packet_latency > low.avg_packet_latency,
            "low {low:?} high {high:?}"
        );
    }

    #[test]
    fn overload_is_detected_as_unstable() {
        // A ring cannot sustain anything close to 0.8 flits/node/cycle.
        let ring = generators::ring(Grid::new(4, 4));
        let routes = routing::default_routes(&ring).expect("routes");
        let lats = unit_latencies(&ring);
        let out = Network::new(&ring, &routes, &lats, SimConfig::fast_test())
            .run(0.8, TrafficPattern::UniformRandom);
        assert!(
            !out.stable || out.accepted_rate < 0.5 * out.offered_rate,
            "{out:?}"
        );
    }

    #[test]
    fn flattened_butterfly_outperforms_ring() {
        let grid = Grid::new(4, 4);
        let fb = generators::flattened_butterfly(grid);
        let ring = generators::ring(grid);
        let fb_routes = routing::default_routes(&fb).expect("fb");
        let ring_routes = routing::default_routes(&ring).expect("ring");
        // A 16-node ring saturates at ≤ 8/n = 0.5 flits/node/cycle even
        // ideally; the flattened butterfly is nowhere near saturation.
        let rate = 0.5;
        let fb_out = Network::new(
            &fb,
            &fb_routes,
            &unit_latencies(&fb),
            SimConfig::fast_test(),
        )
        .run(rate, TrafficPattern::UniformRandom);
        let ring_out = Network::new(
            &ring,
            &ring_routes,
            &unit_latencies(&ring),
            SimConfig::fast_test(),
        )
        .run(rate, TrafficPattern::UniformRandom);
        let fb_ok = fb_out.stable && fb_out.accepted_rate >= 0.9 * fb_out.offered_rate;
        let ring_ok = ring_out.stable && ring_out.accepted_rate >= 0.9 * ring_out.offered_rate;
        assert!(fb_ok, "FB should sustain 0.25: {fb_out:?}");
        assert!(!ring_ok, "ring should saturate below 0.25: {ring_out:?}");
    }

    #[test]
    fn longer_links_raise_latency() {
        let mesh = generators::mesh(Grid::new(4, 4));
        let routes = routing::default_routes(&mesh).expect("routes");
        let fast = Network::new(
            &mesh,
            &routes,
            &unit_latencies(&mesh),
            SimConfig::fast_test(),
        )
        .run(0.02, TrafficPattern::UniformRandom);
        let slow_lats = vec![Cycles::new(4); mesh.num_links()];
        let slow = Network::new(&mesh, &routes, &slow_lats, SimConfig::fast_test())
            .run(0.02, TrafficPattern::UniformRandom);
        assert!(slow.avg_packet_latency > fast.avg_packet_latency + 2.0);
    }

    #[test]
    fn simulation_is_deterministic() {
        let torus = generators::torus(Grid::new(4, 4));
        let routes = routing::default_routes(&torus).expect("routes");
        let lats = unit_latencies(&torus);
        let a = Network::new(&torus, &routes, &lats, SimConfig::fast_test())
            .run(0.1, TrafficPattern::UniformRandom);
        let b = Network::new(&torus, &routes, &lats, SimConfig::fast_test())
            .run(0.1, TrafficPattern::UniformRandom);
        assert_eq!(a, b);
    }

    #[test]
    fn all_topologies_simulate_without_deadlock() {
        let grid = Grid::new(4, 4);
        let topologies = vec![
            generators::ring(grid),
            generators::mesh(grid),
            generators::torus(grid),
            generators::folded_torus(grid),
            generators::hypercube(grid).expect("4x4"),
            generators::flattened_butterfly(grid),
        ];
        for t in topologies {
            let routes = routing::default_routes(&t).expect("routes");
            let lats = unit_latencies(&t);
            let out = Network::new(&t, &routes, &lats, SimConfig::fast_test())
                .run(0.1, TrafficPattern::UniformRandom);
            assert!(out.stable, "{t}: moderate load should drain, got {out:?}");
        }
    }

    #[test]
    fn slimnoc_simulates() {
        let slim = generators::slim_noc(Grid::new(10, 5)).expect("50 tiles");
        let routes = routing::default_routes(&slim).expect("routes");
        let lats = unit_latencies(&slim);
        let out = Network::new(&slim, &routes, &lats, SimConfig::fast_test())
            .run(0.1, TrafficPattern::UniformRandom);
        assert!(out.stable, "{out:?}");
    }

    #[test]
    fn transpose_traffic_runs() {
        let mesh = generators::mesh(Grid::new(4, 4));
        let routes = routing::default_routes(&mesh).expect("routes");
        let lats = unit_latencies(&mesh);
        let out = Network::new(&mesh, &routes, &lats, SimConfig::fast_test())
            .run(0.05, TrafficPattern::Transpose);
        assert!(out.stable);
        assert!(out.measured_packets > 0);
    }

    #[test]
    fn active_set_matches_full_scan_bit_for_bit() {
        // The central invariant of the active-set refactor: skipping idle
        // routers/channels must not change a single statistic.
        let grid = Grid::new(4, 4);
        let topologies = vec![
            generators::mesh(grid),
            generators::torus(grid),
            generators::ring(grid),
            generators::flattened_butterfly(grid),
        ];
        let patterns = [
            TrafficPattern::UniformRandom,
            TrafficPattern::Transpose,
            TrafficPattern::Tornado,
            TrafficPattern::Hotspot(30),
        ];
        for topology in &topologies {
            let routes = routing::default_routes(topology).expect("routes");
            let lats = unit_latencies(topology);
            for pattern in patterns {
                for rate in [0.01, 0.1, 0.4] {
                    let active = Network::new(topology, &routes, &lats, SimConfig::fast_test())
                        .run_with_policy(rate, pattern, ScanPolicy::ActiveSet);
                    let full = Network::new(topology, &routes, &lats, SimConfig::fast_test())
                        .run_with_policy(rate, pattern, ScanPolicy::FullScan);
                    assert_eq!(active, full, "{topology} {pattern} rate {rate}");
                }
            }
        }
    }

    #[test]
    fn active_set_matches_full_scan_with_multicycle_links() {
        let mesh = generators::mesh(Grid::new(4, 4));
        let routes = routing::default_routes(&mesh).expect("routes");
        let lats = vec![Cycles::new(3); mesh.num_links()];
        let active = Network::new(&mesh, &routes, &lats, SimConfig::fast_test()).run_with_policy(
            0.15,
            TrafficPattern::UniformRandom,
            ScanPolicy::ActiveSet,
        );
        let full = Network::new(&mesh, &routes, &lats, SimConfig::fast_test()).run_with_policy(
            0.15,
            TrafficPattern::UniformRandom,
            ScanPolicy::FullScan,
        );
        assert_eq!(active, full);
    }
}
