//! The cycle-accurate network model: input-queued virtual-channel routers
//! with credit-based flow control and multi-cycle pipelined links.
//!
//! Each router processes, per cycle:
//!
//! 1. **Arrivals** — flits and credits reaching the router this cycle,
//! 2. **VC allocation** — head flits at buffer fronts acquire an output
//!    virtual channel of the class their routed path demands,
//! 3. **Switch allocation** — separable input-first/output-second
//!    round-robin arbitration with one flit per input and output port,
//! 4. **Switch traversal** — winning flits enter their output link's
//!    pipeline (latency = floorplan link latency + router overhead) and a
//!    credit is returned upstream.
//!
//! Links that are too long for one clock cycle are pipelined (paper
//! Section II-A): a link of latency `L` holds up to `L` flits in flight.

use std::collections::VecDeque;

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use shg_topology::{routing::Routes, ChannelId, TileId, Topology};
use shg_units::Cycles;

use crate::config::SimConfig;
use crate::flit::Flit;
use crate::stats::SimOutcome;
use crate::traffic::TrafficPattern;

/// State of one input virtual channel.
#[derive(Debug, Clone, Copy, Default)]
struct InVc {
    /// `true` while a packet holds this VC's output reservation.
    active: bool,
    /// Reserved output port.
    out_port: u8,
    /// Reserved output VC.
    out_vc: u8,
}

/// One router: buffers, reservations, credits and arbitration state.
#[derive(Debug)]
struct Router {
    /// Incoming channels, defining network input ports `0..k`; port `k`
    /// is the injection port.
    in_channels: Vec<ChannelId>,
    /// Outgoing channels, defining network output ports `0..m`; port `m`
    /// is the ejection port.
    out_channels: Vec<ChannelId>,
    /// `buffers[in_port][vc]`.
    buffers: Vec<Vec<VecDeque<Flit>>>,
    /// `in_state[in_port][vc]`.
    in_state: Vec<Vec<InVc>>,
    /// `out_owner[out_port][vc]`: which (in_port, vc) holds the output VC.
    out_owner: Vec<Vec<Option<(u8, u8)>>>,
    /// `credits[out_port][vc]`: free downstream buffer slots.
    credits: Vec<Vec<u16>>,
    /// Round-robin pointer per output port for VC allocation.
    va_rr: Vec<u8>,
    /// Round-robin pointer per input port for switch allocation.
    sa_in_rr: Vec<u8>,
    /// Round-robin pointer per output port for switch allocation.
    sa_out_rr: Vec<u8>,
}

impl Router {
    fn injection_port(&self) -> usize {
        self.in_channels.len()
    }

    fn ejection_port(&self) -> usize {
        self.out_channels.len()
    }
}

/// A cycle-accurate NoC simulation instance.
///
/// # Examples
///
/// ```
/// use shg_sim::{Network, SimConfig, TrafficPattern};
/// use shg_topology::{generators, routing, Grid};
/// use shg_units::Cycles;
///
/// let mesh = generators::mesh(Grid::new(4, 4));
/// let routes = routing::default_routes(&mesh).expect("mesh routes");
/// let latencies = vec![Cycles::one(); mesh.num_links()];
/// let mut network = Network::new(&mesh, &routes, &latencies, SimConfig::fast_test());
/// let outcome = network.run(0.05, TrafficPattern::UniformRandom);
/// assert!(outcome.stable);
/// assert!(outcome.avg_packet_latency > 0.0);
/// ```
#[derive(Debug)]
pub struct Network<'a> {
    topology: &'a Topology,
    routes: &'a Routes,
    config: SimConfig,
    /// Effective latency per channel: floorplan link latency plus router
    /// pipeline overhead.
    latency: Vec<u64>,
    routers: Vec<Router>,
    /// Destination `(router, in_port)` of each channel.
    ch_dst: Vec<(usize, u8)>,
    /// Source `(router, out_port)` of each channel.
    ch_src: Vec<(usize, u8)>,
    /// In-flight flits per channel: `(arrival_cycle, flit)`.
    data_pipe: Vec<VecDeque<(u64, Flit)>>,
    /// In-flight credits per channel (flowing source-ward): `(cycle, vc)`.
    credit_pipe: Vec<VecDeque<(u64, u8)>>,
}

impl<'a> Network<'a> {
    /// Builds a simulation instance.
    ///
    /// `link_latencies` come from the floorplan model (one entry per
    /// bidirectional link; both directions share it).
    ///
    /// # Panics
    ///
    /// Panics if `link_latencies` does not match the topology's link count
    /// or the routing table needs more VC classes than configured VCs.
    #[must_use]
    pub fn new(
        topology: &'a Topology,
        routes: &'a Routes,
        link_latencies: &[Cycles],
        config: SimConfig,
    ) -> Self {
        assert_eq!(
            link_latencies.len(),
            topology.num_links(),
            "one latency per link required"
        );
        assert!(
            routes.num_vc_classes() <= config.num_vcs,
            "routing needs {} VC classes but only {} VCs are configured",
            routes.num_vc_classes(),
            config.num_vcs
        );
        let n = topology.num_tiles();
        let vcs = config.num_vcs as usize;
        let mut routers = Vec::with_capacity(n);
        for t in 0..n {
            let tile = TileId::new(t as u32);
            let mut in_channels = Vec::new();
            let mut out_channels = Vec::new();
            for &(_, link) in topology.neighbors(tile) {
                let out = topology.channel_from(tile, link);
                out_channels.push(out.id);
                // The paired reverse channel is this router's input.
                let reverse = ChannelId::new(out.id.index() as u32 ^ 1);
                in_channels.push(reverse);
            }
            let in_ports = in_channels.len() + 1;
            let out_ports = out_channels.len() + 1;
            routers.push(Router {
                in_channels,
                out_channels,
                buffers: vec![vec![VecDeque::new(); vcs]; in_ports],
                in_state: vec![vec![InVc::default(); vcs]; in_ports],
                out_owner: vec![vec![None; vcs]; out_ports],
                credits: vec![vec![config.buffer_depth; vcs]; out_ports],
                va_rr: vec![0; out_ports],
                sa_in_rr: vec![0; in_ports],
                sa_out_rr: vec![0; out_ports],
            });
        }
        let mut ch_dst = vec![(0usize, 0u8); topology.num_channels()];
        let mut ch_src = vec![(0usize, 0u8); topology.num_channels()];
        for (r, router) in routers.iter().enumerate() {
            for (p, &c) in router.in_channels.iter().enumerate() {
                ch_dst[c.index()] = (r, p as u8);
            }
            for (p, &c) in router.out_channels.iter().enumerate() {
                ch_src[c.index()] = (r, p as u8);
            }
        }
        let latency = (0..topology.num_channels())
            .map(|c| {
                link_latencies[ChannelId::new(c as u32).link().index()].value()
                    + u64::from(config.router_overhead)
            })
            .collect();
        let channels = topology.num_channels();
        Self {
            topology,
            routes,
            config,
            latency,
            routers,
            ch_dst,
            ch_src,
            data_pipe: vec![VecDeque::new(); channels],
            credit_pipe: vec![VecDeque::new(); channels],
        }
    }

    /// Runs warm-up, measurement and drain phases at the given injection
    /// rate (flits per node per cycle) under `pattern`.
    #[must_use]
    pub fn run(&mut self, rate: f64, pattern: TrafficPattern) -> SimOutcome {
        let config = self.config.clone();
        let mut rng = SmallRng::seed_from_u64(config.seed);
        let packet_prob = rate / config.packet_len as f64;
        let measure_start = config.warmup;
        let measure_end = config.warmup + config.measure;
        let hard_stop = measure_end + config.drain_limit;
        let mut next_packet = 0u64;
        let mut outstanding_measured = 0u64;
        let mut latencies = Vec::new();
        let mut ejected_in_window = 0u64;
        let mut injected_in_window = 0u64;
        let mut now = 0u64;
        loop {
            // Phase A: packet generation (keeps injecting during drain to
            // sustain back-pressure).
            for t in 0..self.topology.num_tiles() {
                if rng.gen::<f64>() < packet_prob {
                    let src = TileId::new(t as u32);
                    if let Some(dst) = pattern.destination(self.topology.grid(), src, &mut rng) {
                        let measured = now >= measure_start && now < measure_end;
                        if measured {
                            outstanding_measured += 1;
                            injected_in_window += config.packet_len as u64;
                        }
                        let id = next_packet;
                        next_packet += 1;
                        let inj = self.routers[t].injection_port();
                        for flit in Flit::packet(id, src, dst, config.packet_len, now) {
                            self.routers[t].buffers[inj][0].push_back(flit);
                        }
                    }
                }
            }
            // Phase B: deliver arrivals.
            self.deliver(now);
            // Phase C: per-router allocation and traversal.
            for r in 0..self.routers.len() {
                self.vc_allocate(r);
                let ejected = self.switch_allocate_and_traverse(r, now);
                for flit in ejected {
                    if flit.is_tail {
                        let measured =
                            flit.created >= measure_start && flit.created < measure_end;
                        if measured {
                            latencies.push((now - flit.created) as f64);
                            outstanding_measured -= 1;
                        }
                    }
                    if now >= measure_start && now < measure_end {
                        ejected_in_window += 1;
                    }
                }
            }
            now += 1;
            if now >= measure_end && outstanding_measured == 0 {
                break;
            }
            if now >= hard_stop {
                break;
            }
        }
        let stable = outstanding_measured == 0;
        let avg_latency = if latencies.is_empty() {
            0.0
        } else {
            latencies.iter().sum::<f64>() / latencies.len() as f64
        };
        let max_latency = latencies.iter().copied().fold(0.0f64, f64::max);
        let nodes = self.topology.num_tiles() as f64;
        SimOutcome {
            offered_rate: injected_in_window as f64 / (config.measure as f64 * nodes),
            accepted_rate: ejected_in_window as f64 / (config.measure as f64 * nodes),
            avg_packet_latency: avg_latency,
            p50_packet_latency: crate::stats::percentile(&latencies, 0.5),
            p99_packet_latency: crate::stats::percentile(&latencies, 0.99),
            max_packet_latency: max_latency,
            measured_packets: latencies.len() as u64,
            stable,
            cycles: now,
        }
    }

    /// Delivers due flits and credits.
    fn deliver(&mut self, now: u64) {
        for c in 0..self.data_pipe.len() {
            while let Some(&(ready, _)) = self.data_pipe[c].front() {
                if ready > now {
                    break;
                }
                let (_, flit) = self.data_pipe[c].pop_front().expect("checked front");
                let (r, p) = self.ch_dst[c];
                let router = &mut self.routers[r];
                let buffer = &mut router.buffers[p as usize][flit.vc as usize];
                debug_assert!(
                    buffer.len() < self.config.buffer_depth as usize,
                    "buffer overflow: credits out of sync"
                );
                buffer.push_back(flit);
            }
            while let Some(&(ready, _)) = self.credit_pipe[c].front() {
                if ready > now {
                    break;
                }
                let (_, vc) = self.credit_pipe[c].pop_front().expect("checked front");
                let (r, p) = self.ch_src[c];
                self.routers[r].credits[p as usize][vc as usize] += 1;
            }
        }
    }

    /// The output port and VC class the head flit needs at router `tile`.
    fn route_head(&self, tile: usize, flit: &Flit) -> (u8, u8) {
        let router = &self.routers[tile];
        if flit.dst.index() == tile {
            return (router.ejection_port() as u8, 0);
        }
        let path = self.routes.path(flit.src, flit.dst);
        let hop = &path[flit.hop as usize];
        debug_assert_eq!(
            self.topology.channel(hop.channel).from.index(),
            tile,
            "flit at wrong router for its path"
        );
        let port = router
            .out_channels
            .iter()
            .position(|&c| c == hop.channel)
            .expect("path channel leaves this tile") as u8;
        (port, hop.vc_class)
    }

    /// VC allocation: head flits at buffer fronts acquire output VCs.
    fn vc_allocate(&mut self, r: usize) {
        let vcs = self.config.num_vcs as usize;
        let in_ports = self.routers[r].buffers.len();
        for p in 0..in_ports {
            for v in 0..vcs {
                let state = self.routers[r].in_state[p][v];
                if state.active {
                    continue;
                }
                let Some(front) = self.routers[r].buffers[p][v].front().copied() else {
                    continue;
                };
                if !front.is_head {
                    // A body flit at the front of an inactive VC can only
                    // happen transiently after a tail release; skip.
                    continue;
                }
                let (out_port, class) = self.route_head(r, &front);
                let router = &mut self.routers[r];
                if out_port as usize == router.ejection_port() {
                    router.in_state[p][v] = InVc {
                        active: true,
                        out_port,
                        out_vc: 0,
                    };
                    continue;
                }
                // Grant a free output VC in the class's range, rotating.
                let range = self
                    .config
                    .vc_range(class, self.routes.num_vc_classes().max(1));
                let len = range.len() as u8;
                let start = router.va_rr[out_port as usize] % len.max(1);
                let granted = (0..len).map(|i| range.start + (start + i) % len).find(|&ov| {
                    router.out_owner[out_port as usize][ov as usize].is_none()
                });
                if let Some(ov) = granted {
                    router.out_owner[out_port as usize][ov as usize] = Some((p as u8, v as u8));
                    router.va_rr[out_port as usize] =
                        router.va_rr[out_port as usize].wrapping_add(1);
                    router.in_state[p][v] = InVc {
                        active: true,
                        out_port,
                        out_vc: ov,
                    };
                }
            }
        }
    }

    /// Switch allocation (separable, input-first) and traversal. Returns
    /// flits ejected at this router.
    fn switch_allocate_and_traverse(&mut self, r: usize, now: u64) -> Vec<Flit> {
        let vcs = self.config.num_vcs as usize;
        let in_ports = self.routers[r].buffers.len();
        let out_ports = self.routers[r].out_channels.len() + 1;
        // Input arbitration: one candidate VC per input port.
        let mut input_winner: Vec<Option<u8>> = vec![None; in_ports];
        for p in 0..in_ports {
            let router = &self.routers[r];
            let start = router.sa_in_rr[p] as usize;
            for i in 0..vcs {
                let v = (start + i) % vcs;
                let state = router.in_state[p][v];
                if !state.active || router.buffers[p][v].is_empty() {
                    continue;
                }
                let is_ejection = state.out_port as usize == router.ejection_port();
                if !is_ejection
                    && router.credits[state.out_port as usize][state.out_vc as usize] == 0
                {
                    continue;
                }
                input_winner[p] = Some(v as u8);
                break;
            }
        }
        // Output arbitration: one input per output port.
        let mut output_winner: Vec<Option<u8>> = vec![None; out_ports];
        for o in 0..out_ports {
            let router = &self.routers[r];
            let start = router.sa_out_rr[o] as usize;
            for i in 0..in_ports {
                let p = (start + i) % in_ports;
                if let Some(v) = input_winner[p] {
                    if router.in_state[p][v as usize].out_port as usize == o {
                        output_winner[o] = Some(p as u8);
                        break;
                    }
                }
            }
        }
        // Traversal.
        let mut ejected = Vec::new();
        for o in 0..out_ports {
            let Some(p) = output_winner[o] else { continue };
            let p = p as usize;
            let v = input_winner[p].expect("winner has a VC") as usize;
            let router = &mut self.routers[r];
            let state = router.in_state[p][v];
            let mut flit = router.buffers[p][v].pop_front().expect("nonempty");
            router.sa_in_rr[p] = (v as u8).wrapping_add(1) % self.config.num_vcs;
            router.sa_out_rr[o] = (p as u8).wrapping_add(1) % in_ports as u8;
            // Return a credit upstream (injection port has none).
            if p < router.in_channels.len() {
                let in_channel = router.in_channels[p];
                let lat = self.latency[in_channel.index()];
                self.credit_pipe[in_channel.index()].push_back((now + lat, flit.vc));
            }
            let router = &mut self.routers[r];
            if o == router.ejection_port() {
                if flit.is_tail {
                    router.in_state[p][v].active = false;
                }
                ejected.push(flit);
                continue;
            }
            let out_channel = router.out_channels[o];
            flit.vc = state.out_vc;
            flit.hop += 1;
            router.credits[o][state.out_vc as usize] -= 1;
            if flit.is_tail {
                router.out_owner[o][state.out_vc as usize] = None;
                router.in_state[p][v].active = false;
            }
            let lat = self.latency[out_channel.index()];
            self.data_pipe[out_channel.index()].push_back((now + lat, flit));
        }
        ejected
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use shg_topology::{generators, routing, Grid};

    fn unit_latencies(t: &Topology) -> Vec<Cycles> {
        vec![Cycles::one(); t.num_links()]
    }

    #[test]
    fn mesh_low_load_is_stable_and_all_delivered() {
        let mesh = generators::mesh(Grid::new(4, 4));
        let routes = routing::default_routes(&mesh).expect("routes");
        let lats = unit_latencies(&mesh);
        let mut net = Network::new(&mesh, &routes, &lats, SimConfig::fast_test());
        let out = net.run(0.05, TrafficPattern::UniformRandom);
        assert!(out.stable, "low load must drain: {out:?}");
        assert!(out.measured_packets > 50, "{out:?}");
        assert!(
            (out.accepted_rate - out.offered_rate).abs() < 0.02,
            "accepted ≈ offered at low load: {out:?}"
        );
    }

    #[test]
    fn latency_grows_with_load() {
        let mesh = generators::mesh(Grid::new(4, 4));
        let routes = routing::default_routes(&mesh).expect("routes");
        let lats = unit_latencies(&mesh);
        let low = Network::new(&mesh, &routes, &lats, SimConfig::fast_test())
            .run(0.02, TrafficPattern::UniformRandom);
        let high = Network::new(&mesh, &routes, &lats, SimConfig::fast_test())
            .run(0.30, TrafficPattern::UniformRandom);
        assert!(
            high.avg_packet_latency > low.avg_packet_latency,
            "low {low:?} high {high:?}"
        );
    }

    #[test]
    fn overload_is_detected_as_unstable() {
        // A ring cannot sustain anything close to 0.8 flits/node/cycle.
        let ring = generators::ring(Grid::new(4, 4));
        let routes = routing::default_routes(&ring).expect("routes");
        let lats = unit_latencies(&ring);
        let out = Network::new(&ring, &routes, &lats, SimConfig::fast_test())
            .run(0.8, TrafficPattern::UniformRandom);
        assert!(
            !out.stable || out.accepted_rate < 0.5 * out.offered_rate,
            "{out:?}"
        );
    }

    #[test]
    fn flattened_butterfly_outperforms_ring() {
        let grid = Grid::new(4, 4);
        let fb = generators::flattened_butterfly(grid);
        let ring = generators::ring(grid);
        let fb_routes = routing::default_routes(&fb).expect("fb");
        let ring_routes = routing::default_routes(&ring).expect("ring");
        // A 16-node ring saturates at ≤ 8/n = 0.5 flits/node/cycle even
        // ideally; the flattened butterfly is nowhere near saturation.
        let rate = 0.5;
        let fb_out = Network::new(&fb, &fb_routes, &unit_latencies(&fb), SimConfig::fast_test())
            .run(rate, TrafficPattern::UniformRandom);
        let ring_out = Network::new(
            &ring,
            &ring_routes,
            &unit_latencies(&ring),
            SimConfig::fast_test(),
        )
        .run(rate, TrafficPattern::UniformRandom);
        let fb_ok = fb_out.stable && fb_out.accepted_rate >= 0.9 * fb_out.offered_rate;
        let ring_ok = ring_out.stable && ring_out.accepted_rate >= 0.9 * ring_out.offered_rate;
        assert!(fb_ok, "FB should sustain 0.25: {fb_out:?}");
        assert!(!ring_ok, "ring should saturate below 0.25: {ring_out:?}");
    }

    #[test]
    fn longer_links_raise_latency() {
        let mesh = generators::mesh(Grid::new(4, 4));
        let routes = routing::default_routes(&mesh).expect("routes");
        let fast = Network::new(&mesh, &routes, &unit_latencies(&mesh), SimConfig::fast_test())
            .run(0.02, TrafficPattern::UniformRandom);
        let slow_lats = vec![Cycles::new(4); mesh.num_links()];
        let slow = Network::new(&mesh, &routes, &slow_lats, SimConfig::fast_test())
            .run(0.02, TrafficPattern::UniformRandom);
        assert!(slow.avg_packet_latency > fast.avg_packet_latency + 2.0);
    }

    #[test]
    fn simulation_is_deterministic() {
        let torus = generators::torus(Grid::new(4, 4));
        let routes = routing::default_routes(&torus).expect("routes");
        let lats = unit_latencies(&torus);
        let a = Network::new(&torus, &routes, &lats, SimConfig::fast_test())
            .run(0.1, TrafficPattern::UniformRandom);
        let b = Network::new(&torus, &routes, &lats, SimConfig::fast_test())
            .run(0.1, TrafficPattern::UniformRandom);
        assert_eq!(a, b);
    }

    #[test]
    fn all_topologies_simulate_without_deadlock() {
        let grid = Grid::new(4, 4);
        let topologies = vec![
            generators::ring(grid),
            generators::mesh(grid),
            generators::torus(grid),
            generators::folded_torus(grid),
            generators::hypercube(grid).expect("4x4"),
            generators::flattened_butterfly(grid),
        ];
        for t in topologies {
            let routes = routing::default_routes(&t).expect("routes");
            let lats = unit_latencies(&t);
            let out = Network::new(&t, &routes, &lats, SimConfig::fast_test())
                .run(0.1, TrafficPattern::UniformRandom);
            assert!(
                out.stable,
                "{t}: moderate load should drain, got {out:?}"
            );
        }
    }

    #[test]
    fn slimnoc_simulates() {
        let slim = generators::slim_noc(Grid::new(10, 5)).expect("50 tiles");
        let routes = routing::default_routes(&slim).expect("routes");
        let lats = unit_latencies(&slim);
        let out = Network::new(&slim, &routes, &lats, SimConfig::fast_test())
            .run(0.1, TrafficPattern::UniformRandom);
        assert!(out.stable, "{out:?}");
    }

    #[test]
    fn transpose_traffic_runs() {
        let mesh = generators::mesh(Grid::new(4, 4));
        let routes = routing::default_routes(&mesh).expect("routes");
        let lats = unit_latencies(&mesh);
        let out = Network::new(&mesh, &routes, &lats, SimConfig::fast_test())
            .run(0.05, TrafficPattern::Transpose);
        assert!(out.stable);
        assert!(out.measured_packets > 0);
    }
}
