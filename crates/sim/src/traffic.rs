//! Synthetic traffic patterns.
//!
//! The paper's Fig. 6 uses uniform random traffic; the other standard
//! BookSim patterns are provided for wider evaluation.

use rand::Rng;
use serde::{Deserialize, Serialize};

use shg_topology::{Grid, TileCoord, TileId};

/// A synthetic traffic pattern: maps a source tile to a destination.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum TrafficPattern {
    /// Every destination equally likely (excluding the source itself).
    UniformRandom,
    /// `(r, c) → (c', r')` over the transposed grid: tile at fractional
    /// position (x, y) sends to (y, x). Requires nothing of the grid; on
    /// non-square grids coordinates are scaled.
    Transpose,
    /// Destination index = bit-complement of the source index.
    BitComplement,
    /// Destination row/column mirrored: `(r, c) → (R−1−r, C−1−c)`.
    Reverse,
    /// Tornado: half-way around each dimension,
    /// `(r, c) → (r + ⌈R/2⌉−1 mod R, c + ⌈C/2⌉−1 mod C)`.
    Tornado,
    /// Nearest neighbor: `(r, c) → (r, c+1 mod C)`.
    Neighbor,
    /// A fraction of traffic targets one hot-spot tile; the rest is
    /// uniform. The `u8` is the hot-spot percentage (0–100).
    Hotspot(u8),
}

impl TrafficPattern {
    /// Samples a destination for `src`.
    ///
    /// `rng` is the **source tile's private stream** (see
    /// [`crate::tile_stream_seed`]): the simulator hands each tile its own
    /// generator, so the destinations one tile draws can never perturb
    /// another tile's arrival process — the property that lets the
    /// event-driven injection calendar skip idle tiles bit-identically.
    ///
    /// Deterministic patterns ignore the RNG. If the pattern maps a tile
    /// to itself (e.g. transpose on the diagonal), the tile does not
    /// inject and `None` is returned.
    pub fn destination<R: Rng>(self, grid: Grid, src: TileId, rng: &mut R) -> Option<TileId> {
        let n = grid.num_tiles();
        let coord = grid.coord(src);
        let dst = match self {
            Self::UniformRandom => {
                let mut d = rng.gen_range(0..n - 1);
                if d >= src.index() {
                    d += 1;
                }
                TileId::new(d as u32)
            }
            Self::Transpose => {
                // Scale coordinates across dimensions for non-square grids.
                let r = (coord.col as u32 * grid.rows() as u32 / grid.cols() as u32) as u16;
                let c = (coord.row as u32 * grid.cols() as u32 / grid.rows() as u32) as u16;
                grid.id(TileCoord::new(
                    r.min(grid.rows() - 1),
                    c.min(grid.cols() - 1),
                ))
            }
            Self::BitComplement => {
                let bits = usize::BITS - (n - 1).leading_zeros();
                let d = (!src.index()) & ((1usize << bits) - 1);
                TileId::new(d.min(n - 1) as u32)
            }
            Self::Reverse => grid.id(TileCoord::new(
                grid.rows() - 1 - coord.row,
                grid.cols() - 1 - coord.col,
            )),
            Self::Tornado => {
                let dr = (grid.rows() as u32).div_ceil(2) - 1;
                let dc = (grid.cols() as u32).div_ceil(2) - 1;
                grid.id(TileCoord::new(
                    ((coord.row as u32 + dr) % grid.rows() as u32) as u16,
                    ((coord.col as u32 + dc) % grid.cols() as u32) as u16,
                ))
            }
            Self::Neighbor => grid.id(TileCoord::new(coord.row, (coord.col + 1) % grid.cols())),
            Self::Hotspot(percent) => {
                if rng.gen_range(0..100u8) < percent {
                    TileId::new((n / 2) as u32)
                } else {
                    let mut d = rng.gen_range(0..n - 1);
                    if d >= src.index() {
                        d += 1;
                    }
                    TileId::new(d as u32)
                }
            }
        };
        (dst != src).then_some(dst)
    }
}

impl TrafficPattern {
    /// Decodes the pattern from its serialized JSON form (unit variants
    /// as their name string, `Hotspot(p)` as `{"Hotspot": p}`) — the
    /// inverse of the derived `Serialize`, used by the sweep journal
    /// reader.
    pub(crate) fn from_json(value: &serde_json::Value) -> Option<Self> {
        if let Some(name) = value.as_str() {
            return match name {
                "UniformRandom" => Some(Self::UniformRandom),
                "Transpose" => Some(Self::Transpose),
                "BitComplement" => Some(Self::BitComplement),
                "Reverse" => Some(Self::Reverse),
                "Tornado" => Some(Self::Tornado),
                "Neighbor" => Some(Self::Neighbor),
                _ => None,
            };
        }
        let percent = value.get("Hotspot")?.as_u64()?;
        u8::try_from(percent).ok().map(Self::Hotspot)
    }
}

impl std::fmt::Display for TrafficPattern {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::UniformRandom => write!(f, "uniform-random"),
            Self::Transpose => write!(f, "transpose"),
            Self::BitComplement => write!(f, "bit-complement"),
            Self::Reverse => write!(f, "reverse"),
            Self::Tornado => write!(f, "tornado"),
            Self::Neighbor => write!(f, "neighbor"),
            Self::Hotspot(p) => write!(f, "hotspot-{p}%"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn json_roundtrips_every_pattern() {
        for pattern in [
            TrafficPattern::UniformRandom,
            TrafficPattern::Transpose,
            TrafficPattern::BitComplement,
            TrafficPattern::Reverse,
            TrafficPattern::Tornado,
            TrafficPattern::Neighbor,
            TrafficPattern::Hotspot(20),
            TrafficPattern::Hotspot(0),
        ] {
            let json = serde_json::to_string(&pattern).expect("serializes");
            let value: serde_json::Value = json.parse().expect("parses");
            assert_eq!(TrafficPattern::from_json(&value), Some(pattern), "{json}");
        }
        let bogus: serde_json::Value = "\"Sideways\"".parse().expect("parses");
        assert_eq!(TrafficPattern::from_json(&bogus), None);
    }

    #[test]
    fn uniform_never_self() {
        let grid = Grid::new(4, 4);
        let mut rng = SmallRng::seed_from_u64(1);
        for src in grid.tiles() {
            for _ in 0..100 {
                let dst = TrafficPattern::UniformRandom
                    .destination(grid, src, &mut rng)
                    .expect("uniform always finds a destination");
                assert_ne!(dst, src);
            }
        }
    }

    #[test]
    fn uniform_covers_all_destinations() {
        let grid = Grid::new(4, 4);
        let mut rng = SmallRng::seed_from_u64(2);
        let src = TileId::new(5);
        let mut seen = std::collections::HashSet::new();
        for _ in 0..2000 {
            seen.insert(
                TrafficPattern::UniformRandom
                    .destination(grid, src, &mut rng)
                    .expect("dst"),
            );
        }
        assert_eq!(seen.len(), 15);
    }

    #[test]
    fn transpose_diagonal_is_silent() {
        let grid = Grid::new(4, 4);
        let mut rng = SmallRng::seed_from_u64(3);
        let diag = grid.id(TileCoord::new(2, 2));
        assert_eq!(
            TrafficPattern::Transpose.destination(grid, diag, &mut rng),
            None
        );
        let off = grid.id(TileCoord::new(1, 3));
        assert_eq!(
            TrafficPattern::Transpose.destination(grid, off, &mut rng),
            Some(grid.id(TileCoord::new(3, 1)))
        );
    }

    #[test]
    fn reverse_is_an_involution() {
        let grid = Grid::new(4, 6);
        let mut rng = SmallRng::seed_from_u64(4);
        for src in grid.tiles() {
            if let Some(dst) = TrafficPattern::Reverse.destination(grid, src, &mut rng) {
                let back = TrafficPattern::Reverse
                    .destination(grid, dst, &mut rng)
                    .expect("reverse of non-center is non-center");
                assert_eq!(back, src);
            }
        }
    }

    #[test]
    fn tornado_offsets_by_half() {
        let grid = Grid::new(8, 8);
        let mut rng = SmallRng::seed_from_u64(5);
        let src = grid.id(TileCoord::new(0, 0));
        let dst = TrafficPattern::Tornado
            .destination(grid, src, &mut rng)
            .expect("dst");
        assert_eq!(grid.coord(dst), TileCoord::new(3, 3));
    }

    #[test]
    fn neighbor_wraps() {
        let grid = Grid::new(2, 4);
        let mut rng = SmallRng::seed_from_u64(6);
        let src = grid.id(TileCoord::new(1, 3));
        let dst = TrafficPattern::Neighbor
            .destination(grid, src, &mut rng)
            .expect("dst");
        assert_eq!(grid.coord(dst), TileCoord::new(1, 0));
    }

    #[test]
    fn hotspot_concentrates_traffic() {
        let grid = Grid::new(4, 4);
        let mut rng = SmallRng::seed_from_u64(7);
        let hot = TileId::new(8);
        let mut hits = 0;
        let trials = 1000;
        for _ in 0..trials {
            if TrafficPattern::Hotspot(50).destination(grid, TileId::new(0), &mut rng) == Some(hot)
            {
                hits += 1;
            }
        }
        assert!(hits > trials / 3, "hotspot hits {hits}/{trials}");
    }
}
