//! The parallel sweep engine: one shared evaluation loop for every
//! experiment that measures (topology × traffic pattern × injection
//! rate) grids.
//!
//! The paper's prediction toolchain exists to sweep thousands of such
//! points (Fig. 6's Pareto fronts); before this module each bench
//! binary carried its own warmup/measure loop. An [`Experiment`] owns a
//! set of [`SweepCase`]s (topology + routing table + per-link
//! latencies, computed **once** per topology and shared across all of
//! its grid cells) and a [`SweepSpec`] (the rate × pattern grid); it
//! fans the grid out over threads and returns a [`SweepResult`] that is
//! deterministic — same spec and seed ⇒ byte-identical JSON — no matter
//! how many threads ran it, because every point derives its RNG seed
//! from its grid coordinates alone and results are collected in grid
//! order.
//!
//! # Examples
//!
//! ```
//! use shg_sim::{sweep, Experiment, SimConfig, SweepSpec};
//! use shg_topology::{generators, Grid};
//!
//! let mesh = generators::mesh(Grid::new(4, 4));
//! let spec = SweepSpec::new(SimConfig::fast_test())
//!     .rates([0.02, 0.1])
//!     .patterns(sweep::ALL_PATTERNS);
//! let result = Experiment::new(spec)
//!     .with_unit_latency_case("mesh", &mesh)
//!     .expect("mesh routes")
//!     .run_parallel();
//! assert_eq!(result.points.len(), 2 * sweep::ALL_PATTERNS.len());
//! ```

use rayon::prelude::*;
use serde::Serialize;

use shg_topology::routing::{self, BuildRoutesError, Routes};
use shg_topology::Topology;
use shg_units::Cycles;

use crate::config::SimConfig;
use crate::network::Network;
use crate::stats::SimOutcome;
use crate::traffic::TrafficPattern;

/// Every traffic pattern the simulator models, in the order used by the
/// wide-evaluation sweeps (hot-spot at 20%, a common stress setting).
pub const ALL_PATTERNS: [TrafficPattern; 7] = [
    TrafficPattern::UniformRandom,
    TrafficPattern::Transpose,
    TrafficPattern::BitComplement,
    TrafficPattern::Reverse,
    TrafficPattern::Tornado,
    TrafficPattern::Neighbor,
    TrafficPattern::Hotspot(20),
];

/// `n` geometrically spaced rates in `[lo, hi)`: `lo · (hi/lo)^(i/n)`.
///
/// The log-spaced low end sweeps cover: patterns that saturate far
/// below a linear grid's coarsest point (hot-spot traffic on larger
/// networks) still get several stable points without paying for a fine
/// linear grid everywhere.
///
/// # Panics
///
/// Panics unless `n > 0` and `0 < lo < hi`.
#[must_use]
pub fn log_spaced(n: usize, lo: f64, hi: f64) -> Vec<f64> {
    assert!(n > 0, "need at least one rate");
    assert!(lo > 0.0 && lo < hi, "need 0 < lo < hi, got [{lo}, {hi})");
    let ratio = hi / lo;
    (0..n)
        .map(|i| lo * ratio.powf(i as f64 / n as f64))
        .collect()
}

/// A per-pattern override of the sweep's rate grid.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct PatternRates {
    /// The pattern whose grid is overridden.
    pub pattern: TrafficPattern,
    /// Its injection rates in flits per node per cycle.
    pub rates: Vec<f64>,
}

/// The grid of a sweep: injection rates × traffic patterns, plus the
/// simulator configuration shared by every point.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct SweepSpec {
    /// Injection rates in flits per node per cycle (the default grid
    /// for every pattern without an entry in `rate_overrides`).
    pub rates: Vec<f64>,
    /// Traffic patterns to sweep.
    pub patterns: Vec<TrafficPattern>,
    /// Per-pattern rate-grid overrides (see [`SweepSpec::rates_for`]).
    pub rate_overrides: Vec<PatternRates>,
    /// Simulator configuration; `config.seed` is the root seed every
    /// per-point seed derives from.
    pub config: SimConfig,
}

impl SweepSpec {
    /// A spec with the given simulator configuration, uniform-random
    /// traffic and no rates yet.
    #[must_use]
    pub fn new(config: SimConfig) -> Self {
        Self {
            rates: Vec::new(),
            patterns: vec![TrafficPattern::UniformRandom],
            rate_overrides: Vec::new(),
            config,
        }
    }

    /// Replaces the injection-rate grid.
    #[must_use]
    pub fn rates(mut self, rates: impl IntoIterator<Item = f64>) -> Self {
        self.rates = rates.into_iter().collect();
        self
    }

    /// `n` evenly spaced rates in `(0, max]`.
    #[must_use]
    pub fn linear_rates(self, n: usize, max: f64) -> Self {
        let rates: Vec<f64> = (1..=n).map(|i| max * i as f64 / n as f64).collect();
        self.rates(rates)
    }

    /// Overrides the rate grid for one pattern; every other pattern
    /// keeps the shared `rates` grid.
    #[must_use]
    pub fn rates_for(
        mut self,
        pattern: TrafficPattern,
        rates: impl IntoIterator<Item = f64>,
    ) -> Self {
        let rates: Vec<f64> = rates.into_iter().collect();
        if let Some(existing) = self
            .rate_overrides
            .iter_mut()
            .find(|o| o.pattern == pattern)
        {
            existing.rates = rates;
        } else {
            self.rate_overrides.push(PatternRates { pattern, rates });
        }
        self
    }

    /// The rate grid `pattern` actually sweeps.
    #[must_use]
    pub fn rates_of(&self, pattern: TrafficPattern) -> &[f64] {
        self.rate_overrides
            .iter()
            .find(|o| o.pattern == pattern)
            .map_or(&self.rates, |o| &o.rates)
    }

    /// Extends every hot-spot pattern's grid with a log-spaced low end:
    /// `extra` geometrically spaced rates from `floor` up to (and
    /// excluding) the lowest shared rate, ahead of the shared grid.
    ///
    /// Hot-spot traffic funnels a fixed share of *all* packets through
    /// one ejection port, so its saturation rate falls like `1/N` and
    /// drops below the coarsest linear grid point on larger networks —
    /// without the low end, such sweeps report no stable rate at all.
    ///
    /// **Call this last**, after the shared rates and the pattern list
    /// are final: the override snapshots the shared grid as it stands,
    /// and with no rates yet, no hot-spot pattern yet, or a `floor` at
    /// or above the lowest shared rate there is nothing to extend and
    /// the spec is returned unchanged.
    #[must_use]
    pub fn hotspot_low_rates(mut self, extra: usize, floor: f64) -> Self {
        let lowest = self.rates.iter().copied().fold(f64::INFINITY, f64::min);
        if extra == 0 || !lowest.is_finite() || floor >= lowest {
            return self;
        }
        let hotspots: Vec<TrafficPattern> = self
            .patterns
            .iter()
            .copied()
            .filter(|p| matches!(p, TrafficPattern::Hotspot(_)))
            .collect();
        for pattern in hotspots {
            let mut rates = log_spaced(extra, floor, lowest);
            rates.extend(self.rates.iter().copied());
            self = self.rates_for(pattern, rates);
        }
        self
    }

    /// [`SweepSpec::hotspot_low_rates`] with the wide-evaluation
    /// default — 4 log-spaced points down to 1% of injection capacity —
    /// shared by the Fig. 6-style sweeps so the low-end policy cannot
    /// drift between binaries.
    #[must_use]
    pub fn default_hotspot_low_rates(self) -> Self {
        self.hotspot_low_rates(4, 0.01)
    }

    /// Replaces the traffic-pattern list.
    #[must_use]
    pub fn patterns(mut self, patterns: impl IntoIterator<Item = TrafficPattern>) -> Self {
        self.patterns = patterns.into_iter().collect();
        self
    }

    /// Sweeps all seven modeled traffic patterns.
    #[must_use]
    pub fn all_patterns(self) -> Self {
        self.patterns(ALL_PATTERNS)
    }

    /// The number of grid cells per case.
    #[must_use]
    pub fn cells_per_case(&self) -> usize {
        self.patterns.iter().map(|&p| self.rates_of(p).len()).sum()
    }
}

/// One topology under sweep: its routing table and per-link latencies
/// are computed once and shared by all grid cells of the case.
#[derive(Debug)]
pub struct SweepCase<'a> {
    /// Display name of the case (topology or configuration label).
    pub name: String,
    /// The topology.
    pub topology: &'a Topology,
    /// Routing table (computed once per case).
    pub routes: Routes,
    /// Per-link latencies, e.g. from the floorplan model.
    pub link_latencies: Vec<Cycles>,
}

impl<'a> SweepCase<'a> {
    /// A case with precomputed routes and latencies (the floorplan-fed
    /// path; see `shg-bench`'s scenario sweep for the cached producer).
    ///
    /// # Panics
    ///
    /// Panics if `link_latencies` does not match the topology's links.
    #[must_use]
    pub fn annotated(
        name: impl Into<String>,
        topology: &'a Topology,
        routes: Routes,
        link_latencies: Vec<Cycles>,
    ) -> Self {
        assert_eq!(
            link_latencies.len(),
            topology.num_links(),
            "one latency per link required"
        );
        Self {
            name: name.into(),
            topology,
            routes,
            link_latencies,
        }
    }

    /// A case with default routes and unit link latencies (the
    /// floorplan-free path used by tests and microbenchmarks).
    ///
    /// # Errors
    ///
    /// Returns the routing error if no deadlock-free minimal routing
    /// applies to the topology.
    pub fn unit_latency(
        name: impl Into<String>,
        topology: &'a Topology,
    ) -> Result<Self, BuildRoutesError> {
        let routes = routing::default_routes(topology)?;
        let link_latencies = vec![Cycles::one(); topology.num_links()];
        Ok(Self::annotated(name, topology, routes, link_latencies))
    }
}

/// One measured grid cell of a sweep.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct SweepPoint {
    /// Case (topology) name.
    pub case: String,
    /// Traffic pattern of this cell.
    pub pattern: TrafficPattern,
    /// Offered injection rate (flits per node per cycle).
    pub rate: f64,
    /// The derived per-point RNG seed (recorded for reproduction).
    pub seed: u64,
    /// The simulator's measurements.
    pub outcome: SimOutcome,
}

/// All points of a sweep, in deterministic grid order
/// (case-major, then pattern, then rate).
#[derive(Debug, Clone, PartialEq, Serialize, Default)]
pub struct SweepResult {
    /// The measured points.
    pub points: Vec<SweepPoint>,
}

impl SweepResult {
    /// Serializes to pretty JSON (byte-identical for identical sweeps,
    /// regardless of thread count).
    #[must_use]
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("sweep JSON serializes")
    }

    /// Serializes to compact JSON.
    #[must_use]
    pub fn to_json_compact(&self) -> String {
        serde_json::to_string(self).expect("sweep JSON serializes")
    }

    /// The points of one case, in grid order.
    pub fn points_for(&self, case: &str) -> impl Iterator<Item = &SweepPoint> {
        let case = case.to_owned();
        self.points.iter().filter(move |p| p.case == case)
    }

    /// The highest swept rate at which `case` under `pattern` still
    /// keeps up with the offered load (within `slack`), or `None` if it
    /// saturates below every swept rate.
    #[must_use]
    pub fn saturation_estimate(
        &self,
        case: &str,
        pattern: TrafficPattern,
        slack: f64,
    ) -> Option<f64> {
        self.points_for(case)
            .filter(|p| p.pattern == pattern && p.outcome.keeps_up(slack))
            .map(|p| p.rate)
            .fold(None, |best, rate| {
                Some(best.map_or(rate, |b: f64| b.max(rate)))
            })
    }

    /// A plain-text table of all points (binaries print this).
    #[must_use]
    pub fn table(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "{:<26} {:>16} {:>8} {:>9} {:>12} {:>12} {:>7}\n",
            "Case", "Pattern", "Offered", "Accepted", "AvgLat[cyc]", "p99Lat[cyc]", "Stable"
        ));
        out.push_str(&"-".repeat(96));
        out.push('\n');
        for p in &self.points {
            out.push_str(&format!(
                "{:<26} {:>16} {:>8.3} {:>9.3} {:>12.1} {:>12.1} {:>7}\n",
                p.case,
                p.pattern.to_string(),
                p.rate,
                p.outcome.accepted_rate,
                p.outcome.avg_packet_latency,
                p.outcome.p99_packet_latency,
                p.outcome.stable
            ));
        }
        out
    }
}

/// A sweep ready to run: cases plus the grid spec.
///
/// # Examples
///
/// A full load-curve sweep in three lines (the README quickstart):
///
/// ```
/// # use shg_sim::{Experiment, SimConfig, SweepSpec};
/// # use shg_topology::{generators, Grid};
/// # let mesh = generators::mesh(Grid::new(4, 4));
/// let spec = SweepSpec::new(SimConfig::fast_test()).linear_rates(5, 0.5).all_patterns();
/// let result = Experiment::new(spec).with_unit_latency_case("mesh", &mesh)?.run_parallel();
/// println!("{}", result.table());
/// # Ok::<(), shg_topology::routing::BuildRoutesError>(())
/// ```
#[derive(Debug)]
pub struct Experiment<'a> {
    spec: SweepSpec,
    cases: Vec<SweepCase<'a>>,
}

impl<'a> Experiment<'a> {
    /// An experiment over the given grid, with no cases yet.
    #[must_use]
    pub fn new(spec: SweepSpec) -> Self {
        Self {
            spec,
            cases: Vec::new(),
        }
    }

    /// Adds a prepared case (builder style).
    #[must_use]
    pub fn with_case(mut self, case: SweepCase<'a>) -> Self {
        self.cases.push(case);
        self
    }

    /// Adds a case with default routes and unit latencies.
    ///
    /// # Errors
    ///
    /// Returns the routing error if no deadlock-free minimal routing
    /// applies to the topology.
    pub fn with_unit_latency_case(
        self,
        name: impl Into<String>,
        topology: &'a Topology,
    ) -> Result<Self, BuildRoutesError> {
        Ok(self.with_case(SweepCase::unit_latency(name, topology)?))
    }

    /// Adds a prepared case in place.
    pub fn push_case(&mut self, case: SweepCase<'a>) {
        self.cases.push(case);
    }

    /// The grid spec.
    #[must_use]
    pub fn spec(&self) -> &SweepSpec {
        &self.spec
    }

    /// The total number of grid cells.
    #[must_use]
    pub fn num_points(&self) -> usize {
        self.cases.len() * self.spec.cells_per_case()
    }

    /// Runs every grid cell, fanned out over the default thread pool.
    #[must_use]
    pub fn run_parallel(&self) -> SweepResult {
        let grid: Vec<(usize, usize, usize)> = self
            .cases
            .iter()
            .enumerate()
            .flat_map(|(c, _)| {
                let spec = &self.spec;
                spec.patterns.iter().enumerate().flat_map(move |(p, &pat)| {
                    (0..spec.rates_of(pat).len()).map(move |r| (c, p, r))
                })
            })
            .collect();
        let points: Vec<SweepPoint> = grid
            .par_iter()
            .map(|&(c, p, r)| self.run_point(c, p, r))
            .collect();
        SweepResult { points }
    }

    /// Runs the sweep on exactly `threads` workers. Produces the same
    /// result as [`Experiment::run_parallel`] — the determinism
    /// regression test pins 1 vs N and compares JSON bytes.
    ///
    /// # Panics
    ///
    /// Panics if the thread pool cannot be built (the vendored rayon
    /// stand-in never fails).
    #[must_use]
    pub fn run_with_threads(&self, threads: usize) -> SweepResult {
        rayon::ThreadPoolBuilder::new()
            .num_threads(threads)
            .build()
            .expect("thread pool builds")
            .install(|| self.run_parallel())
    }

    /// Runs one grid cell. The per-point seed depends only on the root
    /// seed and the grid coordinates, never on scheduling.
    fn run_point(&self, case_idx: usize, pattern_idx: usize, rate_idx: usize) -> SweepPoint {
        let case = &self.cases[case_idx];
        let pattern = self.spec.patterns[pattern_idx];
        let rate = self.spec.rates_of(pattern)[rate_idx];
        let seed = derive_seed(
            self.spec.config.seed,
            case_idx as u64,
            pattern_idx as u64,
            rate_idx as u64,
        );
        let config = SimConfig {
            seed,
            ..self.spec.config.clone()
        };
        let mut network = Network::new(case.topology, &case.routes, &case.link_latencies, config);
        let outcome = network.run(rate, pattern);
        SweepPoint {
            case: case.name.clone(),
            pattern,
            rate,
            seed,
            outcome,
        }
    }
}

/// SplitMix64-style mixing of the root seed with grid coordinates.
fn derive_seed(root: u64, case: u64, pattern: u64, rate: u64) -> u64 {
    crate::injection::splitmix64_mix(
        root.wrapping_add(case.wrapping_mul(0x9e37_79b9_7f4a_7c15))
            .wrapping_add(pattern.wrapping_mul(0xbf58_476d_1ce4_e5b9))
            .wrapping_add(rate.wrapping_mul(0x94d0_49bb_1331_11eb)),
    )
}

/// Convenience free function mirroring the classic latency-vs-load
/// sweep: one case, one pattern, a rate grid, run in parallel.
#[must_use]
pub fn load_curve(
    name: &str,
    topology: &Topology,
    routes: Routes,
    link_latencies: Vec<Cycles>,
    config: &SimConfig,
    pattern: TrafficPattern,
    rates: &[f64],
) -> SweepResult {
    let spec = SweepSpec::new(config.clone())
        .rates(rates.iter().copied())
        .patterns([pattern]);
    Experiment::new(spec)
        .with_case(SweepCase::annotated(name, topology, routes, link_latencies))
        .run_parallel()
}

#[cfg(test)]
mod tests {
    use super::*;
    use shg_topology::{generators, Grid};

    fn small_experiment(topology: &Topology) -> Experiment<'_> {
        let spec = SweepSpec::new(SimConfig::fast_test())
            .rates([0.02, 0.1])
            .patterns([TrafficPattern::UniformRandom, TrafficPattern::Transpose]);
        Experiment::new(spec)
            .with_unit_latency_case("mesh", topology)
            .expect("mesh routes")
    }

    #[test]
    fn grid_order_is_case_pattern_rate() {
        let mesh = generators::mesh(Grid::new(4, 4));
        let result = small_experiment(&mesh).run_parallel();
        assert_eq!(result.points.len(), 4);
        let labels: Vec<(String, f64)> = result
            .points
            .iter()
            .map(|p| (p.pattern.to_string(), p.rate))
            .collect();
        assert_eq!(
            labels,
            vec![
                ("uniform-random".to_owned(), 0.02),
                ("uniform-random".to_owned(), 0.1),
                ("transpose".to_owned(), 0.02),
                ("transpose".to_owned(), 0.1),
            ]
        );
    }

    #[test]
    fn parallel_equals_single_threaded() {
        let mesh = generators::mesh(Grid::new(4, 4));
        let experiment = small_experiment(&mesh);
        let serial = experiment.run_with_threads(1);
        let parallel = experiment.run_with_threads(4);
        assert_eq!(serial, parallel);
        assert_eq!(serial.to_json(), parallel.to_json());
    }

    #[test]
    fn per_point_seeds_differ() {
        let mesh = generators::mesh(Grid::new(4, 4));
        let result = small_experiment(&mesh).run_parallel();
        let seeds: std::collections::HashSet<u64> = result.points.iter().map(|p| p.seed).collect();
        assert_eq!(seeds.len(), result.points.len());
    }

    #[test]
    fn saturation_estimate_reads_stable_frontier() {
        let mesh = generators::mesh(Grid::new(4, 4));
        let spec = SweepSpec::new(SimConfig::fast_test()).rates([0.02, 0.1, 0.9]);
        let result = Experiment::new(spec)
            .with_unit_latency_case("mesh", &mesh)
            .expect("routes")
            .run_parallel();
        let sat = result
            .saturation_estimate("mesh", TrafficPattern::UniformRandom, 0.05)
            .expect("low rates are stable");
        assert!(sat >= 0.1, "mesh sustains 0.1: {sat}");
        assert!(sat < 0.9, "mesh cannot sustain 0.9: {sat}");
    }

    #[test]
    fn json_contains_every_point() {
        let mesh = generators::mesh(Grid::new(4, 4));
        let result = small_experiment(&mesh).run_parallel();
        let json = result.to_json();
        assert_eq!(json.matches("\"case\"").count(), result.points.len());
        assert!(json.contains("\"avg_packet_latency\""));
    }

    #[test]
    fn log_spaced_is_geometric_and_in_range() {
        let rates = log_spaced(4, 0.01, 0.16);
        assert_eq!(rates.len(), 4);
        assert!((rates[0] - 0.01).abs() < 1e-12);
        assert!(*rates.last().expect("non-empty") < 0.16);
        for pair in rates.windows(2) {
            let ratio = pair[1] / pair[0];
            assert!((ratio - 2.0).abs() < 1e-9, "ratio {ratio}");
        }
    }

    #[test]
    fn per_pattern_override_changes_only_that_pattern() {
        let spec = SweepSpec::new(SimConfig::fast_test())
            .rates([0.2, 0.4])
            .patterns([TrafficPattern::UniformRandom, TrafficPattern::Hotspot(20)])
            .rates_for(TrafficPattern::Hotspot(20), [0.01, 0.05, 0.2]);
        assert_eq!(spec.rates_of(TrafficPattern::UniformRandom), &[0.2, 0.4]);
        assert_eq!(
            spec.rates_of(TrafficPattern::Hotspot(20)),
            &[0.01, 0.05, 0.2]
        );
        assert_eq!(spec.cells_per_case(), 5);
        // Re-overriding replaces instead of accumulating.
        let spec = spec.rates_for(TrafficPattern::Hotspot(20), [0.1]);
        assert_eq!(spec.rates_of(TrafficPattern::Hotspot(20)), &[0.1]);
        assert_eq!(spec.rate_overrides.len(), 1);
    }

    #[test]
    fn hotspot_low_rates_prepends_a_log_low_end() {
        let spec = SweepSpec::new(SimConfig::fast_test())
            .linear_rates(5, 1.0)
            .all_patterns()
            .hotspot_low_rates(4, 0.01);
        // Only the hot-spot pattern is overridden.
        assert_eq!(spec.rate_overrides.len(), 1);
        let hotspot = spec.rates_of(TrafficPattern::Hotspot(20));
        assert_eq!(hotspot.len(), 4 + 5);
        assert!((hotspot[0] - 0.01).abs() < 1e-12);
        assert!(hotspot[3] < 0.2, "low end stays below the linear grid");
        assert_eq!(&hotspot[4..], spec.rates_of(TrafficPattern::Tornado));
        // Without a hot-spot pattern (or with a floor above the grid)
        // nothing changes.
        let plain = SweepSpec::new(SimConfig::fast_test())
            .linear_rates(5, 1.0)
            .hotspot_low_rates(4, 0.01);
        assert!(plain.rate_overrides.is_empty());
        let too_high = SweepSpec::new(SimConfig::fast_test())
            .linear_rates(5, 1.0)
            .all_patterns()
            .hotspot_low_rates(4, 0.5);
        assert!(too_high.rate_overrides.is_empty());
    }

    #[test]
    fn overridden_grid_keeps_case_pattern_rate_order() {
        let mesh = generators::mesh(Grid::new(4, 4));
        let spec = SweepSpec::new(SimConfig::fast_test())
            .rates([0.1])
            .patterns([TrafficPattern::UniformRandom, TrafficPattern::Hotspot(20)])
            .rates_for(TrafficPattern::Hotspot(20), [0.02, 0.1]);
        let result = Experiment::new(spec)
            .with_unit_latency_case("mesh", &mesh)
            .expect("routes")
            .run_parallel();
        let labels: Vec<(String, f64)> = result
            .points
            .iter()
            .map(|p| (p.pattern.to_string(), p.rate))
            .collect();
        assert_eq!(
            labels,
            vec![
                ("uniform-random".to_owned(), 0.1),
                ("hotspot-20%".to_owned(), 0.02),
                ("hotspot-20%".to_owned(), 0.1),
            ]
        );
    }

    #[test]
    fn all_patterns_constant_covers_the_enum() {
        // Seven documented patterns; keep the constant in sync.
        assert_eq!(ALL_PATTERNS.len(), 7);
        let unique: std::collections::HashSet<String> =
            ALL_PATTERNS.iter().map(ToString::to_string).collect();
        assert_eq!(unique.len(), 7);
    }
}
