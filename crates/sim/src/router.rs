//! Router microarchitecture: per-router buffers, virtual-channel state,
//! credits and the two allocation stages.
//!
//! Split out of the network module so the network layer only owns
//! *global* state (channel pipelines, the active sets, the cycle loop)
//! while everything a single router decides per cycle lives here:
//!
//! 1. **VC allocation** — head flits at buffer fronts acquire an output
//!    virtual channel of the class their routed path demands,
//! 2. **Switch allocation** — separable input-first/output-second
//!    round-robin arbitration with one flit per input and output port,
//! 3. **Switch traversal** — winning flits leave through their output
//!    port; the router reports ejections, link forwards and upstream
//!    credits back to the network layer, which owns the pipelines.

use std::collections::VecDeque;

use shg_topology::ChannelId;

use crate::config::SimConfig;
use crate::flit::Flit;

/// State of one input virtual channel.
#[derive(Debug, Clone, Copy, Default)]
pub(crate) struct InVc {
    /// `true` while a packet holds this VC's output reservation.
    pub(crate) active: bool,
    /// Reserved output port.
    pub(crate) out_port: u8,
    /// Reserved output VC.
    pub(crate) out_vc: u8,
}

/// What one router hands back to the network after switch traversal.
///
/// The network layer owns the link pipelines, so the router reports
/// forwards and credits instead of pushing them itself.
#[derive(Debug, Default)]
pub(crate) struct TraversalOutput {
    /// Flits that reached their destination this cycle.
    pub(crate) ejected: Vec<Flit>,
    /// Flits entering a link pipeline: `(channel, flit)`.
    pub(crate) forwards: Vec<(ChannelId, Flit)>,
    /// Credits returned upstream: `(channel, vc)`.
    pub(crate) credits: Vec<(ChannelId, u8)>,
}

/// One router: buffers, reservations, credits and arbitration state.
#[derive(Debug)]
pub(crate) struct Router {
    /// Incoming channels, defining network input ports `0..k`; port `k`
    /// is the injection port.
    pub(crate) in_channels: Vec<ChannelId>,
    /// Outgoing channels, defining network output ports `0..m`; port `m`
    /// is the ejection port.
    pub(crate) out_channels: Vec<ChannelId>,
    /// `buffers[in_port][vc]`.
    pub(crate) buffers: Vec<Vec<VecDeque<Flit>>>,
    /// `in_state[in_port][vc]`.
    pub(crate) in_state: Vec<Vec<InVc>>,
    /// `out_owner[out_port][vc]`: which (in_port, vc) holds the output VC.
    pub(crate) out_owner: Vec<Vec<Option<(u8, u8)>>>,
    /// `credits[out_port][vc]`: free downstream buffer slots.
    pub(crate) credits: Vec<Vec<u16>>,
    /// Round-robin pointer per output port for VC allocation.
    va_rr: Vec<u8>,
    /// Round-robin pointer per input port for switch allocation.
    sa_in_rr: Vec<u8>,
    /// Round-robin pointer per output port for switch allocation.
    sa_out_rr: Vec<u8>,
    /// Number of buffer slots currently occupied across all ports/VCs.
    /// Maintained incrementally so the active-set scheduler can test
    /// occupancy in O(1).
    occupied: u32,
}

impl Router {
    pub(crate) fn new(
        in_channels: Vec<ChannelId>,
        out_channels: Vec<ChannelId>,
        config: &SimConfig,
    ) -> Self {
        let vcs = config.num_vcs as usize;
        let in_ports = in_channels.len() + 1;
        let out_ports = out_channels.len() + 1;
        Self {
            in_channels,
            out_channels,
            buffers: vec![vec![VecDeque::new(); vcs]; in_ports],
            in_state: vec![vec![InVc::default(); vcs]; in_ports],
            out_owner: vec![vec![None; vcs]; out_ports],
            credits: vec![vec![config.buffer_depth; vcs]; out_ports],
            va_rr: vec![0; out_ports],
            sa_in_rr: vec![0; in_ports],
            sa_out_rr: vec![0; out_ports],
            occupied: 0,
        }
    }

    pub(crate) fn injection_port(&self) -> usize {
        self.in_channels.len()
    }

    pub(crate) fn ejection_port(&self) -> usize {
        self.out_channels.len()
    }

    /// `true` while any buffer holds a flit — the active-set criterion:
    /// a router with empty buffers cannot allocate or traverse, and any
    /// event that fills a buffer re-activates it.
    pub(crate) fn has_occupied_buffers(&self) -> bool {
        self.occupied > 0
    }

    /// Enqueues a flit into `buffers[port][vc]`.
    pub(crate) fn enqueue(&mut self, port: usize, vc: usize, flit: Flit) {
        self.buffers[port][vc].push_back(flit);
        self.occupied += 1;
    }

    /// VC allocation: head flits at buffer fronts acquire output VCs.
    ///
    /// `route` maps a head flit to its `(out_port, vc_class)` at this
    /// router (the ejection port for flits that have arrived). It
    /// receives the router by shared reference so it can inspect port
    /// lists without fighting the mutable borrow held by allocation.
    pub(crate) fn vc_allocate_with(
        &mut self,
        config: &SimConfig,
        num_vc_classes: u8,
        route: impl Fn(&Router, &Flit) -> (u8, u8),
    ) {
        let vcs = config.num_vcs as usize;
        let in_ports = self.buffers.len();
        for p in 0..in_ports {
            for v in 0..vcs {
                let state = self.in_state[p][v];
                if state.active {
                    continue;
                }
                let Some(front) = self.buffers[p][v].front().copied() else {
                    continue;
                };
                if !front.is_head {
                    // A body flit at the front of an inactive VC can only
                    // happen transiently after a tail release; skip.
                    continue;
                }
                let (out_port, class) = route(&*self, &front);
                if out_port as usize == self.ejection_port() {
                    self.in_state[p][v] = InVc {
                        active: true,
                        out_port,
                        out_vc: 0,
                    };
                    continue;
                }
                // Grant a free output VC in the class's range, rotating.
                let range = config.vc_range(class, num_vc_classes.max(1));
                let len = range.len() as u8;
                let start = self.va_rr[out_port as usize] % len.max(1);
                let granted = (0..len)
                    .map(|i| range.start + (start + i) % len)
                    .find(|&ov| self.out_owner[out_port as usize][ov as usize].is_none());
                if let Some(ov) = granted {
                    self.out_owner[out_port as usize][ov as usize] = Some((p as u8, v as u8));
                    self.va_rr[out_port as usize] = self.va_rr[out_port as usize].wrapping_add(1);
                    self.in_state[p][v] = InVc {
                        active: true,
                        out_port,
                        out_vc: ov,
                    };
                }
            }
        }
    }

    /// Switch allocation (separable, input-first) and traversal. Writes
    /// ejections, forwards and upstream credits into `out`.
    pub(crate) fn switch_allocate_and_traverse(
        &mut self,
        config: &SimConfig,
        out: &mut TraversalOutput,
    ) {
        let vcs = config.num_vcs as usize;
        let in_ports = self.buffers.len();
        let out_ports = self.out_channels.len() + 1;
        // Input arbitration: one candidate VC per input port.
        let mut input_winner: Vec<Option<u8>> = vec![None; in_ports];
        for (p, winner) in input_winner.iter_mut().enumerate() {
            let start = self.sa_in_rr[p] as usize;
            for i in 0..vcs {
                let v = (start + i) % vcs;
                let state = self.in_state[p][v];
                if !state.active || self.buffers[p][v].is_empty() {
                    continue;
                }
                let is_ejection = state.out_port as usize == self.ejection_port();
                if !is_ejection && self.credits[state.out_port as usize][state.out_vc as usize] == 0
                {
                    continue;
                }
                *winner = Some(v as u8);
                break;
            }
        }
        // Output arbitration: one input per output port.
        let mut output_winner: Vec<Option<u8>> = vec![None; out_ports];
        for (o, winner) in output_winner.iter_mut().enumerate() {
            let start = self.sa_out_rr[o] as usize;
            for i in 0..in_ports {
                let p = (start + i) % in_ports;
                if let Some(v) = input_winner[p] {
                    if self.in_state[p][v as usize].out_port as usize == o {
                        *winner = Some(p as u8);
                        break;
                    }
                }
            }
        }
        // Traversal.
        for (o, winner) in output_winner.iter().copied().enumerate() {
            let Some(p) = winner else { continue };
            let p = p as usize;
            let v = input_winner[p].expect("winner has a VC") as usize;
            let state = self.in_state[p][v];
            let mut flit = self.buffers[p][v].pop_front().expect("nonempty");
            self.occupied -= 1;
            self.sa_in_rr[p] = (v as u8).wrapping_add(1) % config.num_vcs;
            self.sa_out_rr[o] = (p as u8).wrapping_add(1) % in_ports as u8;
            // Return a credit upstream (injection port has none).
            if p < self.in_channels.len() {
                out.credits.push((self.in_channels[p], flit.vc));
            }
            if o == self.ejection_port() {
                if flit.is_tail {
                    self.in_state[p][v].active = false;
                }
                out.ejected.push(flit);
                continue;
            }
            let out_channel = self.out_channels[o];
            flit.vc = state.out_vc;
            flit.hop += 1;
            self.credits[o][state.out_vc as usize] -= 1;
            if flit.is_tail {
                self.out_owner[o][state.out_vc as usize] = None;
                self.in_state[p][v].active = false;
            }
            out.forwards.push((out_channel, flit));
        }
    }
}
