//! Router microarchitecture: per-router buffers, virtual-channel state,
//! credits and the two allocation stages.
//!
//! Split out of the network module so the network layer only owns
//! *global* state (channel pipelines, the active sets, the cycle loop)
//! while everything a single router decides per cycle lives here:
//!
//! 1. **VC allocation** — head flits at buffer fronts acquire an output
//!    virtual channel of the class their routed path demands,
//! 2. **Switch allocation** — separable input-first/output-second
//!    round-robin arbitration with one flit per input and output port,
//! 3. **Switch traversal** — winning flits leave through their output
//!    port; the router reports ejections, link forwards and upstream
//!    credits back to the network layer, which owns the pipelines.
//!
//! # Request-driven allocation
//!
//! The allocation stages used to *scan*: every cycle, every input
//! port × VC was inspected for a head flit awaiting a VC and for a
//! buffered flit wanting the switch, and every output port × VC for a
//! free output VC — `O(ports × VCs)` per router visit even when a
//! single flit was resident. The router now keeps explicit sparse
//! request state, updated incrementally on enqueue, dequeue and VC
//! grant/release:
//!
//! * a bitmask of input VCs whose buffer front awaits VC allocation
//!   ([`Router::va_mask`]),
//! * per-input-port bitmasks of active VCs with buffered flits — the
//!   switch-allocation requests ([`Router::sa_mask`], summarized by
//!   [`Router::sa_ports`]) — gathered into per-output-port request
//!   lists each cycle ([`Router::out_requests`]),
//! * per-output-port bitmasks of occupied output VCs
//!   ([`Router::out_vc_used`]).
//!
//! [`AllocPolicy::RequestQueue`] walks only these live requests;
//! [`AllocPolicy::FullScan`] retains the exhaustive scan as the
//! bit-identical reference (the allocation analogue of
//! `ScanPolicy::FullScan` and `InjectionPolicy::PerCycleScan`). Both
//! paths share the same mutation helpers, and round-robin pointers are
//! consulted in the same rotation order, so the arbitration outcome —
//! and therefore every statistic — is identical; the equivalence suite
//! (`crates/sim/tests/alloc_equivalence.rs`) enforces it.

use std::collections::VecDeque;

use serde::{Deserialize, Serialize};
use shg_topology::routing::NO_ROUTE;
use shg_topology::ChannelId;

use crate::config::SimConfig;
use crate::flit::Flit;

/// How the router allocation stages (VC allocation, switch allocation)
/// find work each cycle.
///
/// [`RequestQueue`](Self::RequestQueue) and
/// [`FullScan`](Self::FullScan) produce bit-identical outcomes; the
/// request-driven default visits only live requests while the scan
/// inspects every port × VC slot and exists as the exhaustive
/// reference for equivalence tests and benchmarks.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum AllocPolicy {
    /// Walk only the incrementally maintained request state: input VCs
    /// with a head flit awaiting VC allocation, per-output-port switch
    /// request lists, occupied-output-VC sets (the default).
    #[default]
    RequestQueue,
    /// Inspect every input port × VC and output port × VC every cycle —
    /// the pre-request-queue behaviour, kept as the bit-identical
    /// reference (the allocation analogue of
    /// [`ScanPolicy::FullScan`](crate::ScanPolicy::FullScan)).
    FullScan,
}

impl std::fmt::Display for AllocPolicy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::RequestQueue => write!(f, "request-queue"),
            Self::FullScan => write!(f, "full-scan"),
        }
    }
}

/// State of one input virtual channel.
#[derive(Debug, Clone, Copy, Default)]
pub(crate) struct InVc {
    /// `true` while a packet holds this VC's output reservation.
    pub(crate) active: bool,
    /// Reserved output port.
    pub(crate) out_port: u8,
    /// Reserved output VC.
    pub(crate) out_vc: u8,
}

/// What one router hands back to the network after switch traversal.
///
/// The network layer owns the link pipelines, so the router reports
/// forwards and credits instead of pushing them itself.
#[derive(Debug, Default)]
pub(crate) struct TraversalOutput {
    /// Flits that reached their destination this cycle.
    pub(crate) ejected: Vec<Flit>,
    /// Flits entering a link pipeline: `(channel, flit)`.
    pub(crate) forwards: Vec<(ChannelId, Flit)>,
    /// Credits returned upstream: `(channel, vc)`.
    pub(crate) credits: Vec<(ChannelId, u8)>,
    /// Creation cycles of packets whose tail was discarded by a fault
    /// sink (empty on every fault-free cycle).
    pub(crate) dropped: Vec<u64>,
}

/// One router: buffers, reservations, credits and arbitration state.
#[derive(Debug)]
pub(crate) struct Router {
    /// Incoming channels, defining network input ports `0..k`; port `k`
    /// is the injection port.
    pub(crate) in_channels: Vec<ChannelId>,
    /// Outgoing channels, defining network output ports `0..m`; port `m`
    /// is the ejection port.
    pub(crate) out_channels: Vec<ChannelId>,
    /// `buffers[in_port][vc]`.
    pub(crate) buffers: Vec<Vec<VecDeque<Flit>>>,
    /// `in_state[in_port][vc]`.
    pub(crate) in_state: Vec<Vec<InVc>>,
    /// `out_owner[out_port][vc]`: which (in_port, vc) holds the output VC.
    pub(crate) out_owner: Vec<Vec<Option<(u8, u8)>>>,
    /// `credits[out_port][vc]`: free downstream buffer slots.
    pub(crate) credits: Vec<Vec<u16>>,
    /// Round-robin pointer per output port for VC allocation.
    va_rr: Vec<u8>,
    /// Round-robin pointer per input port for switch allocation.
    sa_in_rr: Vec<u8>,
    /// Round-robin pointer per output port for switch allocation.
    sa_out_rr: Vec<u8>,
    /// Number of buffer slots currently occupied across all ports/VCs.
    /// Maintained incrementally so the active-set scheduler can test
    /// occupancy in O(1).
    occupied: u32,
    /// Virtual channels per port, cached for slot-index arithmetic.
    vcs: u8,
    /// One bit per `(in_port, vc)` slot (index `port·vcs + vc`), set
    /// while the slot's buffer front awaits VC allocation.
    va_mask: Vec<u64>,
    /// `sa_mask[in_port]`: active VCs with buffered flits — the input
    /// side's switch-allocation requests. One `u64` per port (the
    /// constructor rejects more than 64 VCs).
    sa_mask: Vec<u64>,
    /// One bit per input port, set while `sa_mask[port] != 0`.
    sa_ports: Vec<u64>,
    /// `out_vc_used[out_port]`: occupied output VCs — the bitmask twin
    /// of `out_owner[out_port]`.
    out_vc_used: Vec<u64>,
    /// `out_requests[out_port]`: input-arbitration winners requesting
    /// this output, `(in_port, vc)`. Per-cycle scratch, kept allocated.
    out_requests: Vec<Vec<(u8, u8)>>,
    /// Output ports with entries in `out_requests`. Per-cycle scratch.
    touched_outputs: Vec<u8>,
    /// `sinking[in_port]`: VCs mid-way through discarding a packet whose
    /// destination became unreachable (drain fault policy) — the head
    /// and buffered flits are gone, the rest is still in flight and is
    /// discarded on arrival until the tail clears the bit. All-zero in
    /// fault-free runs.
    sinking: Vec<u64>,
}

impl Router {
    pub(crate) fn new(
        in_channels: Vec<ChannelId>,
        out_channels: Vec<ChannelId>,
        config: &SimConfig,
    ) -> Self {
        let vcs = config.num_vcs as usize;
        assert!(
            vcs <= 64,
            "the allocator's VC bitmasks support at most 64 VCs per port, got {vcs}"
        );
        let in_ports = in_channels.len() + 1;
        let out_ports = out_channels.len() + 1;
        Self {
            in_channels,
            out_channels,
            buffers: vec![vec![VecDeque::new(); vcs]; in_ports],
            in_state: vec![vec![InVc::default(); vcs]; in_ports],
            out_owner: vec![vec![None; vcs]; out_ports],
            credits: vec![vec![config.buffer_depth; vcs]; out_ports],
            va_rr: vec![0; out_ports],
            sa_in_rr: vec![0; in_ports],
            sa_out_rr: vec![0; out_ports],
            occupied: 0,
            vcs: config.num_vcs,
            va_mask: vec![0; (in_ports * vcs).div_ceil(64)],
            sa_mask: vec![0; in_ports],
            sa_ports: vec![0; in_ports.div_ceil(64)],
            out_vc_used: vec![0; out_ports],
            out_requests: vec![Vec::new(); out_ports],
            touched_outputs: Vec::new(),
            sinking: vec![0; in_ports],
        }
    }

    pub(crate) fn injection_port(&self) -> usize {
        self.in_channels.len()
    }

    pub(crate) fn ejection_port(&self) -> usize {
        self.out_channels.len()
    }

    /// `true` while any buffer holds a flit — the active-set criterion:
    /// a router with empty buffers cannot allocate or traverse, and any
    /// event that fills a buffer re-activates it.
    pub(crate) fn has_occupied_buffers(&self) -> bool {
        self.occupied > 0
    }

    /// `true` while input VC `(port, vc)` is discarding the remainder of
    /// an unroutable packet (drain fault policy).
    #[inline]
    pub(crate) fn is_sinking(&self, port: usize, vc: u8) -> bool {
        self.sinking[port] & (1 << vc) != 0
    }

    /// Ends the sink on `(port, vc)` — called when the packet's tail
    /// flit arrives and is discarded.
    #[inline]
    pub(crate) fn clear_sink(&mut self, port: usize, vc: u8) {
        self.sinking[port] &= !(1 << vc);
    }

    #[inline]
    fn va_set(&mut self, port: usize, vc: usize) {
        let slot = port * self.vcs as usize + vc;
        self.va_mask[slot >> 6] |= 1 << (slot & 63);
    }

    #[inline]
    fn va_clear(&mut self, port: usize, vc: usize) {
        let slot = port * self.vcs as usize + vc;
        self.va_mask[slot >> 6] &= !(1 << (slot & 63));
    }

    #[inline]
    fn sa_set(&mut self, port: usize, vc: usize) {
        self.sa_mask[port] |= 1 << vc;
        self.sa_ports[port >> 6] |= 1 << (port & 63);
    }

    #[inline]
    fn sa_clear(&mut self, port: usize, vc: usize) {
        self.sa_mask[port] &= !(1 << vc);
        if self.sa_mask[port] == 0 {
            self.sa_ports[port >> 6] &= !(1 << (port & 63));
        }
    }

    /// Enqueues a flit into `buffers[port][vc]`.
    pub(crate) fn enqueue(&mut self, port: usize, vc: usize, flit: Flit) {
        self.buffers[port][vc].push_back(flit);
        self.occupied += 1;
        // A new buffer front is a new request: a switch request if the
        // VC already holds an output reservation, otherwise a head flit
        // awaiting VC allocation.
        if self.buffers[port][vc].len() == 1 {
            if self.in_state[port][vc].active {
                self.sa_set(port, vc);
            } else {
                self.va_set(port, vc);
            }
        }
    }

    /// VC allocation: head flits at buffer fronts acquire output VCs.
    ///
    /// `route` maps a head flit to its `(out_port, vc_class)` at this
    /// router (the ejection port for flits that have arrived). It
    /// receives the router by shared reference so it can inspect port
    /// lists without fighting the mutable borrow held by allocation.
    ///
    /// A routed port of [`NO_ROUTE`] (possible only under degraded
    /// routes) sinks the packet instead: its buffered flits are
    /// discarded with upstream credits reported into `out.credits` and
    /// the drop into `out.dropped`.
    pub(crate) fn vc_allocate_with(
        &mut self,
        config: &SimConfig,
        num_vc_classes: u8,
        policy: AllocPolicy,
        route: impl Fn(&Router, &Flit) -> (u8, u8),
        out: &mut TraversalOutput,
    ) {
        let vcs = config.num_vcs as usize;
        match policy {
            AllocPolicy::FullScan => {
                let in_ports = self.buffers.len();
                for p in 0..in_ports {
                    for v in 0..vcs {
                        self.consider_va(p, v, config, num_vc_classes, policy, &route, out);
                    }
                }
            }
            AllocPolicy::RequestQueue => {
                // Word-by-word ascending slot order = the scan's
                // ascending (port, vc) order. `consider_va` only ever
                // clears the bit it was called for, so the snapshot of
                // each word stays exact.
                for w in 0..self.va_mask.len() {
                    let mut word = self.va_mask[w];
                    while word != 0 {
                        let slot = (w << 6) | word.trailing_zeros() as usize;
                        word &= word - 1;
                        self.consider_va(
                            slot / vcs,
                            slot % vcs,
                            config,
                            num_vc_classes,
                            policy,
                            &route,
                            out,
                        );
                    }
                }
            }
        }
    }

    /// One (port, vc) step of VC allocation, shared by both policies:
    /// checks whether the slot's front is a head flit awaiting an
    /// output VC and tries to grant one.
    #[allow(clippy::too_many_arguments)]
    fn consider_va(
        &mut self,
        p: usize,
        v: usize,
        config: &SimConfig,
        num_vc_classes: u8,
        policy: AllocPolicy,
        route: &impl Fn(&Router, &Flit) -> (u8, u8),
        out: &mut TraversalOutput,
    ) {
        if self.in_state[p][v].active {
            return;
        }
        let Some(front) = self.buffers[p][v].front().copied() else {
            return;
        };
        if !front.is_head {
            // A body flit at the front of an inactive VC can only
            // happen transiently after a tail release; skip.
            return;
        }
        let (out_port, class) = route(&*self, &front);
        if out_port == NO_ROUTE {
            // No surviving route to the destination (drain fault
            // policy): sink the packet here. Discard its buffered
            // flits (crediting upstream so senders drain), account the
            // drop on the tail, and keep sinking arrivals until the
            // tail shows up.
            self.va_clear(p, v);
            let mut saw_tail = false;
            while let Some(flit) = self.buffers[p][v].pop_front() {
                self.occupied -= 1;
                if p < self.in_channels.len() {
                    out.credits.push((self.in_channels[p], flit.vc));
                }
                if flit.is_tail {
                    out.dropped.push(flit.created);
                    saw_tail = true;
                    break;
                }
            }
            if saw_tail {
                if !self.buffers[p][v].is_empty() {
                    // The next packet's head is at the front now.
                    self.va_set(p, v);
                }
            } else {
                self.sinking[p] |= 1 << v;
            }
            return;
        }
        if out_port as usize == self.ejection_port() {
            self.in_state[p][v] = InVc {
                active: true,
                out_port,
                out_vc: 0,
            };
            self.va_clear(p, v);
            self.sa_set(p, v);
            return;
        }
        // Grant a free output VC in the class's range, rotating.
        let o = out_port as usize;
        let range = config.vc_range(class, num_vc_classes.max(1));
        let len = range.len() as u8;
        let start = self.va_rr[o] % len.max(1);
        let granted = match policy {
            AllocPolicy::FullScan => (0..len)
                .map(|i| range.start + (start + i) % len)
                .find(|&ov| self.out_owner[o][ov as usize].is_none()),
            AllocPolicy::RequestQueue => {
                // Same rotation over the occupied-output-VC bitmask:
                // the free VC with the smallest rotated distance.
                let range_mask = if range.len() >= 64 {
                    u64::MAX
                } else {
                    ((1u64 << range.len()) - 1) << range.start
                };
                let mut free = range_mask & !self.out_vc_used[o];
                let mut best: Option<(u8, u8)> = None;
                while free != 0 {
                    let ov = free.trailing_zeros() as u8;
                    free &= free - 1;
                    let dist = (ov - range.start + len - start) % len;
                    if best.is_none_or(|(d, _)| dist < d) {
                        best = Some((dist, ov));
                    }
                }
                best.map(|(_, ov)| ov)
            }
        };
        if let Some(ov) = granted {
            self.out_owner[o][ov as usize] = Some((p as u8, v as u8));
            self.out_vc_used[o] |= 1 << ov;
            self.va_rr[o] = self.va_rr[o].wrapping_add(1);
            self.in_state[p][v] = InVc {
                active: true,
                out_port,
                out_vc: ov,
            };
            self.va_clear(p, v);
            self.sa_set(p, v);
        }
    }

    /// Switch allocation (separable, input-first) and traversal. Writes
    /// ejections, forwards and upstream credits into `out`.
    pub(crate) fn switch_allocate_and_traverse(
        &mut self,
        config: &SimConfig,
        policy: AllocPolicy,
        out: &mut TraversalOutput,
    ) {
        match policy {
            AllocPolicy::FullScan => self.sa_full_scan(config, out),
            AllocPolicy::RequestQueue => self.sa_request_queue(config, out),
        }
    }

    /// The exhaustive reference: scans every input port × VC for a
    /// switch candidate, then every output port × input port.
    fn sa_full_scan(&mut self, config: &SimConfig, out: &mut TraversalOutput) {
        let vcs = config.num_vcs as usize;
        let in_ports = self.buffers.len();
        let out_ports = self.out_channels.len() + 1;
        // Input arbitration: one candidate VC per input port.
        let mut input_winner: Vec<Option<u8>> = vec![None; in_ports];
        for (p, winner) in input_winner.iter_mut().enumerate() {
            let start = self.sa_in_rr[p] as usize;
            for i in 0..vcs {
                let v = (start + i) % vcs;
                let state = self.in_state[p][v];
                if !state.active || self.buffers[p][v].is_empty() {
                    continue;
                }
                let is_ejection = state.out_port as usize == self.ejection_port();
                if !is_ejection && self.credits[state.out_port as usize][state.out_vc as usize] == 0
                {
                    continue;
                }
                *winner = Some(v as u8);
                break;
            }
        }
        // Output arbitration: one input per output port.
        let mut output_winner: Vec<Option<u8>> = vec![None; out_ports];
        for (o, winner) in output_winner.iter_mut().enumerate() {
            let start = self.sa_out_rr[o] as usize;
            for i in 0..in_ports {
                let p = (start + i) % in_ports;
                if let Some(v) = input_winner[p] {
                    if self.in_state[p][v as usize].out_port as usize == o {
                        *winner = Some(p as u8);
                        break;
                    }
                }
            }
        }
        // Traversal.
        for (o, winner) in output_winner.iter().copied().enumerate() {
            let Some(p) = winner else { continue };
            let p = p as usize;
            let v = input_winner[p].expect("winner has a VC") as usize;
            self.traverse_winner(o, p, v, config, out);
        }
    }

    /// The request-driven path: input arbitration rotates over each
    /// requesting port's live-VC bitmask, winners are gathered into
    /// per-output request lists, and each output picks the requester
    /// closest to its round-robin pointer.
    fn sa_request_queue(&mut self, config: &SimConfig, out: &mut TraversalOutput) {
        let in_ports = self.buffers.len();
        debug_assert!(self.touched_outputs.is_empty(), "scratch leaked");
        // Input arbitration over requesting ports only.
        for w in 0..self.sa_ports.len() {
            let mut word = self.sa_ports[w];
            while word != 0 {
                let p = (w << 6) | word.trailing_zeros() as usize;
                word &= word - 1;
                let start = u32::from(self.sa_in_rr[p]);
                // Rotating the request mask right by `start` orders its
                // bits exactly like the scan's `(start + i) % vcs`
                // probe sequence (bits below `start` wrap to the top).
                let mut rot = self.sa_mask[p].rotate_right(start);
                while rot != 0 {
                    let v = ((rot.trailing_zeros() + start) & 63) as usize;
                    rot &= rot - 1;
                    let state = self.in_state[p][v];
                    let o = state.out_port as usize;
                    let is_ejection = o == self.ejection_port();
                    if !is_ejection && self.credits[o][state.out_vc as usize] == 0 {
                        continue;
                    }
                    if self.out_requests[o].is_empty() {
                        self.touched_outputs.push(o as u8);
                    }
                    self.out_requests[o].push((p as u8, v as u8));
                    break;
                }
            }
        }
        // Output arbitration + traversal, in the scan's ascending
        // output-port order.
        self.touched_outputs.sort_unstable();
        let touched = std::mem::take(&mut self.touched_outputs);
        for &o in &touched {
            let o = o as usize;
            let start = usize::from(self.sa_out_rr[o]);
            let mut requests = std::mem::take(&mut self.out_requests[o]);
            // The requester with the smallest rotated distance is the
            // first the scan's `(start + i) % in_ports` probe would
            // hit. Input ports are distinct, so the minimum is unique.
            let &(p, v) = requests
                .iter()
                .min_by_key(|&&(p, _)| (p as usize + in_ports - start) % in_ports)
                .expect("touched output has a request");
            requests.clear();
            self.out_requests[o] = requests;
            self.traverse_winner(o, p as usize, v as usize, config, out);
        }
        let mut touched = touched;
        touched.clear();
        self.touched_outputs = touched;
    }

    /// Moves the switch winner `(p, v) → o` through the crossbar:
    /// credits, VC bookkeeping, request-state updates and the
    /// ejection/forward report. Shared verbatim by both policies.
    fn traverse_winner(
        &mut self,
        o: usize,
        p: usize,
        v: usize,
        config: &SimConfig,
        out: &mut TraversalOutput,
    ) {
        let in_ports = self.buffers.len();
        let state = self.in_state[p][v];
        let mut flit = self.buffers[p][v].pop_front().expect("nonempty");
        self.occupied -= 1;
        self.sa_in_rr[p] = (v as u8).wrapping_add(1) % config.num_vcs;
        self.sa_out_rr[o] = (p as u8).wrapping_add(1) % in_ports as u8;
        // Return a credit upstream (injection port has none).
        if p < self.in_channels.len() {
            out.credits.push((self.in_channels[p], flit.vc));
        }
        let now_empty = self.buffers[p][v].is_empty();
        if o == self.ejection_port() {
            if flit.is_tail {
                self.in_state[p][v].active = false;
                self.sa_clear(p, v);
                if !now_empty {
                    // The next packet's head is at the front now.
                    self.va_set(p, v);
                }
            } else if now_empty {
                self.sa_clear(p, v);
            }
            out.ejected.push(flit);
            return;
        }
        let out_channel = self.out_channels[o];
        flit.vc = state.out_vc;
        flit.hop += 1;
        self.credits[o][state.out_vc as usize] -= 1;
        if flit.is_tail {
            self.out_owner[o][state.out_vc as usize] = None;
            self.out_vc_used[o] &= !(1u64 << state.out_vc);
            self.in_state[p][v].active = false;
            self.sa_clear(p, v);
            if !now_empty {
                self.va_set(p, v);
            }
        } else if now_empty {
            self.sa_clear(p, v);
        }
        out.forwards.push((out_channel, flit));
    }

    /// Returns the router to its just-constructed state: empty buffers,
    /// no reservations, full credits, zeroed round-robin pointers and
    /// cleared request bitmasks — without releasing any allocation, so
    /// a [`crate::Network::reset`] between sweep cells reuses every
    /// buffer's capacity instead of re-allocating it. The post-reset
    /// state is indistinguishable from [`Router::new`]'s (capacity
    /// aside), which is what makes reset-reuse bit-identical to fresh
    /// construction.
    pub(crate) fn reset(&mut self, config: &SimConfig) {
        for port in &mut self.buffers {
            for buffer in port {
                buffer.clear();
            }
        }
        for port in &mut self.in_state {
            port.fill(InVc::default());
        }
        for port in &mut self.out_owner {
            port.fill(None);
        }
        for port in &mut self.credits {
            port.fill(config.buffer_depth);
        }
        self.va_rr.fill(0);
        self.sa_in_rr.fill(0);
        self.sa_out_rr.fill(0);
        self.occupied = 0;
        self.va_mask.fill(0);
        self.sa_mask.fill(0);
        self.sa_ports.fill(0);
        self.out_vc_used.fill(0);
        // Per-cycle scratch is already empty after any completed cycle;
        // clear defensively so reset never depends on that invariant.
        for requests in &mut self.out_requests {
            requests.clear();
        }
        self.touched_outputs.clear();
        self.sinking.fill(0);
    }

    /// Asserts every cross-structure invariant of the router's state —
    /// the consistency contract `AllocPolicy::RequestQueue` relies on.
    /// Called per cycle by [`Network::run_validated`]
    /// (`crate::Network::run_validated`); panics with a description on
    /// the first violation.
    pub(crate) fn assert_consistent(&self, config: &SimConfig) {
        let vcs = config.num_vcs as usize;
        let mut total = 0usize;
        for (p, port) in self.buffers.iter().enumerate() {
            for (v, buffer) in port.iter().enumerate() {
                total += buffer.len();
                // The injection port is the unbounded source queue; only
                // network inputs are credit-limited to the buffer depth.
                assert!(
                    p == self.injection_port() || buffer.len() <= config.buffer_depth as usize,
                    "buffer [{p}][{v}] over depth: {}",
                    buffer.len()
                );
                let state = self.in_state[p][v];
                let sa_bit = self.sa_mask[p] & (1 << v) != 0;
                assert_eq!(
                    sa_bit,
                    state.active && !buffer.is_empty(),
                    "sa_mask[{p}] bit {v} vs active {} / occupancy {}",
                    state.active,
                    buffer.len()
                );
                let slot = p * vcs + v;
                let va_bit = self.va_mask[slot >> 6] & (1 << (slot & 63)) != 0;
                if va_bit {
                    assert!(
                        !state.active && !buffer.is_empty(),
                        "va_mask bit [{p}][{v}] without a waiting front"
                    );
                } else {
                    assert!(
                        state.active || buffer.is_empty(),
                        "lost VA request at [{p}][{v}]"
                    );
                }
                if state.active && state.out_port as usize != self.ejection_port() {
                    assert_eq!(
                        self.out_owner[state.out_port as usize][state.out_vc as usize],
                        Some((p as u8, v as u8)),
                        "in_state [{p}][{v}] reservation not reflected in out_owner"
                    );
                }
            }
            let port_bit = self.sa_ports[p >> 6] & (1 << (p & 63)) != 0;
            assert_eq!(port_bit, self.sa_mask[p] != 0, "sa_ports bit {p} stale");
            for (v, slot) in port.iter().enumerate().take(vcs) {
                if self.sinking[p] & (1 << v) != 0 {
                    assert!(
                        slot.is_empty() && !self.in_state[p][v].active,
                        "sinking VC [{p}][{v}] must stay empty and inactive"
                    );
                }
            }
        }
        assert_eq!(total as u32, self.occupied, "occupancy counter drifted");
        for (o, owners) in self.out_owner.iter().enumerate() {
            for (ov, owner) in owners.iter().enumerate() {
                assert!(
                    self.credits[o][ov] <= config.buffer_depth,
                    "credits[{o}][{ov}] exceed buffer depth: {}",
                    self.credits[o][ov]
                );
                let used_bit = self.out_vc_used[o] & (1 << ov) != 0;
                assert_eq!(used_bit, owner.is_some(), "out_vc_used[{o}] bit {ov} stale");
                if let Some((p, v)) = *owner {
                    let state = self.in_state[p as usize][v as usize];
                    assert!(
                        state.active && state.out_port as usize == o && state.out_vc as usize == ov,
                        "out_owner[{o}][{ov}] = ({p}, {v}) but in_state disagrees: {state:?}"
                    );
                }
            }
        }
    }
}
