//! The coordinator side of sweep-as-a-service: [`run_coordinated`]
//! drives one sweep request across a fleet of workers speaking the
//! [`super::proto`] protocol, and owns everything the workers must not
//! have to agree on — the dispatch queue, the shared
//! [`CellCache`][super::CellCache]
//! probe, the single streamed journal, and the recovery story when a
//! worker dies mid-chunk.
//!
//! # Execution model
//!
//! One request runs in phases:
//!
//! 1. **Cache probe.** Every plan cell is probed against the
//!    coordinator's attached cache first; hits never reach a worker. A
//!    fully warm request is answered without touching the fleet at all
//!    (`simulated = 0`).
//! 2. **Handshake.** Each worker gets the request's opaque params and
//!    must echo back the same plan fingerprint and cell count the
//!    coordinator computed — any drift (mismatched binary, different
//!    spec interpretation) aborts the request before a single cell is
//!    misattributed. A worker that fails its handshake I/O is dropped,
//!    not fatal.
//! 3. **Pre-warm.** Workers that report a local cache receive the
//!    probe's hit entries — cache entries travel to workers, cells
//!    don't.
//! 4. **Dispatch.** Remaining cells are cut into chunks (by default
//!    ~4 per worker, so stragglers leave stealable tail work) and
//!    served from a shared queue by one coordinator thread per worker.
//!    An idle worker whose queue is empty *steals* a chunk that is
//!    still in flight elsewhere and runs it redundantly — cell results
//!    are deterministic, so the first completion wins and the copy is
//!    discarded. A worker whose connection dies mid-chunk has its
//!    chunk requeued; losing every worker with cells outstanding is
//!    the only fatal outcome.
//! 5. **Journal streaming.** Completed entries are flushed to one
//!    [`JournalWriter`] in canonical plan order (a reorder buffer
//!    holds out-of-order completions), so the coordinator's journal is
//!    byte-identical to a solo [`super::run_journaled`] run no matter
//!    how chunks interleaved, stole or died. With
//!    [`CoordOptions::durable`] each flush is `fsync`ed.
//!
//! Every worker-returned entry passes
//! [`Experiment::validate_point`][super::Experiment::validate_point]
//! before it is trusted, journaled or cached; a worker that answers
//! with mislabelled points is a protocol error, not silent data
//! corruption.

use std::collections::VecDeque;
use std::io::{Read, Write};
use std::path::Path;
use std::sync::{Condvar, Mutex};

use super::journal::{JournalError, JournalWriter};
use super::plan::CellId;
use super::proto::{read_frame, write_frame, ToCoord, ToWorker};
use super::result::{SweepPoint, SweepResult};
use super::shard::ShardSpec;
use super::Experiment;

/// Cache entries per [`ToWorker::Prewarm`] frame — keeps frames small
/// without chattiness.
const PREWARM_BATCH: usize = 256;

/// A connected worker: a name for diagnostics plus the byte streams it
/// speaks the protocol over (child stdio pipes, a TCP socket, an
/// in-process loopback — the coordinator does not care).
pub struct WorkerLink {
    name: String,
    reader: Box<dyn Read + Send>,
    writer: Box<dyn Write + Send>,
}

impl std::fmt::Debug for WorkerLink {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("WorkerLink")
            .field("name", &self.name)
            .finish_non_exhaustive()
    }
}

impl WorkerLink {
    /// Wraps a worker's byte streams.
    pub fn new(
        name: impl Into<String>,
        reader: impl Read + Send + 'static,
        writer: impl Write + Send + 'static,
    ) -> Self {
        Self {
            name: name.into(),
            reader: Box::new(reader),
            writer: Box::new(writer),
        }
    }

    /// Wraps a connected TCP stream (cloned into separate read/write
    /// halves).
    ///
    /// # Errors
    ///
    /// Fails if the stream cannot be cloned.
    pub fn from_tcp(name: impl Into<String>, stream: std::net::TcpStream) -> std::io::Result<Self> {
        let reader = stream.try_clone()?;
        Ok(Self::new(name, reader, stream))
    }

    /// The worker's diagnostic name.
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Sends [`ToWorker::Shutdown`]; errors are ignored (a worker that
    /// already hung up needs no goodbye).
    pub fn shutdown(&mut self) {
        let _ = write_frame(&mut self.writer, &ToWorker::Shutdown.encode());
    }

    fn send(&mut self, message: &ToWorker) -> std::io::Result<()> {
        write_frame(&mut self.writer, &message.encode())
    }

    fn receive(&mut self) -> std::io::Result<ToCoord> {
        let frame = read_frame(&mut self.reader)?;
        ToCoord::decode(&frame)
            .map_err(|message| std::io::Error::new(std::io::ErrorKind::InvalidData, message))
    }
}

/// Tuning knobs of [`run_coordinated`].
#[derive(Debug, Clone, Default)]
pub struct CoordOptions {
    /// Cells per dispatched chunk; `None` sizes chunks so each worker
    /// sees about four, leaving stealable tail work.
    pub chunk_size: Option<usize>,
    /// `fsync` the journal after its header and after every flushed
    /// batch (see [`JournalWriter`]).
    pub durable: bool,
}

/// What one coordinated request did — the numbers behind the service's
/// summary line and the smoke tests' assertions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CoordSummary {
    /// Total plan cells.
    pub cells: usize,
    /// Cells answered from the coordinator's cache probe.
    pub cached: usize,
    /// Cells dispatched to (and simulated by) the fleet.
    pub dispatched: usize,
    /// Chunks the dispatched cells were cut into.
    pub chunks: u64,
    /// Chunks an idle worker re-ran redundantly while the original
    /// assignee was still working.
    pub stolen_chunks: u64,
    /// Chunks requeued because their worker's connection died.
    pub requeued_chunks: u64,
    /// Workers lost over the request (handshake or mid-chunk).
    pub lost_workers: u64,
    /// Journal `fsync` calls (0 unless [`CoordOptions::durable`]).
    pub journal_syncs: u64,
}

/// Why a coordinated request failed.
#[derive(Debug)]
pub enum CoordError {
    /// Cells needed simulating but no worker survived its handshake.
    NoWorkers,
    /// A worker rebuilt a *different* plan from the same params — a
    /// version or config drift that must not produce mixed results.
    FingerprintMismatch {
        /// The offending worker's name.
        worker: String,
        /// The coordinator's plan fingerprint.
        ours: u64,
        /// The worker's reported fingerprint.
        theirs: u64,
    },
    /// A worker reported an error (bad params, a cell outside its
    /// plan).
    Worker {
        /// The reporting worker's name.
        worker: String,
        /// The worker's message.
        message: String,
    },
    /// A worker answered with a malformed or mislabelled reply.
    Protocol {
        /// The offending worker's name.
        worker: String,
        /// What was wrong with the reply.
        message: String,
    },
    /// Every worker died with cells still outstanding.
    AllWorkersLost {
        /// Cells that never completed.
        remaining_cells: usize,
    },
    /// The streamed journal could not be written.
    Journal(JournalError),
}

impl std::fmt::Display for CoordError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::NoWorkers => write!(f, "no workers available to simulate uncached cells"),
            Self::FingerprintMismatch {
                worker,
                ours,
                theirs,
            } => write!(
                f,
                "worker '{worker}' built plan fingerprint {theirs:016x}, coordinator expects \
                 {ours:016x} — mismatched binaries or specs"
            ),
            Self::Worker { worker, message } => {
                write!(f, "worker '{worker}' reported an error: {message}")
            }
            Self::Protocol { worker, message } => {
                write!(f, "protocol violation from worker '{worker}': {message}")
            }
            Self::AllWorkersLost { remaining_cells } => write!(
                f,
                "all workers lost with {remaining_cells} cell(s) still outstanding"
            ),
            Self::Journal(e) => write!(f, "journal write failed: {e}"),
        }
    }
}

impl std::error::Error for CoordError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Self::Journal(e) => Some(e),
            _ => None,
        }
    }
}

impl From<JournalError> for CoordError {
    fn from(e: JournalError) -> Self {
        Self::Journal(e)
    }
}

/// A progress snapshot, reported after every newly completed chunk
/// (and once after the cache probe). Drives service logging and the
/// smoke tests' kill-a-worker-after-N-chunks hook.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CoordProgress {
    /// Dispatched chunks completed so far.
    pub chunks_done: u64,
    /// Total dispatched chunks.
    pub chunks_total: u64,
    /// Cells with results so far (cache hits included).
    pub cells_done: usize,
    /// Total plan cells.
    pub cells_total: usize,
}

/// One dispatched chunk and its queue state.
struct ChunkState {
    cells: Vec<CellId>,
    in_flight: u32,
    completed: bool,
}

/// Everything the per-worker threads share, behind one mutex.
struct State {
    chunks: Vec<ChunkState>,
    /// Chunk indices nobody is running.
    pending: VecDeque<usize>,
    /// Incomplete chunk count.
    remaining: usize,
    /// One slot per plan cell, canonical order.
    points: Vec<Option<SweepPoint>>,
    /// Cells `[0, flushed)` are in the journal.
    flushed: usize,
    writer: Option<JournalWriter>,
    chunks_done: u64,
    cells_done: usize,
    stolen: u64,
    requeued: u64,
    live_workers: usize,
    lost_workers: u64,
    /// First fatal error; every thread drains and exits once set.
    abort: Option<CoordError>,
}

/// Runs one sweep request across `workers`, returning the complete
/// [`SweepResult`] (canonical order, bit-identical to
/// [`Experiment::run_parallel`] on the same experiment) and what it
/// took. See the [module docs](self) for the execution model.
///
/// `request_id` labels the request on the wire; `params` are the
/// opaque key-value pairs every worker rebuilds its experiment from —
/// ship the user's raw strings, never re-formatted values, so both
/// sides parse identically (the fingerprint handshake catches any
/// drift). `journal`, when given, streams completed entries into a
/// solo-shard journal at that path as the request runs.
///
/// Workers that die (handshake or mid-chunk) are removed from
/// `workers`; survivors remain connected and ready for the next
/// request.
///
/// `progress` is called after the cache probe and after every newly
/// completed chunk, from whichever coordinator thread completed it.
///
/// # Errors
///
/// See [`CoordError`]. Worker deaths are not errors unless the fleet
/// is exhausted with cells outstanding ([`CoordError::AllWorkersLost`]
/// — or [`CoordError::NoWorkers`] when nobody survives the
/// handshake).
///
/// # Panics
///
/// Panics if a coordinator thread panics (which would itself be a
/// bug, not an input condition).
pub fn run_coordinated(
    experiment: &Experiment<'_>,
    request_id: u64,
    params: &[(String, String)],
    workers: &mut Vec<WorkerLink>,
    journal: Option<&Path>,
    options: &CoordOptions,
    progress: impl FnMut(CoordProgress) + Send,
) -> Result<(SweepResult, CoordSummary), CoordError> {
    let plan = experiment.plan();
    let cells: Vec<CellId> = plan.cells().collect();
    let total = cells.len();

    // Phase 1: answer whatever the coordinator's cache already holds.
    let mut points: Vec<Option<SweepPoint>> = Vec::with_capacity(total);
    let mut warm: Vec<(CellId, SweepPoint)> = Vec::new();
    for &cell in &cells {
        let hit = experiment.probe_cached(cell);
        if let Some(point) = &hit {
            warm.push((cell, point.clone()));
        }
        points.push(hit);
    }
    let cached = warm.len();
    let dispatch: Vec<CellId> = cells
        .iter()
        .zip(&points)
        .filter(|(_, p)| p.is_none())
        .map(|(&c, _)| c)
        .collect();

    let mut writer = journal
        .map(|path| JournalWriter::create(path, &plan, ShardSpec::SOLO, options.durable))
        .transpose()?;

    let mut progress = progress;

    // Fully warm: no handshake, no dispatch — the fleet never hears
    // about this request.
    if dispatch.is_empty() {
        let entries: Vec<(CellId, SweepPoint)> = cells
            .iter()
            .zip(&points)
            .map(|(&c, p)| (c, p.clone().expect("all cached")))
            .collect();
        if let Some(writer) = writer.as_mut() {
            writer.append(&entries)?;
        }
        progress(CoordProgress {
            chunks_done: 0,
            chunks_total: 0,
            cells_done: total,
            cells_total: total,
        });
        return Ok((
            SweepResult {
                points: entries.into_iter().map(|(_, p)| p).collect(),
            },
            CoordSummary {
                cells: total,
                cached,
                dispatched: 0,
                chunks: 0,
                stolen_chunks: 0,
                requeued_chunks: 0,
                lost_workers: 0,
                journal_syncs: writer.map_or(0, |w| w.syncs()),
            },
        ));
    }

    // Phase 2: handshake. Fingerprint drift is fatal; a dead worker is
    // not.
    let mut lost_workers = 0u64;
    let mut fleet: Vec<(WorkerLink, bool)> = Vec::new();
    let request = ToWorker::Request {
        id: request_id,
        fingerprint: plan.fingerprint(),
        params: params.to_vec(),
    };
    for mut link in workers.drain(..) {
        let reply = link.send(&request).and_then(|()| link.receive());
        match reply {
            Ok(ToCoord::Ready {
                request: r,
                fingerprint,
                cells: n,
                cache,
            }) => {
                if r != request_id {
                    return Err(CoordError::Protocol {
                        worker: link.name,
                        message: format!("ready for request {r}, expected {request_id}"),
                    });
                }
                if fingerprint != plan.fingerprint() || n as usize != total {
                    return Err(CoordError::FingerprintMismatch {
                        worker: link.name,
                        ours: plan.fingerprint(),
                        theirs: fingerprint,
                    });
                }
                fleet.push((link, cache));
            }
            Ok(ToCoord::Error { message }) => {
                return Err(CoordError::Worker {
                    worker: link.name,
                    message,
                });
            }
            Ok(ToCoord::ChunkDone { .. }) => {
                return Err(CoordError::Protocol {
                    worker: link.name,
                    message: "chunk-done before any chunk was dispatched".to_owned(),
                });
            }
            Err(_) => lost_workers += 1, // dropped; the fleet shrinks
        }
    }
    if fleet.is_empty() {
        return Err(CoordError::NoWorkers);
    }

    // Phase 3: pre-warm cache-holding workers with the probe's hits.
    if !warm.is_empty() {
        let mut kept: Vec<(WorkerLink, bool)> = Vec::new();
        for (mut link, has_cache) in fleet {
            let mut alive = true;
            if has_cache {
                for batch in warm.chunks(PREWARM_BATCH) {
                    let message = ToWorker::Prewarm {
                        entries: batch.to_vec(),
                    };
                    if link.send(&message).is_err() {
                        alive = false;
                        lost_workers += 1;
                        break;
                    }
                }
            }
            if alive {
                kept.push((link, has_cache));
            }
        }
        fleet = kept;
        if fleet.is_empty() {
            return Err(CoordError::NoWorkers);
        }
    }

    // Phase 4: cut chunks and dispatch. Default sizing leaves about
    // four chunks per worker so a straggler's tail is stealable.
    let chunk_size = options
        .chunk_size
        .unwrap_or_else(|| dispatch.len().div_ceil(fleet.len() * 4))
        .max(1);
    let chunks: Vec<ChunkState> = dispatch
        .chunks(chunk_size)
        .map(|cells| ChunkState {
            cells: cells.to_vec(),
            in_flight: 0,
            completed: false,
        })
        .collect();
    let chunks_total = chunks.len() as u64;
    let remaining = chunks.len();
    let pending: VecDeque<usize> = (0..chunks.len()).collect();

    progress(CoordProgress {
        chunks_done: 0,
        chunks_total,
        cells_done: cached,
        cells_total: total,
    });

    let state = Mutex::new(State {
        chunks,
        pending,
        remaining,
        points,
        flushed: 0,
        writer: writer.take(),
        chunks_done: 0,
        cells_done: cached,
        stolen: 0,
        requeued: 0,
        live_workers: fleet.len(),
        lost_workers,
        abort: None,
    });
    // Flush the warm prefix (if any) before dispatching.
    {
        let mut guard = state.lock().expect("coordinator state poisoned");
        flush_prefix(&mut guard, &cells);
        if let Some(abort) = guard.abort.take() {
            return Err(abort);
        }
    }
    let progress = Mutex::new(progress);
    let work_available = Condvar::new();

    let survivors: Vec<Option<WorkerLink>> = std::thread::scope(|scope| {
        let handles: Vec<_> = fleet
            .into_iter()
            .map(|(link, _)| {
                scope.spawn(|| {
                    worker_thread(experiment, &cells, &state, &work_available, &progress, link)
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("coordinator worker thread panicked"))
            .collect()
    });
    workers.extend(survivors.into_iter().flatten());

    let mut state = state.into_inner().expect("coordinator state poisoned");
    if let Some(abort) = state.abort.take() {
        return Err(abort);
    }
    if state.remaining > 0 {
        let remaining_cells = state.points.iter().filter(|p| p.is_none()).count();
        return Err(CoordError::AllWorkersLost { remaining_cells });
    }
    debug_assert!(state.writer.is_none() || state.flushed == total);

    let result = SweepResult {
        points: state
            .points
            .into_iter()
            .map(|p| p.expect("all chunks completed"))
            .collect(),
    };
    Ok((
        result,
        CoordSummary {
            cells: total,
            cached,
            dispatched: dispatch.len(),
            chunks: chunks_total,
            stolen_chunks: state.stolen,
            requeued_chunks: state.requeued,
            lost_workers: state.lost_workers,
            journal_syncs: state.writer.as_ref().map_or(0, JournalWriter::syncs),
        },
    ))
}

/// Flushes the maximal canonical prefix of completed cells to the
/// journal; a write error becomes the request's abort reason.
fn flush_prefix(state: &mut State, cell_of: &[CellId]) {
    let Some(writer) = state.writer.as_mut() else {
        return;
    };
    let ready = state.points[state.flushed..]
        .iter()
        .take_while(|p| p.is_some())
        .count();
    if ready == 0 {
        return;
    }
    let batch: Vec<(CellId, SweepPoint)> = (state.flushed..state.flushed + ready)
        .map(|ordinal| {
            let point = state.points[ordinal].clone().expect("counted as ready");
            (cell_of[ordinal], point)
        })
        .collect();
    match writer.append(&batch) {
        Ok(()) => state.flushed += ready,
        Err(e) => {
            if state.abort.is_none() {
                state.abort = Some(CoordError::Journal(e));
            }
        }
    }
}

/// The per-worker coordinator loop: claim a pending chunk (or steal an
/// in-flight one), ship it, validate and bank the reply; on a dead
/// connection, requeue and exit. Returns the link if the worker is
/// still healthy when the request drains.
fn worker_thread(
    experiment: &Experiment<'_>,
    cells: &[CellId],
    state: &Mutex<State>,
    work_available: &Condvar,
    progress: &Mutex<impl FnMut(CoordProgress) + Send>,
    mut link: WorkerLink,
) -> Option<WorkerLink> {
    loop {
        // Claim work.
        let (index, chunk_cells) = {
            let mut guard = state.lock().expect("coordinator state poisoned");
            loop {
                if guard.abort.is_some() || guard.remaining == 0 {
                    return Some(link);
                }
                if let Some(index) = guard.pending.pop_front() {
                    guard.chunks[index].in_flight += 1;
                    break (index, guard.chunks[index].cells.clone());
                }
                // Nothing pending but cells remain: steal the least
                // contended incomplete chunk (earliest on ties — it
                // unblocks the journal prefix soonest).
                let steal = (0..guard.chunks.len())
                    .filter(|&i| !guard.chunks[i].completed)
                    .min_by_key(|&i| (guard.chunks[i].in_flight, i));
                if let Some(index) = steal {
                    guard.stolen += 1;
                    guard.chunks[index].in_flight += 1;
                    break (index, guard.chunks[index].cells.clone());
                }
                // remaining > 0 yet nothing incomplete is impossible;
                // defensive wait keeps this loop honest if it ever
                // changes.
                guard = work_available
                    .wait(guard)
                    .expect("coordinator state poisoned");
            }
        };

        // Ship and await off-lock: this is where simulation time goes.
        let chunk = ToWorker::Chunk {
            id: index as u64,
            cells: chunk_cells.clone(),
        };
        let reply = link.send(&chunk).and_then(|()| link.receive());

        let mut guard = state.lock().expect("coordinator state poisoned");
        guard.chunks[index].in_flight -= 1;
        match reply {
            Ok(ToCoord::ChunkDone { id, entries }) => {
                if id != index as u64 {
                    set_abort(
                        &mut guard,
                        CoordError::Protocol {
                            worker: link.name.clone(),
                            message: format!("chunk-done for chunk {id}, expected {index}"),
                        },
                    );
                    work_available.notify_all();
                    return Some(link);
                }
                if let Err(message) = check_entries(experiment, &chunk_cells, &entries) {
                    set_abort(
                        &mut guard,
                        CoordError::Protocol {
                            worker: link.name.clone(),
                            message,
                        },
                    );
                    work_available.notify_all();
                    return Some(link);
                }
                if !guard.chunks[index].completed {
                    // First completion wins; a stolen duplicate of an
                    // already-banked chunk is discarded here.
                    guard.chunks[index].completed = true;
                    guard.remaining -= 1;
                    guard.chunks_done += 1;
                    guard.cells_done += entries.len();
                    for (cell, point) in &entries {
                        experiment.store_cached(*cell, point);
                        let ordinal = cells
                            .binary_search(cell)
                            .expect("validated cells are plan cells");
                        guard.points[ordinal] = Some(point.clone());
                    }
                    flush_prefix(&mut guard, cells);
                    let snapshot = CoordProgress {
                        chunks_done: guard.chunks_done,
                        chunks_total: guard.chunks.len() as u64,
                        cells_done: guard.cells_done,
                        cells_total: guard.points.len(),
                    };
                    let finished = guard.remaining == 0 || guard.abort.is_some();
                    drop(guard);
                    work_available.notify_all();
                    (progress.lock().expect("progress hook poisoned"))(snapshot);
                    if finished {
                        return Some(link);
                    }
                }
            }
            Ok(ToCoord::Error { message }) => {
                set_abort(
                    &mut guard,
                    CoordError::Worker {
                        worker: link.name.clone(),
                        message,
                    },
                );
                work_available.notify_all();
                return Some(link);
            }
            Ok(ToCoord::Ready { .. }) => {
                set_abort(
                    &mut guard,
                    CoordError::Protocol {
                        worker: link.name.clone(),
                        message: "unexpected ready during dispatch".to_owned(),
                    },
                );
                work_available.notify_all();
                return Some(link);
            }
            Err(_) => {
                // The connection died. The chunk survives: requeue it
                // unless someone else is (or was) already on it.
                guard.live_workers -= 1;
                guard.lost_workers += 1;
                if !guard.chunks[index].completed && guard.chunks[index].in_flight == 0 {
                    guard.pending.push_front(index);
                    guard.requeued += 1;
                }
                if guard.live_workers == 0 && guard.remaining > 0 {
                    let remaining_cells = guard.points.iter().filter(|p| p.is_none()).count();
                    set_abort(&mut guard, CoordError::AllWorkersLost { remaining_cells });
                }
                work_available.notify_all();
                return None;
            }
        }
    }
}

/// Records the first fatal error; later ones lose the race and are
/// dropped.
fn set_abort(state: &mut State, error: CoordError) {
    if state.abort.is_none() {
        state.abort = Some(error);
    }
}

/// Validates one chunk reply: every requested cell answered, in order,
/// with a point that is really that cell's (see
/// [`Experiment::validate_point`]).
fn check_entries(
    experiment: &Experiment<'_>,
    requested: &[CellId],
    entries: &[(CellId, SweepPoint)],
) -> Result<(), String> {
    if entries.len() != requested.len() {
        return Err(format!(
            "chunk answered {} entries for {} requested cells",
            entries.len(),
            requested.len()
        ));
    }
    for (&cell, (got, point)) in requested.iter().zip(entries) {
        if *got != cell {
            return Err(format!("entry for cell {got}, expected {cell}"));
        }
        if !experiment.validate_point(cell, point) {
            return Err(format!("entry for cell {cell} fails identity validation"));
        }
    }
    Ok(())
}
