//! The result and merge layer: measured points, the deterministic
//! serialized form, and [`SweepResult::merge`] — recombining shard
//! results into the exact bytes a single-shot run would have produced.

use serde::Serialize;

use super::plan::CellId;
use super::shard::ShardSpec;
use crate::stats::SimOutcome;
use crate::traffic::TrafficPattern;

/// One measured grid cell of a sweep.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct SweepPoint {
    /// Case (topology) name.
    pub case: String,
    /// Traffic pattern of this cell.
    pub pattern: TrafficPattern,
    /// Offered injection rate (flits per node per cycle).
    pub rate: f64,
    /// The derived per-point RNG seed (recorded for reproduction).
    pub seed: u64,
    /// The simulator's measurements.
    pub outcome: SimOutcome,
}

/// All points of a sweep, in deterministic grid order
/// (case-major, then pattern, then rate).
#[derive(Debug, Clone, PartialEq, Serialize, Default)]
pub struct SweepResult {
    /// The measured points.
    pub points: Vec<SweepPoint>,
}

/// One shard's worth of measured cells, tagged with what
/// [`SweepResult::merge`] validates: the plan fingerprint, the shard
/// assignment, and the plan's total cell count. Produced in-process by
/// [`crate::Experiment::run_shard`] or loaded from a worker's journal
/// by [`super::journal::read_journal`].
#[derive(Debug, Clone, PartialEq)]
pub struct ShardResult {
    /// Fingerprint of the plan this shard was computed under.
    pub fingerprint: u64,
    /// Which shard of the plan this is.
    pub shard: ShardSpec,
    /// Total cells in the plan (across all shards).
    pub plan_cells: u64,
    /// The measured cells, in canonical order.
    pub entries: Vec<(CellId, SweepPoint)>,
}

/// Why shard results refused to merge.
#[derive(Debug, Clone, PartialEq)]
pub enum MergeError {
    /// No shards given.
    Empty,
    /// A shard was computed under a different plan (spec, case set or
    /// topology changed between runs).
    FingerprintMismatch {
        /// The first shard's fingerprint.
        expected: u64,
        /// The disagreeing shard's fingerprint.
        found: u64,
        /// Which disagreeing shard (its CLI form).
        shard: ShardSpec,
    },
    /// Shards disagree on the plan's total cell count.
    PlanSizeMismatch {
        /// The first shard's total.
        expected: u64,
        /// The disagreeing shard's total.
        found: u64,
    },
    /// The same cell appears in more than one shard (overlapping or
    /// repeated shards).
    DuplicateCell(CellId),
    /// The union of shards does not cover the plan (a shard is missing
    /// or was interrupted before finishing).
    IncompleteCoverage {
        /// Cells present across all shards.
        have: u64,
        /// Cells the plan requires.
        need: u64,
    },
}

impl std::fmt::Display for MergeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::Empty => write!(f, "no shard results to merge"),
            Self::FingerprintMismatch {
                expected,
                found,
                shard,
            } => write!(
                f,
                "shard {shard} has plan fingerprint {found:#018x}, expected {expected:#018x} — \
                 the sweep spec, case set or topology changed between shard runs"
            ),
            Self::PlanSizeMismatch { expected, found } => write!(
                f,
                "shards disagree on the plan's cell count ({found} vs {expected})"
            ),
            Self::DuplicateCell(cell) => write!(
                f,
                "cell {cell} appears in more than one shard — overlapping shard specs?"
            ),
            Self::IncompleteCoverage { have, need } => write!(
                f,
                "shards cover {have} of {need} cells — a shard is missing or unfinished"
            ),
        }
    }
}

impl std::error::Error for MergeError {}

impl SweepResult {
    /// Serializes to pretty JSON (byte-identical for identical sweeps,
    /// regardless of thread count).
    #[must_use]
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("sweep JSON serializes")
    }

    /// Serializes to compact JSON.
    #[must_use]
    pub fn to_json_compact(&self) -> String {
        serde_json::to_string(self).expect("sweep JSON serializes")
    }

    /// Recombines shard results into the full sweep, re-ordered into
    /// the canonical grid order — [`SweepResult::to_json`] on the
    /// merged result is byte-identical to a single-shot
    /// [`crate::Experiment::run_parallel`] of the same plan.
    ///
    /// # Errors
    ///
    /// Rejects shards whose fingerprints or plan sizes disagree,
    /// overlapping shards (duplicate cells) and incomplete coverage.
    pub fn merge(shards: Vec<ShardResult>) -> Result<Self, MergeError> {
        let first = shards.first().ok_or(MergeError::Empty)?;
        let fingerprint = first.fingerprint;
        let plan_cells = first.plan_cells;
        for shard in &shards {
            if shard.fingerprint != fingerprint {
                return Err(MergeError::FingerprintMismatch {
                    expected: fingerprint,
                    found: shard.fingerprint,
                    shard: shard.shard,
                });
            }
            if shard.plan_cells != plan_cells {
                return Err(MergeError::PlanSizeMismatch {
                    expected: plan_cells,
                    found: shard.plan_cells,
                });
            }
        }
        let mut entries: Vec<(CellId, SweepPoint)> =
            shards.into_iter().flat_map(|s| s.entries).collect();
        entries.sort_by_key(|(cell, _)| *cell);
        for pair in entries.windows(2) {
            if pair[0].0 == pair[1].0 {
                return Err(MergeError::DuplicateCell(pair[0].0));
            }
        }
        if entries.len() as u64 != plan_cells {
            return Err(MergeError::IncompleteCoverage {
                have: entries.len() as u64,
                need: plan_cells,
            });
        }
        Ok(Self {
            points: entries.into_iter().map(|(_, point)| point).collect(),
        })
    }

    /// The points of one case, in grid order.
    pub fn points_for(&self, case: &str) -> impl Iterator<Item = &SweepPoint> {
        let case = case.to_owned();
        self.points.iter().filter(move |p| p.case == case)
    }

    /// The highest swept rate at which `case` under `pattern` still
    /// keeps up with the offered load (within `slack`), or `None` if it
    /// saturates below every swept rate.
    #[must_use]
    pub fn saturation_estimate(
        &self,
        case: &str,
        pattern: TrafficPattern,
        slack: f64,
    ) -> Option<f64> {
        self.points_for(case)
            .filter(|p| p.pattern == pattern && p.outcome.keeps_up(slack))
            .map(|p| p.rate)
            .fold(None, |best, rate| {
                Some(best.map_or(rate, |b: f64| b.max(rate)))
            })
    }

    /// A plain-text table of all points (binaries print this).
    #[must_use]
    pub fn table(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "{:<26} {:>16} {:>8} {:>9} {:>12} {:>12} {:>7}\n",
            "Case", "Pattern", "Offered", "Accepted", "AvgLat[cyc]", "p99Lat[cyc]", "Stable"
        ));
        out.push_str(&"-".repeat(96));
        out.push('\n');
        for p in &self.points {
            out.push_str(&format!(
                "{:<26} {:>16} {:>8.3} {:>9.3} {:>12.1} {:>12.1} {:>7}\n",
                p.case,
                p.pattern.to_string(),
                p.rate,
                p.outcome.accepted_rate,
                p.outcome.avg_packet_latency,
                p.outcome.p99_packet_latency,
                p.outcome.stable
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::super::experiment::Experiment;
    use super::super::spec::SweepSpec;
    use super::*;
    use crate::config::SimConfig;
    use shg_topology::{generators, Grid};

    fn experiment(topology: &shg_topology::Topology) -> Experiment<'_> {
        let spec = SweepSpec::new(SimConfig::fast_test())
            .rates([0.02, 0.1])
            .patterns([TrafficPattern::UniformRandom, TrafficPattern::Transpose]);
        Experiment::new(spec)
            .with_unit_latency_case("mesh", topology)
            .expect("mesh routes")
    }

    #[test]
    fn merged_shards_reproduce_the_single_shot_bytes() {
        let mesh = generators::mesh(Grid::new(4, 4));
        let experiment = experiment(&mesh);
        let single = experiment.run_parallel().to_json();
        let shards: Vec<ShardResult> = (0..3)
            .map(|i| experiment.run_shard(ShardSpec::new(i, 3)))
            .collect();
        let merged = SweepResult::merge(shards).expect("shards merge");
        assert_eq!(merged.to_json(), single);
    }

    #[test]
    fn merge_rejects_fingerprint_mismatch() {
        let mesh = generators::mesh(Grid::new(4, 4));
        let torus = generators::torus(Grid::new(4, 4));
        let a = experiment(&mesh).run_shard(ShardSpec::new(0, 2));
        let b = experiment(&torus).run_shard(ShardSpec::new(1, 2));
        let err = SweepResult::merge(vec![a, b]).expect_err("different plans");
        assert!(
            matches!(err, MergeError::FingerprintMismatch { .. }),
            "{err}"
        );
        assert!(err.to_string().contains("fingerprint"), "{err}");
    }

    #[test]
    fn merge_rejects_overlap_missing_shards_and_empty_input() {
        let mesh = generators::mesh(Grid::new(4, 4));
        let experiment = experiment(&mesh);
        let a = experiment.run_shard(ShardSpec::new(0, 2));
        let b = experiment.run_shard(ShardSpec::new(1, 2));
        let err =
            SweepResult::merge(vec![a.clone(), b.clone(), b.clone()]).expect_err("duplicate shard");
        assert!(matches!(err, MergeError::DuplicateCell(_)), "{err}");
        let err = SweepResult::merge(vec![a]).expect_err("half the cells missing");
        assert!(
            matches!(err, MergeError::IncompleteCoverage { have: 2, need: 4 }),
            "{err}"
        );
        assert_eq!(SweepResult::merge(Vec::new()), Err(MergeError::Empty));
    }
}
