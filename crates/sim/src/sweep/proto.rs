//! The wire protocol of coordinated sweep execution: length-prefixed
//! JSON frames between a coordinator (see [`super::coord`]) and its
//! workers, plus [`serve_worker`] — the worker-side loop a process or
//! thread runs over any byte stream (child stdio pipes, a TCP socket,
//! an in-process loopback).
//!
//! # Framing
//!
//! Every message is one frame: a 4-byte little-endian payload length
//! followed by that many bytes of JSON text. JSON (over the vendored
//! `serde_json` writer/parser the journal and cache already use) keeps
//! the payloads debuggable and reuses the byte-exact number round trip
//! the merge identity depends on — a [`SweepPoint`] crossing the wire
//! re-serializes to the same bytes it would have had in-process.
//!
//! # Conversation
//!
//! Per request, on each worker connection (strictly in order — one
//! frame's reply is always read before the next frame is sent, so
//! replies never need correlation beyond their ids):
//!
//! 1. coordinator → [`ToWorker::Request`]: request id, the
//!    coordinator's plan fingerprint, and the opaque key-value params
//!    the worker rebuilds its experiment from.
//! 2. worker → [`ToCoord::Ready`]: the worker's own plan fingerprint
//!    and cell count (the coordinator aborts on any disagreement —
//!    a config drift must fail loudly, not skew results), plus
//!    whether the worker has a local cell cache attached.
//! 3. coordinator → [`ToWorker::Prewarm`] (optional, cache-holding
//!    workers only): cache entries the coordinator already has, so a
//!    worker's local cache warms without simulating — entries travel,
//!    cells don't. No reply; the stream stays ordered.
//! 4. coordinator → [`ToWorker::Chunk`] / worker →
//!    [`ToCoord::ChunkDone`], repeated until the grid is done.
//! 5. coordinator → [`ToWorker::Shutdown`] when the service exits
//!    (workers also exit cleanly on EOF — a vanished coordinator must
//!    not strand a fleet).
//!
//! The params are deliberately opaque `(key, value)` string pairs: the
//! sim layer neither knows nor cares what "rate-points" means — the
//! bench layer interprets them identically on both ends, and the
//! fingerprint exchange catches any interpretation drift.

use std::io::{Read, Write};

use serde_json::Value;

use super::journal::{cell_from_value, entry_line, point_from_value};
use super::plan::CellId;
use super::result::SweepPoint;

/// Upper bound on one frame's payload (64 MiB) — far above any real
/// chunk, small enough that a corrupt length prefix cannot trigger an
/// absurd allocation.
pub const MAX_FRAME: u32 = 64 * 1024 * 1024;

/// Writes one length-prefixed frame and flushes it.
///
/// # Errors
///
/// Fails on I/O errors, or on a payload exceeding [`MAX_FRAME`].
pub fn write_frame(writer: &mut impl Write, payload: &[u8]) -> std::io::Result<()> {
    let len = u32::try_from(payload.len())
        .ok()
        .filter(|&len| len <= MAX_FRAME)
        .ok_or_else(|| {
            std::io::Error::new(
                std::io::ErrorKind::InvalidInput,
                format!(
                    "frame of {} bytes exceeds the {MAX_FRAME}-byte cap",
                    payload.len()
                ),
            )
        })?;
    writer.write_all(&len.to_le_bytes())?;
    writer.write_all(payload)?;
    writer.flush()
}

/// Reads one length-prefixed frame. EOF before the first length byte
/// surfaces as [`std::io::ErrorKind::UnexpectedEof`] — the "peer hung
/// up" condition both loops treat as a clean or recoverable end.
///
/// # Errors
///
/// Fails on I/O errors, truncated frames, or a length prefix beyond
/// [`MAX_FRAME`].
pub fn read_frame(reader: &mut impl Read) -> std::io::Result<Vec<u8>> {
    let mut len_bytes = [0u8; 4];
    reader.read_exact(&mut len_bytes)?;
    let len = u32::from_le_bytes(len_bytes);
    if len > MAX_FRAME {
        return Err(std::io::Error::new(
            std::io::ErrorKind::InvalidData,
            format!("frame length {len} exceeds the {MAX_FRAME}-byte cap"),
        ));
    }
    let mut payload = vec![0u8; len as usize];
    reader.read_exact(&mut payload)?;
    Ok(payload)
}

/// A message from the coordinator to a worker.
#[derive(Debug, Clone, PartialEq)]
pub enum ToWorker {
    /// Start (or switch to) a sweep request: the worker rebuilds its
    /// experiment from `params` and replies [`ToCoord::Ready`].
    Request {
        /// Coordinator-assigned request id (echoed in `Ready`).
        id: u64,
        /// The coordinator's plan fingerprint, for the worker's log;
        /// authoritative validation happens coordinator-side against
        /// the fingerprint `Ready` reports back.
        fingerprint: u64,
        /// Opaque key-value parameters the bench layer interprets.
        params: Vec<(String, String)>,
    },
    /// Cache entries for the worker's local cell cache (no reply).
    Prewarm {
        /// The entries, as `(cell, point)` of the current request's
        /// plan.
        entries: Vec<(CellId, SweepPoint)>,
    },
    /// Simulate these cells of the current request and reply
    /// [`ToCoord::ChunkDone`].
    Chunk {
        /// Coordinator-assigned chunk id (echoed in `ChunkDone`).
        id: u64,
        /// The cells, in the order their points must come back.
        cells: Vec<CellId>,
    },
    /// Exit the serve loop cleanly.
    Shutdown,
}

/// A message from a worker to the coordinator.
#[derive(Debug, Clone, PartialEq)]
pub enum ToCoord {
    /// The worker rebuilt its experiment for a request.
    Ready {
        /// The request id being acknowledged.
        request: u64,
        /// The worker's own plan fingerprint (the coordinator aborts
        /// the request unless it matches its own).
        fingerprint: u64,
        /// The worker's plan cell count (same cross-check).
        cells: u64,
        /// Whether the worker has a local cell cache attached (the
        /// coordinator only pre-warms workers that can store).
        cache: bool,
    },
    /// A chunk's points, in the chunk's cell order.
    ChunkDone {
        /// The chunk id being answered.
        id: u64,
        /// One `(cell, point)` per requested cell, in request order.
        entries: Vec<(CellId, SweepPoint)>,
    },
    /// The worker could not serve the last frame (bad params, cells
    /// outside its plan, a chunk before any request).
    Error {
        /// What went wrong.
        message: String,
    },
}

fn json_str(text: &str) -> String {
    serde_json::to_string(&text).expect("string serializes")
}

fn entries_json(entries: &[(CellId, SweepPoint)]) -> String {
    let mut out = String::from("[");
    for (i, (cell, point)) in entries.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&entry_line(*cell, point));
    }
    out.push(']');
    out
}

fn entries_from_value(value: &Value) -> Result<Vec<(CellId, SweepPoint)>, String> {
    value
        .as_array()
        .ok_or_else(|| "field 'entries' is not an array".to_owned())?
        .iter()
        .map(|entry| {
            let cell = entry
                .get("cell")
                .ok_or_else(|| "entry missing 'cell'".to_owned())
                .and_then(cell_from_value)?;
            let point = entry
                .get("point")
                .ok_or_else(|| "entry missing 'point'".to_owned())
                .and_then(point_from_value)?;
            Ok((cell, point))
        })
        .collect()
}

fn u64_field(value: &Value, key: &str) -> Result<u64, String> {
    value
        .get(key)
        .and_then(Value::as_u64)
        .ok_or_else(|| format!("field '{key}' is not an unsigned integer"))
}

impl ToWorker {
    /// Serializes to one frame payload.
    #[must_use]
    pub fn encode(&self) -> Vec<u8> {
        match self {
            Self::Request {
                id,
                fingerprint,
                params,
            } => {
                let mut out = format!(
                    "{{\"type\":\"request\",\"id\":{id},\"fingerprint\":{fingerprint},\"params\":["
                );
                for (i, (key, value)) in params.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push_str(&format!("[{},{}]", json_str(key), json_str(value)));
                }
                out.push_str("]}");
                out.into_bytes()
            }
            Self::Prewarm { entries } => format!(
                "{{\"type\":\"prewarm\",\"entries\":{}}}",
                entries_json(entries)
            )
            .into_bytes(),
            Self::Chunk { id, cells } => {
                let mut out = format!("{{\"type\":\"chunk\",\"id\":{id},\"cells\":[");
                for (i, cell) in cells.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push_str(&serde_json::to_string(cell).expect("cell serializes"));
                }
                out.push_str("]}");
                out.into_bytes()
            }
            Self::Shutdown => b"{\"type\":\"shutdown\"}".to_vec(),
        }
    }

    /// Parses a frame payload.
    ///
    /// # Errors
    ///
    /// Returns a description of the malformation.
    pub fn decode(payload: &[u8]) -> Result<Self, String> {
        let text = std::str::from_utf8(payload).map_err(|e| format!("frame is not UTF-8: {e}"))?;
        let value: Value = text
            .parse()
            .map_err(|e| format!("frame is not JSON: {e}"))?;
        let kind = value
            .get("type")
            .and_then(Value::as_str)
            .ok_or_else(|| "frame has no 'type'".to_owned())?;
        match kind {
            "request" => {
                let params = value
                    .get("params")
                    .and_then(Value::as_array)
                    .ok_or_else(|| "field 'params' is not an array".to_owned())?
                    .iter()
                    .map(|pair| {
                        let key = pair.index(0).and_then(Value::as_str);
                        let val = pair.index(1).and_then(Value::as_str);
                        match (key, val) {
                            (Some(k), Some(v)) => Ok((k.to_owned(), v.to_owned())),
                            _ => Err("param is not a [key, value] string pair".to_owned()),
                        }
                    })
                    .collect::<Result<Vec<_>, String>>()?;
                Ok(Self::Request {
                    id: u64_field(&value, "id")?,
                    fingerprint: u64_field(&value, "fingerprint")?,
                    params,
                })
            }
            "prewarm" => Ok(Self::Prewarm {
                entries: value
                    .get("entries")
                    .map(entries_from_value)
                    .transpose()?
                    .ok_or_else(|| "prewarm has no 'entries'".to_owned())?,
            }),
            "chunk" => {
                let cells = value
                    .get("cells")
                    .and_then(Value::as_array)
                    .ok_or_else(|| "field 'cells' is not an array".to_owned())?
                    .iter()
                    .map(cell_from_value)
                    .collect::<Result<Vec<_>, String>>()?;
                Ok(Self::Chunk {
                    id: u64_field(&value, "id")?,
                    cells,
                })
            }
            "shutdown" => Ok(Self::Shutdown),
            other => Err(format!("unknown coordinator message type '{other}'")),
        }
    }
}

impl ToCoord {
    /// Serializes to one frame payload.
    #[must_use]
    pub fn encode(&self) -> Vec<u8> {
        match self {
            Self::Ready {
                request,
                fingerprint,
                cells,
                cache,
            } => format!(
                "{{\"type\":\"ready\",\"request\":{request},\"fingerprint\":{fingerprint},\
                 \"cells\":{cells},\"cache\":{cache}}}"
            )
            .into_bytes(),
            Self::ChunkDone { id, entries } => format!(
                "{{\"type\":\"chunk-done\",\"id\":{id},\"entries\":{}}}",
                entries_json(entries)
            )
            .into_bytes(),
            Self::Error { message } => {
                format!("{{\"type\":\"error\",\"message\":{}}}", json_str(message)).into_bytes()
            }
        }
    }

    /// Parses a frame payload.
    ///
    /// # Errors
    ///
    /// Returns a description of the malformation.
    pub fn decode(payload: &[u8]) -> Result<Self, String> {
        let text = std::str::from_utf8(payload).map_err(|e| format!("frame is not UTF-8: {e}"))?;
        let value: Value = text
            .parse()
            .map_err(|e| format!("frame is not JSON: {e}"))?;
        let kind = value
            .get("type")
            .and_then(Value::as_str)
            .ok_or_else(|| "frame has no 'type'".to_owned())?;
        match kind {
            "ready" => Ok(Self::Ready {
                request: u64_field(&value, "request")?,
                fingerprint: u64_field(&value, "fingerprint")?,
                cells: u64_field(&value, "cells")?,
                cache: value
                    .get("cache")
                    .and_then(Value::as_bool)
                    .ok_or_else(|| "field 'cache' is not a boolean".to_owned())?,
            }),
            "chunk-done" => Ok(Self::ChunkDone {
                id: u64_field(&value, "id")?,
                entries: value
                    .get("entries")
                    .map(entries_from_value)
                    .transpose()?
                    .ok_or_else(|| "chunk-done has no 'entries'".to_owned())?,
            }),
            "error" => Ok(Self::Error {
                message: value
                    .get("message")
                    .and_then(Value::as_str)
                    .ok_or_else(|| "field 'message' is not a string".to_owned())?
                    .to_owned(),
            }),
            other => Err(format!("unknown worker message type '{other}'")),
        }
    }
}

/// Runs the worker side of the protocol over any byte stream until the
/// coordinator sends [`ToWorker::Shutdown`] or hangs up (EOF).
///
/// `build` rebuilds the worker's [`super::Experiment`] from a
/// request's params — called once per [`ToWorker::Request`], so one
/// long-lived worker serves any number of (differently shaped)
/// requests over one connection, reusing whatever the closure caches
/// (topologies, routing tables, floorplan latencies) across them. A
/// build error is reported to the coordinator as [`ToCoord::Error`]
/// and the loop keeps serving — a bad request must not kill the
/// fleet.
///
/// Malformed frames and chunks that stray outside the current plan
/// also answer with [`ToCoord::Error`] instead of dying; simulation
/// itself goes through [`super::Experiment::run_cells`], so the
/// worker's backend and local cache apply exactly as they would in a
/// single-process run.
///
/// # Errors
///
/// Fails on transport I/O errors (EOF is a clean `Ok` exit).
pub fn serve_worker<'e, R, W, B>(
    reader: &mut R,
    writer: &mut W,
    mut build: B,
) -> std::io::Result<()>
where
    R: Read,
    W: Write,
    B: FnMut(&[(String, String)]) -> Result<super::Experiment<'e>, String>,
{
    let mut current: Option<super::Experiment<'e>> = None;
    loop {
        let frame = match read_frame(reader) {
            Ok(frame) => frame,
            Err(e) if e.kind() == std::io::ErrorKind::UnexpectedEof => return Ok(()),
            Err(e) => return Err(e),
        };
        let message = match ToWorker::decode(&frame) {
            Ok(message) => message,
            Err(message) => {
                write_frame(writer, &ToCoord::Error { message }.encode())?;
                continue;
            }
        };
        match message {
            ToWorker::Request { id, params, .. } => match build(&params) {
                Ok(experiment) => {
                    let plan = experiment.plan();
                    let reply = ToCoord::Ready {
                        request: id,
                        fingerprint: plan.fingerprint(),
                        cells: plan.num_cells() as u64,
                        cache: experiment.cache().is_some(),
                    };
                    current = Some(experiment);
                    write_frame(writer, &reply.encode())?;
                }
                Err(message) => {
                    current = None;
                    write_frame(writer, &ToCoord::Error { message }.encode())?;
                }
            },
            ToWorker::Prewarm { entries } => {
                // Best-effort by design: entries failing validation
                // (or arriving before any request) are dropped — the
                // pre-warm is an accelerator, never load-bearing.
                if let Some(experiment) = &current {
                    for (cell, point) in &entries {
                        experiment.store_cached(*cell, point);
                    }
                }
            }
            ToWorker::Chunk { id, cells } => {
                let Some(experiment) = &current else {
                    let message = format!("chunk {id} received before any request");
                    write_frame(writer, &ToCoord::Error { message }.encode())?;
                    continue;
                };
                if let Some(cell) = cells.iter().find(|&&c| !experiment.contains_cell(c)) {
                    let message = format!("chunk {id} cell {cell} is outside the current plan");
                    write_frame(writer, &ToCoord::Error { message }.encode())?;
                    continue;
                }
                let points = experiment.run_cells(&cells);
                let entries: Vec<(CellId, SweepPoint)> = cells.into_iter().zip(points).collect();
                write_frame(writer, &ToCoord::ChunkDone { id, entries }.encode())?;
            }
            ToWorker::Shutdown => return Ok(()),
        }
    }
}

/// Dials a coordinator, retrying with capped jittered exponential
/// backoff until `patience` is exhausted — a worker is routinely
/// started before (or alongside) the coordinator it serves, so the
/// first connection attempts are expected to be refused.
///
/// Delays double from 50 ms up to a 2 s cap; each gets up to 25%
/// additive jitter derived from the process id and attempt number (so
/// a fleet launched by one script does not hammer the listener in
/// lockstep, without introducing a shared RNG). The final attempt is
/// made right at the deadline, so a coordinator appearing anywhere
/// within `patience` is always caught.
///
/// # Errors
///
/// Returns the last connection error once `patience` has elapsed.
pub fn connect_with_backoff(
    addr: &str,
    patience: std::time::Duration,
) -> std::io::Result<std::net::TcpStream> {
    let start = std::time::Instant::now();
    let mut attempt = 0u32;
    loop {
        match std::net::TcpStream::connect(addr) {
            Ok(stream) => return Ok(stream),
            Err(error) => {
                let remaining = match patience.checked_sub(start.elapsed()) {
                    Some(left) if !left.is_zero() => left,
                    _ => return Err(error),
                };
                let exp_ms = 50u64.saturating_mul(1 << attempt.min(16)).min(2_000);
                // splitmix64 of (pid, attempt): deterministic per
                // process, decorrelated across a fleet.
                let mut z = (u64::from(std::process::id()) << 32) | u64::from(attempt);
                z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
                z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
                z ^= z >> 31;
                let delay = std::time::Duration::from_millis(exp_ms + (z % (exp_ms / 4 + 1)));
                std::thread::sleep(delay.min(remaining));
                attempt += 1;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats::{FaultStats, SimOutcome};
    use crate::traffic::TrafficPattern;

    fn sample_entries() -> Vec<(CellId, SweepPoint)> {
        let point = |rate: f64, seed: u64| SweepPoint {
            case: "mesh \"8x8\"".to_owned(),
            pattern: TrafficPattern::Hotspot(20),
            rate,
            seed,
            outcome: SimOutcome {
                offered_rate: rate,
                accepted_rate: 1.0 / 3.0,
                avg_packet_latency: 30.25,
                p50_packet_latency: 28.0,
                p99_packet_latency: 70.5,
                max_packet_latency: 80.0,
                measured_packets: 12_345,
                stable: true,
                cycles: 20_000,
                faults: FaultStats::default(),
            },
        };
        vec![
            (
                CellId {
                    case: 0,
                    pattern: 1,
                    rate: 0,
                },
                point(0.062_5, u64::MAX),
            ),
            (
                CellId {
                    case: 2,
                    pattern: 0,
                    rate: 3,
                },
                point(1.0 / 3.0, 7),
            ),
        ]
    }

    #[test]
    fn frames_roundtrip_and_cap_their_length() {
        let mut buf = Vec::new();
        write_frame(&mut buf, b"hello").expect("writes");
        write_frame(&mut buf, b"").expect("empty frame is fine");
        let mut reader = buf.as_slice();
        assert_eq!(read_frame(&mut reader).expect("reads"), b"hello");
        assert_eq!(read_frame(&mut reader).expect("reads"), b"");
        let eof = read_frame(&mut reader).expect_err("stream exhausted");
        assert_eq!(eof.kind(), std::io::ErrorKind::UnexpectedEof);
        // A corrupt length prefix must not trigger a huge allocation.
        let bogus = (MAX_FRAME + 1).to_le_bytes();
        let err = read_frame(&mut bogus.as_slice()).expect_err("over cap");
        assert_eq!(err.kind(), std::io::ErrorKind::InvalidData);
    }

    #[test]
    fn coordinator_messages_roundtrip() {
        let messages = vec![
            ToWorker::Request {
                id: 3,
                fingerprint: u64::MAX,
                params: vec![
                    ("rate-points".to_owned(), "2".to_owned()),
                    ("add-rates".to_owned(), "0.31,0.5".to_owned()),
                    ("quoted \"key\"".to_owned(), "a\nb".to_owned()),
                ],
            },
            ToWorker::Prewarm {
                entries: sample_entries(),
            },
            ToWorker::Chunk {
                id: 9,
                cells: sample_entries().into_iter().map(|(c, _)| c).collect(),
            },
            ToWorker::Shutdown,
        ];
        for message in messages {
            let decoded = ToWorker::decode(&message.encode()).expect("decodes");
            assert_eq!(decoded, message);
        }
    }

    #[test]
    fn worker_messages_roundtrip() {
        let messages = vec![
            ToCoord::Ready {
                request: 3,
                fingerprint: 0xdead_beef,
                cells: 126,
                cache: true,
            },
            ToCoord::ChunkDone {
                id: 9,
                entries: sample_entries(),
            },
            ToCoord::Error {
                message: "no \"such\" plan".to_owned(),
            },
        ];
        for message in messages {
            let decoded = ToCoord::decode(&message.encode()).expect("decodes");
            assert_eq!(decoded, message);
        }
    }

    #[test]
    fn malformed_frames_decode_to_descriptive_errors() {
        for bad in [
            &b"not json"[..],
            b"{\"type\":\"mystery\"}",
            b"{\"no\":\"type\"}",
            b"{\"type\":\"chunk\",\"id\":1,\"cells\":[{\"case\":0}]}",
            b"\xff\xfe",
        ] {
            assert!(ToWorker::decode(bad).is_err(), "{bad:?}");
            assert!(ToCoord::decode(bad).is_err(), "{bad:?}");
        }
    }
}
