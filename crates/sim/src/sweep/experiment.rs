//! The execution layer: cases (topology + routes + latencies, computed
//! once and shared by all grid cells) and the [`Experiment`] that fans
//! the grid — or any subset of its cells — out over threads, through a
//! pluggable [`ExecBackend`] and an optional [`CellCache`].

use std::sync::atomic::{AtomicU64, Ordering::Relaxed};
use std::time::Instant;

use rayon::prelude::*;

use shg_topology::routing::{self, BuildRoutesError, Routes};
use shg_topology::Topology;
use shg_units::Cycles;

use super::cache::{self, CellCache};
use super::plan::{CellId, SweepPlan};
use super::result::{ShardResult, SweepPoint, SweepResult};
use super::shard::ShardSpec;
use super::spec::SweepSpec;
use crate::config::SimConfig;
use crate::core::{run_batch, LaneJob};
use crate::network::Network;
use crate::stats::SimOutcome;
use crate::traffic::TrafficPattern;

/// How [`Experiment::run_cells`] turns a cell list into simulations.
///
/// Every backend produces bit-identical points for every cell — the
/// reuse backend is built on [`Network::reset`], whose equivalence to
/// fresh construction is pinned under `Network::run_validated` across
/// all scan/injection/allocation policy combinations, and the batched
/// backend's struct-of-arrays core is pinned lane-by-lane against the
/// per-cell reference in `tests/batched_equivalence.rs` — so the
/// choice is purely a performance lever.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ExecBackend {
    /// One fresh [`Network`] per cell (the reference): maximal
    /// parallelism, pays router/buffer allocation per cell.
    #[default]
    PerCell,
    /// Groups consecutive cells of the same case and reuses one
    /// `Network` allocation per group, [`Network::reset`]-ing between
    /// cells in O(touched) — amortizing per-cell setup cost, which
    /// dominates grids of many short cells.
    Reuse,
    /// Groups consecutive cells of the same case and steps up to
    /// [`Experiment::lanes`] of them in lockstep through one
    /// struct-of-arrays core (see `crate::core`): one topology
    /// construction and one hot working set serve K cells at once,
    /// with completed lanes refilled from the group's remaining cells.
    Batched,
    /// Picks a backend per cell group: tiny groups run per-cell; for
    /// the rest, a timed first-cell probe compares setup cost against
    /// simulation cost and picks [`ExecBackend::Batched`] when setup
    /// is worth amortizing, [`ExecBackend::Reuse`] otherwise.
    Auto,
}

impl std::fmt::Display for ExecBackend {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::PerCell => write!(f, "per-cell"),
            Self::Reuse => write!(f, "reuse"),
            Self::Batched => write!(f, "batched"),
            Self::Auto => write!(f, "auto"),
        }
    }
}

/// A snapshot of [`Experiment::exec_stats`]: how many cells each
/// backend actually simulated (cache hits excluded) and how many
/// batch lanes are in flight. Progress reporters poll this; it never
/// affects results.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ExecStats {
    /// Cells simulated on fresh per-cell networks (includes the auto
    /// backend's probe cells and its small-group fallback).
    pub per_cell_cells: u64,
    /// Cells simulated on reused networks.
    pub reuse_cells: u64,
    /// Cells simulated as lanes of a batched core.
    pub batched_cells: u64,
    /// Batch lanes currently stepping (0 outside batched execution).
    pub lanes_in_flight: u64,
    /// High-water mark of `lanes_in_flight` over the experiment.
    pub peak_lanes: u64,
}

/// Interior counters behind [`ExecStats`] — relaxed atomics, bumped
/// from worker threads.
#[derive(Debug, Default)]
struct ExecCounters {
    per_cell_cells: AtomicU64,
    reuse_cells: AtomicU64,
    batched_cells: AtomicU64,
    lanes_in_flight: AtomicU64,
    peak_lanes: AtomicU64,
}

impl ExecCounters {
    fn snapshot(&self) -> ExecStats {
        ExecStats {
            per_cell_cells: self.per_cell_cells.load(Relaxed),
            reuse_cells: self.reuse_cells.load(Relaxed),
            batched_cells: self.batched_cells.load(Relaxed),
            lanes_in_flight: self.lanes_in_flight.load(Relaxed),
            peak_lanes: self.peak_lanes.load(Relaxed),
        }
    }

    fn lanes_up(&self, k: u64) {
        let now = self.lanes_in_flight.fetch_add(k, Relaxed) + k;
        self.peak_lanes.fetch_max(now, Relaxed);
    }

    fn lanes_down(&self, k: u64) {
        self.lanes_in_flight.fetch_sub(k, Relaxed);
    }
}

/// The smallest cell group [`ExecBackend::Reuse`] hands one `Network`
/// (when a case has that many consecutive cells): each construction is
/// amortized over at least this many cells even inside the short
/// chunks journaled execution runs, at the cost of proportionally
/// coarser parallelism on tiny cell lists.
const MIN_REUSE_GROUP: usize = 4;

/// Default lane count of [`ExecBackend::Batched`]: wide enough to
/// amortize setup and share sweeps across typical per-case rate grids,
/// narrow enough that lane-major arrays of a 256-tile case stay
/// cache-resident.
const DEFAULT_LANES: usize = 8;

/// One topology under sweep: its routing table and per-link latencies
/// are computed once and shared by all grid cells of the case.
#[derive(Debug)]
pub struct SweepCase<'a> {
    /// Display name of the case (topology or configuration label).
    pub name: String,
    /// The topology.
    pub topology: &'a Topology,
    /// Routing table (computed once per case).
    pub routes: Routes,
    /// Per-link latencies, e.g. from the floorplan model.
    pub link_latencies: Vec<Cycles>,
}

impl<'a> SweepCase<'a> {
    /// A case with precomputed routes and latencies (the floorplan-fed
    /// path; see `shg-bench`'s scenario sweep for the cached producer).
    ///
    /// # Panics
    ///
    /// Panics if `link_latencies` does not match the topology's links.
    #[must_use]
    pub fn annotated(
        name: impl Into<String>,
        topology: &'a Topology,
        routes: Routes,
        link_latencies: Vec<Cycles>,
    ) -> Self {
        assert_eq!(
            link_latencies.len(),
            topology.num_links(),
            "one latency per link required"
        );
        Self {
            name: name.into(),
            topology,
            routes,
            link_latencies,
        }
    }

    /// A case with default routes in the compact next-hop form and unit
    /// link latencies (the floorplan-free path used by tests and
    /// microbenchmarks). Next-hop routes simulate bit-identically to the
    /// dense reference, without the O(n² · hops) table.
    ///
    /// # Errors
    ///
    /// Returns the routing error if no deadlock-free minimal routing
    /// applies to the topology.
    pub fn unit_latency(
        name: impl Into<String>,
        topology: &'a Topology,
    ) -> Result<Self, BuildRoutesError> {
        let routes = routing::default_routes_with(topology, routing::RouteForm::NextHop)?;
        let link_latencies = vec![Cycles::one(); topology.num_links()];
        Ok(Self::annotated(name, topology, routes, link_latencies))
    }
}

/// A sweep ready to run: cases plus the grid spec.
///
/// # Examples
///
/// A full load-curve sweep in three lines (the README quickstart):
///
/// ```
/// # use shg_sim::{Experiment, SimConfig, SweepSpec};
/// # use shg_topology::{generators, Grid};
/// # let mesh = generators::mesh(Grid::new(4, 4));
/// let spec = SweepSpec::new(SimConfig::fast_test()).linear_rates(5, 0.5).all_patterns();
/// let result = Experiment::new(spec).with_unit_latency_case("mesh", &mesh)?.run_parallel();
/// println!("{}", result.table());
/// # Ok::<(), shg_topology::routing::BuildRoutesError>(())
/// ```
#[derive(Debug)]
pub struct Experiment<'a> {
    spec: SweepSpec,
    cases: Vec<SweepCase<'a>>,
    backend: ExecBackend,
    lanes: usize,
    cache: Option<CellCache>,
    counters: ExecCounters,
    /// Memoized per-case cache digests (routing tables make them
    /// O(n²) to compute); invalidated when a case is added.
    case_digests: std::sync::OnceLock<Vec<u64>>,
}

impl<'a> Experiment<'a> {
    /// An experiment over the given grid, with no cases yet, the
    /// per-cell reference backend and no cell cache.
    #[must_use]
    pub fn new(spec: SweepSpec) -> Self {
        Self {
            spec,
            cases: Vec::new(),
            backend: ExecBackend::default(),
            lanes: DEFAULT_LANES,
            cache: None,
            counters: ExecCounters::default(),
            case_digests: std::sync::OnceLock::new(),
        }
    }

    /// Selects the execution backend (builder style).
    #[must_use]
    pub fn with_backend(mut self, backend: ExecBackend) -> Self {
        self.set_backend(backend);
        self
    }

    /// Selects the execution backend in place.
    pub fn set_backend(&mut self, backend: ExecBackend) {
        self.backend = backend;
    }

    /// The selected execution backend.
    #[must_use]
    pub fn backend(&self) -> ExecBackend {
        self.backend
    }

    /// Sets the maximum lane count of [`ExecBackend::Batched`] and
    /// [`ExecBackend::Auto`] batches (builder style). Clamped to at
    /// least 1; results are identical at every lane count.
    #[must_use]
    pub fn with_lanes(mut self, lanes: usize) -> Self {
        self.set_lanes(lanes);
        self
    }

    /// Sets the maximum batch lane count in place.
    pub fn set_lanes(&mut self, lanes: usize) {
        self.lanes = lanes.max(1);
    }

    /// The maximum lane count of a batched-core group.
    #[must_use]
    pub fn lanes(&self) -> usize {
        self.lanes
    }

    /// A snapshot of the per-backend execution counters (cells each
    /// backend simulated, batch lanes in flight). Cheap; safe to poll
    /// from a progress reporter while a run is in flight.
    #[must_use]
    pub fn exec_stats(&self) -> ExecStats {
        self.counters.snapshot()
    }

    /// Attaches a cell-result cache (builder style): every execution
    /// path consults it per cell and stores what it simulates.
    #[must_use]
    pub fn with_cache(mut self, cache: CellCache) -> Self {
        self.set_cache(cache);
        self
    }

    /// Attaches a cell-result cache in place.
    pub fn set_cache(&mut self, cache: CellCache) {
        self.cache = Some(cache);
    }

    /// The attached cell cache, if any (its
    /// [`stats`](CellCache::stats) report this execution's
    /// cached/simulated split).
    #[must_use]
    pub fn cache(&self) -> Option<&CellCache> {
        self.cache.as_ref()
    }

    /// Adds a prepared case (builder style).
    #[must_use]
    pub fn with_case(mut self, case: SweepCase<'a>) -> Self {
        self.push_case(case);
        self
    }

    /// Adds a case with default routes and unit latencies.
    ///
    /// # Errors
    ///
    /// Returns the routing error if no deadlock-free minimal routing
    /// applies to the topology.
    pub fn with_unit_latency_case(
        self,
        name: impl Into<String>,
        topology: &'a Topology,
    ) -> Result<Self, BuildRoutesError> {
        Ok(self.with_case(SweepCase::unit_latency(name, topology)?))
    }

    /// Adds a prepared case in place.
    pub fn push_case(&mut self, case: SweepCase<'a>) {
        self.cases.push(case);
        let _ = self.case_digests.take(); // memo covers the old case list
    }

    /// The grid spec.
    #[must_use]
    pub fn spec(&self) -> &SweepSpec {
        &self.spec
    }

    /// The total number of grid cells.
    #[must_use]
    pub fn num_points(&self) -> usize {
        self.cases.len() * self.spec.cells_per_case()
    }

    /// The cell enumeration and fingerprint of this experiment (see
    /// [`SweepPlan`]): the coordinates sharding, journaling and merging
    /// all speak.
    #[must_use]
    pub fn plan(&self) -> SweepPlan {
        SweepPlan::new(&self.spec, &self.cases)
    }

    /// Runs every grid cell, fanned out over the current thread pool.
    #[must_use]
    pub fn run_parallel(&self) -> SweepResult {
        let cells: Vec<CellId> = self.plan().cells().collect();
        SweepResult {
            points: self.run_cells(&cells),
        }
    }

    /// Runs the given cells, fanned out over the current thread pool;
    /// points come back in the order of `cells`. Each point's RNG seed
    /// derives from its grid coordinates alone, so any partition of the
    /// cell list — across threads, processes or machines — reproduces
    /// the exact points of a single-shot [`Experiment::run_parallel`].
    ///
    /// Cells found in the attached [`CellCache`] are answered from disk
    /// instead of simulated; the backend and the cache are both
    /// transparent to the result, which stays bit-identical (and
    /// byte-identical once serialized) to the cache-less per-cell
    /// reference.
    ///
    /// # Panics
    ///
    /// Panics if a cell is out of the plan's range.
    #[must_use]
    pub fn run_cells(&self, cells: &[CellId]) -> Vec<SweepPoint> {
        let digests = self.digests();
        match self.backend {
            ExecBackend::PerCell => cells
                .par_iter()
                .map(|&cell| self.run_point(cell, digests))
                .collect(),
            ExecBackend::Reuse => self.run_cells_reuse(cells, digests),
            ExecBackend::Batched => self.run_cells_batched(cells, digests),
            ExecBackend::Auto => self.run_cells_auto(cells, digests),
        }
    }

    /// One digest per case (memoized — digesting a routing table is
    /// O(n²) paths), shared by all its cells' fingerprints. `None`
    /// without a cache: fingerprints are only needed to address it.
    fn digests(&self) -> Option<&[u64]> {
        self.cache.as_ref().map(|_| {
            self.case_digests
                .get_or_init(|| self.cases.iter().map(cache::case_digest).collect())
                .as_slice()
        })
    }

    /// `true` if `cell` is a valid coordinate of this experiment's
    /// grid (case, pattern and rate indices all in range).
    #[must_use]
    pub fn contains_cell(&self, cell: CellId) -> bool {
        (cell.case as usize) < self.cases.len()
            && (cell.pattern as usize) < self.spec.patterns.len()
            && (cell.rate as usize)
                < self
                    .spec
                    .rates_of(self.spec.patterns[cell.pattern as usize])
                    .len()
    }

    /// Probes the attached [`CellCache`] for one cell without
    /// simulating anything: `Some` on a hit (counted in the cache's
    /// stats, like any execution-path probe), `None` on a miss, an
    /// out-of-range cell, or no cache. This is the coordinator's
    /// dispatch filter — cells answered here are never shipped to a
    /// worker.
    #[must_use]
    pub fn probe_cached(&self, cell: CellId) -> Option<SweepPoint> {
        if !self.contains_cell(cell) {
            return None;
        }
        let inputs = self.cell_inputs(cell, self.digests());
        self.load_cached(&inputs)
    }

    /// `true` if `point` records exactly the cell `cell` of this
    /// experiment: same case name, pattern, rate bits and derived
    /// seed. The outcome cannot be checked without re-simulating, but
    /// the identity check rejects any result that was computed under a
    /// different plan — the validation a coordinator applies to every
    /// worker-returned entry before trusting it.
    #[must_use]
    pub fn validate_point(&self, cell: CellId, point: &SweepPoint) -> bool {
        if !self.contains_cell(cell) {
            return false;
        }
        let inputs = self.cell_inputs(cell, None);
        point.case == self.cases[inputs.case].name
            && point.pattern == inputs.pattern
            && point.rate.to_bits() == inputs.rate.to_bits()
            && point.seed == inputs.seed
    }

    /// Stores an externally computed point for `cell` into the
    /// attached cache (the pre-warm path: a coordinator ships cache
    /// entries to workers, a coordinator banks worker results).
    /// Returns `false` — storing nothing — unless a cache is attached
    /// and the point passes [`Experiment::validate_point`], so a
    /// mislabelled result can never poison the cache.
    pub fn store_cached(&self, cell: CellId, point: &SweepPoint) -> bool {
        let Some(cache) = self.cache.as_ref() else {
            return false;
        };
        if !self.validate_point(cell, point) {
            return false;
        }
        let inputs = self.cell_inputs(cell, self.digests());
        let Some(fingerprint) = inputs.fingerprint else {
            return false;
        };
        cache.store(fingerprint, point);
        true
    }

    /// Splits `cells` into runs of consecutive same-case cells, at most
    /// `target` long — the shared grouping step of every grouping
    /// backend. Long runs are split so the pool stays busy; since every
    /// cell is independent, the split cannot affect any point.
    fn split_same_case_groups(cells: &[CellId], target: usize) -> Vec<&[CellId]> {
        let mut groups: Vec<&[CellId]> = Vec::new();
        let mut rest = cells;
        while let Some(first) = rest.first() {
            let same_case = rest
                .iter()
                .take_while(|c| c.case == first.case)
                .count()
                .min(target);
            let (group, tail) = rest.split_at(same_case);
            groups.push(group);
            rest = tail;
        }
        groups
    }

    /// The reuse backend: consecutive same-case cells are grouped, each
    /// group runs sequentially on one `Network` ([`Network::reset`]
    /// between cells), and the groups fan out over the pool. Groups
    /// never drop below [`MIN_REUSE_GROUP`] cells, so the small chunks
    /// the journaled path feeds through here still amortize each
    /// construction over several resets instead of degenerating to one
    /// network per cell.
    fn run_cells_reuse(&self, cells: &[CellId], digests: Option<&[u64]>) -> Vec<SweepPoint> {
        let target = cells
            .len()
            .div_ceil(rayon::current_num_threads().max(1) * 2)
            .max(MIN_REUSE_GROUP);
        let grouped: Vec<Vec<SweepPoint>> = Self::split_same_case_groups(cells, target)
            .par_iter()
            .map(|group| self.run_group(group, digests))
            .collect();
        grouped.into_iter().flatten().collect()
    }

    /// The batched backend: consecutive same-case cells are grouped
    /// (at least [`Experiment::lanes`] per group where the case allows,
    /// so every batch can fill its lanes) and each group runs as one
    /// lane-parallel batch on the struct-of-arrays core; the groups fan
    /// out over the pool.
    fn run_cells_batched(&self, cells: &[CellId], digests: Option<&[u64]>) -> Vec<SweepPoint> {
        let target = cells
            .len()
            .div_ceil(rayon::current_num_threads().max(1) * 2)
            .max(MIN_REUSE_GROUP)
            .max(self.lanes);
        let grouped: Vec<Vec<SweepPoint>> = Self::split_same_case_groups(cells, target)
            .par_iter()
            .map(|group| self.run_group_batched(group, digests))
            .collect();
        grouped.into_iter().flatten().collect()
    }

    /// The auto backend: same grouping as batched, backend chosen per
    /// group (see [`Experiment::run_group_auto`]).
    fn run_cells_auto(&self, cells: &[CellId], digests: Option<&[u64]>) -> Vec<SweepPoint> {
        let target = cells
            .len()
            .div_ceil(rayon::current_num_threads().max(1) * 2)
            .max(MIN_REUSE_GROUP)
            .max(self.lanes);
        let grouped: Vec<Vec<SweepPoint>> = Self::split_same_case_groups(cells, target)
            .par_iter()
            .map(|group| self.run_group_auto(group, digests))
            .collect();
        grouped.into_iter().flatten().collect()
    }

    /// Runs one same-case cell group on a single reused `Network`. The
    /// network is built lazily on the first cache miss, so a fully
    /// cached group allocates nothing.
    fn run_group(&self, group: &[CellId], digests: Option<&[u64]>) -> Vec<SweepPoint> {
        let mut network: Option<Network<'_>> = None;
        group
            .iter()
            .map(|&cell| {
                self.run_point_with(cell, digests, |case, config, rate, pattern| {
                    self.counters.reuse_cells.fetch_add(1, Relaxed);
                    match network {
                        Some(ref mut net) => {
                            net.reset(config.seed);
                            net.run(rate, pattern)
                        }
                        None => {
                            let net = network.insert(Network::new(
                                case.topology,
                                &case.routes,
                                &case.link_latencies,
                                config,
                            ));
                            net.run(rate, pattern)
                        }
                    }
                })
            })
            .collect()
    }

    /// Runs one same-case cell group as a lane-parallel batch: every
    /// cell is probed against the cache first (a cached cell must not
    /// occupy a lane), the misses run together through one
    /// struct-of-arrays core with up to [`Experiment::lanes`] lanes in
    /// flight, and the points come back in group order.
    fn run_group_batched(&self, group: &[CellId], digests: Option<&[u64]>) -> Vec<SweepPoint> {
        let inputs: Vec<CellInputs> = group
            .iter()
            .map(|&cell| self.cell_inputs(cell, digests))
            .collect();
        let mut points: Vec<Option<SweepPoint>> = inputs
            .iter()
            .map(|inputs| self.load_cached(inputs))
            .collect();
        let misses: Vec<usize> = points
            .iter()
            .enumerate()
            .filter_map(|(i, p)| p.is_none().then_some(i))
            .collect();
        if !misses.is_empty() {
            let case = &self.cases[inputs[misses[0]].case];
            let jobs: Vec<LaneJob> = misses
                .iter()
                .map(|&i| LaneJob {
                    seed: inputs[i].seed,
                    rate: inputs[i].rate,
                    pattern: inputs[i].pattern,
                })
                .collect();
            let k = self.lanes.min(jobs.len()) as u64;
            self.counters
                .batched_cells
                .fetch_add(jobs.len() as u64, Relaxed);
            self.counters.lanes_up(k);
            let outcomes = run_batch(
                case.topology,
                &case.routes,
                &case.link_latencies,
                &self.spec.config,
                &jobs,
                self.lanes,
            );
            self.counters.lanes_down(k);
            for (&i, outcome) in misses.iter().zip(outcomes) {
                points[i] = Some(self.finish_point(&inputs[i], outcome));
            }
        }
        points
            .into_iter()
            .map(|p| p.expect("every group cell is cached or batched"))
            .collect()
    }

    /// Runs one same-case cell group under the auto backend. Groups too
    /// small to amortize anything run per-cell. Otherwise the first
    /// cache-missing cell runs per-cell with its construction and
    /// simulation separately timed, and the rest of the group goes to
    /// the batched core when construction is the dominant cost
    /// (simulation under twice construction) or to network reuse when
    /// simulation dominates — long cells gain little from lockstep
    /// lanes, and reuse keeps peak memory at one network.
    fn run_group_auto(&self, group: &[CellId], digests: Option<&[u64]>) -> Vec<SweepPoint> {
        if group.len() < MIN_REUSE_GROUP {
            return group
                .iter()
                .map(|&cell| self.run_point(cell, digests))
                .collect();
        }
        let mut points = Vec::with_capacity(group.len());
        let mut probe: Option<(std::time::Duration, std::time::Duration)> = None;
        let mut rest = group;
        while probe.is_none() {
            let Some((&cell, tail)) = rest.split_first() else {
                break; // fully cached group: nothing left to decide
            };
            points.push(
                self.run_point_with(cell, digests, |case, config, rate, pattern| {
                    self.counters.per_cell_cells.fetch_add(1, Relaxed);
                    let build_start = Instant::now();
                    let mut network =
                        Network::new(case.topology, &case.routes, &case.link_latencies, config);
                    let build = build_start.elapsed();
                    let run_start = Instant::now();
                    let outcome = network.run(rate, pattern);
                    probe = Some((build, run_start.elapsed()));
                    outcome
                }),
            );
            rest = tail;
        }
        match probe {
            Some((build, run)) if run < build * 2 => {
                points.extend(self.run_group_batched(rest, digests));
            }
            Some(_) => points.extend(self.run_group(rest, digests)),
            None => {}
        }
        points
    }

    /// Runs `cells` in order as pool-sized chunks (a few per worker —
    /// large enough to keep the pool busy, small enough to bound the
    /// work lost to a kill), invoking `after_chunk(chunk, points)` as
    /// each chunk completes, and returns all points in cell order. The
    /// chunk boundary is the one place journaled execution flushes and
    /// progress is reported, so the two cannot drift; an error from
    /// `after_chunk` aborts the run.
    ///
    /// Under the grouping backends the chunks are a few times larger:
    /// each chunk is grouped per case onto reused `Network`s or batched
    /// cores, so the chunk length bounds how much amortization one
    /// construction gets — the price is a proportionally larger
    /// recompute window after a kill. Batched chunks scale with the
    /// lane count so every batch can fill its lanes.
    ///
    /// # Errors
    ///
    /// Propagates the first error `after_chunk` returns.
    pub fn run_cells_chunked<E>(
        &self,
        cells: &[CellId],
        mut after_chunk: impl FnMut(&[CellId], &[SweepPoint]) -> Result<(), E>,
    ) -> Result<Vec<SweepPoint>, E> {
        let per_worker = match self.backend {
            ExecBackend::PerCell => 2,
            ExecBackend::Reuse | ExecBackend::Auto => 2 * MIN_REUSE_GROUP,
            ExecBackend::Batched => 2 * self.lanes,
        };
        let chunk_size = rayon::current_num_threads().max(1) * per_worker;
        let mut points = Vec::with_capacity(cells.len());
        for chunk in cells.chunks(chunk_size.max(1)) {
            let chunk_points = self.run_cells(chunk);
            after_chunk(chunk, &chunk_points)?;
            points.extend(chunk_points);
        }
        Ok(points)
    }

    /// Runs one shard of the sweep (see [`ShardSpec`]), returning its
    /// points tagged with everything [`SweepResult::merge`] validates.
    #[must_use]
    pub fn run_shard(&self, shard: ShardSpec) -> ShardResult {
        let plan = self.plan();
        let cells = plan.shard_cells(shard);
        let points = self.run_cells(&cells);
        ShardResult {
            fingerprint: plan.fingerprint(),
            shard,
            plan_cells: plan.num_cells() as u64,
            entries: cells.into_iter().zip(points).collect(),
        }
    }

    /// Runs the sweep on exactly `threads` workers. Produces the same
    /// result as [`Experiment::run_parallel`] — the determinism
    /// regression test pins 1 vs N and compares JSON bytes.
    ///
    /// Builds a fresh pool per call; callers running several sweeps at
    /// one thread count should build the pool once and use
    /// [`Experiment::run_in_pool`].
    ///
    /// # Panics
    ///
    /// Panics if the thread pool cannot be built (the vendored rayon
    /// stand-in never fails).
    #[must_use]
    pub fn run_with_threads(&self, threads: usize) -> SweepResult {
        let pool = rayon::ThreadPoolBuilder::new()
            .num_threads(threads)
            .build()
            .expect("thread pool builds");
        self.run_in_pool(&pool)
    }

    /// Runs the sweep on an existing thread pool.
    #[must_use]
    pub fn run_in_pool(&self, pool: &rayon::ThreadPool) -> SweepResult {
        pool.install(|| self.run_parallel())
    }

    /// Runs one grid cell on a fresh `Network` (the per-cell reference
    /// backend). The per-point seed depends only on the root seed and
    /// the grid coordinates, never on scheduling.
    fn run_point(&self, cell: CellId, digests: Option<&[u64]>) -> SweepPoint {
        self.run_point_with(cell, digests, |case, config, rate, pattern| {
            self.counters.per_cell_cells.fetch_add(1, Relaxed);
            Network::new(case.topology, &case.routes, &case.link_latencies, config)
                .run(rate, pattern)
        })
    }

    /// Derives everything a cell's execution needs from its grid
    /// coordinates: pattern, rate, a scheduling-independent seed, the
    /// seeded config and (when a cache is attached) the cell's
    /// fingerprint.
    fn cell_inputs(&self, cell: CellId, digests: Option<&[u64]>) -> CellInputs {
        let pattern = self.spec.patterns[cell.pattern as usize];
        let rate = self.spec.rates_of(pattern)[cell.rate as usize];
        let seed = derive_seed(
            self.spec.config.seed,
            u64::from(cell.case),
            u64::from(cell.pattern),
            u64::from(cell.rate),
        );
        let config = SimConfig {
            seed,
            ..self.spec.config.clone()
        };
        let fingerprint = digests.map(|digests| {
            cache::cell_fingerprint(digests[cell.case as usize], &config, pattern, rate)
        });
        CellInputs {
            case: cell.case as usize,
            pattern,
            rate,
            seed,
            config,
            fingerprint,
        }
    }

    /// Probes the attached cache for a cell; `None` on a miss (or with
    /// no cache attached).
    fn load_cached(&self, inputs: &CellInputs) -> Option<SweepPoint> {
        let cache = self.cache.as_ref()?;
        let fingerprint = inputs.fingerprint?;
        cache.load(
            fingerprint,
            &self.cases[inputs.case].name,
            inputs.pattern,
            inputs.rate,
            inputs.seed,
        )
    }

    /// Wraps a freshly simulated outcome into its [`SweepPoint`] and
    /// stores it in the attached cache.
    fn finish_point(&self, inputs: &CellInputs, outcome: SimOutcome) -> SweepPoint {
        let point = SweepPoint {
            case: self.cases[inputs.case].name.clone(),
            pattern: inputs.pattern,
            rate: inputs.rate,
            seed: inputs.seed,
            outcome,
        };
        if let (Some(cache), Some(fp)) = (&self.cache, inputs.fingerprint) {
            cache.store(fp, &point);
        }
        point
    }

    /// The shared per-cell skeleton: derives the cell's inputs, probes
    /// the cache, and only on a miss calls `simulate` (the backend's
    /// way of producing the outcome), storing what it computed. The
    /// case reference handed to `simulate` borrows from `self`, so a
    /// reuse backend can keep a `Network` built on it across calls.
    fn run_point_with<'s>(
        &'s self,
        cell: CellId,
        digests: Option<&[u64]>,
        simulate: impl FnOnce(&'s SweepCase<'a>, SimConfig, f64, TrafficPattern) -> SimOutcome,
    ) -> SweepPoint {
        let inputs = self.cell_inputs(cell, digests);
        if let Some(point) = self.load_cached(&inputs) {
            return point;
        }
        let case = &self.cases[inputs.case];
        let outcome = simulate(case, inputs.config.clone(), inputs.rate, inputs.pattern);
        self.finish_point(&inputs, outcome)
    }
}

/// The derived execution inputs of one grid cell (see
/// [`Experiment::cell_inputs`]).
#[derive(Debug)]
struct CellInputs {
    case: usize,
    pattern: TrafficPattern,
    rate: f64,
    seed: u64,
    config: SimConfig,
    fingerprint: Option<u64>,
}

/// SplitMix64-style mixing of the root seed with grid coordinates.
fn derive_seed(root: u64, case: u64, pattern: u64, rate: u64) -> u64 {
    crate::injection::splitmix64_mix(
        root.wrapping_add(case.wrapping_mul(0x9e37_79b9_7f4a_7c15))
            .wrapping_add(pattern.wrapping_mul(0xbf58_476d_1ce4_e5b9))
            .wrapping_add(rate.wrapping_mul(0x94d0_49bb_1331_11eb)),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::traffic::TrafficPattern;
    use shg_topology::{generators, Grid};

    fn small_experiment(topology: &Topology) -> Experiment<'_> {
        let spec = SweepSpec::new(SimConfig::fast_test())
            .rates([0.02, 0.1])
            .patterns([TrafficPattern::UniformRandom, TrafficPattern::Transpose]);
        Experiment::new(spec)
            .with_unit_latency_case("mesh", topology)
            .expect("mesh routes")
    }

    #[test]
    fn grid_order_is_case_pattern_rate() {
        let mesh = generators::mesh(Grid::new(4, 4));
        let result = small_experiment(&mesh).run_parallel();
        assert_eq!(result.points.len(), 4);
        let labels: Vec<(String, f64)> = result
            .points
            .iter()
            .map(|p| (p.pattern.to_string(), p.rate))
            .collect();
        assert_eq!(
            labels,
            vec![
                ("uniform-random".to_owned(), 0.02),
                ("uniform-random".to_owned(), 0.1),
                ("transpose".to_owned(), 0.02),
                ("transpose".to_owned(), 0.1),
            ]
        );
    }

    #[test]
    fn parallel_equals_single_threaded() {
        let mesh = generators::mesh(Grid::new(4, 4));
        let experiment = small_experiment(&mesh);
        let serial = experiment.run_with_threads(1);
        let parallel = experiment.run_with_threads(4);
        assert_eq!(serial, parallel);
        assert_eq!(serial.to_json(), parallel.to_json());
    }

    #[test]
    fn per_point_seeds_differ() {
        let mesh = generators::mesh(Grid::new(4, 4));
        let result = small_experiment(&mesh).run_parallel();
        let seeds: std::collections::HashSet<u64> = result.points.iter().map(|p| p.seed).collect();
        assert_eq!(seeds.len(), result.points.len());
    }

    #[test]
    fn saturation_estimate_reads_stable_frontier() {
        let mesh = generators::mesh(Grid::new(4, 4));
        let spec = SweepSpec::new(SimConfig::fast_test()).rates([0.02, 0.1, 0.9]);
        let result = Experiment::new(spec)
            .with_unit_latency_case("mesh", &mesh)
            .expect("routes")
            .run_parallel();
        let sat = result
            .saturation_estimate("mesh", TrafficPattern::UniformRandom, 0.05)
            .expect("low rates are stable");
        assert!(sat >= 0.1, "mesh sustains 0.1: {sat}");
        assert!(sat < 0.9, "mesh cannot sustain 0.9: {sat}");
    }

    #[test]
    fn json_contains_every_point() {
        let mesh = generators::mesh(Grid::new(4, 4));
        let result = small_experiment(&mesh).run_parallel();
        let json = result.to_json();
        assert_eq!(json.matches("\"case\"").count(), result.points.len());
        assert!(json.contains("\"avg_packet_latency\""));
    }

    #[test]
    fn overridden_grid_keeps_case_pattern_rate_order() {
        let mesh = generators::mesh(Grid::new(4, 4));
        let spec = SweepSpec::new(SimConfig::fast_test())
            .rates([0.1])
            .patterns([TrafficPattern::UniformRandom, TrafficPattern::Hotspot(20)])
            .rates_for(TrafficPattern::Hotspot(20), [0.02, 0.1]);
        let result = Experiment::new(spec)
            .with_unit_latency_case("mesh", &mesh)
            .expect("routes")
            .run_parallel();
        let labels: Vec<(String, f64)> = result
            .points
            .iter()
            .map(|p| (p.pattern.to_string(), p.rate))
            .collect();
        assert_eq!(
            labels,
            vec![
                ("uniform-random".to_owned(), 0.1),
                ("hotspot-20%".to_owned(), 0.02),
                ("hotspot-20%".to_owned(), 0.1),
            ]
        );
    }

    #[test]
    fn run_shard_computes_exactly_the_strided_cells() {
        let mesh = generators::mesh(Grid::new(4, 4));
        let experiment = small_experiment(&mesh);
        let full = experiment.run_parallel();
        let shard = experiment.run_shard(ShardSpec::new(1, 3));
        assert_eq!(shard.plan_cells, 4);
        assert_eq!(shard.entries.len(), 1, "cells 0..4, stride 3, offset 1");
        let (cell, point) = &shard.entries[0];
        assert_eq!(
            *cell,
            CellId {
                case: 0,
                pattern: 0,
                rate: 1
            }
        );
        assert_eq!(*point, full.points[1], "shard points match the single shot");
    }
}
