//! The cell enumeration layer: stable coordinates for every grid cell
//! of a sweep, in one canonical total order, plus the plan fingerprint
//! that sharded and resumed executions validate against.

use serde::Serialize;

use super::experiment::SweepCase;
use super::shard::ShardSpec;
use super::spec::SweepSpec;

/// Stable coordinates of one grid cell: `(case, pattern, rate)`
/// indices into the experiment's case list, the spec's pattern list,
/// and that pattern's rate grid. The derived `Ord` is the canonical
/// total order (case-major, then pattern, then rate) — the order
/// [`crate::Experiment::run_parallel`] emits points in.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize)]
pub struct CellId {
    /// Index into the experiment's case list.
    pub case: u32,
    /// Index into the spec's pattern list.
    pub pattern: u32,
    /// Index into that pattern's rate grid ([`SweepSpec::rates_of`]).
    pub rate: u32,
}

impl std::fmt::Display for CellId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "({}, {}, {})", self.case, self.pattern, self.rate)
    }
}

/// The enumerable shape of a sweep: how many cases, and how many rates
/// each pattern sweeps — everything needed to list every [`CellId`] in
/// canonical order — plus a fingerprint of the inputs that produced it.
///
/// Two executions (shards of one sweep, or an interrupted run and its
/// resume) may only be combined when their fingerprints match: the
/// fingerprint digests the full [`SweepSpec`] (simulator configuration,
/// seed, rate grids, patterns) and every case's name, topology links
/// and per-link latencies, so any change that could alter a simulated
/// point changes the fingerprint.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SweepPlan {
    num_cases: usize,
    /// Rates per pattern, in spec order.
    rates_per_pattern: Vec<usize>,
    fingerprint: u64,
}

/// FNV-1a over a byte stream (shared with the cell-cache fingerprint).
pub(crate) fn fnv_bytes(hash: &mut u64, bytes: impl IntoIterator<Item = u8>) {
    for byte in bytes {
        *hash ^= u64::from(byte);
        *hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
}

impl SweepPlan {
    /// The plan of an experiment over `spec` with `cases`.
    pub(crate) fn new(spec: &SweepSpec, cases: &[SweepCase<'_>]) -> Self {
        let mut hash = 0xcbf2_9ce4_8422_2325u64;
        let spec_json = serde_json::to_string(spec).expect("spec serializes");
        fnv_bytes(&mut hash, spec_json.bytes());
        for case in cases {
            fnv_bytes(&mut hash, case.name.bytes());
            fnv_bytes(&mut hash, u64::from(case.topology.rows()).to_le_bytes());
            fnv_bytes(&mut hash, u64::from(case.topology.cols()).to_le_bytes());
            for link in case.topology.links() {
                fnv_bytes(&mut hash, (link.a.index() as u64).to_le_bytes());
                fnv_bytes(&mut hash, (link.b.index() as u64).to_le_bytes());
            }
            for latency in &case.link_latencies {
                fnv_bytes(&mut hash, latency.value().to_le_bytes());
            }
            // Routing semantics, not storage form: the dense and
            // next-hop forms of one algorithm simulate identically and
            // share a fingerprint, while an algorithm change (e.g. to
            // hierarchical multi-die routing) is caught at the worker
            // handshake instead of silently mixing results.
            fnv_bytes(&mut hash, case.routes.semantic_digest().to_le_bytes());
        }
        Self {
            num_cases: cases.len(),
            rates_per_pattern: spec
                .patterns
                .iter()
                .map(|&p| spec.rates_of(p).len())
                .collect(),
            fingerprint: hash,
        }
    }

    /// Rebuilds a plan from its recorded shape (a journal header), so
    /// readers can validate entries against the exact cell sequence the
    /// writer enumerated without access to the original experiment.
    pub(crate) fn from_shape(
        num_cases: usize,
        rates_per_pattern: Vec<usize>,
        fingerprint: u64,
    ) -> Self {
        Self {
            num_cases,
            rates_per_pattern,
            fingerprint,
        }
    }

    /// The fingerprint sharded/resumed executions must agree on.
    #[must_use]
    pub fn fingerprint(&self) -> u64 {
        self.fingerprint
    }

    /// The number of cases.
    #[must_use]
    pub fn num_cases(&self) -> usize {
        self.num_cases
    }

    /// How many rates each pattern sweeps, in spec order.
    #[must_use]
    pub fn rates_per_pattern(&self) -> &[usize] {
        &self.rates_per_pattern
    }

    /// The total number of grid cells.
    #[must_use]
    pub fn num_cells(&self) -> usize {
        self.num_cases * self.rates_per_pattern.iter().sum::<usize>()
    }

    /// Every cell in canonical order (case-major, then pattern, then
    /// rate).
    pub fn cells(&self) -> impl Iterator<Item = CellId> + '_ {
        (0..self.num_cases).flat_map(move |c| {
            self.rates_per_pattern
                .iter()
                .enumerate()
                .flat_map(move |(p, &rates)| {
                    (0..rates).map(move |r| CellId {
                        case: c as u32,
                        pattern: p as u32,
                        rate: r as u32,
                    })
                })
        })
    }

    /// The cells `shard` computes, in canonical order (the strided
    /// subsequence of [`SweepPlan::cells`]).
    #[must_use]
    pub fn shard_cells(&self, shard: ShardSpec) -> Vec<CellId> {
        self.cells()
            .enumerate()
            .filter(|&(ordinal, _)| shard.owns(ordinal))
            .map(|(_, cell)| cell)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::super::experiment::Experiment;
    use super::*;
    use crate::config::SimConfig;
    use crate::traffic::TrafficPattern;
    use shg_topology::{generators, Grid};

    fn plan_for(spec: SweepSpec) -> SweepPlan {
        let mesh = generators::mesh(Grid::new(4, 4));
        Experiment::new(spec)
            .with_unit_latency_case("mesh", &mesh)
            .expect("mesh routes")
            .plan()
    }

    fn base_spec() -> SweepSpec {
        SweepSpec::new(SimConfig::fast_test())
            .rates([0.02, 0.1])
            .patterns([TrafficPattern::UniformRandom, TrafficPattern::Hotspot(20)])
            .rates_for(TrafficPattern::Hotspot(20), [0.01, 0.05, 0.2])
    }

    #[test]
    fn cells_enumerate_in_canonical_order_with_overrides() {
        let plan = plan_for(base_spec());
        assert_eq!(plan.num_cells(), 2 + 3);
        let cells: Vec<CellId> = plan.cells().collect();
        assert_eq!(cells.len(), 5);
        let mut sorted = cells.clone();
        sorted.sort_unstable();
        assert_eq!(cells, sorted, "canonical order is the derived Ord");
        assert_eq!(
            cells[2],
            CellId {
                case: 0,
                pattern: 1,
                rate: 0
            }
        );
    }

    #[test]
    fn shards_partition_the_cells() {
        let plan = plan_for(base_spec());
        let all: Vec<CellId> = plan.cells().collect();
        for count in 1..=4u32 {
            let mut union: Vec<CellId> = (0..count)
                .flat_map(|i| plan.shard_cells(ShardSpec::new(i, count)))
                .collect();
            union.sort_unstable();
            assert_eq!(union, all, "{count} shards form an exact cover");
        }
    }

    #[test]
    fn fingerprint_tracks_spec_and_cases() {
        let base = plan_for(base_spec());
        assert_eq!(base, plan_for(base_spec()), "same inputs reproduce");
        let other_rate = plan_for(base_spec().rates([0.02, 0.11]));
        assert_ne!(base.fingerprint(), other_rate.fingerprint());
        let other_seed = plan_for(SweepSpec {
            config: SimConfig {
                seed: 7,
                ..SimConfig::fast_test()
            },
            ..base_spec()
        });
        assert_ne!(base.fingerprint(), other_seed.fingerprint());
        // A different topology under the same case name changes it too.
        let torus = generators::torus(Grid::new(4, 4));
        let renamed = Experiment::new(base_spec())
            .with_unit_latency_case("mesh", &torus)
            .expect("torus routes")
            .plan();
        assert_ne!(base.fingerprint(), renamed.fingerprint());
    }
}
