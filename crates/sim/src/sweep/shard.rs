//! The shard planner: how a sweep's cell sequence is divided between
//! independent workers (processes or machines).
//!
//! Assignment is **strided**: cell ordinal `k` belongs to shard
//! `k mod count`. Because the canonical cell order enumerates each
//! pattern's rates from low to high, striding spreads the expensive
//! saturated high-rate cells evenly across shards instead of handing
//! one shard a contiguous block of them.

use serde::Serialize;

/// One shard of a sweep: which stride of the canonical cell sequence
/// this worker computes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize)]
pub struct ShardSpec {
    /// Zero-based shard index, `< count`.
    pub index: u32,
    /// Total number of shards the sweep is divided into.
    pub count: u32,
}

/// Error from [`ShardSpec::parse`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardParseError(String);

impl std::fmt::Display for ShardParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "invalid shard '{}': expected i/N with 1 <= i <= N (e.g. 2/3)",
            self.0
        )
    }
}

impl std::error::Error for ShardParseError {}

impl ShardSpec {
    /// The whole sweep as a single shard.
    pub const SOLO: Self = Self { index: 0, count: 1 };

    /// A shard with a zero-based index.
    ///
    /// # Panics
    ///
    /// Panics unless `index < count`.
    #[must_use]
    pub fn new(index: u32, count: u32) -> Self {
        assert!(
            index < count,
            "shard index {index} out of range for {count} shards"
        );
        Self { index, count }
    }

    /// Parses the CLI form `i/N` with **one-based** `i` (so `1/3`,
    /// `2/3`, `3/3` name the three shards of a three-way split).
    ///
    /// # Errors
    ///
    /// Returns an error unless the input is `i/N` with `1 <= i <= N`.
    pub fn parse(text: &str) -> Result<Self, ShardParseError> {
        let err = || ShardParseError(text.to_owned());
        let (i, n) = text.split_once('/').ok_or_else(err)?;
        let i: u32 = i.trim().parse().map_err(|_| err())?;
        let n: u32 = n.trim().parse().map_err(|_| err())?;
        if i == 0 || n == 0 || i > n {
            return Err(err());
        }
        Ok(Self {
            index: i - 1,
            count: n,
        })
    }

    /// `true` if this shard computes the cell at canonical ordinal
    /// `ordinal` (strided assignment).
    #[must_use]
    pub fn owns(self, ordinal: usize) -> bool {
        ordinal % self.count as usize == self.index as usize
    }
}

impl std::fmt::Display for ShardSpec {
    /// The one-based CLI form, `i/N`.
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}/{}", self.index + 1, self.count)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_is_one_based_and_validates() {
        assert_eq!(
            ShardSpec::parse("1/3").expect("valid"),
            ShardSpec::new(0, 3)
        );
        assert_eq!(
            ShardSpec::parse("3/3").expect("valid"),
            ShardSpec::new(2, 3)
        );
        assert_eq!(ShardSpec::parse("1/1").expect("valid"), ShardSpec::SOLO);
        for bad in ["0/3", "4/3", "3", "a/b", "1/0", "", "1/3/2"] {
            let err = ShardSpec::parse(bad).expect_err(bad);
            assert!(err.to_string().contains(bad), "{err}");
        }
    }

    #[test]
    fn display_roundtrips_through_parse() {
        for spec in [ShardSpec::SOLO, ShardSpec::new(0, 3), ShardSpec::new(2, 5)] {
            assert_eq!(
                ShardSpec::parse(&spec.to_string()).expect("roundtrip"),
                spec
            );
        }
    }

    #[test]
    fn strides_partition_the_ordinals() {
        let count = 3;
        for ordinal in 0..20 {
            let owners: Vec<u32> = (0..count)
                .filter(|&i| ShardSpec::new(i, count).owns(ordinal))
                .collect();
            assert_eq!(owners.len(), 1, "ordinal {ordinal} owned once");
            assert_eq!(owners[0], (ordinal % count as usize) as u32);
        }
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_index_panics() {
        let _ = ShardSpec::new(3, 3);
    }
}
