//! The grid specification layer: which patterns and rates a sweep
//! covers, and the simulator configuration shared by every point.

use serde::Serialize;

use crate::config::SimConfig;
use crate::traffic::TrafficPattern;

/// Every traffic pattern the simulator models, in the order used by the
/// wide-evaluation sweeps (hot-spot at 20%, a common stress setting).
pub const ALL_PATTERNS: [TrafficPattern; 7] = [
    TrafficPattern::UniformRandom,
    TrafficPattern::Transpose,
    TrafficPattern::BitComplement,
    TrafficPattern::Reverse,
    TrafficPattern::Tornado,
    TrafficPattern::Neighbor,
    TrafficPattern::Hotspot(20),
];

/// `n` geometrically spaced rates in `[lo, hi)`: `lo · (hi/lo)^(i/n)`.
///
/// The log-spaced low end sweeps cover: patterns that saturate far
/// below a linear grid's coarsest point (hot-spot traffic on larger
/// networks) still get several stable points without paying for a fine
/// linear grid everywhere.
///
/// # Panics
///
/// Panics unless `n > 0` and `0 < lo < hi`.
#[must_use]
pub fn log_spaced(n: usize, lo: f64, hi: f64) -> Vec<f64> {
    assert!(n > 0, "need at least one rate");
    assert!(lo > 0.0 && lo < hi, "need 0 < lo < hi, got [{lo}, {hi})");
    let ratio = hi / lo;
    (0..n)
        .map(|i| lo * ratio.powf(i as f64 / n as f64))
        .collect()
}

/// A per-pattern override of the sweep's rate grid.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct PatternRates {
    /// The pattern whose grid is overridden.
    pub pattern: TrafficPattern,
    /// Its injection rates in flits per node per cycle.
    pub rates: Vec<f64>,
}

/// The grid of a sweep: injection rates × traffic patterns, plus the
/// simulator configuration shared by every point.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct SweepSpec {
    /// Injection rates in flits per node per cycle (the default grid
    /// for every pattern without an entry in `rate_overrides`).
    pub rates: Vec<f64>,
    /// Traffic patterns to sweep.
    pub patterns: Vec<TrafficPattern>,
    /// Per-pattern rate-grid overrides (see [`SweepSpec::rates_for`]).
    pub rate_overrides: Vec<PatternRates>,
    /// Simulator configuration; `config.seed` is the root seed every
    /// per-point seed derives from.
    pub config: SimConfig,
}

impl SweepSpec {
    /// A spec with the given simulator configuration, uniform-random
    /// traffic and no rates yet.
    #[must_use]
    pub fn new(config: SimConfig) -> Self {
        Self {
            rates: Vec::new(),
            patterns: vec![TrafficPattern::UniformRandom],
            rate_overrides: Vec::new(),
            config,
        }
    }

    /// Replaces the injection-rate grid.
    #[must_use]
    pub fn rates(mut self, rates: impl IntoIterator<Item = f64>) -> Self {
        self.rates = rates.into_iter().collect();
        self
    }

    /// `n` evenly spaced rates in `(0, max]`.
    #[must_use]
    pub fn linear_rates(self, n: usize, max: f64) -> Self {
        let rates: Vec<f64> = (1..=n).map(|i| max * i as f64 / n as f64).collect();
        self.rates(rates)
    }

    /// Overrides the rate grid for one pattern; every other pattern
    /// keeps the shared `rates` grid.
    #[must_use]
    pub fn rates_for(
        mut self,
        pattern: TrafficPattern,
        rates: impl IntoIterator<Item = f64>,
    ) -> Self {
        let rates: Vec<f64> = rates.into_iter().collect();
        if let Some(existing) = self
            .rate_overrides
            .iter_mut()
            .find(|o| o.pattern == pattern)
        {
            existing.rates = rates;
        } else {
            self.rate_overrides.push(PatternRates { pattern, rates });
        }
        self
    }

    /// The rate grid `pattern` actually sweeps.
    #[must_use]
    pub fn rates_of(&self, pattern: TrafficPattern) -> &[f64] {
        self.rate_overrides
            .iter()
            .find(|o| o.pattern == pattern)
            .map_or(&self.rates, |o| &o.rates)
    }

    /// Extends every hot-spot pattern's grid with a log-spaced low end:
    /// `extra` geometrically spaced rates from `floor` up to (and
    /// excluding) the lowest shared rate, ahead of the shared grid.
    ///
    /// Hot-spot traffic funnels a fixed share of *all* packets through
    /// one ejection port, so its saturation rate falls like `1/N` and
    /// drops below the coarsest linear grid point on larger networks —
    /// without the low end, such sweeps report no stable rate at all.
    ///
    /// **Call this last**, after the shared rates and the pattern list
    /// are final: the override snapshots the shared grid as it stands,
    /// and with no rates yet, no hot-spot pattern yet, or a `floor` at
    /// or above the lowest shared rate there is nothing to extend and
    /// the spec is returned unchanged.
    #[must_use]
    pub fn hotspot_low_rates(mut self, extra: usize, floor: f64) -> Self {
        let lowest = self.rates.iter().copied().fold(f64::INFINITY, f64::min);
        if extra == 0 || !lowest.is_finite() || floor >= lowest {
            return self;
        }
        let hotspots: Vec<TrafficPattern> = self
            .patterns
            .iter()
            .copied()
            .filter(|p| matches!(p, TrafficPattern::Hotspot(_)))
            .collect();
        for pattern in hotspots {
            let mut rates = log_spaced(extra, floor, lowest);
            rates.extend(self.rates.iter().copied());
            self = self.rates_for(pattern, rates);
        }
        self
    }

    /// [`SweepSpec::hotspot_low_rates`] with the wide-evaluation
    /// default — 4 log-spaced points down to 1% of injection capacity —
    /// shared by the Fig. 6-style sweeps so the low-end policy cannot
    /// drift between binaries.
    #[must_use]
    pub fn default_hotspot_low_rates(self) -> Self {
        self.hotspot_low_rates(4, 0.01)
    }

    /// Replaces the traffic-pattern list.
    #[must_use]
    pub fn patterns(mut self, patterns: impl IntoIterator<Item = TrafficPattern>) -> Self {
        self.patterns = patterns.into_iter().collect();
        self
    }

    /// Sweeps all seven modeled traffic patterns.
    #[must_use]
    pub fn all_patterns(self) -> Self {
        self.patterns(ALL_PATTERNS)
    }

    /// The number of grid cells per case.
    #[must_use]
    pub fn cells_per_case(&self) -> usize {
        self.patterns.iter().map(|&p| self.rates_of(p).len()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn log_spaced_is_geometric_and_in_range() {
        let rates = log_spaced(4, 0.01, 0.16);
        assert_eq!(rates.len(), 4);
        assert!((rates[0] - 0.01).abs() < 1e-12);
        assert!(*rates.last().expect("non-empty") < 0.16);
        for pair in rates.windows(2) {
            let ratio = pair[1] / pair[0];
            assert!((ratio - 2.0).abs() < 1e-9, "ratio {ratio}");
        }
    }

    #[test]
    fn per_pattern_override_changes_only_that_pattern() {
        let spec = SweepSpec::new(SimConfig::fast_test())
            .rates([0.2, 0.4])
            .patterns([TrafficPattern::UniformRandom, TrafficPattern::Hotspot(20)])
            .rates_for(TrafficPattern::Hotspot(20), [0.01, 0.05, 0.2]);
        assert_eq!(spec.rates_of(TrafficPattern::UniformRandom), &[0.2, 0.4]);
        assert_eq!(
            spec.rates_of(TrafficPattern::Hotspot(20)),
            &[0.01, 0.05, 0.2]
        );
        assert_eq!(spec.cells_per_case(), 5);
        // Re-overriding replaces instead of accumulating.
        let spec = spec.rates_for(TrafficPattern::Hotspot(20), [0.1]);
        assert_eq!(spec.rates_of(TrafficPattern::Hotspot(20)), &[0.1]);
        assert_eq!(spec.rate_overrides.len(), 1);
    }

    #[test]
    fn hotspot_low_rates_prepends_a_log_low_end() {
        let spec = SweepSpec::new(SimConfig::fast_test())
            .linear_rates(5, 1.0)
            .all_patterns()
            .hotspot_low_rates(4, 0.01);
        // Only the hot-spot pattern is overridden.
        assert_eq!(spec.rate_overrides.len(), 1);
        let hotspot = spec.rates_of(TrafficPattern::Hotspot(20));
        assert_eq!(hotspot.len(), 4 + 5);
        assert!((hotspot[0] - 0.01).abs() < 1e-12);
        assert!(hotspot[3] < 0.2, "low end stays below the linear grid");
        assert_eq!(&hotspot[4..], spec.rates_of(TrafficPattern::Tornado));
        // Without a hot-spot pattern (or with a floor above the grid)
        // nothing changes.
        let plain = SweepSpec::new(SimConfig::fast_test())
            .linear_rates(5, 1.0)
            .hotspot_low_rates(4, 0.01);
        assert!(plain.rate_overrides.is_empty());
        let too_high = SweepSpec::new(SimConfig::fast_test())
            .linear_rates(5, 1.0)
            .all_patterns()
            .hotspot_low_rates(4, 0.5);
        assert!(too_high.rate_overrides.is_empty());
    }

    #[test]
    fn all_patterns_constant_covers_the_enum() {
        // Seven documented patterns; keep the constant in sync.
        assert_eq!(ALL_PATTERNS.len(), 7);
        let unique: std::collections::HashSet<String> =
            ALL_PATTERNS.iter().map(ToString::to_string).collect();
        assert_eq!(unique.len(), 7);
    }
}
