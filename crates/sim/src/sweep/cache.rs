//! The cell-result cache: a content-addressed on-disk store of
//! completed sweep cells, keyed by a **per-cell** fingerprint — so a
//! re-run or a *widened* grid (new rates, new patterns, new cases)
//! re-simulates only the cells whose inputs actually changed, while
//! every unchanged cell is answered from disk.
//!
//! # Per-cell vs. per-plan identity
//!
//! The plan fingerprint ([`super::SweepPlan::fingerprint`]) digests the
//! *whole* experiment, so any grid change invalidates a journal — by
//! design: the journal is the crash-consistency layer of one execution.
//! The cache key instead digests only what one cell's outcome can
//! depend on:
//!
//! * the case: its name, grid shape, link list, per-link latencies
//!   and routing table,
//! * the cell's traffic pattern and injection rate,
//! * the per-point [`SimConfig`] — which carries the **derived** seed
//!   (a function of the root seed and the cell's grid coordinates) and
//!   every simulator knob that affects outcomes, including the
//!   injection and allocation policies.
//!
//! Appending a rate, a pattern or a case leaves the surviving cells'
//! coordinates — and therefore their derived seeds and fingerprints —
//! unchanged, so they hit; a cell whose coordinates shifted gets a new
//! seed, a new fingerprint, and an honest re-simulation. A warm run's
//! [`super::SweepResult::to_json`] is byte-identical to a cold run's:
//! entries store the point's canonical JSON and are re-read through the
//! same raw-text-number parser the journal uses.
//!
//! # Robustness
//!
//! Entries are single JSON lines written to a temporary file and
//! renamed into place. On load, anything anomalous — a torn write
//! (missing trailing newline), a fingerprint mismatch, a recorded
//! point that disagrees with the requested cell — is treated as a
//! miss: the cell is recomputed and the entry overwritten. A cache can
//! therefore be shared between concurrent runs, deleted at any time,
//! or corrupted arbitrarily without ever poisoning a result. Stores
//! are best-effort: an unwritable cache degrades to simulation with a
//! one-time warning instead of failing a long sweep.

use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

use serde_json::Value;

use super::experiment::SweepCase;
use super::journal::point_from_value;
use super::plan::fnv_bytes;
use super::result::SweepPoint;
use crate::config::SimConfig;
use crate::traffic::TrafficPattern;

/// The entry format tag (each entry line's `format` field).
const FORMAT: &str = "shg-cell-cache";
/// Bump to invalidate every existing entry on a format or keying
/// change (the version is folded into the fingerprint, so old entries
/// simply stop being addressed).
const VERSION: u64 = 2;

/// Digest of everything about a [`SweepCase`] that a cell's outcome
/// can depend on: name, grid shape, links, per-link latencies and the
/// **routing semantics** — [`SweepCase::annotated`] accepts arbitrary
/// routes, so two cases over the same topology routed differently
/// must not share entries. The routing fold is the table's
/// *semantic* digest (algorithm, not storage form): paths are a
/// deterministic function of the links — already folded above — and
/// the algorithm, and the dense and next-hop forms of one algorithm
/// produce bit-identical paths, so switching forms keeps warm cache
/// entries while switching algorithms invalidates them. Computed once
/// per case (the experiment memoizes it) and shared by all its cells.
#[must_use]
pub(crate) fn case_digest(case: &SweepCase<'_>) -> u64 {
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    fnv_bytes(&mut hash, case.name.bytes());
    fnv_bytes(&mut hash, u64::from(case.topology.rows()).to_le_bytes());
    fnv_bytes(&mut hash, u64::from(case.topology.cols()).to_le_bytes());
    for link in case.topology.links() {
        fnv_bytes(&mut hash, (link.a.index() as u64).to_le_bytes());
        fnv_bytes(&mut hash, (link.b.index() as u64).to_le_bytes());
    }
    for latency in &case.link_latencies {
        fnv_bytes(&mut hash, latency.value().to_le_bytes());
    }
    fnv_bytes(&mut hash, [case.routes.num_vc_classes()]);
    fnv_bytes(&mut hash, case.routes.semantic_digest().to_le_bytes());
    hash
}

/// The content address of one cell: the case digest plus the cell's
/// pattern, rate and per-point configuration (which carries the
/// derived seed). `config` must be the per-point config — root config
/// with the cell's derived seed installed — exactly what the simulator
/// will be handed.
#[must_use]
pub(crate) fn cell_fingerprint(
    case_digest: u64,
    config: &SimConfig,
    pattern: TrafficPattern,
    rate: f64,
) -> u64 {
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    fnv_bytes(&mut hash, VERSION.to_le_bytes());
    fnv_bytes(&mut hash, case_digest.to_le_bytes());
    let config_json = serde_json::to_string(config).expect("config serializes");
    fnv_bytes(&mut hash, config_json.bytes());
    let pattern_json = serde_json::to_string(&pattern).expect("pattern serializes");
    fnv_bytes(&mut hash, pattern_json.bytes());
    fnv_bytes(&mut hash, rate.to_bits().to_le_bytes());
    hash
}

/// Cache effectiveness counters of one execution (not persisted).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CacheStats {
    /// Cells answered from the cache.
    pub cached: u64,
    /// Cells simulated (cache misses, including invalidated entries).
    pub simulated: u64,
}

/// A content-addressed on-disk store of completed sweep cells. Attach
/// to an experiment with [`crate::Experiment::with_cache`]; every
/// execution path (`run_parallel`, `run_cells`, shards, journaled
/// resume) then consults it per cell.
///
/// Lookups and stores are lock-free (entries live in distinct files
/// named by their fingerprint) and safe under concurrent runs sharing
/// one directory.
#[derive(Debug)]
pub struct CellCache {
    dir: PathBuf,
    hits: AtomicU64,
    misses: AtomicU64,
    store_warned: AtomicBool,
}

impl CellCache {
    /// Opens (creating if needed) a cache directory.
    ///
    /// # Errors
    ///
    /// Fails if the directory cannot be created.
    pub fn open(dir: impl Into<PathBuf>) -> std::io::Result<Self> {
        let dir = dir.into();
        std::fs::create_dir_all(&dir)?;
        Ok(Self {
            dir,
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            store_warned: AtomicBool::new(false),
        })
    }

    /// The cache directory.
    #[must_use]
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Hit/miss counters since this handle was opened. `simulated`
    /// counts exactly the cells the owning experiment computed itself —
    /// the counter the widened-grid ("delta only") assertions read.
    #[must_use]
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            cached: self.hits.load(Ordering::Relaxed),
            simulated: self.misses.load(Ordering::Relaxed),
        }
    }

    fn entry_path(&self, fingerprint: u64) -> PathBuf {
        self.dir.join(format!("{fingerprint:016x}.json"))
    }

    /// Looks a cell up and counts the outcome. Any anomaly — missing
    /// or torn file, foreign format, fingerprint mismatch, a recorded
    /// point that does not describe the requested cell — is a miss.
    pub(crate) fn load(
        &self,
        fingerprint: u64,
        case: &str,
        pattern: TrafficPattern,
        rate: f64,
        seed: u64,
    ) -> Option<SweepPoint> {
        let loaded = self.read_entry(fingerprint, case, pattern, rate, seed);
        match loaded {
            Some(_) => self.hits.fetch_add(1, Ordering::Relaxed),
            None => self.misses.fetch_add(1, Ordering::Relaxed),
        };
        loaded
    }

    fn read_entry(
        &self,
        fingerprint: u64,
        case: &str,
        pattern: TrafficPattern,
        rate: f64,
        seed: u64,
    ) -> Option<SweepPoint> {
        let text = std::fs::read_to_string(self.entry_path(fingerprint)).ok()?;
        // A complete entry ends with its newline; anything else is a
        // torn write left by a kill and must be recomputed.
        let line = text.strip_suffix('\n')?;
        if line.contains('\n') {
            return None;
        }
        let value: Value = line.parse().ok()?;
        if value.get("format")?.as_str()? != FORMAT
            || value.get("version")?.as_u64()? != VERSION
            || value.get("fingerprint")?.as_u64()? != fingerprint
        {
            return None;
        }
        let point = point_from_value(value.get("point")?).ok()?;
        // A fingerprint collision or a stale entry under a reused
        // address must never be merged: the recorded cell has to be
        // exactly the requested one, bit for bit.
        let matches = point.case == case
            && point.pattern == pattern
            && point.rate.to_bits() == rate.to_bits()
            && point.seed == seed;
        matches.then_some(point)
    }

    /// Stores a computed cell, best-effort: the entry is written to a
    /// writer-unique temporary file and renamed into place, so
    /// concurrent writers cannot tear each other's entries. Failures
    /// warn once and are otherwise ignored — the cache is an
    /// accelerator, never a correctness dependency.
    pub(crate) fn store(&self, fingerprint: u64, point: &SweepPoint) {
        if let Err(e) = self.try_store(fingerprint, point) {
            if !self.store_warned.swap(true, Ordering::Relaxed) {
                eprintln!(
                    "[cell-cache] warning: cannot write {} ({e}); continuing without storing",
                    self.dir.display()
                );
            }
        }
    }

    fn try_store(&self, fingerprint: u64, point: &SweepPoint) -> std::io::Result<()> {
        // The tmp name must be unique per *store*, not just per
        // process: two threads resolving the same fingerprint (or two
        // coordinated requests overlapping on one cache) would
        // otherwise interleave `fs::write` calls on one path — and the
        // failed-rename cleanup below could unlink the other writer's
        // live tmp file. A process-wide counter disambiguates stores
        // within the process; the pid disambiguates across processes.
        static STORE_SEQ: AtomicU64 = AtomicU64::new(0);
        let point_json = serde_json::to_string(point).expect("point serializes");
        let line = format!(
            "{{\"format\":\"{FORMAT}\",\"version\":{VERSION},\
             \"fingerprint\":{fingerprint},\"point\":{point_json}}}\n"
        );
        let tmp = self.dir.join(format!(
            "{fingerprint:016x}.tmp.{}.{}",
            std::process::id(),
            STORE_SEQ.fetch_add(1, Ordering::Relaxed)
        ));
        std::fs::write(&tmp, line)?;
        let result = std::fs::rename(&tmp, self.entry_path(fingerprint));
        if result.is_err() {
            let _ = std::fs::remove_file(&tmp);
        }
        result
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats::{FaultStats, SimOutcome};

    fn scratch_dir(name: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("shg_cell_cache_unit_{}_{name}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn sample_point() -> SweepPoint {
        SweepPoint {
            case: "mesh".to_owned(),
            pattern: TrafficPattern::Hotspot(20),
            rate: 0.062_5,
            seed: 0x5eed,
            outcome: SimOutcome {
                offered_rate: 0.1,
                accepted_rate: 1.0 / 3.0,
                avg_packet_latency: 30.25,
                p50_packet_latency: 28.0,
                p99_packet_latency: 70.5,
                max_packet_latency: 80.0,
                measured_packets: 12_345,
                stable: true,
                cycles: 20_000,
                faults: FaultStats::default(),
            },
        }
    }

    #[test]
    fn store_then_load_roundtrips_and_counts() {
        let dir = scratch_dir("roundtrip");
        let cache = CellCache::open(&dir).expect("opens");
        let point = sample_point();
        let fp = 0xfeed_beef_u64;
        assert!(cache
            .load(fp, "mesh", point.pattern, point.rate, point.seed)
            .is_none());
        cache.store(fp, &point);
        let loaded = cache
            .load(fp, "mesh", point.pattern, point.rate, point.seed)
            .expect("hit");
        assert_eq!(loaded, point);
        assert_eq!(
            cache.stats(),
            CacheStats {
                cached: 1,
                simulated: 1
            }
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn mismatched_identity_and_torn_entries_are_misses() {
        let dir = scratch_dir("mismatch");
        let cache = CellCache::open(&dir).expect("opens");
        let point = sample_point();
        let fp = 7u64;
        cache.store(fp, &point);
        // Wrong seed / rate / pattern / case: stale, never merged.
        assert!(cache
            .load(fp, "mesh", point.pattern, point.rate, 1)
            .is_none());
        assert!(cache
            .load(fp, "mesh", point.pattern, 0.5, point.seed)
            .is_none());
        assert!(cache
            .load(fp, "mesh", TrafficPattern::Tornado, point.rate, point.seed)
            .is_none());
        assert!(cache
            .load(fp, "torus", point.pattern, point.rate, point.seed)
            .is_none());
        // Wrong fingerprint address: content records fp 7.
        std::fs::copy(cache.entry_path(fp), cache.entry_path(8)).expect("copy");
        assert!(cache
            .load(8, "mesh", point.pattern, point.rate, point.seed)
            .is_none());
        // Torn write: strip the trailing newline.
        let path = cache.entry_path(fp);
        let text = std::fs::read_to_string(&path).expect("read");
        std::fs::write(&path, text.trim_end()).expect("write");
        assert!(cache
            .load(fp, "mesh", point.pattern, point.rate, point.seed)
            .is_none());
        // Garbage is a miss, not an error.
        std::fs::write(&path, "not json\n").expect("write");
        assert!(cache
            .load(fp, "mesh", point.pattern, point.rate, point.seed)
            .is_none());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn concurrent_stores_of_one_fingerprint_never_tear_or_unlink() {
        // Regression for the shared `{fp}.tmp.{pid}` path: two threads
        // storing the same fingerprint simultaneously used to
        // interleave writes through ONE tmp file, and a failed rename's
        // cleanup could unlink the other thread's live tmp. With
        // per-store tmp names, every round must leave a loadable entry
        // and no stray tmp files.
        let dir = scratch_dir("concurrent");
        let cache = CellCache::open(&dir).expect("opens");
        let point = sample_point();
        let fp = 0xc0_ffee_u64;
        let rounds = 200;
        let barrier = std::sync::Barrier::new(2);
        std::thread::scope(|scope| {
            for _ in 0..2 {
                scope.spawn(|| {
                    for _ in 0..rounds {
                        barrier.wait();
                        cache.store(fp, &point);
                    }
                });
            }
        });
        let loaded = cache
            .load(fp, "mesh", point.pattern, point.rate, point.seed)
            .expect("entry survives the race");
        assert_eq!(loaded, point);
        let stray: Vec<String> = std::fs::read_dir(&dir)
            .expect("readable")
            .map(|e| e.expect("entry").file_name().to_string_lossy().into_owned())
            .filter(|name| name.contains(".tmp."))
            .collect();
        assert!(stray.is_empty(), "leftover tmp files: {stray:?}");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn fingerprint_tracks_every_outcome_input() {
        let config = SimConfig::fast_test();
        let base = cell_fingerprint(1, &config, TrafficPattern::UniformRandom, 0.1);
        assert_eq!(
            base,
            cell_fingerprint(1, &config, TrafficPattern::UniformRandom, 0.1),
            "deterministic"
        );
        assert_ne!(
            base,
            cell_fingerprint(2, &config, TrafficPattern::UniformRandom, 0.1)
        );
        assert_ne!(
            base,
            cell_fingerprint(1, &config, TrafficPattern::Transpose, 0.1)
        );
        assert_ne!(
            base,
            cell_fingerprint(1, &config, TrafficPattern::UniformRandom, 0.2)
        );
        let other_seed = SimConfig {
            seed: 43,
            ..config.clone()
        };
        assert_ne!(
            base,
            cell_fingerprint(1, &other_seed, TrafficPattern::UniformRandom, 0.1)
        );
        let other_depth = SimConfig {
            buffer_depth: 16,
            ..config
        };
        assert_ne!(
            base,
            cell_fingerprint(1, &other_depth, TrafficPattern::UniformRandom, 0.1)
        );
    }
}
