//! The journal layer: append-only JSONL of completed sweep cells,
//! enabling kill-and-resume shard execution.
//!
//! A journal file holds one header line (the plan fingerprint, the
//! shard assignment and the plan's cell count) followed by one line per
//! completed cell, **in canonical cell order** — so an interrupted
//! journal is always a prefix of the uninterrupted one, and a resumed
//! run reproduces the complete journal byte-for-byte. Completed cells
//! are flushed in order as chunks of the shard finish; work from a
//! chunk that was killed mid-flight is recomputed on resume.
//!
//! Lines are read back through the vendored `serde_json` [`Value`]
//! parser — the same code path the perf-smoke baseline gate uses —
//! and numbers survive the round trip byte-exactly (shortest-float
//! formatting and raw-text integers), which is what makes
//! `merge(journals).to_json()` reproduce a single-shot run's bytes.

use std::io::Write as _;
use std::path::Path;

use serde::Serialize;
use serde_json::Value;

use super::experiment::Experiment;
use super::plan::{CellId, SweepPlan};
use super::result::{ShardResult, SweepPoint, SweepResult};
use super::shard::ShardSpec;
use crate::stats::{FaultStats, SimOutcome};
use crate::traffic::TrafficPattern;

/// The journal format tag (first line's `format` field).
const FORMAT: &str = "shg-sweep-journal";
/// The journal format version.
const VERSION: u64 = 1;

/// The header line of a journal file. Besides the fingerprint it
/// records the plan's *shape* (case count, rates per pattern), so a
/// reader can re-enumerate the exact strided cell sequence the writer
/// followed and reject any entry that strays from it — a corrupted but
/// well-formed cell id is a hard error, not silently misplaced data.
#[derive(Debug, Clone, PartialEq, Eq, Serialize)]
struct JournalHeader {
    /// Format tag, always [`FORMAT`].
    format: &'static str,
    /// Format version, always [`VERSION`].
    version: u64,
    /// The plan fingerprint (see [`super::SweepPlan::fingerprint`]).
    fingerprint: u64,
    /// Zero-based shard index.
    shard_index: u32,
    /// Total shard count.
    shard_count: u32,
    /// Number of cases in the plan.
    num_cases: u64,
    /// How many rates each pattern sweeps, in spec order.
    rates_per_pattern: Vec<u64>,
    /// Total cells in the plan (across all shards).
    plan_cells: u64,
}

impl JournalHeader {
    fn of_plan(plan: &SweepPlan, shard: ShardSpec) -> Self {
        Self {
            format: FORMAT,
            version: VERSION,
            fingerprint: plan.fingerprint(),
            shard_index: shard.index,
            shard_count: shard.count,
            num_cases: plan.num_cases() as u64,
            rates_per_pattern: plan.rates_per_pattern().iter().map(|&n| n as u64).collect(),
            plan_cells: plan.num_cells() as u64,
        }
    }

    /// The cell enumeration this journal was written under.
    fn plan(&self) -> SweepPlan {
        SweepPlan::from_shape(
            self.num_cases as usize,
            self.rates_per_pattern.iter().map(|&n| n as usize).collect(),
            self.fingerprint,
        )
    }

    /// The shard assignment (validated at parse time).
    fn shard(&self) -> ShardSpec {
        ShardSpec::new(self.shard_index, self.shard_count)
    }
}

/// Why a journal could not be written, read or resumed.
#[derive(Debug)]
pub enum JournalError {
    /// Filesystem failure.
    Io(std::io::Error),
    /// A line failed to parse or decode (1-based line number).
    Corrupt {
        /// 1-based line number.
        line: usize,
        /// What was wrong with it.
        message: String,
    },
    /// The journal was written under a different plan (spec, case set
    /// or topology changed).
    FingerprintMismatch {
        /// The current experiment's fingerprint.
        expected: u64,
        /// The journal's fingerprint.
        found: u64,
    },
    /// The journal belongs to a different shard assignment.
    ShardMismatch {
        /// The requested shard.
        expected: ShardSpec,
        /// The journal's shard.
        found: ShardSpec,
    },
    /// A journal entry is not the expected next cell of the shard's
    /// canonical sequence.
    NotAPrefix {
        /// 1-based line number of the offending entry.
        line: usize,
        /// The cell the canonical order requires there.
        expected: CellId,
        /// The cell the journal recorded.
        found: CellId,
    },
}

impl std::fmt::Display for JournalError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::Io(e) => write!(f, "journal I/O error: {e}"),
            Self::Corrupt { line, message } => {
                write!(f, "corrupt journal at line {line}: {message}")
            }
            Self::FingerprintMismatch { expected, found } => write!(
                f,
                "journal plan fingerprint {found:#018x} does not match the current experiment \
                 {expected:#018x} — the sweep spec, case set or topology changed; delete the \
                 journal to start over"
            ),
            Self::ShardMismatch { expected, found } => write!(
                f,
                "journal belongs to shard {found}, but shard {expected} was requested"
            ),
            Self::NotAPrefix {
                line,
                expected,
                found,
            } => write!(
                f,
                "journal line {line} records cell {found}, but the shard's canonical order \
                 requires {expected} there"
            ),
        }
    }
}

impl std::error::Error for JournalError {}

impl From<std::io::Error> for JournalError {
    fn from(e: std::io::Error) -> Self {
        Self::Io(e)
    }
}

/// One journal line for a completed cell.
pub(crate) fn entry_line(cell: CellId, point: &SweepPoint) -> String {
    let cell = serde_json::to_string(&cell).expect("cell serializes");
    let point = serde_json::to_string(point).expect("point serializes");
    format!("{{\"cell\":{cell},\"point\":{point}}}")
}

fn corrupt(line: usize, message: impl Into<String>) -> JournalError {
    JournalError::Corrupt {
        line,
        message: message.into(),
    }
}

fn field<'v>(value: &'v Value, key: &str) -> Result<&'v Value, String> {
    value
        .get(key)
        .ok_or_else(|| format!("missing field '{key}'"))
}

fn u64_field(value: &Value, key: &str) -> Result<u64, String> {
    field(value, key)?
        .as_u64()
        .ok_or_else(|| format!("field '{key}' is not an unsigned integer"))
}

fn u32_field(value: &Value, key: &str) -> Result<u32, String> {
    u64_field(value, key)?
        .try_into()
        .map_err(|_| format!("field '{key}' exceeds u32"))
}

fn f64_field(value: &Value, key: &str) -> Result<f64, String> {
    field(value, key)?
        .as_f64()
        .ok_or_else(|| format!("field '{key}' is not a number"))
}

fn bool_field(value: &Value, key: &str) -> Result<bool, String> {
    field(value, key)?
        .as_bool()
        .ok_or_else(|| format!("field '{key}' is not a boolean"))
}

fn str_field<'v>(value: &'v Value, key: &str) -> Result<&'v str, String> {
    field(value, key)?
        .as_str()
        .ok_or_else(|| format!("field '{key}' is not a string"))
}

pub(crate) fn cell_from_value(value: &Value) -> Result<CellId, String> {
    Ok(CellId {
        case: u32_field(value, "case")?,
        pattern: u32_field(value, "pattern")?,
        rate: u32_field(value, "rate")?,
    })
}

fn outcome_from_value(value: &Value) -> Result<SimOutcome, String> {
    // `faults` is omitted from fault-free outcomes (the overwhelmingly
    // common case, and every pre-fault-injection journal line), so its
    // absence decodes to the all-zero default — keeping the byte-exact
    // re-serialization identity in both directions.
    let faults = match value.get("faults") {
        Some(v) => FaultStats {
            dropped_packets: u64_field(v, "dropped_packets")?,
            unroutable_packets: u64_field(v, "unroutable_packets")?,
        },
        None => FaultStats::default(),
    };
    Ok(SimOutcome {
        offered_rate: f64_field(value, "offered_rate")?,
        accepted_rate: f64_field(value, "accepted_rate")?,
        avg_packet_latency: f64_field(value, "avg_packet_latency")?,
        p50_packet_latency: f64_field(value, "p50_packet_latency")?,
        p99_packet_latency: f64_field(value, "p99_packet_latency")?,
        max_packet_latency: f64_field(value, "max_packet_latency")?,
        measured_packets: u64_field(value, "measured_packets")?,
        stable: bool_field(value, "stable")?,
        cycles: u64_field(value, "cycles")?,
        faults,
    })
}

/// Decodes a serialized [`SweepPoint`] (a journal line's `point`
/// field, or an element of a `SweepResult`'s `points` array).
pub(crate) fn point_from_value(value: &Value) -> Result<SweepPoint, String> {
    Ok(SweepPoint {
        case: str_field(value, "case")?.to_owned(),
        pattern: TrafficPattern::from_json(field(value, "pattern")?)
            .ok_or_else(|| "field 'pattern' is not a traffic pattern".to_owned())?,
        rate: f64_field(value, "rate")?,
        seed: u64_field(value, "seed")?,
        outcome: outcome_from_value(field(value, "outcome")?)?,
    })
}

fn parse_entry(line_no: usize, line: &str) -> Result<(CellId, SweepPoint), JournalError> {
    let value: Value = line
        .parse()
        .map_err(|e: serde_json::ParseError| corrupt(line_no, e.to_string()))?;
    let cell = field(&value, "cell")
        .and_then(cell_from_value)
        .map_err(|m| corrupt(line_no, m))?;
    let point = field(&value, "point")
        .and_then(point_from_value)
        .map_err(|m| corrupt(line_no, m))?;
    Ok((cell, point))
}

fn parse_header(line: &str) -> Result<JournalHeader, JournalError> {
    let value: Value = line
        .parse()
        .map_err(|e: serde_json::ParseError| corrupt(1, e.to_string()))?;
    let decode = || -> Result<JournalHeader, String> {
        if str_field(&value, "format")? != FORMAT {
            return Err(format!("not a {FORMAT} file"));
        }
        let version = u64_field(&value, "version")?;
        if version != VERSION {
            return Err(format!(
                "unsupported version {version} (expected {VERSION})"
            ));
        }
        let shard_index = u32_field(&value, "shard_index")?;
        let shard_count = u32_field(&value, "shard_count")?;
        if shard_count == 0 || shard_index >= shard_count {
            return Err(format!(
                "shard index {shard_index} out of range for {shard_count} shards"
            ));
        }
        let rates_per_pattern = field(&value, "rates_per_pattern")?
            .as_array()
            .ok_or_else(|| "field 'rates_per_pattern' is not an array".to_owned())?
            .iter()
            .map(|v| {
                v.as_u64()
                    .ok_or_else(|| "non-integer in 'rates_per_pattern'".to_owned())
            })
            .collect::<Result<Vec<u64>, String>>()?;
        let header = JournalHeader {
            format: FORMAT,
            version: VERSION,
            fingerprint: u64_field(&value, "fingerprint")?,
            shard_index,
            shard_count,
            num_cases: u64_field(&value, "num_cases")?,
            rates_per_pattern,
            plan_cells: u64_field(&value, "plan_cells")?,
        };
        if header.plan().num_cells() as u64 != header.plan_cells {
            return Err(format!(
                "plan_cells {} does not match the recorded plan shape ({} cells)",
                header.plan_cells,
                header.plan().num_cells()
            ));
        }
        Ok(header)
    };
    decode().map_err(|m| corrupt(1, m))
}

/// A parsed journal plus the byte length of its valid prefix (resume
/// truncates the file there before appending, discarding a partial
/// line left by a kill mid-write).
#[derive(Debug)]
struct ParsedJournal {
    header: JournalHeader,
    entries: Vec<(CellId, SweepPoint)>,
    valid_len: u64,
}

/// `strict`: a **final** line without its terminating newline — a torn
/// write, whether or not the fragment happens to parse — is an error
/// (merge path) rather than discarded for recomputation (resume path).
fn parse_journal(text: &str, strict: bool) -> Result<ParsedJournal, JournalError> {
    let mut lines = Vec::new(); // (1-based line number, byte end, text)
    let mut offset = 0usize;
    for line in text.split_inclusive('\n') {
        let end = offset + line.len();
        lines.push((lines.len() + 1, end, line.trim_end_matches('\n')));
        offset = end;
    }
    // A complete line ends with '\n'; a trailing fragment does not.
    let torn_tail = !text.is_empty() && !text.ends_with('\n');
    let Some(&(_, header_end, header_line)) = lines.first() else {
        return Err(corrupt(1, "empty journal (missing header)"));
    };
    if torn_tail && (strict || lines.len() == 1) {
        return Err(corrupt(
            lines.len(),
            "truncated final line (torn write? resume the shard to repair)",
        ));
    }
    let header = parse_header(header_line)?;
    let mut entries = Vec::new();
    let mut valid_len = header_end as u64;
    for (i, &(line_no, end, line)) in lines.iter().enumerate().skip(1) {
        if line.is_empty() && i + 1 == lines.len() {
            break; // the final newline
        }
        if torn_tail && i + 1 == lines.len() {
            // The write never completed (resume path); recompute it.
            break;
        }
        match parse_entry(line_no, line) {
            Ok(entry) => {
                entries.push(entry);
                valid_len = end as u64;
            }
            Err(e) => return Err(e),
        }
    }
    Ok(ParsedJournal {
        header,
        entries,
        valid_len,
    })
}

/// Checks that journaled entries are exactly the leading cells of the
/// shard's canonical sequence.
fn validate_prefix(cells: &[CellId], entries: &[(CellId, SweepPoint)]) -> Result<(), JournalError> {
    if entries.len() > cells.len() {
        return Err(corrupt(
            cells.len() + 2,
            format!(
                "journal records {} cells but the shard only has {}",
                entries.len(),
                cells.len()
            ),
        ));
    }
    for (i, (cell, _)) in entries.iter().enumerate() {
        if cells[i] != *cell {
            return Err(JournalError::NotAPrefix {
                line: i + 2,
                expected: cells[i],
                found: *cell,
            });
        }
    }
    Ok(())
}

/// Reads a completed (or partial) shard journal into a [`ShardResult`]
/// for [`SweepResult::merge`].
///
/// # Errors
///
/// Fails on I/O errors, any malformed or torn line (the merge path is
/// strict; repairing a torn journal is [`run_journaled`]'s job), or
/// entries that are not the leading cells of the shard's canonical
/// sequence under the header's recorded plan shape — so a corrupted
/// cell id cannot slip into a merge as silently misplaced data.
pub fn read_journal(path: impl AsRef<Path>) -> Result<ShardResult, JournalError> {
    let text = std::fs::read_to_string(path)?;
    let parsed = parse_journal(&text, true)?;
    let shard = parsed.header.shard();
    validate_prefix(&parsed.header.plan().shard_cells(shard), &parsed.entries)?;
    Ok(ShardResult {
        fingerprint: parsed.header.fingerprint,
        shard,
        plan_cells: parsed.header.plan_cells,
        entries: parsed.entries,
    })
}

/// An open journal file being appended to in canonical cell order —
/// the write half shared by [`run_journaled`] and the sweep
/// coordinator's streamed journal.
///
/// With `durable` set, the header and every appended batch are
/// [`File::sync_data`](std::fs::File::sync_data)-ed to disk before the
/// writer moves on: after a power loss or machine crash the on-disk
/// file is guaranteed to be a prefix of the logical journal (plus at
/// most one torn line), which is exactly the shape the torn-line
/// recovery of a resume repairs. A `flush()` alone does **not** give
/// that guarantee — it only moves bytes into the page cache, and
/// writeback may land them out of order. Durability is flag-gated
/// because each sync is a disk round trip; local single-shot runs that
/// only need kill-resilience (not crash-resilience) keep their speed
/// by leaving it off.
#[derive(Debug)]
pub struct JournalWriter {
    file: std::fs::File,
    durable: bool,
    syncs: u64,
}

impl JournalWriter {
    /// Creates (truncating) a journal at `path` and writes its header
    /// line for `plan` under `shard`.
    ///
    /// # Errors
    ///
    /// Fails on I/O errors.
    pub fn create(
        path: impl AsRef<Path>,
        plan: &SweepPlan,
        shard: ShardSpec,
        durable: bool,
    ) -> Result<Self, JournalError> {
        let header = JournalHeader::of_plan(plan, shard);
        let mut file = std::fs::File::create(path)?;
        let header_line = serde_json::to_string(&header).expect("header serializes");
        writeln!(file, "{header_line}")?;
        file.flush()?;
        let mut writer = Self {
            file,
            durable,
            syncs: 0,
        };
        writer.sync_if_durable()?;
        Ok(writer)
    }

    /// Wraps a file already positioned at the end of a valid journal
    /// prefix (the resume path: header validated, torn tail truncated).
    fn resume(file: std::fs::File, durable: bool) -> Self {
        Self {
            file,
            durable,
            syncs: 0,
        }
    }

    /// Appends one batch of completed cells as journal lines, flushed
    /// (and synced, when durable) as a unit.
    ///
    /// # Errors
    ///
    /// Fails on I/O errors.
    pub fn append(&mut self, entries: &[(CellId, SweepPoint)]) -> Result<(), JournalError> {
        let mut buffer = String::new();
        for (cell, point) in entries {
            buffer.push_str(&entry_line(*cell, point));
            buffer.push('\n');
        }
        self.file.write_all(buffer.as_bytes())?;
        self.file.flush()?;
        self.sync_if_durable()?;
        Ok(())
    }

    /// How many `sync_data` calls this writer has issued (0 unless
    /// durable): one for the header (on create) plus one per appended
    /// batch — the sync points the durability tests assert.
    #[must_use]
    pub fn syncs(&self) -> u64 {
        self.syncs
    }

    fn sync_if_durable(&mut self) -> Result<(), JournalError> {
        if self.durable {
            self.file.sync_data()?;
            self.syncs += 1;
        }
        Ok(())
    }
}

/// Runs one shard of `experiment` to an append-only journal at `path`,
/// returning the shard's points (in canonical order) when every cell
/// is done.
///
/// With `resume` set and `path` existing, previously journaled cells
/// are validated against the current plan (fingerprint, shard, prefix
/// order) and skipped; only the remainder is recomputed, and the
/// finished journal is byte-identical to an uninterrupted run's.
/// Without `resume`, any existing file is truncated.
///
/// `progress` is called after every flushed chunk with
/// `(cells done, shard cells total)`.
///
/// # Errors
///
/// Fails on I/O errors, or — when resuming — on a journal that was
/// written under a different plan or shard, or whose entries are not a
/// prefix of the shard's canonical cell sequence.
pub fn run_journaled(
    experiment: &Experiment<'_>,
    shard: ShardSpec,
    path: impl AsRef<Path>,
    resume: bool,
    progress: impl FnMut(usize, usize),
) -> Result<SweepResult, JournalError> {
    run_journaled_durable(experiment, shard, path, resume, false, progress)
}

/// [`run_journaled`] with an explicit durability choice: when `durable`
/// is set, the header and every flushed chunk are `sync_data`-ed so a
/// machine crash (not just a process kill) leaves an on-disk prefix the
/// resume path can repair — the mode coordinated execution runs in.
/// The journal bytes are identical either way.
///
/// # Errors
///
/// As [`run_journaled`].
pub fn run_journaled_durable(
    experiment: &Experiment<'_>,
    shard: ShardSpec,
    path: impl AsRef<Path>,
    resume: bool,
    durable: bool,
    mut progress: impl FnMut(usize, usize),
) -> Result<SweepResult, JournalError> {
    let path = path.as_ref();
    let plan = experiment.plan();
    let cells = plan.shard_cells(shard);

    let mut done: Vec<SweepPoint> = Vec::new();
    let existing = if resume && path.exists() {
        // A file with no complete line means the kill landed during the
        // header write itself: nothing is recoverable, so recreate
        // rather than dead-ending every subsequent resume attempt.
        Some(std::fs::read_to_string(path)?).filter(|text| text.contains('\n'))
    } else {
        None
    };
    let mut writer = if let Some(text) = existing {
        let parsed = parse_journal(&text, false)?;
        if parsed.header.fingerprint != plan.fingerprint() {
            return Err(JournalError::FingerprintMismatch {
                expected: plan.fingerprint(),
                found: parsed.header.fingerprint,
            });
        }
        let journal_shard = parsed.header.shard();
        if journal_shard != shard {
            return Err(JournalError::ShardMismatch {
                expected: shard,
                found: journal_shard,
            });
        }
        validate_prefix(&cells, &parsed.entries)?;
        done = parsed.entries.into_iter().map(|(_, p)| p).collect();
        let mut file = std::fs::OpenOptions::new().write(true).open(path)?;
        file.set_len(parsed.valid_len)?; // drop any torn trailing line
        std::io::Seek::seek(&mut file, std::io::SeekFrom::End(0))?;
        JournalWriter::resume(file, durable)
    } else {
        JournalWriter::create(path, &plan, shard, durable)?
    };

    progress(done.len(), cells.len());
    let remaining = &cells[done.len()..];
    let mut flushed = done.len();
    let computed = experiment.run_cells_chunked(remaining, |chunk, points| {
        let entries: Vec<(CellId, SweepPoint)> =
            chunk.iter().copied().zip(points.iter().cloned()).collect();
        writer.append(&entries)?;
        flushed += chunk.len();
        progress(flushed, cells.len());
        Ok::<(), JournalError>(())
    })?;
    done.extend(computed);
    Ok(SweepResult { points: done })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn entry_lines_roundtrip_through_the_parser() {
        let point = SweepPoint {
            case: "mesh \"quoted\"".to_owned(),
            pattern: TrafficPattern::Hotspot(20),
            rate: 0.062_5,
            seed: u64::MAX,
            outcome: SimOutcome {
                offered_rate: 0.1,
                accepted_rate: 1.0 / 3.0,
                avg_packet_latency: 30.25,
                p50_packet_latency: 28.0,
                p99_packet_latency: 70.5,
                max_packet_latency: 80.0,
                measured_packets: 12_345,
                stable: true,
                cycles: 20_000,
                faults: FaultStats {
                    dropped_packets: 17,
                    unroutable_packets: 4,
                },
            },
        };
        let cell = CellId {
            case: 3,
            pattern: 6,
            rate: 11,
        };
        let line = entry_line(cell, &point);
        let (cell2, point2) = parse_entry(2, &line).expect("parses");
        assert_eq!(cell2, cell);
        assert_eq!(point2, point);
        // Byte-exact re-serialization (the merge identity's backbone).
        assert_eq!(entry_line(cell2, &point2), line);
    }

    fn test_header() -> JournalHeader {
        // One case, two patterns sweeping 3 + 2 rates: 5 cells.
        JournalHeader {
            format: FORMAT,
            version: VERSION,
            fingerprint: u64::MAX - 1,
            shard_index: 2,
            shard_count: 5,
            num_cases: 1,
            rates_per_pattern: vec![3, 2],
            plan_cells: 5,
        }
    }

    #[test]
    fn header_roundtrips_and_rejects_foreign_files() {
        let header = test_header();
        let line = serde_json::to_string(&header).expect("serializes");
        assert_eq!(parse_header(&line).expect("parses"), header);
        let err = parse_header("{\"format\":\"other\"}").expect_err("foreign");
        assert!(err.to_string().contains("not a shg-sweep-journal"), "{err}");
        assert!(parse_header("not json").is_err());
    }

    #[test]
    fn header_rejects_out_of_range_shards_and_inconsistent_shape() {
        let bad_shard = JournalHeader {
            shard_index: 5,
            ..test_header()
        };
        let line = serde_json::to_string(&bad_shard).expect("serializes");
        let err = parse_header(&line).expect_err("index 5 of 5 shards");
        assert!(err.to_string().contains("out of range"), "{err}");
        let bad_cells = JournalHeader {
            plan_cells: 7,
            ..test_header()
        };
        let line = serde_json::to_string(&bad_cells).expect("serializes");
        let err = parse_header(&line).expect_err("shape says 5 cells");
        assert!(err.to_string().contains("plan shape"), "{err}");
    }

    #[test]
    fn journal_writer_syncs_header_and_every_batch_only_when_durable() {
        let point = SweepPoint {
            case: "mesh".to_owned(),
            pattern: TrafficPattern::UniformRandom,
            rate: 0.1,
            seed: 7,
            outcome: SimOutcome {
                offered_rate: 0.1,
                accepted_rate: 0.1,
                avg_packet_latency: 10.0,
                p50_packet_latency: 9.0,
                p99_packet_latency: 20.0,
                max_packet_latency: 25.0,
                measured_packets: 100,
                stable: true,
                cycles: 1_000,
                faults: FaultStats::default(),
            },
        };
        let cell = |rate: u32| CellId {
            case: 0,
            pattern: 0,
            rate,
        };
        let plan = SweepPlan::from_shape(1, vec![3], 42);
        let dir = std::env::temp_dir().join(format!("shg_journal_writer_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).expect("scratch dir");
        let write_all = |path: &Path, durable: bool| -> u64 {
            let mut writer =
                JournalWriter::create(path, &plan, ShardSpec::SOLO, durable).expect("creates");
            // Three single-cell batches: durable mode must sync each
            // one (plus the header), non-durable none.
            for rate in 0..3 {
                writer
                    .append(&[(cell(rate), point.clone())])
                    .expect("appends");
            }
            writer.syncs()
        };
        let durable_path = dir.join("durable.jsonl");
        let fast_path = dir.join("fast.jsonl");
        assert_eq!(write_all(&durable_path, true), 1 + 3, "header + 3 batches");
        assert_eq!(write_all(&fast_path, false), 0, "flag off: no syncs");
        // Durability never changes the bytes.
        let durable_bytes = std::fs::read(&durable_path).expect("read");
        let fast_bytes = std::fs::read(&fast_path).expect("read");
        assert_eq!(durable_bytes, fast_bytes);
        // And both are valid, complete journals.
        let shard = read_journal(&durable_path).expect("parses");
        assert_eq!(shard.entries.len(), 3);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn torn_final_line_is_dropped_on_resume_but_an_error_for_merge() {
        let mut text = serde_json::to_string(&test_header()).expect("serializes");
        text.push('\n');
        text.push_str("{\"cell\":{\"case\":0,\"pat"); // killed mid-write
        let lenient = parse_journal(&text, false).expect("resume tolerates");
        assert!(lenient.entries.is_empty());
        assert_eq!(lenient.valid_len as usize, text.find('\n').expect("nl") + 1);
        let err = parse_journal(&text, true).expect_err("merge is strict");
        assert!(err.to_string().contains("torn write"), "{err}");
        // Strict also rejects a torn final line that happens to parse:
        // the newline never landed, so the write did not complete.
        let mut parseable = serde_json::to_string(&test_header()).expect("serializes");
        parseable.push('\n');
        parseable.push_str(
            "{\"cell\":{\"case\":0,\"pattern\":0,\"rate\":0},\"point\":{}}", // no newline
        );
        assert!(parse_journal(&parseable, false).is_ok(), "resume tolerates");
        let err = parse_journal(&parseable, true).expect_err("merge is strict");
        assert!(err.to_string().contains("torn write"), "{err}");
    }
}
