//! The parallel sweep engine: one shared evaluation loop for every
//! experiment that measures (topology × traffic pattern × injection
//! rate) grids, structured as **plan / execute / merge** so a sweep can
//! be split across threads, processes or machines and recombined
//! byte-identically.
//!
//! The paper's prediction toolchain exists to sweep thousands of such
//! points (Fig. 6's Pareto fronts); before this module each bench
//! binary carried its own warmup/measure loop. An [`Experiment`] owns a
//! set of [`SweepCase`]s (topology + routing table + per-link
//! latencies, computed **once** per topology and shared across all of
//! its grid cells) and a [`SweepSpec`] (the rate × pattern grid); it
//! fans the grid out over threads and returns a [`SweepResult`] that is
//! deterministic — same spec and seed ⇒ byte-identical JSON — no matter
//! how many threads ran it, because every point derives its RNG seed
//! from its grid coordinates alone and results are collected in grid
//! order.
//!
//! The layers, each its own submodule:
//!
//! * [`spec`] — the grid: rates × patterns plus the shared [`SimConfig`].
//! * [`plan`] — [`CellId`] coordinates with a canonical total order,
//!   [`SweepPlan::cells`] enumeration and the plan fingerprint.
//! * [`shard`] — [`ShardSpec`]: strided division of the cell sequence
//!   between independent workers.
//! * [`experiment`] — [`Experiment`]: runs the whole grid
//!   ([`Experiment::run_parallel`]), an arbitrary cell subset
//!   ([`Experiment::run_cells`]) or one shard
//!   ([`Experiment::run_shard`]), on a pluggable [`ExecBackend`]
//!   (per-cell reference, `Network`-reusing execution, the
//!   lane-parallel struct-of-arrays batched core, or an auto policy
//!   that picks per cell group).
//! * [`cache`] — [`CellCache`]: a content-addressed on-disk store of
//!   completed cells keyed per cell (not per plan), so re-runs and
//!   widened grids simulate only what actually changed.
//! * [`journal`] — append-only JSONL of completed cells
//!   ([`run_journaled`], [`JournalWriter`]) enabling kill-and-resume
//!   workers, with opt-in `fsync` durability
//!   ([`run_journaled_durable`]).
//! * [`result`] — [`SweepResult`], its deterministic JSON, and
//!   [`SweepResult::merge`] recombining shards into the single-shot
//!   bytes.
//! * [`proto`] — the framed wire protocol between a sweep-service
//!   coordinator and its workers, plus the worker-side
//!   [`serve_worker`] loop.
//! * [`coord`] — [`run_coordinated`]: one coordinator driving a
//!   worker fleet with chunk dispatch, work stealing, dead-worker
//!   requeue, shared-cache pre-warming and canonical-order journal
//!   streaming.
//!
//! The journal and the cache compose: the journal is the
//! crash-consistency layer of **one** execution (plan-fingerprinted,
//! strict ordering), while the cache is the **cross-run** layer
//! (per-cell identity, survives grid changes). A resumed journal skips
//! its completed cells outright; the remainder flows through
//! [`Experiment::run_cells`], where the cache answers every cell it
//! has seen before.
//!
//! # Examples
//!
//! ```
//! use shg_sim::{sweep, Experiment, SimConfig, SweepSpec};
//! use shg_topology::{generators, Grid};
//!
//! let mesh = generators::mesh(Grid::new(4, 4));
//! let spec = SweepSpec::new(SimConfig::fast_test())
//!     .rates([0.02, 0.1])
//!     .patterns(sweep::ALL_PATTERNS);
//! let result = Experiment::new(spec)
//!     .with_unit_latency_case("mesh", &mesh)
//!     .expect("mesh routes")
//!     .run_parallel();
//! assert_eq!(result.points.len(), 2 * sweep::ALL_PATTERNS.len());
//! ```
//!
//! Sharded: run each shard anywhere, merge to the identical bytes.
//!
//! ```
//! # use shg_sim::{sweep::ShardSpec, Experiment, SimConfig, SweepResult, SweepSpec};
//! # use shg_topology::{generators, Grid};
//! # let mesh = generators::mesh(Grid::new(4, 4));
//! # let spec = SweepSpec::new(SimConfig::fast_test()).rates([0.02, 0.1]);
//! # let experiment = Experiment::new(spec).with_unit_latency_case("mesh", &mesh)?;
//! let shards = (0..3).map(|i| experiment.run_shard(ShardSpec::new(i, 3))).collect();
//! let merged = SweepResult::merge(shards).expect("disjoint and complete");
//! assert_eq!(merged.to_json(), experiment.run_parallel().to_json());
//! # Ok::<(), shg_topology::routing::BuildRoutesError>(())
//! ```

pub mod cache;
pub mod coord;
pub mod experiment;
pub mod journal;
pub mod plan;
pub mod proto;
pub mod result;
pub mod shard;
pub mod spec;

pub use cache::{CacheStats, CellCache};
pub use coord::{
    run_coordinated, CoordError, CoordOptions, CoordProgress, CoordSummary, WorkerLink,
};
pub use experiment::{ExecBackend, ExecStats, Experiment, SweepCase};
pub use journal::{
    read_journal, run_journaled, run_journaled_durable, JournalError, JournalWriter,
};
pub use plan::{CellId, SweepPlan};
pub use proto::{connect_with_backoff, serve_worker};
pub use result::{MergeError, ShardResult, SweepPoint, SweepResult};
pub use shard::{ShardParseError, ShardSpec};
pub use spec::{log_spaced, PatternRates, SweepSpec, ALL_PATTERNS};

use shg_topology::routing::Routes;
use shg_topology::Topology;
use shg_units::Cycles;

use crate::config::SimConfig;
use crate::traffic::TrafficPattern;

/// Convenience free function mirroring the classic latency-vs-load
/// sweep: one case, one pattern, a rate grid, run in parallel.
#[must_use]
pub fn load_curve(
    name: &str,
    topology: &Topology,
    routes: Routes,
    link_latencies: Vec<Cycles>,
    config: &SimConfig,
    pattern: TrafficPattern,
    rates: &[f64],
) -> SweepResult {
    let spec = SweepSpec::new(config.clone())
        .rates(rates.iter().copied())
        .patterns([pattern]);
    Experiment::new(spec)
        .with_case(SweepCase::annotated(name, topology, routes, link_latencies))
        .run_parallel()
}
