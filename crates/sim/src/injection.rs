//! Injection scheduling: per-tile RNG streams, the geometric-gap
//! sampler and the event-driven injection calendar.
//!
//! # Per-tile streams
//!
//! Every tile owns a private [`SmallRng`] seeded by
//! [`tile_stream_seed`]`(config.seed, tile)`. Decoupling the sources'
//! traffic processes (the BookSim methodology) is what makes injection
//! *schedule-independent*: how often, or in which order, the simulator
//! looks at a tile can no longer perturb any other tile's arrivals, so
//! an event-driven scheduler can skip idle tiles without changing a
//! single statistic.
//!
//! # The gap process
//!
//! Each tile's arrivals form a Bernoulli process with per-cycle success
//! probability `p`; its inter-arrival gaps are geometric.
//! [`geometric_gap`] samples a gap directly by inversion —
//! `⌊ln(1−u)/ln(1−p)⌋` for one uniform draw `u` — so a tile consumes
//! **one draw per packet** instead of one draw per cycle. That is the
//! whole speedup: at the low rates that dominate load-curve sweeps,
//! Phase A's cost drops from O(N) RNG draws per cycle to O(arrivals).
//! The sampled distribution is exactly the Bernoulli failure-run law
//! (`P[gap = k] = (1−p)^k · p`); the statistical equivalence suite and
//! the gap-lemma property tests pin it against per-cycle draws.
//!
//! # The bit-identity invariant
//!
//! [`InjectionPolicy::EventDriven`] parks each tile in a min-heap keyed
//! by its next firing cycle; [`InjectionPolicy::PerCycleScan`] visits
//! every tile every cycle and counts the same gap down by one. Both
//! consume the same per-tile streams through the same sampler, in the
//! same order, so their fire schedules — and therefore every simulator
//! statistic — are bit-identical (the injection analogue of
//! [`ScanPolicy::FullScan`](crate::ScanPolicy::FullScan) vs. the active
//! set, enforced by the same kind of tests). The pre-per-tile-stream
//! behaviour survives as [`InjectionPolicy::SharedScan`], compared
//! statistically.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// How the simulator generates packet arrivals each cycle.
///
/// [`EventDriven`](Self::EventDriven) and
/// [`PerCycleScan`](Self::PerCycleScan) consume the same per-tile
/// streams and produce bit-identical outcomes; the legacy
/// [`SharedScan`](Self::SharedScan) reproduces the pre-per-tile-stream
/// behaviour (one global stream, one Bernoulli draw per tile per
/// cycle) and is only statistically equivalent.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum InjectionPolicy {
    /// Each tile samples its geometric inter-arrival gap once and waits
    /// in a calendar keyed by its next injection cycle; Phase A visits
    /// only the tiles that actually fire (the default).
    #[default]
    EventDriven,
    /// Every tile is visited every cycle and counts its sampled gap
    /// down by one — the exhaustive reference the event-driven path
    /// must match bit-for-bit (the injection analogue of
    /// [`ScanPolicy::FullScan`](crate::ScanPolicy::FullScan)).
    PerCycleScan,
    /// One Bernoulli draw per tile per cycle from a single stream
    /// shared by all tiles — the pre-PR-2 behaviour, kept as the
    /// baseline for statistical regression tests.
    SharedScan,
}

impl std::fmt::Display for InjectionPolicy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::EventDriven => write!(f, "event-driven"),
            Self::PerCycleScan => write!(f, "per-cycle-scan"),
            Self::SharedScan => write!(f, "shared-scan"),
        }
    }
}

/// The SplitMix64 finalizer: the avalanche both seed derivations in
/// this crate ([`tile_stream_seed`] and the sweep engine's per-point
/// `derive_seed`) fold their inputs through.
pub(crate) fn splitmix64_mix(mut state: u64) -> u64 {
    state = (state ^ (state >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    state = (state ^ (state >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    state ^ (state >> 31)
}

/// Derives tile `tile`'s private stream seed from the run's root seed
/// (SplitMix64-style finalizer, same family as the sweep engine's
/// per-point derivation). Depends only on `(root, tile)`, never on
/// scheduling — the property the sweep determinism tests rely on.
#[must_use]
pub fn tile_stream_seed(root: u64, tile: u32) -> u64 {
    splitmix64_mix(
        root.wrapping_add(0xa076_1d64_78bd_642f)
            .wrapping_add(u64::from(tile).wrapping_mul(0x9e37_79b9_7f4a_7c15)),
    )
}

/// Sentinel countdown for tiles that never fire (`p <= 0`).
const NEVER: u64 = u64::MAX;

/// Samples the geometric gap to a tile's next injection attempt: the
/// number of silent cycles before the next success of its per-cycle
/// Bernoulli(`p`) arrival process, i.e. `P[gap = k] = (1−p)^k · p`.
///
/// Sampled by inversion from **one** uniform draw —
/// `⌊ln(1−u)/ln(1−p)⌋` with `ln_1p` for precision at small `p` — so a
/// tile's stream advances once per packet, not once per cycle. A gap
/// of `0` is exactly as likely as one Bernoulli success (`u < p`).
///
/// Returns `None` for `p <= 0` (the tile never injects and the stream
/// is left untouched). For `p >= 1` the gap is always `Some(0)`
/// without consuming the stream (every cycle fires).
///
/// # Examples
///
/// ```
/// use rand::rngs::SmallRng;
/// use rand::SeedableRng;
/// use shg_sim::geometric_gap;
///
/// let mut rng = SmallRng::seed_from_u64(7);
/// assert!(geometric_gap(&mut rng, 0.1).is_some());
/// assert_eq!(geometric_gap(&mut rng, 0.0), None);
/// assert_eq!(geometric_gap(&mut rng, 1.0), Some(0));
/// ```
pub fn geometric_gap<R: Rng>(rng: &mut R, p: f64) -> Option<u64> {
    GapSampler::new(p).sample(rng)
}

/// [`geometric_gap`] with `ln(1−p)` precomputed — the form the
/// injector uses, since `p` is fixed for a whole run. Bit-identical to
/// the free function: the division sees the same operand values.
#[derive(Debug, Clone, Copy)]
struct GapSampler {
    /// `ln(1−p)` (negative), `0.0` for "never", `f64::NEG_INFINITY`
    /// effectively means "every cycle" but is short-circuited.
    ln_q: f64,
    p: f64,
}

impl GapSampler {
    fn new(p: f64) -> Self {
        // ln(1−p) via ln_1p: accurate down to subnormal `p`, where
        // `(1.0 - p).ln()` would round to zero and divide away the gap
        // entirely.
        let ln_q = if (0.0..1.0).contains(&p) {
            (-p).ln_1p()
        } else {
            0.0
        };
        Self { ln_q, p }
    }

    #[inline]
    fn sample<R: Rng>(self, rng: &mut R) -> Option<u64> {
        if self.p <= 0.0 {
            return None;
        }
        if self.p >= 1.0 {
            return Some(0);
        }
        let u: f64 = rng.gen();
        // Casting saturates, so gaps past any horizon are simply
        // "very large".
        Some(((-u).ln_1p() / self.ln_q) as u64)
    }
}

/// The per-run injection engine: owns the RNG stream(s) and decides,
/// cycle by cycle, which tiles attempt an injection.
///
/// Public so the Criterion benches can measure Phase A in isolation;
/// simulation code reaches it through [`SimConfig`](crate::SimConfig)'s
/// `injection` field.
#[derive(Debug)]
pub struct Injector {
    inner: Inner,
}

#[derive(Debug)]
enum Inner {
    /// See [`InjectionPolicy::EventDriven`].
    Event {
        streams: Vec<SmallRng>,
        sampler: GapSampler,
        /// Min-heap of `(next_injection_cycle, tile)`; popping in
        /// ascending `(cycle, tile)` order reproduces the scan's
        /// ascending-tile visit order within each cycle.
        calendar: BinaryHeap<Reverse<(u64, usize)>>,
        /// No event is scheduled past this cycle: the run is over by
        /// then, so the dropped tiles cannot affect any statistic.
        horizon: u64,
    },
    /// See [`InjectionPolicy::PerCycleScan`].
    Scan {
        streams: Vec<SmallRng>,
        sampler: GapSampler,
        /// Cycles until each tile fires ([`NEVER`] = not scheduled).
        countdown: Vec<u64>,
    },
    /// See [`InjectionPolicy::SharedScan`].
    Shared {
        rng: SmallRng,
        packet_prob: f64,
        tiles: usize,
    },
}

impl Injector {
    /// Builds the engine for one run. `horizon` is the last cycle the
    /// run can reach (`measure_end + drain_limit`); the event calendar
    /// never schedules past it.
    #[must_use]
    pub fn new(
        policy: InjectionPolicy,
        seed: u64,
        tiles: usize,
        packet_prob: f64,
        horizon: u64,
    ) -> Self {
        let tile_streams = || -> Vec<SmallRng> {
            (0..tiles)
                .map(|t| SmallRng::seed_from_u64(tile_stream_seed(seed, t as u32)))
                .collect()
        };
        let sampler = GapSampler::new(packet_prob);
        let inner = match policy {
            InjectionPolicy::EventDriven => {
                let mut streams = tile_streams();
                let mut calendar = BinaryHeap::with_capacity(tiles);
                for (t, rng) in streams.iter_mut().enumerate() {
                    if let Some(gap) = sampler.sample(rng) {
                        if gap <= horizon {
                            calendar.push(Reverse((gap, t)));
                        }
                    }
                }
                Inner::Event {
                    streams,
                    sampler,
                    calendar,
                    horizon,
                }
            }
            InjectionPolicy::PerCycleScan => {
                let mut streams = tile_streams();
                let countdown = streams
                    .iter_mut()
                    .map(|rng| sampler.sample(rng).unwrap_or(NEVER))
                    .collect();
                Inner::Scan {
                    streams,
                    sampler,
                    countdown,
                }
            }
            InjectionPolicy::SharedScan => Inner::Shared {
                rng: SmallRng::seed_from_u64(seed),
                packet_prob,
                tiles,
            },
        };
        Self { inner }
    }

    /// Calls `fire(tile, stream)` for every tile that attempts an
    /// injection at cycle `now`, in ascending tile order; the callback
    /// draws the packet's destination from the same stream.
    ///
    /// Must be called once per cycle with consecutive `now` values —
    /// the countdown scan and the calendar both advance one cycle per
    /// call.
    pub fn fire_at(&mut self, now: u64, mut fire: impl FnMut(usize, &mut SmallRng)) {
        match &mut self.inner {
            Inner::Event {
                streams,
                sampler,
                calendar,
                horizon,
            } => {
                while let Some(&Reverse((cycle, t))) = calendar.peek() {
                    if cycle > now {
                        break;
                    }
                    calendar.pop();
                    let rng = &mut streams[t];
                    fire(t, rng);
                    // The next gap starts counting from `now + 1`.
                    // Gaps landing past the horizon are dropped — the
                    // run cannot reach them.
                    if let Some(gap) = sampler.sample(rng) {
                        if let Some(next) = (now + 1).checked_add(gap) {
                            if next <= *horizon {
                                calendar.push(Reverse((next, t)));
                            }
                        }
                    }
                }
            }
            Inner::Scan {
                streams,
                sampler,
                countdown,
            } => {
                for (t, left) in countdown.iter_mut().enumerate() {
                    if *left == 0 {
                        let rng = &mut streams[t];
                        fire(t, rng);
                        *left = sampler.sample(rng).unwrap_or(NEVER);
                    } else if *left != NEVER {
                        *left -= 1;
                    }
                }
            }
            Inner::Shared {
                rng,
                packet_prob,
                tiles,
            } => {
                for t in 0..*tiles {
                    if rng.gen::<f64>() < *packet_prob {
                        fire(t, rng);
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::RngCore;

    #[test]
    fn tile_seeds_are_distinct_and_stable() {
        let root = 0x5eed_1234;
        let seeds: Vec<u64> = (0..1024).map(|t| tile_stream_seed(root, t)).collect();
        let unique: std::collections::HashSet<&u64> = seeds.iter().collect();
        assert_eq!(unique.len(), seeds.len(), "per-tile seeds collide");
        assert_eq!(
            seeds,
            (0..1024)
                .map(|t| tile_stream_seed(root, t))
                .collect::<Vec<u64>>()
        );
        assert_ne!(
            tile_stream_seed(root, 0),
            tile_stream_seed(root ^ 1, 0),
            "root seed must matter"
        );
    }

    #[test]
    fn gap_sampler_edge_cases() {
        let mut rng = SmallRng::seed_from_u64(3);
        let before = rng.clone();
        assert_eq!(geometric_gap(&mut rng, 0.0), None, "p = 0 never fires");
        assert_eq!(geometric_gap(&mut rng, -0.5), None);
        for p in [1.0, 2.0] {
            assert_eq!(
                geometric_gap(&mut rng, p),
                Some(0),
                "p >= 1 fires every cycle"
            );
        }
        assert_eq!(
            rng, before,
            "degenerate probabilities must not consume the stream"
        );
    }

    #[test]
    fn gap_zero_is_exactly_one_bernoulli_success() {
        // Inversion maps u < p to gap 0 — the same event as a single
        // per-cycle Bernoulli success on the same draw.
        for p in [0.001, 0.05, 0.5, 0.97] {
            let mut hits = 0u32;
            let mut zeros = 0u32;
            let mut a = SmallRng::seed_from_u64(11);
            let mut b = a.clone();
            for _ in 0..10_000 {
                if a.gen::<f64>() < p {
                    hits += 1;
                }
                if geometric_gap(&mut b, p) == Some(0) {
                    zeros += 1;
                }
            }
            assert_eq!(hits, zeros, "p {p}: same stream, same zero-gap count");
        }
    }

    #[test]
    fn tiny_probabilities_yield_huge_gaps_not_zero() {
        // Regression for the `(1.0 - p).ln()` precision trap: with p
        // below one ulp of 1.0, a naive formula degenerates to gap 0
        // for every draw (the tile would fire every cycle).
        let mut rng = SmallRng::seed_from_u64(5);
        for _ in 0..64 {
            let gap = geometric_gap(&mut rng, 1e-18).expect("p > 0");
            assert!(
                gap > 1_000_000,
                "gap {gap} is implausibly small for p = 1e-18"
            );
        }
    }

    #[test]
    fn event_and_scan_fire_schedules_agree() {
        for p in [0.0, 0.004, 0.07, 0.5, 1.0] {
            let (tiles, cycles) = (9usize, 400u64);
            let mut scan = Injector::new(InjectionPolicy::PerCycleScan, 99, tiles, p, cycles);
            let mut event = Injector::new(InjectionPolicy::EventDriven, 99, tiles, p, cycles);
            for now in 0..cycles {
                let mut a = Vec::new();
                let mut b = Vec::new();
                // Destination draws perturb the stream; mirror them.
                scan.fire_at(now, |t, rng| a.push((t, rng.next_u64())));
                event.fire_at(now, |t, rng| b.push((t, rng.next_u64())));
                assert_eq!(a, b, "p {p} cycle {now}: fire schedules diverge");
            }
        }
    }

    #[test]
    fn event_driven_fires_every_cycle_at_unit_probability() {
        let tiles = 4usize;
        let mut event = Injector::new(InjectionPolicy::EventDriven, 1, tiles, 1.0, 10);
        for now in 0..10 {
            let mut fired = Vec::new();
            event.fire_at(now, |t, _| fired.push(t));
            assert_eq!(fired, vec![0, 1, 2, 3], "cycle {now}");
        }
    }

    #[test]
    fn zero_rate_never_fires_under_any_policy() {
        for policy in [
            InjectionPolicy::EventDriven,
            InjectionPolicy::PerCycleScan,
            InjectionPolicy::SharedScan,
        ] {
            let mut injector = Injector::new(policy, 5, 8, 0.0, 100);
            for now in 0..100 {
                injector.fire_at(now, |t, _| panic!("{policy}: tile {t} fired at rate 0"));
            }
        }
    }

    #[test]
    fn mean_gap_tracks_the_geometric_mean() {
        // E[gap] = (1−p)/p; sanity that inversion lands on the right
        // distribution (the proptest suite compares against Bernoulli
        // failure runs in depth).
        let p = 0.02f64;
        let mut rng = SmallRng::seed_from_u64(21);
        let n = 20_000;
        let total: u64 = (0..n)
            .map(|_| geometric_gap(&mut rng, p).expect("p > 0"))
            .sum();
        let mean = total as f64 / f64::from(n);
        let expected = (1.0 - p) / p;
        assert!(
            (mean - expected).abs() / expected < 0.05,
            "mean {mean} vs expected {expected}"
        );
    }
}
