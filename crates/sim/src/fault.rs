//! Deterministic fault injection: serializable fault plans and the
//! precomputed per-epoch schedule both execution engines apply.
//!
//! A [`FaultPlan`] is a list of [`FaultEvent`]s — kill a link or a
//! router at a cycle — plus an [`InFlightPolicy`] deciding what happens
//! to traffic already in the network when a fault strikes. The plan
//! rides on [`crate::SimConfig`], so it folds into sweep-plan and
//! cell-cache fingerprints like every other configuration axis, and an
//! empty plan is the default that leaves every existing output
//! bit-identical.
//!
//! At simulation time the plan is compiled once into a
//! [`FaultSchedule`]: one epoch per distinct fault cycle, carrying the
//! cumulative dead-element masks, the routes recomputed over the
//! surviving subgraph (via [`shg_topology::routing::degraded_routes_with_components`],
//! with the base table's VC-class count so the virtual-channel
//! partition never moves), and the surviving-component map that gates
//! injection of unroutable packets. Both the object-model
//! [`crate::Network`] and the lane-major batched core replay the same
//! schedule, which keeps them bit-identical under faults.

use serde::Serialize;

use shg_topology::routing::{self, Routes};
use shg_topology::{Link, TileId, Topology};

/// What a single fault event kills.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub enum FaultKind {
    /// Kill the bidirectional link between two tiles (both directed
    /// channels stop accepting and advancing flits).
    Link(u32, u32),
    /// Kill a router: every incident channel dies and the tile stops
    /// injecting and ejecting.
    Router(u32),
}

impl FaultKind {
    /// Canonicalizes link endpoints (`a < b`) so duplicate detection and
    /// the wire form are order-independent.
    #[must_use]
    pub fn canonical(self) -> Self {
        match self {
            Self::Link(a, b) if a > b => Self::Link(b, a),
            other => other,
        }
    }
}

/// One scheduled fault.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub struct FaultEvent {
    /// The cycle at the top of which the fault strikes (before that
    /// cycle's injection phase).
    pub cycle: u64,
    /// What dies.
    pub kill: FaultKind,
}

/// What happens to flits already in the network when a fault strikes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize)]
pub enum InFlightPolicy {
    /// All in-flight traffic is discarded at the fault epoch (the
    /// pessimistic model: a fault invalidates the transient state of
    /// the whole fabric). Packets created in the measurement window
    /// count as dropped.
    #[default]
    Drop,
    /// Only flits buffered *in* a killed router are lost; everything
    /// else keeps flowing on the recomputed routes. Flits that arrive
    /// at a dead channel are sunk (with credits returned upstream so
    /// senders drain), and packets whose destination became unreachable
    /// are sunk at their next allocation.
    Drain,
}

/// A deterministic, serializable fault-injection plan.
///
/// # Examples
///
/// ```
/// use shg_sim::{FaultKind, FaultPlan, InFlightPolicy};
///
/// let plan = FaultPlan::parse("drain,2000:link:3-4,2500:router:9").unwrap();
/// assert_eq!(plan.policy, InFlightPolicy::Drain);
/// assert_eq!(plan.events.len(), 2);
/// assert_eq!(plan.events[0].kill, FaultKind::Link(3, 4));
/// assert_eq!(plan.to_string(), "drain,2000:link:3-4,2500:router:9");
/// assert!(FaultPlan::parse("x:link:0-1").is_err());
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Default, Serialize)]
pub struct FaultPlan {
    /// The fault events, sorted by cycle.
    pub events: Vec<FaultEvent>,
    /// What happens to in-flight traffic at each fault epoch.
    pub policy: InFlightPolicy,
}

impl FaultPlan {
    /// `true` if the plan schedules no faults (the default, whose
    /// simulation path is bit-identical to a fault-free build).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Parses the whitespace-free wire form carried by `--faults` flags
    /// and `faults=` request params: an optional leading `drop`/`drain`
    /// policy token followed by comma-separated `CYCLE:link:A-B` /
    /// `CYCLE:router:R` events. The empty string is the empty plan.
    ///
    /// # Errors
    ///
    /// Returns a description of the first malformed token. Range checks
    /// against a concrete topology happen in [`FaultPlan::validate`].
    pub fn parse(spec: &str) -> Result<Self, String> {
        let mut plan = Self::default();
        if spec.is_empty() {
            return Ok(plan);
        }
        let mut tokens = spec.split(',').peekable();
        match tokens.peek() {
            Some(&"drop") => {
                tokens.next();
            }
            Some(&"drain") => {
                plan.policy = InFlightPolicy::Drain;
                tokens.next();
            }
            _ => {}
        }
        for token in tokens {
            let usage =
                || format!("bad fault event '{token}' (expected CYCLE:link:A-B or CYCLE:router:R)");
            let mut parts = token.splitn(3, ':');
            let cycle_text = parts.next().ok_or_else(usage)?;
            let cycle: u64 = cycle_text.parse().map_err(|_| {
                format!("bad fault cycle '{cycle_text}' in '{token}' (expected an integer cycle)")
            })?;
            let kind = parts.next().ok_or_else(usage)?;
            let target = parts.next().ok_or_else(usage)?;
            let kill = match kind {
                "link" => {
                    let (a, b) = target.split_once('-').ok_or_else(usage)?;
                    let a: u32 = a.parse().map_err(|_| usage())?;
                    let b: u32 = b.parse().map_err(|_| usage())?;
                    if a == b {
                        return Err(format!(
                            "bad fault event '{token}': a link needs two distinct endpoints"
                        ));
                    }
                    FaultKind::Link(a, b).canonical()
                }
                "router" => FaultKind::Router(target.parse().map_err(|_| usage())?),
                _ => return Err(usage()),
            };
            plan.events.push(FaultEvent { cycle, kill });
        }
        plan.events.sort_by_key(|e| e.cycle);
        Ok(plan)
    }

    /// Checks the plan against a concrete topology: router and link ids
    /// in range, killed links actually present, and no element killed
    /// twice.
    ///
    /// # Errors
    ///
    /// Returns a description of the first invalid event.
    pub fn validate(&self, topology: &Topology) -> Result<(), String> {
        let n = topology.num_tiles();
        let mut seen = std::collections::BTreeSet::new();
        for event in &self.events {
            let kill = event.kill.canonical();
            match kill {
                FaultKind::Router(r) => {
                    if r as usize >= n {
                        return Err(format!(
                            "fault router {r} out of range (topology has {n} tiles)"
                        ));
                    }
                }
                FaultKind::Link(a, b) => {
                    if a as usize >= n || b as usize >= n {
                        return Err(format!(
                            "fault link {a}-{b} out of range (topology has {n} tiles)"
                        ));
                    }
                    if !topology.has_link(TileId::new(a), TileId::new(b)) {
                        return Err(format!("no link {a}-{b} in {topology}"));
                    }
                }
            }
            if !seen.insert(format!("{kill:?}")) {
                let what = match kill {
                    FaultKind::Link(a, b) => format!("link {a}-{b}"),
                    FaultKind::Router(r) => format!("router {r}"),
                };
                return Err(format!("duplicate kill of {what} in fault plan"));
            }
        }
        Ok(())
    }
}

impl std::fmt::Display for FaultPlan {
    /// The canonical wire form (round-trips through [`FaultPlan::parse`]).
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let mut sep = "";
        if self.policy == InFlightPolicy::Drain {
            f.write_str("drain")?;
            sep = ",";
        }
        for event in &self.events {
            match event.kill.canonical() {
                FaultKind::Link(a, b) => write!(f, "{sep}{}:link:{a}-{b}", event.cycle)?,
                FaultKind::Router(r) => write!(f, "{sep}{}:router:{r}", event.cycle)?,
            }
            sep = ",";
        }
        Ok(())
    }
}

/// One fault epoch: the state both engines switch to at cycle `at`.
#[derive(Debug)]
pub(crate) struct FaultEpoch {
    /// The cycle at whose top this epoch is applied.
    pub at: u64,
    /// Cumulative per-directed-channel dead mask.
    pub dead_channel: Vec<bool>,
    /// Routers that die at exactly this epoch (the cumulative dead-tile
    /// information lives in `component` as [`routing::NO_COMPONENT`]).
    pub newly_dead_routers: Vec<u32>,
    /// Routes over the surviving subgraph (original port numbering,
    /// same VC-class count as the base table).
    pub routes: Routes,
    /// Surviving-component id per tile
    /// ([`shg_topology::routing::NO_COMPONENT`] for dead routers);
    /// injection is gated on source and destination sharing one.
    pub component: Vec<u32>,
}

/// The compiled form of a [`FaultPlan`] for one topology: one epoch per
/// distinct fault cycle, in order.
#[derive(Debug)]
pub(crate) struct FaultSchedule {
    pub policy: InFlightPolicy,
    pub epochs: Vec<FaultEpoch>,
}

impl FaultSchedule {
    /// Compiles `plan` against `topology`, or `None` for the empty plan
    /// (the fault-free fast path). `num_vc_classes` is the base routing
    /// table's class count, which every degraded table inherits.
    ///
    /// # Panics
    ///
    /// Panics if the plan does not [`FaultPlan::validate`] against this
    /// topology — CLI layers validate before building.
    pub(crate) fn build(plan: &FaultPlan, topology: &Topology, num_vc_classes: u8) -> Option<Self> {
        if plan.is_empty() {
            return None;
        }
        plan.validate(topology)
            .unwrap_or_else(|e| panic!("invalid fault plan: {e}"));
        let n = topology.num_tiles();
        let mut dead_router = vec![false; n];
        let mut dead_channel = vec![false; topology.num_channels()];
        let mut epochs = Vec::new();
        let mut events = plan.events.iter().peekable();
        while let Some(first) = events.next() {
            let at = first.cycle;
            let mut group = vec![first];
            while let Some(&next) = events.peek() {
                if next.cycle != at {
                    break;
                }
                group.push(next);
                events.next();
            }
            let mut newly_dead_routers = Vec::new();
            let kill_channel = |c: usize, dead_channel: &mut Vec<bool>| {
                dead_channel[c] = true;
            };
            for event in group {
                match event.kill.canonical() {
                    FaultKind::Link(a, b) => {
                        let link = topology
                            .links()
                            .iter()
                            .position(|&l| l == Link::new(TileId::new(a), TileId::new(b)))
                            .expect("validated link exists");
                        kill_channel(link * 2, &mut dead_channel);
                        kill_channel(link * 2 + 1, &mut dead_channel);
                    }
                    FaultKind::Router(r) => {
                        let tile = TileId::new(r);
                        if !dead_router[r as usize] {
                            dead_router[r as usize] = true;
                            newly_dead_routers.push(r);
                        }
                        for &(_, link) in topology.neighbors(tile) {
                            kill_channel(link.index() * 2, &mut dead_channel);
                            kill_channel(link.index() * 2 + 1, &mut dead_channel);
                        }
                    }
                }
            }
            let alive_tile: Vec<bool> = dead_router.iter().map(|&d| !d).collect();
            let alive_channel: Vec<bool> = dead_channel.iter().map(|&d| !d).collect();
            let (routes, component) = routing::degraded_routes_with_components(
                topology,
                &alive_tile,
                &alive_channel,
                num_vc_classes,
            );
            epochs.push(FaultEpoch {
                at,
                dead_channel: dead_channel.clone(),
                newly_dead_routers,
                routes,
                component,
            });
        }
        Some(Self {
            policy: plan.policy,
            epochs,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use shg_topology::{generators, Grid};

    #[test]
    fn parse_round_trips_and_sorts() {
        let plan = FaultPlan::parse("300:router:5,100:link:7-2").expect("valid");
        assert_eq!(plan.policy, InFlightPolicy::Drop);
        assert_eq!(plan.events[0].cycle, 100);
        assert_eq!(plan.events[0].kill, FaultKind::Link(2, 7));
        assert_eq!(plan.to_string(), "100:link:2-7,300:router:5");
        assert_eq!(
            FaultPlan::parse(&plan.to_string()).expect("round trip"),
            plan
        );
    }

    #[test]
    fn parse_rejects_malformed_specs() {
        for bad in [
            "x:link:0-1",
            "100:link:0",
            "100:link:3-3",
            "100:bridge:0-1",
            "100:router:abc",
            "100",
        ] {
            assert!(FaultPlan::parse(bad).is_err(), "{bad} should not parse");
        }
    }

    #[test]
    fn empty_spec_is_the_empty_plan() {
        let plan = FaultPlan::parse("").expect("empty");
        assert!(plan.is_empty());
        assert_eq!(plan, FaultPlan::default());
        assert_eq!(plan.to_string(), "");
    }

    #[test]
    fn validate_checks_ranges_links_and_duplicates() {
        let mesh = generators::mesh(Grid::new(4, 4));
        let ok = FaultPlan::parse("10:link:0-1,20:router:5").expect("valid");
        ok.validate(&mesh).expect("in range");
        let out_of_range = FaultPlan::parse("10:router:99").expect("parses");
        assert!(out_of_range
            .validate(&mesh)
            .unwrap_err()
            .contains("out of range"));
        let missing = FaultPlan::parse("10:link:0-5").expect("parses");
        assert!(missing.validate(&mesh).unwrap_err().contains("no link"));
        let duplicate = FaultPlan::parse("10:link:0-1,20:link:1-0").expect("parses");
        assert!(duplicate.validate(&mesh).unwrap_err().contains("duplicate"));
    }

    #[test]
    fn schedule_accumulates_masks_per_epoch() {
        let mesh = generators::mesh(Grid::new(4, 4));
        let plan = FaultPlan::parse("100:link:0-1,100:link:0-4,200:router:5").expect("valid");
        let schedule = FaultSchedule::build(&plan, &mesh, 6).expect("non-empty");
        assert_eq!(schedule.epochs.len(), 2);
        let first = &schedule.epochs[0];
        assert_eq!(first.at, 100);
        assert_eq!(first.dead_channel.iter().filter(|&&d| d).count(), 4);
        assert!(first.newly_dead_routers.is_empty());
        // Tile 0 lost both its links: its own singleton component.
        assert_ne!(first.component[0], first.component[1]);
        let second = &schedule.epochs[1];
        assert_eq!(second.at, 200);
        assert_eq!(second.newly_dead_routers, vec![5]);
        assert!(second.dead_channel.iter().filter(|&&d| d).count() > 4);
        assert_eq!(second.routes.num_vc_classes(), 6);
        assert_eq!(second.component[5], shg_topology::routing::NO_COMPONENT);
    }

    #[test]
    fn empty_plan_compiles_to_no_schedule() {
        let mesh = generators::mesh(Grid::new(4, 4));
        assert!(FaultSchedule::build(&FaultPlan::default(), &mesh, 6).is_none());
    }
}
