//! Performance measurement: zero-load latency and saturation throughput.
//!
//! These are the two performance outputs of the paper's prediction
//! toolchain (Fig. 3): BookSim-style measurements driven by the
//! floorplan model's per-link latency estimates.

use serde::{Deserialize, Serialize};

use shg_topology::{routing::Routes, Topology};
use shg_units::Cycles;

use crate::config::SimConfig;
use crate::network::Network;
use crate::stats::SimOutcome;
use crate::traffic::TrafficPattern;

/// The performance estimate of a NoC: the two metrics of Fig. 6's
/// performance panel.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Performance {
    /// Zero-load latency in cycles (average over all tile pairs).
    pub zero_load_latency: f64,
    /// Saturation throughput as a fraction of injection capacity
    /// (flits per node per cycle; 1.0 = 100%).
    pub saturation_throughput: f64,
}

/// Analytic zero-load latency: the average, over all ordered tile pairs,
/// of the path's accumulated router and link delay plus the packet
/// serialization delay.
///
/// Matches the simulator's timing model: each hop costs the link's
/// floorplan latency plus the router pipeline overhead, and the tail flit
/// trails the head by `packet_len − 1` cycles.
///
/// # Examples
///
/// ```
/// use shg_sim::{zero_load_latency, SimConfig};
/// use shg_topology::{generators, routing, Grid};
/// use shg_units::Cycles;
///
/// let mesh = generators::mesh(Grid::new(4, 4));
/// let routes = routing::default_routes(&mesh).expect("routes");
/// let lats = vec![Cycles::one(); mesh.num_links()];
/// let zll = zero_load_latency(&mesh, &routes, &lats, &SimConfig::default());
/// assert!(zll > 0.0);
/// ```
#[must_use]
pub fn zero_load_latency(
    topology: &Topology,
    routes: &Routes,
    link_latencies: &[Cycles],
    config: &SimConfig,
) -> f64 {
    let mut total = 0.0f64;
    let mut pairs = 0u64;
    for src in topology.grid().tiles() {
        for dst in topology.grid().tiles() {
            if src == dst {
                continue;
            }
            let mut path_delay = 0u64;
            routes.for_each_hop(src, dst, |hop| {
                path_delay += link_latencies[hop.channel.link().index()].value()
                    + u64::from(config.router_overhead);
            });
            total += path_delay as f64 + (config.packet_len - 1) as f64;
            pairs += 1;
        }
    }
    if pairs == 0 {
        0.0
    } else {
        total / pairs as f64
    }
}

/// Measures zero-load latency by simulating at a very low injection rate.
/// Useful to cross-validate [`zero_load_latency`].
#[must_use]
pub fn measured_zero_load_latency(
    topology: &Topology,
    routes: &Routes,
    link_latencies: &[Cycles],
    config: &SimConfig,
    pattern: TrafficPattern,
) -> f64 {
    let mut network = Network::new(topology, routes, link_latencies, config.clone());
    network.run(0.005, pattern).avg_packet_latency
}

/// Options for the saturation-throughput search.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SaturationSearch {
    /// Accepted/offered slack for stability (e.g. 0.05 = 95%).
    pub slack: f64,
    /// A run also counts as saturated when its mean latency exceeds this
    /// multiple of the zero-load latency.
    pub latency_factor: f64,
    /// Binary-search resolution in flits/node/cycle.
    pub resolution: f64,
}

impl Default for SaturationSearch {
    fn default() -> Self {
        Self {
            slack: 0.05,
            latency_factor: 4.0,
            resolution: 0.01,
        }
    }
}

/// Finds the saturation throughput by binary search over the injection
/// rate: the highest rate (as a fraction of injection capacity) at which
/// the network still keeps up with the offered load.
#[must_use]
pub fn saturation_throughput(
    topology: &Topology,
    routes: &Routes,
    link_latencies: &[Cycles],
    config: &SimConfig,
    pattern: TrafficPattern,
    search: SaturationSearch,
) -> f64 {
    let zll = zero_load_latency(topology, routes, link_latencies, config);
    let stable_at = |rate: f64| -> bool {
        let mut network = Network::new(topology, routes, link_latencies, config.clone());
        let outcome = network.run(rate, pattern);
        outcome.keeps_up(search.slack) && outcome.avg_packet_latency <= zll * search.latency_factor
    };
    let mut lo = 0.0f64;
    let mut hi = 1.0f64;
    // The capacity itself might be sustainable (e.g. neighbor traffic).
    if stable_at(hi) {
        return hi;
    }
    while hi - lo > search.resolution {
        let mid = (lo + hi) / 2.0;
        if stable_at(mid) {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    lo
}

/// Convenience: full performance measurement (analytic zero-load latency
/// plus saturation search).
#[must_use]
pub fn measure_performance(
    topology: &Topology,
    routes: &Routes,
    link_latencies: &[Cycles],
    config: &SimConfig,
    pattern: TrafficPattern,
    search: SaturationSearch,
) -> Performance {
    Performance {
        zero_load_latency: zero_load_latency(topology, routes, link_latencies, config),
        saturation_throughput: saturation_throughput(
            topology,
            routes,
            link_latencies,
            config,
            pattern,
            search,
        ),
    }
}

/// Sweeps the injection rate and reports one [`SimOutcome`] per point —
/// the classic latency-vs-offered-load curve. A thin wrapper over the
/// sweep engine ([`crate::sweep::load_curve`]), so the points run in
/// parallel and carry the engine's per-point derived seeds.
#[must_use]
pub fn load_sweep(
    topology: &Topology,
    routes: &Routes,
    link_latencies: &[Cycles],
    config: &SimConfig,
    pattern: TrafficPattern,
    rates: &[f64],
) -> Vec<SimOutcome> {
    crate::sweep::load_curve(
        "load-sweep",
        topology,
        routes.clone(),
        link_latencies.to_vec(),
        config,
        pattern,
        rates,
    )
    .points
    .into_iter()
    .map(|p| p.outcome)
    .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use shg_topology::{generators, routing, Grid};

    fn unit_latencies(t: &Topology) -> Vec<Cycles> {
        vec![Cycles::one(); t.num_links()]
    }

    #[test]
    fn analytic_zll_matches_hand_computation_for_mesh() {
        // 2×2 mesh, unit links, overhead 1, packets of 2 flits:
        // per-hop cost 2; avg hops = (8×1 + 4×2)/12 = 4/3;
        // ZLL = 4/3·2 + 1 = 11/3.
        let mesh = generators::mesh(Grid::new(2, 2));
        let routes = routing::default_routes(&mesh).expect("routes");
        let config = SimConfig {
            router_overhead: 1,
            packet_len: 2,
            ..SimConfig::default()
        };
        let zll = zero_load_latency(&mesh, &routes, &unit_latencies(&mesh), &config);
        assert!((zll - 11.0 / 3.0).abs() < 1e-9, "zll {zll}");
    }

    #[test]
    fn measured_zll_close_to_analytic() {
        let mesh = generators::mesh(Grid::new(4, 4));
        let routes = routing::default_routes(&mesh).expect("routes");
        let lats = unit_latencies(&mesh);
        let config = SimConfig::fast_test();
        let analytic = zero_load_latency(&mesh, &routes, &lats, &config);
        let measured = measured_zero_load_latency(
            &mesh,
            &routes,
            &lats,
            &config,
            TrafficPattern::UniformRandom,
        );
        // Low-rate simulation includes minor queueing; allow 25% slack.
        assert!(
            (measured - analytic).abs() / analytic < 0.25,
            "analytic {analytic} vs measured {measured}"
        );
    }

    #[test]
    fn saturation_ordering_fb_above_mesh_above_ring() {
        let grid = Grid::new(4, 4);
        let config = SimConfig::fast_test();
        let search = SaturationSearch {
            resolution: 0.02,
            ..SaturationSearch::default()
        };
        let sat = |t: &Topology| {
            let routes = routing::default_routes(t).expect("routes");
            saturation_throughput(
                t,
                &routes,
                &unit_latencies(t),
                &config,
                TrafficPattern::UniformRandom,
                search,
            )
        };
        let ring = sat(&generators::ring(grid));
        let mesh = sat(&generators::mesh(grid));
        let fb = sat(&generators::flattened_butterfly(grid));
        assert!(fb > mesh && mesh > ring, "fb {fb} mesh {mesh} ring {ring}");
        assert!(ring > 0.0, "even a ring moves some traffic");
    }

    #[test]
    fn load_sweep_latency_is_monotonic_until_saturation() {
        let mesh = generators::mesh(Grid::new(4, 4));
        let routes = routing::default_routes(&mesh).expect("routes");
        let lats = unit_latencies(&mesh);
        let outcomes = load_sweep(
            &mesh,
            &routes,
            &lats,
            &SimConfig::fast_test(),
            TrafficPattern::UniformRandom,
            &[0.02, 0.1, 0.2],
        );
        assert!(outcomes[0].avg_packet_latency <= outcomes[1].avg_packet_latency + 1.0);
        assert!(outcomes[1].avg_packet_latency <= outcomes[2].avg_packet_latency + 1.0);
    }
}
