//! Cycle-accurate network-on-chip simulator.
//!
//! A from-scratch replacement for the BookSim2 simulator used by the
//! Sparse Hamming Graph paper (see `DESIGN.md`, substitution #1). It
//! models:
//!
//! * input-queued routers with virtual channels (default: 8 VCs × 32-flit
//!   buffers, matching the paper's evaluation),
//! * credit-based flow control,
//! * multi-cycle pipelined links whose latencies come from the floorplan
//!   model,
//! * separable round-robin VC and switch allocation, request-driven by
//!   default (only live requests are visited; the exhaustive port × VC
//!   scan survives as [`AllocPolicy::FullScan`]),
//! * deterministic table routing with VC classes (from
//!   [`shg_topology::routing`]),
//! * synthetic traffic patterns with per-tile RNG streams and
//!   event-driven (calendar) Bernoulli injection,
//! * warm-up / measurement / drain methodology with zero-load-latency and
//!   saturation-throughput extraction, as in BookSim.
//!
//! # Examples
//!
//! ```
//! use shg_sim::{measure_performance, SaturationSearch, SimConfig, TrafficPattern};
//! use shg_topology::{generators, routing, Grid};
//! use shg_units::Cycles;
//!
//! let mesh = generators::mesh(Grid::new(4, 4));
//! let routes = routing::default_routes(&mesh).expect("mesh routes");
//! let latencies = vec![Cycles::one(); mesh.num_links()];
//! let perf = measure_performance(
//!     &mesh,
//!     &routes,
//!     &latencies,
//!     &SimConfig::fast_test(),
//!     TrafficPattern::UniformRandom,
//!     SaturationSearch::default(),
//! );
//! assert!(perf.zero_load_latency > 0.0);
//! assert!(perf.saturation_throughput > 0.05);
//! ```

mod config;
mod core;
mod fault;
mod flit;
mod injection;
mod network;
mod router;
mod runner;
mod stats;
pub mod sweep;
mod traffic;

pub use config::SimConfig;
pub use fault::{FaultEvent, FaultKind, FaultPlan, InFlightPolicy};
pub use flit::Flit;
pub use injection::{geometric_gap, tile_stream_seed, InjectionPolicy, Injector};
pub use network::{Network, PhaseProfile, ScanPolicy};
pub use router::AllocPolicy;
pub use runner::{
    load_sweep, measure_performance, measured_zero_load_latency, saturation_throughput,
    zero_load_latency, Performance, SaturationSearch,
};
pub use stats::{percentile, FaultStats, SimOutcome};
pub use sweep::{
    CacheStats, CellCache, CellId, CoordOptions, CoordSummary, ExecBackend, ExecStats, Experiment,
    ShardResult, ShardSpec, SweepCase, SweepPlan, SweepPoint, SweepResult, SweepSpec, WorkerLink,
};
pub use traffic::TrafficPattern;
