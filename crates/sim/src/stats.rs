//! Simulation outcome records.

use serde::{JsonWriter, Serialize};

use crate::config::SimConfig;
use crate::flit::Flit;

/// Fault-related packet accounting of one run (measurement-window
/// scope, like every other outcome counter). All-zero for fault-free
/// runs, in which case it is omitted from the serialized outcome so
/// fault-free output stays byte-identical to builds that predate fault
/// injection.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize)]
pub struct FaultStats {
    /// Measured packets discarded by a fault epoch (in-flight traffic
    /// under the drop policy, dead-router buffers and unreachable
    /// packets under the drain policy).
    pub dropped_packets: u64,
    /// Injection attempts suppressed because no surviving route
    /// connected source and destination (the packet was never offered).
    pub unroutable_packets: u64,
}

impl FaultStats {
    /// `true` if no fault ever touched a measured packet.
    #[must_use]
    pub fn is_zero(&self) -> bool {
        *self == Self::default()
    }
}

/// The measured result of one simulation run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SimOutcome {
    /// Injected flits per node per cycle during the measurement window.
    pub offered_rate: f64,
    /// Ejected flits per node per cycle during the measurement window.
    pub accepted_rate: f64,
    /// Mean packet latency (creation to tail ejection), in cycles.
    pub avg_packet_latency: f64,
    /// Median (p50) packet latency, in cycles.
    pub p50_packet_latency: f64,
    /// 99th-percentile packet latency, in cycles.
    pub p99_packet_latency: f64,
    /// Worst measured packet latency, in cycles.
    pub max_packet_latency: f64,
    /// Number of packets measured.
    pub measured_packets: u64,
    /// `true` if all measured packets drained within the drain limit.
    pub stable: bool,
    /// Total simulated cycles.
    pub cycles: u64,
    /// Dropped/unroutable packet accounting under fault injection
    /// (all-zero, and omitted from JSON, for fault-free runs).
    pub faults: FaultStats,
}

/// Hand-written so the `faults` block only appears when a fault touched
/// the run: every fault-free outcome — including every pre-existing
/// cache entry and journal line — keeps its exact historical byte
/// representation, which the sweep byte-identity gates rely on.
impl Serialize for SimOutcome {
    fn serialize(&self, w: &mut JsonWriter) {
        w.begin_object();
        w.field("offered_rate");
        self.offered_rate.serialize(w);
        w.field("accepted_rate");
        self.accepted_rate.serialize(w);
        w.field("avg_packet_latency");
        self.avg_packet_latency.serialize(w);
        w.field("p50_packet_latency");
        self.p50_packet_latency.serialize(w);
        w.field("p99_packet_latency");
        self.p99_packet_latency.serialize(w);
        w.field("max_packet_latency");
        self.max_packet_latency.serialize(w);
        w.field("measured_packets");
        self.measured_packets.serialize(w);
        w.field("stable");
        self.stable.serialize(w);
        w.field("cycles");
        self.cycles.serialize(w);
        if !self.faults.is_zero() {
            w.field("faults");
            self.faults.serialize(w);
        }
        w.end_object();
    }
}

/// Computes a percentile (0.0–1.0) of a latency sample by sorting a copy.
/// Returns 0.0 for an empty sample.
#[must_use]
pub fn percentile(samples: &[f64], p: f64) -> f64 {
    if samples.is_empty() {
        return 0.0;
    }
    let mut sorted = samples.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("latencies are finite"));
    let rank = ((sorted.len() as f64 - 1.0) * p.clamp(0.0, 1.0)).round() as usize;
    sorted[rank]
}

/// The per-run statistics accumulator shared by every execution engine
/// (`Network::run_inner` and the batched struct-of-arrays core): window
/// accounting, outstanding-packet tracking and the final
/// [`SimOutcome`] arithmetic live here exactly once, so two engines
/// cannot drift in how they *measure* even while they differ in how
/// they *simulate*.
#[derive(Debug)]
pub(crate) struct OutcomeRecorder {
    measure_start: u64,
    measure_end: u64,
    measure: u64,
    packet_len: u16,
    outstanding_measured: u64,
    latencies: Vec<f64>,
    ejected_in_window: u64,
    injected_in_window: u64,
    dropped_packets: u64,
    unroutable_packets: u64,
}

impl OutcomeRecorder {
    pub(crate) fn new(config: &SimConfig) -> Self {
        Self {
            measure_start: config.warmup,
            measure_end: config.warmup + config.measure,
            measure: config.measure,
            packet_len: config.packet_len,
            outstanding_measured: 0,
            latencies: Vec::new(),
            ejected_in_window: 0,
            injected_in_window: 0,
            dropped_packets: 0,
            unroutable_packets: 0,
        }
    }

    /// Accounts one injected packet created at cycle `now`.
    #[inline]
    pub(crate) fn record_injection(&mut self, now: u64) {
        if now >= self.measure_start && now < self.measure_end {
            self.outstanding_measured += 1;
            self.injected_in_window += u64::from(self.packet_len);
        }
    }

    /// Accounts one ejected flit at cycle `now` (latency is recorded on
    /// the tail flit of each packet created inside the window).
    #[inline]
    pub(crate) fn record_ejection(&mut self, flit: &Flit, now: u64) {
        if flit.is_tail {
            let measured = flit.created >= self.measure_start && flit.created < self.measure_end;
            if measured {
                self.latencies.push((now - flit.created) as f64);
                self.outstanding_measured -= 1;
            }
        }
        if now >= self.measure_start && now < self.measure_end {
            self.ejected_in_window += 1;
        }
    }

    /// Accounts one dropped packet (its tail flit was discarded by a
    /// fault). Called exactly once per packet, on the tail; packets
    /// created outside the window were never outstanding and only
    /// window packets are counted.
    #[inline]
    pub(crate) fn record_drop(&mut self, created: u64) {
        if created >= self.measure_start && created < self.measure_end {
            self.outstanding_measured -= 1;
            self.dropped_packets += 1;
        }
    }

    /// Accounts one injection attempt suppressed because no surviving
    /// route connects source and destination at cycle `now`.
    #[inline]
    pub(crate) fn record_unroutable(&mut self, now: u64) {
        if now >= self.measure_start && now < self.measure_end {
            self.unroutable_packets += 1;
        }
    }

    /// `true` once every measured packet has been ejected.
    #[inline]
    pub(crate) fn drained(&self) -> bool {
        self.outstanding_measured == 0
    }

    /// End of the measurement window (warmup + measure cycles).
    #[inline]
    pub(crate) fn measure_end(&self) -> u64 {
        self.measure_end
    }

    /// Folds the accumulated statistics into the final outcome.
    pub(crate) fn finalize(&self, now: u64, nodes: f64) -> SimOutcome {
        let stable = self.outstanding_measured == 0;
        let avg_latency = if self.latencies.is_empty() {
            0.0
        } else {
            self.latencies.iter().sum::<f64>() / self.latencies.len() as f64
        };
        let max_latency = self.latencies.iter().copied().fold(0.0f64, f64::max);
        SimOutcome {
            offered_rate: self.injected_in_window as f64 / (self.measure as f64 * nodes),
            accepted_rate: self.ejected_in_window as f64 / (self.measure as f64 * nodes),
            avg_packet_latency: avg_latency,
            p50_packet_latency: percentile(&self.latencies, 0.5),
            p99_packet_latency: percentile(&self.latencies, 0.99),
            max_packet_latency: max_latency,
            measured_packets: self.latencies.len() as u64,
            stable,
            cycles: now,
            faults: FaultStats {
                dropped_packets: self.dropped_packets,
                unroutable_packets: self.unroutable_packets,
            },
        }
    }
}

impl SimOutcome {
    /// `true` if the network kept up with the offered load: the run
    /// drained and accepted throughput tracks offered throughput within
    /// `slack` (e.g. `0.05` for 95%).
    ///
    /// # Examples
    ///
    /// ```
    /// use shg_sim::{FaultStats, SimOutcome};
    ///
    /// let outcome = SimOutcome {
    ///     offered_rate: 0.2,
    ///     accepted_rate: 0.199,
    ///     avg_packet_latency: 30.0,
    ///     p50_packet_latency: 28.0,
    ///     p99_packet_latency: 70.0,
    ///     max_packet_latency: 80.0,
    ///     measured_packets: 1000,
    ///     stable: true,
    ///     cycles: 20_000,
    ///     faults: FaultStats::default(),
    /// };
    /// assert!(outcome.keeps_up(0.05));
    /// ```
    #[must_use]
    pub fn keeps_up(&self, slack: f64) -> bool {
        self.stable && self.accepted_rate >= self.offered_rate * (1.0 - slack)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn outcome(stable: bool, offered: f64, accepted: f64) -> SimOutcome {
        SimOutcome {
            offered_rate: offered,
            accepted_rate: accepted,
            avg_packet_latency: 10.0,
            p50_packet_latency: 9.0,
            p99_packet_latency: 18.0,
            max_packet_latency: 20.0,
            measured_packets: 100,
            stable,
            cycles: 1000,
            faults: FaultStats::default(),
        }
    }

    #[test]
    fn fault_block_is_omitted_until_a_fault_touches_the_run() {
        let json = |o: &SimOutcome| {
            let mut w = JsonWriter::new();
            o.serialize(&mut w);
            w.finish()
        };
        let clean = outcome(true, 0.1, 0.1);
        assert!(!json(&clean).contains("faults"));
        let mut faulty = clean;
        faulty.faults.dropped_packets = 3;
        faulty.faults.unroutable_packets = 2;
        let text = json(&faulty);
        assert!(text.ends_with(r#""faults":{"dropped_packets":3,"unroutable_packets":2}}"#));
    }

    #[test]
    fn keeps_up_requires_stability() {
        assert!(!outcome(false, 0.1, 0.1).keeps_up(0.05));
    }

    #[test]
    fn keeps_up_requires_throughput() {
        assert!(!outcome(true, 0.2, 0.1).keeps_up(0.05));
        assert!(outcome(true, 0.2, 0.195).keeps_up(0.05));
    }

    #[test]
    fn percentile_of_sorted_sample() {
        let samples: Vec<f64> = (1..=100).map(f64::from).collect();
        assert_eq!(percentile(&samples, 0.0), 1.0);
        assert_eq!(percentile(&samples, 1.0), 100.0);
        assert!((percentile(&samples, 0.5) - 50.0).abs() <= 1.0);
        assert!((percentile(&samples, 0.99) - 99.0).abs() <= 1.0);
    }

    #[test]
    fn percentile_of_empty_sample_is_zero() {
        assert_eq!(percentile(&[], 0.5), 0.0);
    }

    #[test]
    fn percentile_is_order_independent() {
        let a = [5.0, 1.0, 3.0, 2.0, 4.0];
        let b = [1.0, 2.0, 3.0, 4.0, 5.0];
        assert_eq!(percentile(&a, 0.5), percentile(&b, 0.5));
        assert_eq!(percentile(&a, 0.5), 3.0);
    }
}
