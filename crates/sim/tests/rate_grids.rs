//! Regression for the per-pattern rate grids: hot-spot traffic on a
//! larger network saturates *below* the coarsest point of the linear
//! grids the wide sweeps use, so without a log-spaced low end the sweep
//! reports no stable rate at all (the ROADMAP's `-` table entries).

use shg_sim::sweep::log_spaced;
use shg_sim::{Experiment, SimConfig, SweepSpec, TrafficPattern};
use shg_topology::{generators, Grid};

const HOTSPOT: TrafficPattern = TrafficPattern::Hotspot(20);

/// The hot tile's ejection port carries `rate · N · (20% + 80%/(N−1))`
/// flits per cycle; on an 8×8 grid it saturates near rate 0.07 — far
/// below a coarse linear grid's lowest point.
#[test]
fn hotspot_saturates_below_coarse_grid_and_log_low_end_recovers_it() {
    let mesh = generators::mesh(Grid::new(8, 8));
    let coarse = SweepSpec::new(SimConfig::fast_test())
        .rates([0.25, 1.0])
        .patterns([HOTSPOT]);
    let fixed = coarse.clone().hotspot_low_rates(3, 0.02);

    let run = |spec: SweepSpec| {
        Experiment::new(spec)
            .with_unit_latency_case("mesh", &mesh)
            .expect("mesh routes")
            .run_parallel()
    };

    let before = run(coarse);
    assert_eq!(
        before.saturation_estimate("mesh", HOTSPOT, 0.05),
        None,
        "regression precondition lost: the coarse grid should saturate \
         everywhere (otherwise this test no longer exercises the fix)"
    );

    let after = run(fixed);
    let sat = after
        .saturation_estimate("mesh", HOTSPOT, 0.05)
        .expect("the log-spaced low end must contain stable rates");
    assert!(
        (0.02..0.25).contains(&sat),
        "saturation estimate {sat} should come from the low end"
    );
}

/// The low end really is log-spaced: equal ratios, not equal steps.
#[test]
fn hotspot_low_end_is_geometric() {
    let spec = SweepSpec::new(SimConfig::fast_test())
        .linear_rates(5, 1.0)
        .all_patterns()
        .hotspot_low_rates(4, 0.01);
    let rates = spec.rates_of(HOTSPOT);
    let expected = log_spaced(4, 0.01, 0.2);
    assert_eq!(&rates[..4], expected.as_slice());
    assert_eq!(&rates[4..], spec.rates.as_slice());
}
