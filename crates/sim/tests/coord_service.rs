//! Correctness suite for sweep-as-a-service: a loopback coordinator
//! driving a 3-worker fleet over TCP must reproduce the single-shot
//! bytes exactly — through chunk dispatch, work stealing, a worker
//! dying mid-chunk, a shared on-disk cell cache hammered by all four
//! processes' worth of threads at once, and warm duplicate requests
//! answered without simulating anything.

use std::io::Write;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::{Path, PathBuf};

use shg_sim::sweep::{
    connect_with_backoff, run_coordinated, run_journaled, serve_worker, CoordError, CoordOptions,
    WorkerLink,
};
use shg_sim::{CellCache, Experiment, ShardSpec, SimConfig, SweepSpec, TrafficPattern};
use shg_topology::{generators, Grid, Topology};

/// A scratch directory unique to this test process and name; removed
/// on drop.
struct ScratchDir(PathBuf);

impl ScratchDir {
    fn new(name: &str) -> Self {
        let path =
            std::env::temp_dir().join(format!("shg_coord_service_{}_{name}", std::process::id()));
        let _ = std::fs::remove_dir_all(&path);
        std::fs::create_dir_all(&path).expect("scratch dir");
        Self(path)
    }
}

impl Drop for ScratchDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

/// Builds the experiment both sides of the wire must derive from the
/// same opaque params — the only supported key is `rates`, a
/// comma-separated list forwarded as the user typed it.
fn build_experiment<'a>(
    params: &[(String, String)],
    mesh: &'a Topology,
    torus: &'a Topology,
    cache_dir: Option<&Path>,
) -> Result<Experiment<'a>, String> {
    let mut rates = vec![0.02, 0.1];
    for (key, value) in params {
        match key.as_str() {
            "rates" => {
                rates = value
                    .split(',')
                    .map(|s| {
                        s.trim()
                            .parse::<f64>()
                            .map_err(|e| format!("rate '{s}': {e}"))
                    })
                    .collect::<Result<Vec<f64>, String>>()?;
            }
            other => return Err(format!("unknown param '{other}'")),
        }
    }
    let spec = SweepSpec::new(SimConfig::fast_test())
        .rates(rates)
        .patterns([TrafficPattern::UniformRandom, TrafficPattern::Hotspot(20)]);
    let mut experiment = Experiment::new(spec)
        .with_unit_latency_case("mesh", mesh)
        .map_err(|e| format!("mesh routes: {e:?}"))?
        .with_unit_latency_case("torus", torus)
        .map_err(|e| format!("torus routes: {e:?}"))?;
    if let Some(dir) = cache_dir {
        experiment.set_cache(CellCache::open(dir).map_err(|e| format!("cache: {e}"))?);
    }
    Ok(experiment)
}

/// Spawns a protocol-speaking worker thread that connects to `addr`
/// and serves until shutdown or EOF.
fn spawn_worker(addr: SocketAddr, cache_dir: Option<PathBuf>) -> std::thread::JoinHandle<()> {
    std::thread::spawn(move || {
        let stream = TcpStream::connect(addr).expect("worker connects");
        let mut reader = stream.try_clone().expect("stream clones");
        let mut writer = stream;
        let mesh = generators::mesh(Grid::new(4, 4));
        let torus = generators::torus(Grid::new(4, 4));
        serve_worker(&mut reader, &mut writer, |params| {
            build_experiment(params, &mesh, &torus, cache_dir.as_deref())
        })
        .expect("worker serve loop");
    })
}

/// Accepts `count` worker connections as [`WorkerLink`]s.
fn accept_workers(listener: &TcpListener, count: usize) -> Vec<WorkerLink> {
    (0..count)
        .map(|i| {
            let (stream, _) = listener.accept().expect("worker connection");
            WorkerLink::from_tcp(format!("worker-{i}"), stream).expect("stream clones")
        })
        .collect()
}

fn shutdown_fleet(mut links: Vec<WorkerLink>, handles: Vec<std::thread::JoinHandle<()>>) {
    for link in &mut links {
        link.shutdown();
    }
    drop(links);
    for handle in handles {
        handle.join().expect("worker thread");
    }
}

#[test]
fn coordinated_fleet_matches_single_shot_bytes_and_journal() {
    let mesh = generators::mesh(Grid::new(4, 4));
    let torus = generators::torus(Grid::new(4, 4));
    let scratch = ScratchDir::new("fleet_bytes");
    let params = vec![("rates".to_owned(), "0.02,0.05,0.08".to_owned())];

    let experiment = build_experiment(&params, &mesh, &torus, None).expect("builds");
    let reference = experiment.run_parallel().to_json();
    let reference_journal = scratch.0.join("reference.jsonl");
    let _ = run_journaled(
        &experiment,
        ShardSpec::SOLO,
        &reference_journal,
        false,
        |_, _| {},
    )
    .expect("reference journal run");

    let listener = TcpListener::bind("127.0.0.1:0").expect("listener");
    let addr = listener.local_addr().expect("addr");
    let handles: Vec<_> = (0..3).map(|_| spawn_worker(addr, None)).collect();
    let mut links = accept_workers(&listener, 3);

    // chunk_size 1 forces 12 chunks over 3 workers, so the tail is
    // stolen in practice; correctness must not depend on it.
    let options = CoordOptions {
        chunk_size: Some(1),
        durable: false,
    };
    let coord_journal = scratch.0.join("coordinated.jsonl");
    let (result, summary) = run_coordinated(
        &experiment,
        1,
        &params,
        &mut links,
        Some(&coord_journal),
        &options,
        |_| {},
    )
    .expect("coordinated run");

    assert_eq!(result.to_json(), reference, "fleet bytes differ");
    assert_eq!(
        std::fs::read(&coord_journal).expect("coordinated journal"),
        std::fs::read(&reference_journal).expect("reference journal"),
        "streamed journal differs from the solo journal"
    );
    assert_eq!(
        (summary.cells, summary.cached, summary.dispatched),
        (12, 0, 12)
    );
    assert_eq!(summary.chunks, 12);
    assert_eq!(summary.lost_workers, 0);
    assert_eq!(links.len(), 3, "all workers survive");

    // The fleet stays attached: a second request over the same links.
    let (again, _) = run_coordinated(&experiment, 2, &params, &mut links, None, &options, |_| {})
        .expect("second request");
    assert_eq!(again.to_json(), reference);
    shutdown_fleet(links, handles);
}

#[test]
fn shared_cache_contention_and_warm_duplicate_requests() {
    // Satellite of the tmp-collision bugfix: a coordinator and three
    // workers all pointed at ONE cache directory, overlapping grids,
    // stores racing from every side. No lost cells, no corrupt
    // entries, no stray tmp files — and a duplicate request must be
    // answered entirely from the shared cache without a single cell
    // dispatched.
    let mesh = generators::mesh(Grid::new(4, 4));
    let torus = generators::torus(Grid::new(4, 4));
    let scratch = ScratchDir::new("shared_cache");
    let cache_dir = scratch.0.join("cells");

    let listener = TcpListener::bind("127.0.0.1:0").expect("listener");
    let addr = listener.local_addr().expect("addr");
    let handles: Vec<_> = (0..3)
        .map(|_| spawn_worker(addr, Some(cache_dir.clone())))
        .collect();
    let mut links = accept_workers(&listener, 3);
    let options = CoordOptions {
        chunk_size: Some(1),
        durable: false,
    };

    // Request 1: the narrow grid, fully cold.
    let narrow = vec![("rates".to_owned(), "0.02,0.05".to_owned())];
    let narrow_exp = build_experiment(&narrow, &mesh, &torus, Some(&cache_dir)).expect("builds");
    let (narrow_result, narrow_summary) =
        run_coordinated(&narrow_exp, 1, &narrow, &mut links, None, &options, |_| {})
            .expect("narrow request");
    assert_eq!((narrow_summary.cached, narrow_summary.dispatched), (0, 8));
    assert_eq!(
        narrow_result.to_json(),
        build_experiment(&narrow, &mesh, &torus, None)
            .expect("builds")
            .run_parallel()
            .to_json()
    );

    // Request 2: a widened, overlapping grid — the overlap is served
    // from the shared cache, only the delta is dispatched.
    let wide = vec![("rates".to_owned(), "0.02,0.05,0.08".to_owned())];
    let wide_exp = build_experiment(&wide, &mesh, &torus, Some(&cache_dir)).expect("builds");
    let (wide_result, wide_summary) =
        run_coordinated(&wide_exp, 2, &wide, &mut links, None, &options, |_| {})
            .expect("wide request");
    assert_eq!((wide_summary.cached, wide_summary.dispatched), (8, 4));
    let wide_reference = build_experiment(&wide, &mesh, &torus, None)
        .expect("builds")
        .run_parallel()
        .to_json();
    assert_eq!(wide_result.to_json(), wide_reference);

    // Request 3: an exact duplicate — answered warm, the fleet never
    // hears about it.
    let warm_exp = build_experiment(&wide, &mesh, &torus, Some(&cache_dir)).expect("builds");
    let (warm_result, warm_summary) =
        run_coordinated(&warm_exp, 3, &wide, &mut links, None, &options, |_| {})
            .expect("warm request");
    assert_eq!(warm_result.to_json(), wide_reference);
    assert_eq!((warm_summary.cached, warm_summary.dispatched), (12, 0));
    let stats = warm_exp.cache().expect("cache").stats();
    assert_eq!(
        (stats.cached, stats.simulated),
        (12, 0),
        "simulated != 0 on a warm duplicate"
    );

    // The racing stores left the directory clean: every entry loads,
    // nothing torn, no tmp files.
    let names: Vec<String> = std::fs::read_dir(&cache_dir)
        .expect("cache dir lists")
        .map(|e| e.expect("entry").file_name().to_string_lossy().into_owned())
        .collect();
    assert!(
        names.iter().all(|n| !n.contains(".tmp.")),
        "stray tmp files: {names:?}"
    );
    assert_eq!(names.len(), 12, "one entry per distinct cell");
    shutdown_fleet(links, handles);
}

/// A writer that serves `frames` whole protocol frames, then fails
/// every further write — a worker whose connection dies cleanly at a
/// frame boundary.
struct FailAfter<W: Write> {
    inner: W,
    frames_left: usize,
}

impl<W: Write> Write for FailAfter<W> {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        if self.frames_left == 0 {
            return Err(std::io::ErrorKind::BrokenPipe.into());
        }
        self.inner.write(buf)
    }

    fn flush(&mut self) -> std::io::Result<()> {
        if self.frames_left == 0 {
            return Err(std::io::ErrorKind::BrokenPipe.into());
        }
        self.inner.flush()?;
        self.frames_left -= 1;
        Ok(())
    }
}

/// Spawns a worker that answers its handshake plus `chunks` chunk
/// replies, then drops its connection mid-request.
fn spawn_flaky_worker(addr: SocketAddr, chunks: usize) -> std::thread::JoinHandle<()> {
    std::thread::spawn(move || {
        let stream = TcpStream::connect(addr).expect("worker connects");
        let mut reader = stream.try_clone().expect("stream clones");
        let mut writer = FailAfter {
            inner: stream,
            frames_left: 1 + chunks,
        };
        let mesh = generators::mesh(Grid::new(4, 4));
        let torus = generators::torus(Grid::new(4, 4));
        // The serve loop dies on the injected write error — expected.
        let _ = serve_worker(&mut reader, &mut writer, |params| {
            build_experiment(params, &mesh, &torus, None)
        });
    })
}

#[test]
fn dead_workers_chunks_are_requeued_and_finish_elsewhere() {
    let mesh = generators::mesh(Grid::new(4, 4));
    let torus = generators::torus(Grid::new(4, 4));
    let params = vec![("rates".to_owned(), "0.02,0.05,0.08".to_owned())];
    let experiment = build_experiment(&params, &mesh, &torus, None).expect("builds");
    let reference = experiment.run_parallel().to_json();

    let listener = TcpListener::bind("127.0.0.1:0").expect("listener");
    let addr = listener.local_addr().expect("addr");
    let mut handles = vec![spawn_flaky_worker(addr, 1)];
    handles.extend((0..2).map(|_| spawn_worker(addr, None)));
    let mut links = accept_workers(&listener, 3);

    let options = CoordOptions {
        chunk_size: Some(1),
        durable: false,
    };
    let (result, summary) =
        run_coordinated(&experiment, 1, &params, &mut links, None, &options, |_| {})
            .expect("run survives a dead worker");
    assert_eq!(result.to_json(), reference, "requeued cells drifted");
    assert_eq!(summary.lost_workers, 1);
    assert_eq!(links.len(), 2, "the dead worker is culled from the fleet");
    shutdown_fleet(links, handles);
}

#[test]
fn losing_every_worker_is_a_hard_error_not_a_hang() {
    let mesh = generators::mesh(Grid::new(4, 4));
    let torus = generators::torus(Grid::new(4, 4));
    let params = vec![("rates".to_owned(), "0.02,0.05,0.08".to_owned())];
    let experiment = build_experiment(&params, &mesh, &torus, None).expect("builds");

    let listener = TcpListener::bind("127.0.0.1:0").expect("listener");
    let addr = listener.local_addr().expect("addr");
    let handle = spawn_flaky_worker(addr, 1);
    let mut links = accept_workers(&listener, 1);

    let options = CoordOptions {
        chunk_size: Some(1),
        durable: false,
    };
    let error = run_coordinated(&experiment, 1, &params, &mut links, None, &options, |_| {})
        .expect_err("no fleet left");
    assert!(
        matches!(error, CoordError::AllWorkersLost { remaining_cells } if remaining_cells > 0),
        "unexpected error: {error}"
    );
    assert!(links.is_empty());
    handle.join().expect("worker thread");
}

/// Spawns a worker that dials with [`connect_with_backoff`] — it may
/// start before any coordinator is listening and must retry until one
/// appears.
fn spawn_patient_worker(addr: SocketAddr) -> std::thread::JoinHandle<()> {
    std::thread::spawn(move || {
        let stream = connect_with_backoff(&addr.to_string(), std::time::Duration::from_secs(30))
            .expect("worker outlasts the coordinator's late start");
        let mut reader = stream.try_clone().expect("stream clones");
        let mut writer = stream;
        let mesh = generators::mesh(Grid::new(4, 4));
        let torus = generators::torus(Grid::new(4, 4));
        serve_worker(&mut reader, &mut writer, |params| {
            build_experiment(params, &mesh, &torus, None)
        })
        .expect("worker serve loop");
    })
}

#[test]
fn workers_started_before_the_coordinator_retry_until_it_listens() {
    let mesh = generators::mesh(Grid::new(4, 4));
    let torus = generators::torus(Grid::new(4, 4));
    let params = vec![("rates".to_owned(), "0.02,0.05,0.08".to_owned())];
    let experiment = build_experiment(&params, &mesh, &torus, None).expect("builds");
    let reference = experiment.run_parallel().to_json();

    // Reserve a port, then close the listener again: the workers start
    // first, against an address nobody is listening on yet.
    let addr = {
        let probe = TcpListener::bind("127.0.0.1:0").expect("probe listener");
        probe.local_addr().expect("addr")
    };
    let handles: Vec<_> = (0..3).map(|_| spawn_patient_worker(addr)).collect();
    // Long enough that every worker's first dial has failed and the
    // fleet is deep in its backoff loop before the door opens.
    std::thread::sleep(std::time::Duration::from_millis(300));
    let listener = TcpListener::bind(addr).expect("late coordinator listener");
    let mut links = accept_workers(&listener, 3);

    let options = CoordOptions {
        chunk_size: Some(1),
        durable: false,
    };
    let (result, summary) =
        run_coordinated(&experiment, 1, &params, &mut links, None, &options, |_| {})
            .expect("coordinated run");
    assert_eq!(result.to_json(), reference, "late-start fleet drifted");
    assert_eq!(summary.lost_workers, 0);
    shutdown_fleet(links, handles);
}

#[test]
fn backoff_returns_the_last_error_once_patience_is_spent() {
    let addr = {
        let probe = TcpListener::bind("127.0.0.1:0").expect("probe listener");
        probe.local_addr().expect("addr")
    };
    let patience = std::time::Duration::from_millis(150);
    let start = std::time::Instant::now();
    let error = connect_with_backoff(&addr.to_string(), patience)
        .expect_err("nobody ever listens on the probe port");
    assert!(
        start.elapsed() >= patience,
        "gave up after {:?}, before the patience window closed",
        start.elapsed()
    );
    // The error is the real connect failure, not a synthetic timeout.
    assert_ne!(error.kind(), std::io::ErrorKind::TimedOut);
}

#[test]
fn a_worker_building_a_different_plan_aborts_the_request() {
    // A worker that interprets the params differently (here: ignores
    // them) computes a different plan fingerprint; the handshake must
    // refuse to mix its results in.
    let mesh = generators::mesh(Grid::new(4, 4));
    let torus = generators::torus(Grid::new(4, 4));
    let params = vec![("rates".to_owned(), "0.02,0.05,0.08".to_owned())];
    let experiment = build_experiment(&params, &mesh, &torus, None).expect("builds");

    let listener = TcpListener::bind("127.0.0.1:0").expect("listener");
    let addr = listener.local_addr().expect("addr");
    let handle = std::thread::spawn(move || {
        let stream = TcpStream::connect(addr).expect("worker connects");
        let mut reader = stream.try_clone().expect("stream clones");
        let mut writer = stream;
        let mesh = generators::mesh(Grid::new(4, 4));
        let torus = generators::torus(Grid::new(4, 4));
        let _ = serve_worker(&mut reader, &mut writer, |_params| {
            build_experiment(&[], &mesh, &torus, None)
        });
    });
    let mut links = accept_workers(&listener, 1);

    let error = run_coordinated(
        &experiment,
        1,
        &params,
        &mut links,
        None,
        &CoordOptions::default(),
        |_| {},
    )
    .expect_err("fingerprints disagree");
    assert!(
        matches!(error, CoordError::FingerprintMismatch { .. }),
        "unexpected error: {error}"
    );
    drop(links);
    handle.join().expect("worker thread");
}
