//! The injection-policy equivalence suite.
//!
//! Two different proof obligations:
//!
//! * **Bit-identity** — the event-driven calendar and the per-cycle
//!   scan consume the same per-tile streams, so every statistic must
//!   match exactly, under both scan policies, across patterns, rates
//!   and topologies (the injection analogue of the active-set/full-scan
//!   invariant).
//! * **Statistical equivalence** — the switch from the legacy shared
//!   stream to per-tile streams changes the sampled arrivals, so the
//!   old behaviour ([`InjectionPolicy::SharedScan`]) is compared on
//!   aggregate statistics: offered/accepted rates and mean latency must
//!   agree within tolerance for every traffic pattern.

use shg_sim::sweep::ALL_PATTERNS;
use shg_sim::{InjectionPolicy, Network, ScanPolicy, SimConfig, TrafficPattern};
use shg_topology::{generators, routing, Grid, Topology};
use shg_units::Cycles;

fn unit_latencies(t: &Topology) -> Vec<Cycles> {
    vec![Cycles::one(); t.num_links()]
}

fn config_with(injection: InjectionPolicy) -> SimConfig {
    SimConfig {
        injection,
        ..SimConfig::fast_test()
    }
}

#[test]
fn event_driven_matches_per_cycle_scan_bit_for_bit() {
    let grid = Grid::new(4, 4);
    let topologies = vec![
        generators::mesh(grid),
        generators::torus(grid),
        generators::flattened_butterfly(grid),
    ];
    for topology in &topologies {
        let routes = routing::default_routes(topology).expect("routes");
        let lats = unit_latencies(topology);
        for pattern in ALL_PATTERNS {
            for rate in [0.01, 0.1, 0.4] {
                for scan in [ScanPolicy::ActiveSet, ScanPolicy::FullScan] {
                    let event = Network::new(
                        topology,
                        &routes,
                        &lats,
                        config_with(InjectionPolicy::EventDriven),
                    )
                    .run_with_policy(rate, pattern, scan);
                    let scan_ref = Network::new(
                        topology,
                        &routes,
                        &lats,
                        config_with(InjectionPolicy::PerCycleScan),
                    )
                    .run_with_policy(rate, pattern, scan);
                    assert_eq!(
                        event, scan_ref,
                        "{topology} {pattern} rate {rate} {scan:?}: \
                         event-driven and per-cycle scan diverged"
                    );
                }
            }
        }
    }
}

#[test]
fn bit_identity_survives_multicycle_links_and_long_packets() {
    let mesh = generators::mesh(Grid::new(4, 4));
    let routes = routing::default_routes(&mesh).expect("routes");
    let lats = vec![Cycles::new(3); mesh.num_links()];
    for packet_len in [1u16, 8] {
        let config = |injection| SimConfig {
            packet_len,
            ..config_with(injection)
        };
        let event = Network::new(&mesh, &routes, &lats, config(InjectionPolicy::EventDriven))
            .run(0.15, TrafficPattern::UniformRandom);
        let scan = Network::new(&mesh, &routes, &lats, config(InjectionPolicy::PerCycleScan))
            .run(0.15, TrafficPattern::UniformRandom);
        assert_eq!(event, scan, "packet_len {packet_len}");
    }
}

/// `rate == 0` (no tile ever fires — the calendar stays empty) and
/// `packet_prob >= 1` (every tile fires every cycle — the calendar is
/// saturated) are the two degenerate schedules; both must still match
/// the per-cycle scan exactly.
#[test]
fn bit_identity_at_rate_edge_cases() {
    let mesh = generators::mesh(Grid::new(4, 4));
    let routes = routing::default_routes(&mesh).expect("routes");
    let lats = unit_latencies(&mesh);
    // packet_len 2 at rate 2.0 ⇒ packet_prob = 1.
    for rate in [0.0, 2.0] {
        let event = Network::new(
            &mesh,
            &routes,
            &lats,
            config_with(InjectionPolicy::EventDriven),
        )
        .run(rate, TrafficPattern::UniformRandom);
        let scan = Network::new(
            &mesh,
            &routes,
            &lats,
            config_with(InjectionPolicy::PerCycleScan),
        )
        .run(rate, TrafficPattern::UniformRandom);
        assert_eq!(event, scan, "rate {rate}");
        if rate == 0.0 {
            assert_eq!(event.measured_packets, 0, "rate 0 injects nothing");
            assert!(event.stable);
        } else {
            assert!(
                event.offered_rate > 1.0,
                "packet_prob >= 1 fires every tile every cycle: {event:?}"
            );
        }
    }
}

/// The per-tile streams really are distinct streams: runs with the same
/// seed reproduce, runs with different seeds differ.
#[test]
fn event_driven_is_deterministic_per_seed() {
    let mesh = generators::mesh(Grid::new(4, 4));
    let routes = routing::default_routes(&mesh).expect("routes");
    let lats = unit_latencies(&mesh);
    let a = Network::new(
        &mesh,
        &routes,
        &lats,
        config_with(InjectionPolicy::EventDriven),
    )
    .run(0.1, TrafficPattern::UniformRandom);
    let b = Network::new(
        &mesh,
        &routes,
        &lats,
        config_with(InjectionPolicy::EventDriven),
    )
    .run(0.1, TrafficPattern::UniformRandom);
    assert_eq!(a, b);
    let other_seed = SimConfig {
        seed: 777,
        ..config_with(InjectionPolicy::EventDriven)
    };
    let c = Network::new(&mesh, &routes, &lats, other_seed).run(0.1, TrafficPattern::UniformRandom);
    assert_ne!(
        a.measured_packets, c.measured_packets,
        "different seeds should sample different arrival processes"
    );
}

/// Statistical regression against the legacy shared stream: per-tile
/// streams change the exact arrivals but not the traffic process, so
/// rates and latencies must agree within sampling noise for all seven
/// patterns. Averaged over seeds to keep tolerances tight.
#[test]
fn event_driven_statistically_matches_legacy_shared_stream() {
    let mesh = generators::mesh(Grid::new(4, 4));
    let routes = routing::default_routes(&mesh).expect("routes");
    let lats = unit_latencies(&mesh);
    let seeds = [42u64, 7, 1234];
    let rate = 0.08;
    for pattern in ALL_PATTERNS {
        let mean = |injection: InjectionPolicy| {
            let mut offered = 0.0;
            let mut accepted = 0.0;
            let mut latency = 0.0;
            for &seed in &seeds {
                let config = SimConfig {
                    seed,
                    ..config_with(injection)
                };
                let out = Network::new(&mesh, &routes, &lats, config).run(rate, pattern);
                assert!(out.stable, "{pattern} {injection}: {out:?}");
                offered += out.offered_rate;
                accepted += out.accepted_rate;
                latency += out.avg_packet_latency;
            }
            let n = seeds.len() as f64;
            (offered / n, accepted / n, latency / n)
        };
        let (eo, ea, el) = mean(InjectionPolicy::EventDriven);
        let (so, sa, sl) = mean(InjectionPolicy::SharedScan);
        assert!(
            (eo - so).abs() < 0.01,
            "{pattern}: offered rates diverge (event {eo} vs shared {so})"
        );
        assert!(
            (ea - sa).abs() < 0.01,
            "{pattern}: accepted rates diverge (event {ea} vs shared {sa})"
        );
        assert!(
            (el - sl).abs() / sl < 0.15,
            "{pattern}: mean latency diverges (event {el} vs shared {sl})"
        );
    }
}
