//! Equivalence suite for the lane-parallel batched core
//! (`ExecBackend::Batched`): every lane of every batch shape must be
//! bit-identical to the per-cell reference — a fresh `Network` per
//! cell — across the full traffic pattern × injection × allocation
//! matrix, with mixed-rate lanes, saturated lanes exiting early, lane
//! refill from the group's remaining cells, and arbitrary cell
//! orderings (proptest).
//!
//! The deepest check pins every batched point against
//! `Network::run_validated`, which re-asserts the router's
//! cross-structure invariants every cycle on the reference side while
//! producing the outcome the batched lane must reproduce exactly.

use proptest::prelude::*;
use shg_sim::{
    AllocPolicy, CellCache, CellId, ExecBackend, Experiment, InjectionPolicy, Network, ScanPolicy,
    SimConfig, SweepSpec, TrafficPattern,
};
use shg_topology::{generators, routing, Grid, Topology};
use shg_units::Cycles;

const LANES: [usize; 4] = [1, 2, 4, 8];
const INJECTIONS: [InjectionPolicy; 3] = [
    InjectionPolicy::EventDriven,
    InjectionPolicy::PerCycleScan,
    InjectionPolicy::SharedScan,
];
const ALLOCS: [AllocPolicy; 2] = [AllocPolicy::RequestQueue, AllocPolicy::FullScan];

fn experiment<'a>(
    spec: SweepSpec,
    cases: &[(&str, &'a Topology)],
    backend: ExecBackend,
    lanes: usize,
) -> Experiment<'a> {
    let mut experiment = Experiment::new(spec)
        .with_backend(backend)
        .with_lanes(lanes);
    for &(name, topology) in cases {
        experiment = experiment
            .with_unit_latency_case(name, topology)
            .expect("routes build");
    }
    experiment
}

/// The headline matrix: for every injection × allocation policy pair
/// and every batch width K ∈ {1, 2, 4, 8}, a batched sweep over all
/// seven traffic patterns serializes byte-identically to the per-cell
/// reference.
#[test]
fn batched_matches_per_cell_across_policy_matrix() {
    let mesh = generators::mesh(Grid::new(4, 4));
    let cases = [("mesh", &mesh)];
    for injection in INJECTIONS {
        for alloc in ALLOCS {
            let spec = || {
                SweepSpec::new(SimConfig {
                    injection,
                    alloc,
                    ..SimConfig::fast_test()
                })
                .rates([0.05, 0.3])
                .all_patterns()
                .hotspot_low_rates(2, 0.01)
            };
            let reference = experiment(spec(), &cases, ExecBackend::PerCell, 1)
                .run_parallel()
                .to_json();
            for lanes in LANES {
                let batched = experiment(spec(), &cases, ExecBackend::Batched, lanes)
                    .run_parallel()
                    .to_json();
                assert_eq!(
                    reference, batched,
                    "{injection}/{alloc}: K={lanes} batch changed the sweep bytes"
                );
            }
        }
    }
}

/// Every batched point must reproduce `Network::run_validated` — the
/// reference engine with its cross-structure invariants asserted every
/// cycle — under both scan policies, on a high-radix topology too.
#[test]
fn batched_lanes_match_validated_reference() {
    let grid = Grid::new(4, 4);
    let mesh = generators::mesh(grid);
    let fb = generators::flattened_butterfly(grid);
    for (name, topology) in [("mesh", &mesh), ("fb", &fb)] {
        let spec = SweepSpec::new(SimConfig::fast_test())
            .rates([0.05, 0.3])
            .patterns([TrafficPattern::UniformRandom, TrafficPattern::Hotspot(20)]);
        let base = spec.config.clone();
        let result = experiment(spec, &[(name, topology)], ExecBackend::Batched, 4).run_parallel();
        let routes = routing::default_routes(topology).expect("routes");
        let latencies = vec![Cycles::one(); topology.num_links()];
        for point in &result.points {
            for scan in [ScanPolicy::ActiveSet, ScanPolicy::FullScan] {
                let config = SimConfig {
                    seed: point.seed,
                    ..base.clone()
                };
                let reference = Network::new(topology, &routes, &latencies, config).run_validated(
                    point.rate,
                    point.pattern,
                    scan,
                );
                assert_eq!(
                    reference, point.outcome,
                    "{name}/{scan:?}: batched lane diverged from the validated \
                     reference at rate {} {:?}",
                    point.rate, point.pattern
                );
            }
        }
    }
}

/// Mixed-rate lanes: a saturated cell (rate 0.9 on a ring hits the
/// drain limit with the network full) batches alongside near-idle
/// cells. The short lanes must exit early and refill without
/// disturbing the saturated sibling, and vice versa.
#[test]
fn saturated_and_idle_lanes_coexist_and_refill() {
    let ring = generators::ring(Grid::new(4, 4));
    let cases = [("ring", &ring)];
    let spec = || {
        SweepSpec::new(SimConfig::fast_test())
            .rates([0.02, 0.1, 0.9])
            .patterns([TrafficPattern::UniformRandom, TrafficPattern::Transpose])
    };
    let reference = experiment(spec(), &cases, ExecBackend::PerCell, 1).run_parallel();
    assert!(
        reference.points.iter().any(|p| !p.outcome.stable),
        "rate 0.9 on a ring must saturate for this test to bite"
    );
    assert!(
        reference.points.iter().any(|p| p.outcome.stable),
        "low rates must stay stable for this test to bite"
    );
    for lanes in [2, 4] {
        let batched = experiment(spec(), &cases, ExecBackend::Batched, lanes).run_parallel();
        assert_eq!(
            reference.to_json(),
            batched.to_json(),
            "K={lanes}: mixed stable/saturated lanes changed the sweep bytes"
        );
    }
}

/// Lane refill: far more cells than lanes, so every lane cycles
/// through several cells of the group (each refill resets exactly the
/// state the finished cell touched).
#[test]
fn lanes_refill_through_long_groups() {
    let torus = generators::torus(Grid::new(4, 4));
    let cases = [("torus", &torus)];
    let spec = || {
        SweepSpec::new(SimConfig::fast_test())
            .rates([0.02, 0.05, 0.1, 0.2, 0.3, 0.4])
            .patterns([TrafficPattern::UniformRandom, TrafficPattern::Reverse])
    };
    let reference = experiment(spec(), &cases, ExecBackend::PerCell, 1)
        .run_parallel()
        .to_json();
    let batched = experiment(spec(), &cases, ExecBackend::Batched, 2)
        .run_parallel()
        .to_json();
    assert_eq!(reference, batched, "refilled lanes changed the sweep bytes");
}

/// The auto backend (per-group backend choice, timed probe) is just as
/// transparent as the backends it delegates to.
#[test]
fn auto_backend_serializes_identically_to_per_cell() {
    let grid = Grid::new(4, 4);
    let mesh = generators::mesh(grid);
    let fb = generators::flattened_butterfly(grid);
    let cases = [("mesh", &mesh), ("fb", &fb)];
    let spec = || {
        SweepSpec::new(SimConfig::fast_test())
            .rates([0.02, 0.1, 0.3])
            .patterns([TrafficPattern::UniformRandom, TrafficPattern::Hotspot(20)])
    };
    let reference = experiment(spec(), &cases, ExecBackend::PerCell, 1)
        .run_parallel()
        .to_json();
    let auto = experiment(spec(), &cases, ExecBackend::Auto, 8);
    assert_eq!(
        reference,
        auto.run_parallel().to_json(),
        "auto backend changed the sweep bytes"
    );
    assert_eq!(
        reference,
        auto.run_with_threads(1).to_json(),
        "auto backend is thread-count-dependent"
    );
}

/// Cached cells must not occupy lanes: with a fully warm cache the
/// batched backend simulates nothing at all, and a half-warm cache
/// batches exactly the misses — both byte-identical to the cold run.
#[test]
fn cached_cells_do_not_occupy_lanes() {
    let dir = std::env::temp_dir().join(format!("shg_batched_cache_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let mesh = generators::mesh(Grid::new(4, 4));
    let cases = [("mesh", &mesh)];
    let spec = || {
        SweepSpec::new(SimConfig::fast_test())
            .rates([0.02, 0.1])
            .patterns([TrafficPattern::UniformRandom, TrafficPattern::Transpose])
    };
    let cache = || CellCache::open(&dir).expect("cache dir opens");
    let cold = experiment(spec(), &cases, ExecBackend::Batched, 4).with_cache(cache());
    let cold_json = cold.run_parallel().to_json();
    assert_eq!(
        cold.exec_stats().batched_cells,
        4,
        "cold run batches all cells"
    );
    // Half-warm: drop two entries, re-run — only the misses batch.
    let mut entries: Vec<_> = std::fs::read_dir(&dir)
        .expect("cache dir lists")
        .map(|e| e.expect("dir entry").path())
        .collect();
    entries.sort();
    for entry in entries.iter().take(2) {
        std::fs::remove_file(entry).expect("entry removes");
    }
    let half = experiment(spec(), &cases, ExecBackend::Batched, 4).with_cache(cache());
    assert_eq!(half.run_parallel().to_json(), cold_json);
    assert_eq!(
        half.exec_stats().batched_cells,
        2,
        "only misses occupy lanes"
    );
    // Fully warm: nothing simulates, bytes unchanged.
    let warm = experiment(spec(), &cases, ExecBackend::Batched, 4).with_cache(cache());
    assert_eq!(warm.run_parallel().to_json(), cold_json);
    assert_eq!(
        warm.exec_stats().batched_cells,
        0,
        "warm run batches nothing"
    );
    assert_eq!(warm.exec_stats().lanes_in_flight, 0);
    let _ = std::fs::remove_dir_all(&dir);
}

/// SplitMix64 step for the deterministic shuffles below.
fn mix(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Fisher–Yates with a splitmix stream: deterministic per seed.
fn shuffle(cells: &mut [CellId], seed: u64) {
    let mut state = seed;
    for i in (1..cells.len()).rev() {
        let j = (mix(&mut state) % (i as u64 + 1)) as usize;
        cells.swap(i, j);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// Random groupings: an arbitrary ordering and truncation of the
    /// cell list — fragmenting same-case runs into groups of every
    /// size, interleaving cases — batched at an arbitrary width, must
    /// match the per-cell reference point for point.
    #[test]
    fn random_cell_orderings_match_per_cell(
        seed in 0u64..100_000,
        lanes_idx in 0..LANES.len(),
    ) {
        let grid = Grid::new(4, 4);
        let mesh = generators::mesh(grid);
        let torus = generators::torus(grid);
        let cases = [("mesh", &mesh), ("torus", &torus)];
        let spec = || {
            SweepSpec::new(SimConfig::fast_test())
                .rates([0.05, 0.3])
                .patterns([TrafficPattern::UniformRandom, TrafficPattern::Tornado])
        };
        let reference = experiment(spec(), &cases, ExecBackend::PerCell, 1);
        let batched = experiment(spec(), &cases, ExecBackend::Batched, LANES[lanes_idx]);
        let mut cells: Vec<CellId> = reference.plan().cells().collect();
        shuffle(&mut cells, seed);
        let mut keep_stream = seed ^ 0x5eed;
        let keep = 1 + (mix(&mut keep_stream) % cells.len() as u64) as usize;
        cells.truncate(keep);
        prop_assert_eq!(
            reference.run_cells(&cells),
            batched.run_cells(&cells),
            "K={} over {} shuffled cells diverged", LANES[lanes_idx], keep
        );
    }
}
