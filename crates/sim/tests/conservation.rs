//! Simulator conservation and robustness tests: flits are neither lost
//! nor duplicated, across traffic patterns, topologies and injection
//! policies.

use shg_sim::{AllocPolicy, InjectionPolicy, Network, SimConfig, TrafficPattern};
use shg_topology::{generators, routing, Grid};
use shg_units::Cycles;

fn unit_latencies(t: &shg_topology::Topology) -> Vec<Cycles> {
    vec![Cycles::one(); t.num_links()]
}

const ALL_INJECTION: [InjectionPolicy; 3] = [
    InjectionPolicy::EventDriven,
    InjectionPolicy::PerCycleScan,
    InjectionPolicy::SharedScan,
];

const ALL_ALLOC: [AllocPolicy; 2] = [AllocPolicy::RequestQueue, AllocPolicy::FullScan];

#[test]
fn offered_equals_accepted_at_low_load_for_all_patterns() {
    let mesh = generators::mesh(Grid::new(4, 4));
    let routes = routing::default_routes(&mesh).expect("routes");
    let lats = unit_latencies(&mesh);
    for pattern in [
        TrafficPattern::UniformRandom,
        TrafficPattern::Transpose,
        TrafficPattern::BitComplement,
        TrafficPattern::Reverse,
        TrafficPattern::Tornado,
        TrafficPattern::Neighbor,
        TrafficPattern::Hotspot(20),
    ] {
        // Conservation may not depend on how arrivals are scheduled
        // (event calendar, per-cycle reference, legacy shared stream)
        // or on how the allocator finds its requests (request queue,
        // exhaustive scan): every combination has to drain completely.
        for injection in ALL_INJECTION {
            for alloc in ALL_ALLOC {
                let config = SimConfig {
                    injection,
                    alloc,
                    ..SimConfig::fast_test()
                };
                let mut net = Network::new(&mesh, &routes, &lats, config);
                let out = net.run(0.03, pattern);
                assert!(out.stable, "{pattern} {injection} {alloc}: {out:?}");
                // All measured packets drained: offered ≈ accepted.
                // Patterns with silent tiles (transpose diagonal) offer
                // less, which is fine — the rates must still match each
                // other.
                assert!(
                    (out.accepted_rate - out.offered_rate).abs() < 0.02,
                    "{pattern} {injection} {alloc}: {out:?}"
                );
            }
        }
    }
}

#[test]
fn deterministic_across_patterns_and_seeds() {
    let torus = generators::torus(Grid::new(4, 4));
    let routes = routing::default_routes(&torus).expect("routes");
    let lats = unit_latencies(&torus);
    let mut config = SimConfig::fast_test();
    let a =
        Network::new(&torus, &routes, &lats, config.clone()).run(0.1, TrafficPattern::Transpose);
    let b =
        Network::new(&torus, &routes, &lats, config.clone()).run(0.1, TrafficPattern::Transpose);
    assert_eq!(a, b, "same seed ⇒ identical outcome");
    config.seed = 777;
    let c = Network::new(&torus, &routes, &lats, config).run(0.1, TrafficPattern::Transpose);
    assert_ne!(a.measured_packets, 0, "sanity: the run measured something");
    // Different seed gives a (very likely) different packet count but a
    // similar latency.
    assert!((c.avg_packet_latency - a.avg_packet_latency).abs() < a.avg_packet_latency);
}

#[test]
fn deep_buffers_do_not_reduce_throughput() {
    let mesh = generators::mesh(Grid::new(4, 4));
    let routes = routing::default_routes(&mesh).expect("routes");
    let lats = unit_latencies(&mesh);
    let shallow = SimConfig {
        buffer_depth: 2,
        ..SimConfig::fast_test()
    };
    let deep = SimConfig {
        buffer_depth: 32,
        ..SimConfig::fast_test()
    };
    let rate = 0.25;
    let s = Network::new(&mesh, &routes, &lats, shallow).run(rate, TrafficPattern::UniformRandom);
    let d = Network::new(&mesh, &routes, &lats, deep).run(rate, TrafficPattern::UniformRandom);
    assert!(
        d.accepted_rate >= s.accepted_rate - 0.02,
        "deep {d:?} vs shallow {s:?}"
    );
}

#[test]
fn single_flit_and_long_packets_both_work() {
    let mesh = generators::mesh(Grid::new(4, 4));
    let routes = routing::default_routes(&mesh).expect("routes");
    let lats = unit_latencies(&mesh);
    for packet_len in [1u16, 2, 8] {
        for injection in ALL_INJECTION {
            for alloc in ALL_ALLOC {
                let config = SimConfig {
                    packet_len,
                    injection,
                    alloc,
                    ..SimConfig::fast_test()
                };
                let out = Network::new(&mesh, &routes, &lats, config)
                    .run(0.05, TrafficPattern::UniformRandom);
                assert!(
                    out.stable,
                    "packet_len {packet_len} {injection} {alloc}: {out:?}"
                );
                // Longer packets add serialization latency.
                assert!(out.avg_packet_latency >= (packet_len - 1) as f64);
            }
        }
    }
}

#[test]
fn tornado_on_torus_uses_wraparound() {
    // Tornado traffic is the classic wrap-link stress test: it must still
    // drain on a torus with dateline VCs.
    let torus = generators::torus(Grid::new(4, 4));
    let routes = routing::default_routes(&torus).expect("routes");
    let lats = unit_latencies(&torus);
    let out = Network::new(&torus, &routes, &lats, SimConfig::fast_test())
        .run(0.2, TrafficPattern::Tornado);
    assert!(out.stable, "{out:?}");
}

#[test]
fn hotspot_saturates_earlier_than_uniform() {
    let mesh = generators::mesh(Grid::new(4, 4));
    let routes = routing::default_routes(&mesh).expect("routes");
    let lats = unit_latencies(&mesh);
    let rate = 0.3;
    let uniform = Network::new(&mesh, &routes, &lats, SimConfig::fast_test())
        .run(rate, TrafficPattern::UniformRandom);
    let hotspot = Network::new(&mesh, &routes, &lats, SimConfig::fast_test())
        .run(rate, TrafficPattern::Hotspot(60));
    // The hot-spot ejection port is the bottleneck: accepted throughput
    // degrades relative to uniform traffic at the same offered rate.
    assert!(
        hotspot.accepted_rate < uniform.accepted_rate,
        "hotspot {hotspot:?} vs uniform {uniform:?}"
    );
}
