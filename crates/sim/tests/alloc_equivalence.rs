//! Allocator equivalence and invariant suite: the request-driven
//! allocation path (`AllocPolicy::RequestQueue`) must be bit-identical
//! to the exhaustive port × VC scan (`AllocPolicy::FullScan`) — same
//! round-robin arbitration decisions, same statistics — across traffic
//! patterns, rates, injection policies, scan policies, packet lengths
//! and link latencies.
//!
//! Every run here goes through [`Network::run_validated`], which
//! asserts the router's cross-structure invariants after each cycle:
//!
//! * the occupancy counter matches the buffer contents,
//! * credits never exceed `buffer_depth`,
//! * `out_owner` reservations agree with the input-VC states (and the
//!   occupied-output-VC bitmask mirrors `out_owner`),
//! * the request bitmasks (`va_mask`, `sa_mask`, `sa_ports`) contain
//!   exactly the live requests — no stale and, crucially, no *lost*
//!   requests.

use proptest::prelude::*;

use shg_sim::sweep::ALL_PATTERNS;
use shg_sim::{AllocPolicy, InjectionPolicy, Network, ScanPolicy, SimConfig, TrafficPattern};
use shg_topology::{generators, routing, Grid, Topology};
use shg_units::Cycles;

fn unit_latencies(t: &Topology) -> Vec<Cycles> {
    vec![Cycles::one(); t.num_links()]
}

fn config_with(alloc: AllocPolicy, injection: InjectionPolicy) -> SimConfig {
    SimConfig {
        alloc,
        injection,
        ..SimConfig::fast_test()
    }
}

/// Runs one validated simulation under the given allocation policy.
fn run(
    topology: &Topology,
    lats: &[Cycles],
    alloc: AllocPolicy,
    injection: InjectionPolicy,
    scan: ScanPolicy,
    rate: f64,
    pattern: TrafficPattern,
) -> shg_sim::SimOutcome {
    let routes = routing::default_routes(topology).expect("routes");
    let mut net = Network::new(topology, &routes, lats, config_with(alloc, injection));
    net.run_validated(rate, pattern, scan)
}

/// The headline contract: across every pattern, a spread of rates and
/// every injection policy, the request queue and the full scan agree on
/// every statistic.
#[test]
fn request_queue_matches_full_scan_across_patterns_rates_and_injection() {
    let mesh = generators::mesh(Grid::new(4, 4));
    let lats = unit_latencies(&mesh);
    for pattern in ALL_PATTERNS {
        for rate in [0.01, 0.1, 0.4] {
            for injection in [
                InjectionPolicy::EventDriven,
                InjectionPolicy::PerCycleScan,
                InjectionPolicy::SharedScan,
            ] {
                let sparse = run(
                    &mesh,
                    &lats,
                    AllocPolicy::RequestQueue,
                    injection,
                    ScanPolicy::ActiveSet,
                    rate,
                    pattern,
                );
                let scan = run(
                    &mesh,
                    &lats,
                    AllocPolicy::FullScan,
                    injection,
                    ScanPolicy::ActiveSet,
                    rate,
                    pattern,
                );
                assert_eq!(sparse, scan, "{pattern} rate {rate} {injection}");
            }
        }
    }
}

/// The allocation policy composes with the scan policy: all four
/// combinations agree (the active set and the full router scan were
/// already equivalent; the request queue must not break that).
#[test]
fn alloc_and_scan_policies_compose() {
    let torus = generators::torus(Grid::new(4, 4));
    let lats = unit_latencies(&torus);
    let outcomes: Vec<_> = [
        (AllocPolicy::RequestQueue, ScanPolicy::ActiveSet),
        (AllocPolicy::RequestQueue, ScanPolicy::FullScan),
        (AllocPolicy::FullScan, ScanPolicy::ActiveSet),
        (AllocPolicy::FullScan, ScanPolicy::FullScan),
    ]
    .into_iter()
    .map(|(alloc, scan)| {
        run(
            &torus,
            &lats,
            alloc,
            InjectionPolicy::EventDriven,
            scan,
            0.15,
            TrafficPattern::UniformRandom,
        )
    })
    .collect();
    for outcome in &outcomes[1..] {
        assert_eq!(outcome, &outcomes[0]);
    }
}

/// High-radix routers are where the scan hurts most and where the
/// rotated-bitmask arbitration has the most room to diverge; pin the
/// flattened butterfly and SlimNoC explicitly.
#[test]
fn request_queue_matches_full_scan_on_high_radix_topologies() {
    let topologies = vec![
        generators::flattened_butterfly(Grid::new(4, 4)),
        generators::slim_noc(Grid::new(10, 5)).expect("50 tiles"),
    ];
    for topology in &topologies {
        let lats = unit_latencies(topology);
        for rate in [0.05, 0.3] {
            let sparse = run(
                topology,
                &lats,
                AllocPolicy::RequestQueue,
                InjectionPolicy::EventDriven,
                ScanPolicy::ActiveSet,
                rate,
                TrafficPattern::UniformRandom,
            );
            let scan = run(
                topology,
                &lats,
                AllocPolicy::FullScan,
                InjectionPolicy::EventDriven,
                ScanPolicy::ActiveSet,
                rate,
                TrafficPattern::UniformRandom,
            );
            assert_eq!(sparse, scan, "{topology} rate {rate}");
        }
    }
}

/// Multi-cycle links shift every arrival and credit-return cycle;
/// single-flit and long packets exercise the head==tail and
/// body-follows-head bookkeeping.
#[test]
fn request_queue_matches_full_scan_with_long_links_and_packet_lengths() {
    let mesh = generators::mesh(Grid::new(4, 4));
    let routes = routing::default_routes(&mesh).expect("routes");
    let lats = vec![Cycles::new(3); mesh.num_links()];
    for packet_len in [1u16, 2, 8] {
        let outcome = |alloc: AllocPolicy| {
            let config = SimConfig {
                packet_len,
                alloc,
                ..SimConfig::fast_test()
            };
            Network::new(&mesh, &routes, &lats, config).run_validated(
                0.1,
                TrafficPattern::UniformRandom,
                ScanPolicy::ActiveSet,
            )
        };
        assert_eq!(
            outcome(AllocPolicy::RequestQueue),
            outcome(AllocPolicy::FullScan),
            "packet_len {packet_len}"
        );
    }
}

/// Saturation keeps every request structure full (zero-credit stalls,
/// VA starvation, back-pressure) — the regime where a stale or lost
/// request bit would surface. `run_validated` checks the invariants
/// each cycle along the way.
#[test]
fn invariants_hold_under_saturation() {
    let ring = generators::ring(Grid::new(4, 4));
    let lats = unit_latencies(&ring);
    for alloc in [AllocPolicy::RequestQueue, AllocPolicy::FullScan] {
        let out = run(
            &ring,
            &lats,
            alloc,
            InjectionPolicy::EventDriven,
            ScanPolicy::ActiveSet,
            0.8,
            TrafficPattern::UniformRandom,
        );
        // The run is overloaded by design; the point is that the
        // validated invariants held through congestion.
        assert!(out.cycles > 0, "{alloc}: ran to completion");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Randomized sweep of the equivalence: topology, pattern, rate,
    /// injection policy and buffer depth are all drawn; the two
    /// allocation policies must agree bit-for-bit and keep every
    /// invariant (validated per cycle on both runs).
    #[test]
    fn request_queue_and_full_scan_agree_on_random_configurations(
        topology_idx in 0usize..4,
        pattern_idx in 0usize..ALL_PATTERNS.len(),
        rate in 0.005f64..0.5,
        injection_idx in 0usize..3,
        buffer_depth in 2u16..10,
    ) {
        let grid = Grid::new(4, 4);
        let topology = match topology_idx {
            0 => generators::mesh(grid),
            1 => generators::torus(grid),
            2 => generators::ring(grid),
            _ => generators::flattened_butterfly(grid),
        };
        let injection = [
            InjectionPolicy::EventDriven,
            InjectionPolicy::PerCycleScan,
            InjectionPolicy::SharedScan,
        ][injection_idx];
        let pattern = ALL_PATTERNS[pattern_idx];
        let routes = routing::default_routes(&topology).expect("routes");
        let lats = unit_latencies(&topology);
        let outcome = |alloc: AllocPolicy| {
            let config = SimConfig {
                buffer_depth,
                alloc,
                injection,
                ..SimConfig::fast_test()
            };
            Network::new(&topology, &routes, &lats, config).run_validated(
                rate,
                pattern,
                ScanPolicy::ActiveSet,
            )
        };
        prop_assert_eq!(
            outcome(AllocPolicy::RequestQueue),
            outcome(AllocPolicy::FullScan),
            "{} {} rate {} {} depth {}",
            topology,
            pattern,
            rate,
            injection,
            buffer_depth
        );
    }
}
