//! Equivalence suite for `Network::reset` and the `ExecBackend::Reuse`
//! execution backend: a reset-reused network must be bit-identical to
//! fresh construction for every cell, across all scan × injection ×
//! allocation policy combinations — including after *unstable* cells
//! that leave maximal residual state (occupied buffers, in-flight
//! flits and credits, rotated arbiters) for the reset to clean.
//!
//! The validated runs go through `Network::run_validated`, which
//! asserts the router's cross-structure invariants every cycle — stale
//! request or active-set state surviving a reset trips an assertion
//! long before it could skew a statistic.

use shg_sim::{
    AllocPolicy, ExecBackend, Experiment, InjectionPolicy, Network, ScanPolicy, SimConfig,
    SweepSpec, TrafficPattern,
};
use shg_topology::{generators, routing, Grid, Topology};
use shg_units::Cycles;

const SCANS: [ScanPolicy; 2] = [ScanPolicy::ActiveSet, ScanPolicy::FullScan];
const INJECTIONS: [InjectionPolicy; 3] = [
    InjectionPolicy::EventDriven,
    InjectionPolicy::PerCycleScan,
    InjectionPolicy::SharedScan,
];
const ALLOCS: [AllocPolicy; 2] = [AllocPolicy::RequestQueue, AllocPolicy::FullScan];

fn unit_latencies(t: &Topology) -> Vec<Cycles> {
    vec![Cycles::one(); t.num_links()]
}

/// A cell sequence that exercises the reset from every kind of residue:
/// low load (sparse touched set), saturation (buffers, pipes and
/// arbiters all dirty at the hard stop), then low load again (the run
/// that would expose any leftover state).
fn cell_sequence() -> Vec<(f64, TrafficPattern, u64)> {
    vec![
        (0.05, TrafficPattern::UniformRandom, 11),
        (0.9, TrafficPattern::Transpose, 12),
        (0.02, TrafficPattern::Hotspot(30), 13),
        (0.1, TrafficPattern::Tornado, 14),
    ]
}

/// Runs the sequence twice — fresh `Network::new` per cell vs. one
/// reused network with `reset` between cells — under `run_validated`,
/// asserting identical outcomes cell by cell.
fn assert_reuse_matches_fresh(
    topology: &Topology,
    latencies: &[Cycles],
    base: &SimConfig,
    scan: ScanPolicy,
    label: &str,
) {
    let routes = routing::default_routes(topology).expect("routes");
    let mut reused: Option<Network<'_>> = None;
    for (rate, pattern, seed) in cell_sequence() {
        let config = SimConfig {
            seed,
            ..base.clone()
        };
        let fresh = Network::new(topology, &routes, latencies, config.clone())
            .run_validated(rate, pattern, scan);
        let net = match reused {
            Some(ref mut net) => {
                net.reset(seed);
                net
            }
            None => reused.insert(Network::new(topology, &routes, latencies, config)),
        };
        let reuse = net.run_validated(rate, pattern, scan);
        assert_eq!(
            fresh, reuse,
            "{label}/{scan:?}: reused network diverged at rate {rate} {pattern:?} seed {seed}"
        );
    }
}

#[test]
fn reset_matches_fresh_construction_across_all_policy_combos() {
    let mesh = generators::mesh(Grid::new(4, 4));
    let latencies = unit_latencies(&mesh);
    for scan in SCANS {
        for injection in INJECTIONS {
            for alloc in ALLOCS {
                let base = SimConfig {
                    injection,
                    alloc,
                    ..SimConfig::fast_test()
                };
                let label = format!("mesh/{injection}/{alloc}");
                assert_reuse_matches_fresh(&mesh, &latencies, &base, scan, &label);
            }
        }
    }
}

#[test]
fn reset_matches_fresh_on_high_radix_topology() {
    // The flattened butterfly concentrates state on high-radix routers
    // (31 ports × 8 VCs of masks and credits per router).
    let fb = generators::flattened_butterfly(Grid::new(4, 4));
    let latencies = unit_latencies(&fb);
    for alloc in ALLOCS {
        let base = SimConfig {
            alloc,
            ..SimConfig::fast_test()
        };
        assert_reuse_matches_fresh(&fb, &latencies, &base, ScanPolicy::ActiveSet, "fb");
    }
}

#[test]
fn reset_matches_fresh_with_multicycle_links_and_long_packets() {
    // Multi-cycle links keep flits and credits in the pipelines at the
    // hard stop; 8-flit packets hold VC reservations across many
    // cycles — both must vanish on reset.
    let mesh = generators::mesh(Grid::new(4, 4));
    let latencies = vec![Cycles::new(3); mesh.num_links()];
    let base = SimConfig {
        packet_len: 8,
        ..SimConfig::fast_test()
    };
    for scan in SCANS {
        assert_reuse_matches_fresh(&mesh, &latencies, &base, scan, "mesh/multicycle/len8");
    }
}

#[test]
fn reset_after_unstable_run_leaves_no_trace() {
    // A ring at rate 0.9 hits the drain limit with the network full of
    // flits — the worst case for residual state. The cell after the
    // reset must match a fresh network exactly.
    let ring = generators::ring(Grid::new(4, 4));
    let routes = routing::default_routes(&ring).expect("routes");
    let latencies = unit_latencies(&ring);
    let config = |seed: u64| SimConfig {
        seed,
        ..SimConfig::fast_test()
    };
    let mut net = Network::new(&ring, &routes, &latencies, config(1));
    let saturated = net.run_validated(0.9, TrafficPattern::UniformRandom, ScanPolicy::ActiveSet);
    assert!(
        !saturated.stable,
        "ring at 0.9 must saturate: {saturated:?}"
    );
    net.reset(2);
    let after = net.run_validated(0.05, TrafficPattern::UniformRandom, ScanPolicy::ActiveSet);
    let fresh = Network::new(&ring, &routes, &latencies, config(2)).run_validated(
        0.05,
        TrafficPattern::UniformRandom,
        ScanPolicy::ActiveSet,
    );
    assert_eq!(after, fresh);
}

#[test]
fn repeated_resets_with_the_same_seed_reproduce() {
    let torus = generators::torus(Grid::new(4, 4));
    let routes = routing::default_routes(&torus).expect("routes");
    let latencies = unit_latencies(&torus);
    let mut net = Network::new(&torus, &routes, &latencies, SimConfig::fast_test());
    let first = net.run(0.1, TrafficPattern::UniformRandom);
    let mut again = Vec::new();
    for _ in 0..3 {
        net.reset(SimConfig::fast_test().seed);
        again.push(net.run(0.1, TrafficPattern::UniformRandom));
    }
    for outcome in again {
        assert_eq!(first, outcome, "reset must be idempotent state-wise");
    }
}

/// Experiment-level consequence: the reuse backend serializes the same
/// bytes as the per-cell reference, for every injection/allocation
/// policy and regardless of thread count.
#[test]
fn reuse_backend_serializes_identically_to_per_cell() {
    let grid = Grid::new(4, 4);
    let mesh = generators::mesh(grid);
    let fb = generators::flattened_butterfly(grid);
    for (injection, alloc) in [
        (InjectionPolicy::EventDriven, AllocPolicy::RequestQueue),
        (InjectionPolicy::PerCycleScan, AllocPolicy::FullScan),
        (InjectionPolicy::SharedScan, AllocPolicy::RequestQueue),
    ] {
        let spec = || {
            SweepSpec::new(SimConfig {
                injection,
                alloc,
                ..SimConfig::fast_test()
            })
            .rates([0.02, 0.1, 0.6])
            .patterns([TrafficPattern::UniformRandom, TrafficPattern::Hotspot(20)])
        };
        let experiment = |backend: ExecBackend| {
            Experiment::new(spec())
                .with_backend(backend)
                .with_unit_latency_case("mesh", &mesh)
                .expect("mesh routes")
                .with_unit_latency_case("fb", &fb)
                .expect("fb routes")
        };
        let reference = experiment(ExecBackend::PerCell).run_parallel();
        let reuse = experiment(ExecBackend::Reuse);
        assert_eq!(
            reference.to_json(),
            reuse.run_parallel().to_json(),
            "{injection}/{alloc}: reuse backend changed the sweep bytes"
        );
        assert_eq!(
            reference.to_json(),
            reuse.run_with_threads(1).to_json(),
            "{injection}/{alloc}: reuse backend is thread-count-dependent"
        );
    }
}
