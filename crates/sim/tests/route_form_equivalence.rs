//! Dense vs next-hop simulation byte-identity.
//!
//! The compact next-hop routing table must be invisible to the
//! simulator: every sweep over a case annotated with next-hop routes
//! serializes **byte-identically** to the same sweep over dense routes,
//! across topologies, injection policies, allocation policies and every
//! execution backend. This is what lets `--routes next-hop` default on
//! without perturbing a single published number.

use shg_sim::{
    AllocPolicy, ExecBackend, Experiment, InjectionPolicy, SimConfig, SweepSpec, TrafficPattern,
};
use shg_topology::routing::{default_routes, default_routes_with, RouteForm};
use shg_topology::{generators, Grid, Topology};
use shg_units::Cycles;

fn spec(config: SimConfig) -> SweepSpec {
    SweepSpec::new(config)
        .rates([0.02, 0.08])
        .patterns([TrafficPattern::UniformRandom, TrafficPattern::Transpose])
}

/// Runs one sweep over `topology` with routes in `form` on `backend`.
fn sweep_json(
    topology: &Topology,
    form: RouteForm,
    config: SimConfig,
    backend: ExecBackend,
) -> String {
    let routes = default_routes_with(topology, form).expect("routes build");
    let latencies = vec![Cycles::one(); topology.num_links()];
    let experiment = Experiment::new(spec(config))
        .with_backend(backend)
        .with_case(shg_sim::SweepCase::annotated(
            "case", topology, routes, latencies,
        ));
    experiment.run_parallel().to_json()
}

#[test]
fn next_hop_sweeps_serialize_identically_to_dense() {
    let topologies: Vec<(&str, Topology)> = {
        let sr = [4].into_iter().collect();
        let sc = [2, 5].into_iter().collect();
        vec![
            ("mesh", generators::mesh(Grid::new(4, 4))),
            ("torus", generators::torus(Grid::new(4, 4))),
            (
                "shg",
                generators::row_column_skip(Grid::new(8, 8), &sr, &sc).expect("scenario a"),
            ),
            ("ring", generators::ring(Grid::new(4, 4))),
        ]
    };
    for (name, topology) in &topologies {
        let reference = sweep_json(
            topology,
            RouteForm::Dense,
            SimConfig::fast_test(),
            ExecBackend::PerCell,
        );
        for backend in [
            ExecBackend::PerCell,
            ExecBackend::Reuse,
            ExecBackend::Batched,
            ExecBackend::Auto,
        ] {
            let compact = sweep_json(
                topology,
                RouteForm::NextHop,
                SimConfig::fast_test(),
                backend,
            );
            assert_eq!(
                compact, reference,
                "{name} on {backend} diverged from dense"
            );
        }
    }
}

#[test]
fn next_hop_is_byte_identical_across_policies() {
    let mesh = generators::mesh(Grid::new(4, 4));
    for injection in [InjectionPolicy::EventDriven, InjectionPolicy::PerCycleScan] {
        for alloc in [AllocPolicy::RequestQueue, AllocPolicy::FullScan] {
            let mut config = SimConfig::fast_test();
            config.injection = injection;
            config.alloc = alloc;
            let dense = sweep_json(
                &mesh,
                RouteForm::Dense,
                config.clone(),
                ExecBackend::PerCell,
            );
            let compact = sweep_json(&mesh, RouteForm::NextHop, config, ExecBackend::PerCell);
            assert_eq!(
                compact, dense,
                "{injection:?}/{alloc:?} diverged across route forms"
            );
        }
    }
}

#[test]
fn default_routes_form_is_unchanged_for_dense_consumers() {
    // `default_routes` stays the dense reference; sweep cases opt into
    // the compact form explicitly (or via `unit_latency`'s default).
    let mesh = generators::mesh(Grid::new(4, 4));
    assert_eq!(
        default_routes(&mesh).expect("routes").form(),
        RouteForm::Dense
    );
}
