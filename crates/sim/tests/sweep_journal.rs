//! Kill-and-resume regression for the sweep journal: a shard journal
//! interrupted at any prefix and resumed must reproduce the
//! uninterrupted journal byte-for-byte, and the merged result must
//! match the single-shot sweep; a journal written under a different
//! plan (changed spec) must be rejected with a clear error.

use std::path::PathBuf;

use shg_sim::sweep::{read_journal, run_journaled, JournalError};
use shg_sim::{Experiment, ShardSpec, SimConfig, SweepResult, SweepSpec, TrafficPattern};
use shg_topology::{generators, Grid, Topology};

/// A scratch file path unique to this test process and name; removed by
/// [`Scratch::drop`].
struct Scratch(PathBuf);

impl Scratch {
    fn new(name: &str) -> Self {
        let path = std::env::temp_dir().join(format!(
            "shg_sweep_journal_{}_{name}.jsonl",
            std::process::id()
        ));
        let _ = std::fs::remove_file(&path);
        Self(path)
    }
}

impl Drop for Scratch {
    fn drop(&mut self) {
        let _ = std::fs::remove_file(&self.0);
    }
}

fn mesh() -> Topology {
    generators::mesh(Grid::new(4, 4))
}

fn experiment(topology: &Topology) -> Experiment<'_> {
    let spec = SweepSpec::new(SimConfig::fast_test())
        .rates([0.02, 0.1, 0.3])
        .patterns([TrafficPattern::UniformRandom, TrafficPattern::Hotspot(20)]);
    Experiment::new(spec)
        .with_unit_latency_case("mesh", topology)
        .expect("mesh routes")
}

#[test]
fn journaled_shard_matches_run_shard_and_merges_to_single_shot() {
    let mesh = mesh();
    let experiment = experiment(&mesh);
    let single = experiment.run_parallel().to_json();
    let mut journals = Vec::new();
    let scratches: Vec<Scratch> = (0..3)
        .map(|i| Scratch::new(&format!("merge_shard{i}")))
        .collect();
    for (i, scratch) in scratches.iter().enumerate() {
        let shard = ShardSpec::new(i as u32, 3);
        let result = run_journaled(&experiment, shard, &scratch.0, false, |_, _| {}).expect("runs");
        let in_memory = experiment.run_shard(shard);
        assert_eq!(
            result.points,
            in_memory
                .entries
                .iter()
                .map(|(_, p)| p.clone())
                .collect::<Vec<_>>(),
            "journaled execution computes the same points"
        );
        let journal = read_journal(&scratch.0).expect("journal reads back");
        assert_eq!(journal, in_memory, "journal round trip is lossless");
        journals.push(journal);
    }
    let merged = SweepResult::merge(journals).expect("journals merge");
    assert_eq!(merged.to_json(), single, "3-shard journals == single shot");
}

#[test]
fn resume_from_any_prefix_reproduces_the_journal_bytes() {
    let mesh = mesh();
    let experiment = experiment(&mesh);
    let shard = ShardSpec::new(0, 2);
    let full = Scratch::new("resume_full");
    let uninterrupted = run_journaled(&experiment, shard, &full.0, false, |_, _| {}).expect("runs");
    let full_bytes = std::fs::read(&full.0).expect("journal exists");
    let text = String::from_utf8(full_bytes.clone()).expect("utf8");
    let lines: Vec<&str> = text.lines().collect();
    let cells = lines.len() - 1; // header + one line per cell

    let mut progress_calls = Vec::new();
    for keep in 0..=cells {
        // A journal killed after `keep` completed cells: header +
        // prefix of entry lines.
        let partial = Scratch::new(&format!("resume_keep{keep}"));
        let prefix: String = lines[..=keep].iter().flat_map(|l| [l, "\n"]).collect();
        std::fs::write(&partial.0, &prefix).expect("write partial");
        let resumed = run_journaled(&experiment, shard, &partial.0, true, |done, total| {
            progress_calls.push((done, total));
        })
        .expect("resume runs");
        assert_eq!(
            std::fs::read(&partial.0).expect("resumed journal"),
            full_bytes,
            "resume from {keep}/{cells} cells reproduces the journal bytes"
        );
        assert_eq!(resumed, uninterrupted, "resumed result matches");
    }
    // Progress reporting counts cells done out of the shard total.
    assert!(progress_calls
        .iter()
        .all(|&(done, total)| done <= total && total == cells));
    assert!(progress_calls.contains(&(cells, cells)));

    // A torn final line (killed mid-write) is discarded and recomputed.
    let torn = Scratch::new("resume_torn");
    let mut prefix: String = lines[..=1].iter().flat_map(|l| [l, "\n"]).collect();
    prefix.push_str(&lines[2][..lines[2].len() / 2]);
    std::fs::write(&torn.0, &prefix).expect("write torn");
    let resumed = run_journaled(&experiment, shard, &torn.0, true, |_, _| {}).expect("resumes");
    assert_eq!(std::fs::read(&torn.0).expect("journal"), full_bytes);
    assert_eq!(resumed, uninterrupted);

    // Killed during the header write itself: nothing is recoverable,
    // so resume recreates the journal instead of dead-ending.
    let torn_header = Scratch::new("resume_torn_header");
    std::fs::write(&torn_header.0, &lines[0][..lines[0].len() / 2]).expect("write torn header");
    let resumed =
        run_journaled(&experiment, shard, &torn_header.0, true, |_, _| {}).expect("recreates");
    assert_eq!(std::fs::read(&torn_header.0).expect("journal"), full_bytes);
    assert_eq!(resumed, uninterrupted);
}

#[test]
fn resume_rejects_a_changed_plan_with_a_clear_error() {
    let mesh = mesh();
    let scratch = Scratch::new("fingerprint");
    let original = experiment(&mesh);
    run_journaled(&original, ShardSpec::SOLO, &scratch.0, false, |_, _| {}).expect("runs");

    // Same case, different spec (one extra rate) — a different plan.
    let changed_spec = Experiment::new(
        SweepSpec::new(SimConfig::fast_test())
            .rates([0.02, 0.1, 0.3, 0.4])
            .patterns([TrafficPattern::UniformRandom, TrafficPattern::Hotspot(20)]),
    )
    .with_unit_latency_case("mesh", &mesh)
    .expect("mesh routes");
    let err = run_journaled(&changed_spec, ShardSpec::SOLO, &scratch.0, true, |_, _| {})
        .expect_err("changed spec must not resume");
    assert!(
        matches!(err, JournalError::FingerprintMismatch { .. }),
        "{err}"
    );
    let message = err.to_string();
    assert!(
        message.contains("fingerprint") && message.contains("changed"),
        "error names the cause: {message}"
    );

    // Same plan, different shard assignment — also rejected.
    let err = run_journaled(&original, ShardSpec::new(0, 2), &scratch.0, true, |_, _| {})
        .expect_err("different shard must not resume");
    assert!(matches!(err, JournalError::ShardMismatch { .. }), "{err}");
    assert!(err.to_string().contains("shard 1/2"), "{err}");
}

#[test]
fn read_journal_rejects_a_corrupted_cell_id() {
    // A bit-flip that keeps the JSON well-formed must not merge as
    // silently misplaced data: the header's recorded plan shape lets
    // the reader re-enumerate the exact cell sequence and reject it.
    let mesh = mesh();
    let experiment = experiment(&mesh);
    let scratch = Scratch::new("tampered");
    run_journaled(
        &experiment,
        ShardSpec::new(0, 2),
        &scratch.0,
        false,
        |_, _| {},
    )
    .expect("runs");
    let text = std::fs::read_to_string(&scratch.0).expect("journal");
    assert!(text.contains("\"rate\":2"), "cell (0,0,2) is in shard 1/2");
    let tampered = text.replacen("\"rate\":2", "\"rate\":9", 1);
    std::fs::write(&scratch.0, tampered).expect("tamper");
    let err = read_journal(&scratch.0).expect_err("corrupt cell id");
    assert!(matches!(err, JournalError::NotAPrefix { .. }), "{err}");
    assert!(err.to_string().contains("canonical order"), "{err}");
}

#[test]
fn merge_of_an_unfinished_journal_reports_missing_cells() {
    let mesh = mesh();
    let experiment = experiment(&mesh);
    let scratch = Scratch::new("unfinished");
    run_journaled(&experiment, ShardSpec::SOLO, &scratch.0, false, |_, _| {}).expect("runs");
    let text = std::fs::read_to_string(&scratch.0).expect("journal");
    let truncated: String = text.lines().take(3).flat_map(|l| [l, "\n"]).collect();
    std::fs::write(&scratch.0, truncated).expect("truncate");
    let journal = read_journal(&scratch.0).expect("prefix journals parse");
    let err = SweepResult::merge(vec![journal]).expect_err("incomplete");
    assert!(
        err.to_string().contains("a shard is missing or unfinished"),
        "{err}"
    );
}
