//! Property tests for the traffic patterns: destinations are always
//! in range, tiles never send to themselves, and the deterministic
//! patterns match their documented formulas on square and non-square
//! grids.

use proptest::prelude::*;

use rand::rngs::SmallRng;
use rand::SeedableRng;
use shg_sim::TrafficPattern;
use shg_topology::{Grid, TileCoord, TileId};

fn all_patterns() -> [TrafficPattern; 7] {
    [
        TrafficPattern::UniformRandom,
        TrafficPattern::Transpose,
        TrafficPattern::BitComplement,
        TrafficPattern::Reverse,
        TrafficPattern::Tornado,
        TrafficPattern::Neighbor,
        TrafficPattern::Hotspot(30),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Every pattern, every source tile, any grid shape: the destination
    /// is a valid tile and never the source itself.
    #[test]
    fn destinations_in_range_and_never_self(
        (rows, cols) in (2u16..=8, 2u16..=8),
        seed in 0u64..1_000,
    ) {
        let grid = Grid::new(rows, cols);
        let mut rng = SmallRng::seed_from_u64(seed);
        for pattern in all_patterns() {
            for src in grid.tiles() {
                for _ in 0..4 {
                    if let Some(dst) = pattern.destination(grid, src, &mut rng) {
                        prop_assert!(
                            dst.index() < grid.num_tiles(),
                            "{pattern}: {src} → {dst} out of range on {rows}x{cols}"
                        );
                        prop_assert!(dst != src, "{pattern}: {src} sent to itself");
                    }
                }
            }
        }
    }

    /// Tornado: `(r, c) → (r + ⌈R/2⌉−1 mod R, c + ⌈C/2⌉−1 mod C)`.
    #[test]
    fn tornado_matches_formula((rows, cols) in (2u16..=9, 2u16..=9), seed in 0u64..100) {
        let grid = Grid::new(rows, cols);
        let mut rng = SmallRng::seed_from_u64(seed);
        let dr = u32::from(rows).div_ceil(2) - 1;
        let dc = u32::from(cols).div_ceil(2) - 1;
        for src in grid.tiles() {
            let coord = grid.coord(src);
            let expected = grid.id(TileCoord::new(
                ((u32::from(coord.row) + dr) % u32::from(rows)) as u16,
                ((u32::from(coord.col) + dc) % u32::from(cols)) as u16,
            ));
            let got = TrafficPattern::Tornado.destination(grid, src, &mut rng);
            if expected == src {
                prop_assert_eq!(got, None, "self-mapped tiles stay silent");
            } else {
                prop_assert_eq!(got, Some(expected));
            }
        }
    }

    /// Transpose: fractional positions swap, i.e. destination
    /// `(col·R/C, row·C/R)` clamped to the grid — exact transposition on
    /// square grids.
    #[test]
    fn transpose_matches_formula((rows, cols) in (2u16..=9, 2u16..=9), seed in 0u64..100) {
        let grid = Grid::new(rows, cols);
        let mut rng = SmallRng::seed_from_u64(seed);
        for src in grid.tiles() {
            let coord = grid.coord(src);
            let r = (u32::from(coord.col) * u32::from(rows) / u32::from(cols)) as u16;
            let c = (u32::from(coord.row) * u32::from(cols) / u32::from(rows)) as u16;
            let expected = grid.id(TileCoord::new(r.min(rows - 1), c.min(cols - 1)));
            let got = TrafficPattern::Transpose.destination(grid, src, &mut rng);
            if expected == src {
                prop_assert_eq!(got, None, "diagonal stays silent");
            } else {
                prop_assert_eq!(got, Some(expected));
            }
        }
    }

    /// Transpose on square grids is `(r, c) → (c, r)` exactly, and an
    /// involution off the diagonal.
    #[test]
    fn transpose_square_is_involution(n in 2u16..=9, seed in 0u64..100) {
        let grid = Grid::new(n, n);
        let mut rng = SmallRng::seed_from_u64(seed);
        for src in grid.tiles() {
            let coord = grid.coord(src);
            match TrafficPattern::Transpose.destination(grid, src, &mut rng) {
                None => prop_assert_eq!(coord.row, coord.col),
                Some(dst) => {
                    prop_assert_eq!(
                        grid.coord(dst),
                        TileCoord::new(coord.col, coord.row)
                    );
                    let back = TrafficPattern::Transpose
                        .destination(grid, dst, &mut rng)
                        .expect("off-diagonal maps back");
                    prop_assert_eq!(back, src);
                }
            }
        }
    }

    /// Hotspot(p): the hot tile is `n/2`; non-hot traffic is uniform and
    /// the hot tile draws ~p% of another tile's packets.
    #[test]
    fn hotspot_targets_center_tile((rows, cols) in (3u16..=8, 3u16..=8), seed in 0u64..50) {
        let grid = Grid::new(rows, cols);
        let hot = TileId::new((grid.num_tiles() / 2) as u32);
        let mut rng = SmallRng::seed_from_u64(seed);
        // A source that is not the hot tile itself.
        let src = TileId::new(0);
        prop_assert!(src != hot);
        let trials = 2_000u32;
        let hits = (0..trials)
            .filter(|_| {
                TrafficPattern::Hotspot(40).destination(grid, src, &mut rng) == Some(hot)
            })
            .count() as f64;
        let rate = hits / f64::from(trials);
        // 40% direct hits plus a uniform share of the remainder; allow a
        // generous statistical margin.
        prop_assert!(
            (0.30..0.55).contains(&rate),
            "hot rate {rate} on {rows}x{cols} (seed {seed})"
        );
    }

    /// Hotspot(0) degenerates to uniform random: all destinations reachable.
    #[test]
    fn hotspot_zero_is_uniform(seed in 0u64..50) {
        let grid = Grid::new(4, 4);
        let mut rng = SmallRng::seed_from_u64(seed);
        let src = TileId::new(5);
        let mut seen = std::collections::HashSet::new();
        for _ in 0..2_000 {
            seen.insert(
                TrafficPattern::Hotspot(0)
                    .destination(grid, src, &mut rng)
                    .expect("uniform always finds a destination"),
            );
        }
        prop_assert_eq!(seen.len(), grid.num_tiles() - 1);
    }
}
