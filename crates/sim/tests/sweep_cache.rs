//! Correctness suite for the cell-result cache: a warm re-run must
//! serialize byte-identically to a cold run, a widened grid must
//! simulate **only** the new cells, and corrupted or stale entries
//! must be recomputed — never merged into a result.

use std::path::PathBuf;

use proptest::prelude::*;
use shg_sim::sweep::run_journaled;
use shg_sim::{
    AllocPolicy, CellCache, ExecBackend, Experiment, InjectionPolicy, ShardSpec, SimConfig,
    SweepSpec, TrafficPattern,
};
use shg_topology::{generators, Grid, Topology};

/// A scratch directory unique to this test process and name; removed
/// on drop.
struct ScratchDir(PathBuf);

impl ScratchDir {
    fn new(name: &str) -> Self {
        let path =
            std::env::temp_dir().join(format!("shg_sweep_cache_{}_{name}", std::process::id()));
        let _ = std::fs::remove_dir_all(&path);
        Self(path)
    }

    fn cache(&self) -> CellCache {
        CellCache::open(&self.0).expect("cache dir opens")
    }

    fn entry_paths(&self) -> Vec<PathBuf> {
        let mut paths: Vec<PathBuf> = std::fs::read_dir(&self.0)
            .expect("cache dir lists")
            .map(|e| e.expect("dir entry").path())
            .collect();
        paths.sort();
        paths
    }
}

impl Drop for ScratchDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

fn base_spec(config: SimConfig) -> SweepSpec {
    SweepSpec::new(config)
        .rates([0.02, 0.1])
        .patterns([TrafficPattern::UniformRandom, TrafficPattern::Hotspot(20)])
}

fn experiment<'a>(spec: SweepSpec, mesh: &'a Topology) -> Experiment<'a> {
    Experiment::new(spec)
        .with_unit_latency_case("mesh", mesh)
        .expect("mesh routes")
}

#[test]
fn warm_rerun_is_byte_identical_and_simulates_nothing() {
    let mesh = generators::mesh(Grid::new(4, 4));
    let scratch = ScratchDir::new("warm_rerun");
    let reference = experiment(base_spec(SimConfig::fast_test()), &mesh)
        .run_parallel()
        .to_json();

    let cold = experiment(base_spec(SimConfig::fast_test()), &mesh).with_cache(scratch.cache());
    assert_eq!(cold.run_parallel().to_json(), reference);
    let stats = cold.cache().expect("cache attached").stats();
    assert_eq!(
        (stats.cached, stats.simulated),
        (0, 4),
        "cold run misses all"
    );

    let warm = experiment(base_spec(SimConfig::fast_test()), &mesh).with_cache(scratch.cache());
    assert_eq!(
        warm.run_parallel().to_json(),
        reference,
        "warm bytes differ"
    );
    let stats = warm.cache().expect("cache attached").stats();
    assert_eq!(
        (stats.cached, stats.simulated),
        (4, 0),
        "warm run must hit all"
    );
}

#[test]
fn widened_grid_simulates_only_the_delta() {
    let mesh = generators::mesh(Grid::new(4, 4));
    let torus = generators::torus(Grid::new(4, 4));
    let scratch = ScratchDir::new("widened");
    let cold = experiment(base_spec(SimConfig::fast_test()), &mesh).with_cache(scratch.cache());
    let _ = cold.run_parallel();
    assert_eq!(cold.cache().expect("cache").stats().simulated, 4);

    // Widen every axis by appending: a rate, a pattern's override, and
    // a whole new case. Surviving cells keep their coordinates (and
    // derived seeds), so only the new cells may simulate.
    let widened_spec = || {
        base_spec(SimConfig::fast_test())
            .rates([0.02, 0.1, 0.3])
            .rates_for(TrafficPattern::Hotspot(20), [0.02, 0.1, 0.05])
    };
    let widen = |cache: CellCache| {
        Experiment::new(widened_spec())
            .with_unit_latency_case("mesh", &mesh)
            .expect("mesh routes")
            .with_unit_latency_case("torus", &torus)
            .expect("torus routes")
            .with_cache(cache)
    };
    // Delta: mesh uniform gains 1 rate, mesh hotspot gains 1 override
    // rate, and the torus case contributes all 3 + 3 cells.
    let warm = widen(scratch.cache());
    let warm_json = warm.run_parallel().to_json();
    let stats = warm.cache().expect("cache").stats();
    assert_eq!(stats.cached, 4, "all original cells must hit");
    assert_eq!(stats.simulated, 2 + 6, "only the widened delta simulates");

    // The warm widened run is byte-identical to a cold widened run.
    let fresh = ScratchDir::new("widened_fresh");
    let cold_widened = widen(fresh.cache());
    assert_eq!(cold_widened.run_parallel().to_json(), warm_json);
    assert_eq!(cold_widened.cache().expect("cache").stats().simulated, 12);
}

#[test]
fn reindexed_cells_do_not_hit_the_cache() {
    // Inserting a rate *before* existing ones shifts rate indices, so
    // the shifted cells get new derived seeds — they must re-simulate,
    // not hit stale entries keyed under the old coordinates.
    let mesh = generators::mesh(Grid::new(4, 4));
    let scratch = ScratchDir::new("reindexed");
    let cold = experiment(base_spec(SimConfig::fast_test()), &mesh).with_cache(scratch.cache());
    let _ = cold.run_parallel();

    let shifted_spec = base_spec(SimConfig::fast_test()).rates([0.01, 0.02, 0.1]);
    let shifted = experiment(shifted_spec.clone(), &mesh).with_cache(scratch.cache());
    let shifted_json = shifted.run_parallel().to_json();
    let stats = shifted.cache().expect("cache").stats();
    assert_eq!(stats.cached, 0, "every coordinate shifted; nothing may hit");
    assert_eq!(stats.simulated, 6);
    let reference = experiment(shifted_spec, &mesh).run_parallel().to_json();
    assert_eq!(shifted_json, reference);
}

#[test]
fn corrupted_and_stale_entries_are_recomputed_never_merged() {
    let mesh = generators::mesh(Grid::new(4, 4));
    let scratch = ScratchDir::new("corrupt");
    let reference = experiment(base_spec(SimConfig::fast_test()), &mesh)
        .run_parallel()
        .to_json();
    let cold = experiment(base_spec(SimConfig::fast_test()), &mesh).with_cache(scratch.cache());
    let _ = cold.run_parallel();

    let corruptions: [&dyn Fn(&PathBuf); 4] = [
        // Torn write: the trailing newline never landed.
        &|path| {
            let text = std::fs::read_to_string(path).expect("read");
            std::fs::write(path, text.trim_end()).expect("write");
        },
        // Truncated mid-entry.
        &|path| {
            let text = std::fs::read_to_string(path).expect("read");
            std::fs::write(path, &text[..text.len() / 2]).expect("write");
        },
        // A recorded fingerprint that disagrees with its address.
        &|path| {
            let text = std::fs::read_to_string(path).expect("read");
            let tampered = text.replacen("\"fingerprint\":", "\"fingerprint\":9", 1);
            std::fs::write(path, tampered).expect("write");
        },
        // Outright garbage.
        &|path| std::fs::write(path, "{\"format\":\"who knows\"}\n").expect("write"),
    ];
    let paths = scratch.entry_paths();
    assert_eq!(paths.len(), 4, "one entry per cell");
    for (path, corrupt) in paths.iter().zip(corruptions) {
        corrupt(path);
    }

    let warm = experiment(base_spec(SimConfig::fast_test()), &mesh).with_cache(scratch.cache());
    assert_eq!(
        warm.run_parallel().to_json(),
        reference,
        "corrupted entries leaked into the result"
    );
    let stats = warm.cache().expect("cache").stats();
    assert_eq!(
        (stats.cached, stats.simulated),
        (0, 4),
        "every corrupted entry must be recomputed"
    );

    // The recomputation healed the cache: a further run hits all 4.
    let healed = experiment(base_spec(SimConfig::fast_test()), &mesh).with_cache(scratch.cache());
    let _ = healed.run_parallel();
    let stats = healed.cache().expect("cache").stats();
    assert_eq!((stats.cached, stats.simulated), (4, 0));
}

#[test]
fn different_routing_table_never_hits() {
    // `SweepCase::annotated` accepts arbitrary routes: the same
    // topology routed differently produces different outcomes, so the
    // digest must separate them — a stale hit here would silently
    // report the other routing's results.
    use shg_sim::SweepCase;
    use shg_topology::routing::{build_routes, RoutingAlgorithm};
    use shg_units::Cycles;

    let mesh = generators::mesh(Grid::new(4, 4));
    let latencies = vec![Cycles::one(); mesh.num_links()];
    let routed = |algorithm: RoutingAlgorithm| {
        Experiment::new(base_spec(SimConfig::fast_test())).with_case(SweepCase::annotated(
            "mesh",
            &mesh,
            build_routes(&mesh, algorithm).expect("mesh routes"),
            latencies.clone(),
        ))
    };
    let scratch = ScratchDir::new("routes");
    let cold = routed(RoutingAlgorithm::RowColumn).with_cache(scratch.cache());
    let _ = cold.run_parallel();

    let rerouted = routed(RoutingAlgorithm::HopEscalation).with_cache(scratch.cache());
    let rerouted_json = rerouted.run_parallel().to_json();
    let stats = rerouted.cache().expect("cache").stats();
    assert_eq!(stats.cached, 0, "a different routing table must never hit");
    assert_eq!(
        rerouted_json,
        routed(RoutingAlgorithm::HopEscalation)
            .run_parallel()
            .to_json()
    );
}

#[test]
fn different_root_seed_never_hits() {
    let mesh = generators::mesh(Grid::new(4, 4));
    let scratch = ScratchDir::new("seed");
    let cold = experiment(base_spec(SimConfig::fast_test()), &mesh).with_cache(scratch.cache());
    let _ = cold.run_parallel();
    let other = SimConfig {
        seed: 7,
        ..SimConfig::fast_test()
    };
    let reference = experiment(base_spec(other.clone()), &mesh)
        .run_parallel()
        .to_json();
    let reseeded = experiment(base_spec(other), &mesh).with_cache(scratch.cache());
    assert_eq!(reseeded.run_parallel().to_json(), reference);
    let stats = reseeded.cache().expect("cache").stats();
    assert_eq!((stats.cached, stats.simulated), (0, 4));
}

#[test]
fn journal_resume_and_cache_compose() {
    // The journal stays the crash-consistency layer: a journaled shard
    // run with a warm cache writes byte-identical journal lines while
    // simulating nothing.
    let mesh = generators::mesh(Grid::new(4, 4));
    let scratch = ScratchDir::new("journal");
    let journal_cold = scratch.0.join("cold.jsonl");
    let journal_warm = scratch.0.join("warm.jsonl");
    std::fs::create_dir_all(&scratch.0).expect("scratch dir");

    let cached = experiment(base_spec(SimConfig::fast_test()), &mesh)
        .with_cache(CellCache::open(scratch.0.join("cells")).expect("cache"));
    let cold = run_journaled(&cached, ShardSpec::SOLO, &journal_cold, false, |_, _| {})
        .expect("cold journaled run");
    let stats = cached.cache().expect("cache").stats();
    assert_eq!((stats.cached, stats.simulated), (0, 4));

    let warm_exp = experiment(base_spec(SimConfig::fast_test()), &mesh)
        .with_cache(CellCache::open(scratch.0.join("cells")).expect("cache"));
    let warm = run_journaled(&warm_exp, ShardSpec::SOLO, &journal_warm, false, |_, _| {})
        .expect("warm journaled run");
    assert_eq!(warm.to_json(), cold.to_json());
    let stats = warm_exp.cache().expect("cache").stats();
    assert_eq!((stats.cached, stats.simulated), (4, 0));
    assert_eq!(
        std::fs::read(&journal_cold).expect("cold journal"),
        std::fs::read(&journal_warm).expect("warm journal"),
        "cache leaked into the journal bytes"
    );
}

#[test]
fn reuse_backend_and_cache_compose() {
    let mesh = generators::mesh(Grid::new(4, 4));
    let scratch = ScratchDir::new("reuse_compose");
    let reference = experiment(base_spec(SimConfig::fast_test()), &mesh)
        .run_parallel()
        .to_json();
    let cold = experiment(base_spec(SimConfig::fast_test()), &mesh)
        .with_backend(ExecBackend::Reuse)
        .with_cache(scratch.cache());
    assert_eq!(cold.run_parallel().to_json(), reference);
    let warm = experiment(base_spec(SimConfig::fast_test()), &mesh)
        .with_backend(ExecBackend::Reuse)
        .with_cache(scratch.cache());
    assert_eq!(warm.run_parallel().to_json(), reference);
    let stats = warm.cache().expect("cache").stats();
    assert_eq!((stats.cached, stats.simulated), (4, 0));
}

const INJECTIONS: [InjectionPolicy; 3] = [
    InjectionPolicy::EventDriven,
    InjectionPolicy::PerCycleScan,
    InjectionPolicy::SharedScan,
];
const ALLOCS: [AllocPolicy; 2] = [AllocPolicy::RequestQueue, AllocPolicy::FullScan];
const BACKENDS: [ExecBackend; 2] = [ExecBackend::PerCell, ExecBackend::Reuse];

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// For any policy pair, backend and seed: a cold cached run and a
    /// warm re-run both serialize to exactly the cache-less bytes, and
    /// the warm run simulates nothing.
    #[test]
    fn cold_and_warm_cached_runs_match_the_uncached_bytes(
        injection_idx in 0..INJECTIONS.len(),
        alloc_idx in 0..ALLOCS.len(),
        backend_idx in 0..BACKENDS.len(),
        seed in 0u64..1_000,
    ) {
        let mesh = generators::mesh(Grid::new(4, 4));
        let config = SimConfig {
            injection: INJECTIONS[injection_idx],
            alloc: ALLOCS[alloc_idx],
            seed,
            ..SimConfig::fast_test()
        };
        let scratch = ScratchDir::new(&format!(
            "prop_{injection_idx}_{alloc_idx}_{backend_idx}_{seed}"
        ));
        let reference = experiment(base_spec(config.clone()), &mesh)
            .run_parallel()
            .to_json();
        let build = || {
            experiment(base_spec(config.clone()), &mesh)
                .with_backend(BACKENDS[backend_idx])
                .with_cache(scratch.cache())
        };
        let cold = build();
        prop_assert_eq!(cold.run_parallel().to_json(), reference.clone());
        let warm = build();
        prop_assert_eq!(warm.run_parallel().to_json(), reference.clone());
        let stats = warm.cache().expect("cache").stats();
        prop_assert_eq!((stats.cached, stats.simulated), (4, 0));
    }
}

/// The cache keys on routing *semantics*, not storage form: a sweep
/// over next-hop routes re-hits every cell a dense-routed sweep cached
/// (they simulate byte-identically), while changing the routing
/// algorithm misses every cell.
#[test]
fn cache_is_route_form_agnostic_but_algorithm_sensitive() {
    use shg_sim::SweepCase;
    use shg_topology::routing::{build_routes_with, RouteForm, RoutingAlgorithm};
    use shg_units::Cycles;

    let mesh = generators::mesh(Grid::new(4, 4));
    let with_routes = |algorithm, form| {
        let routes = build_routes_with(&mesh, algorithm, form).expect("routes build");
        let latencies = vec![Cycles::one(); mesh.num_links()];
        Experiment::new(base_spec(SimConfig::fast_test()))
            .with_case(SweepCase::annotated("mesh", &mesh, routes, latencies))
    };

    let scratch = ScratchDir::new("form_agnostic");
    let dense =
        with_routes(RoutingAlgorithm::RowColumn, RouteForm::Dense).with_cache(scratch.cache());
    let reference = dense.run_parallel().to_json();
    let stats = dense.cache().expect("cache").stats();
    assert_eq!((stats.cached, stats.simulated), (0, 4), "cold run misses");

    // Same algorithm, compact storage: every cell is already cached.
    let compact =
        with_routes(RoutingAlgorithm::RowColumn, RouteForm::NextHop).with_cache(scratch.cache());
    assert_eq!(compact.run_parallel().to_json(), reference);
    let stats = compact.cache().expect("cache").stats();
    assert_eq!(
        (stats.cached, stats.simulated),
        (4, 0),
        "form switch must stay warm"
    );

    // Different algorithm over the same topology: no entry may be
    // shared, whatever the storage form.
    let escalation = with_routes(RoutingAlgorithm::HopEscalation, RouteForm::NextHop)
        .with_cache(scratch.cache());
    let _ = escalation.run_parallel();
    let stats = escalation.cache().expect("cache").stats();
    assert_eq!(
        (stats.cached, stats.simulated),
        (0, 4),
        "algorithm switch must miss"
    );
}
