//! The two lemmas event-driven injection rests on, as property tests:
//!
//! 1. **Bit-identity** — the event calendar and the per-cycle countdown
//!    scan, consuming the same per-tile streams through the same
//!    geometric sampler, produce identical fire schedules and leave the
//!    streams in identical states, for any tile count, probability
//!    (including the `rate == 0` and `packet_prob >= 1` edges) and
//!    horizon. This is what makes `InjectionPolicy::PerCycleScan` a
//!    valid exhaustive reference for `InjectionPolicy::EventDriven`.
//! 2. **Distributional equivalence** — the gap sampler's one-draw
//!    inversion reproduces the Bernoulli failure-run law
//!    `P[gap = k] = (1−p)^k · p` that per-cycle draws realize, so
//!    replacing the legacy per-cycle Bernoulli stream changes no
//!    traffic statistic (the network-level statistical suite checks the
//!    end-to-end consequence).

use proptest::prelude::*;

use rand::rngs::SmallRng;
use rand::{Rng, RngCore, SeedableRng};
use shg_sim::{geometric_gap, tile_stream_seed, InjectionPolicy, Injector};

/// The reference process: count failed per-cycle Bernoulli draws until
/// the first success. Caps at `limit` to bound the test for tiny `p`.
fn bernoulli_gap(rng: &mut SmallRng, p: f64, limit: u64) -> Option<u64> {
    let mut gap = 0u64;
    loop {
        if rng.gen::<f64>() < p {
            return Some(gap);
        }
        gap += 1;
        if gap > limit {
            return None;
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Lemma 1: identical fire schedules, identical stream states. The
    /// probe draw inside the callback doubles as the destination draw a
    /// real pattern would take, so it also proves the streams agree at
    /// the moment destinations are sampled.
    #[test]
    fn calendar_and_countdown_scan_are_bit_identical(
        seed in 0u64..1_000_000,
        tiles in 1usize..24,
        p in 0.0f64..1.1,
        cycles in 1u64..300,
    ) {
        let mut scan = Injector::new(InjectionPolicy::PerCycleScan, seed, tiles, p, cycles);
        let mut event = Injector::new(InjectionPolicy::EventDriven, seed, tiles, p, cycles);
        for now in 0..cycles {
            let mut a = Vec::new();
            let mut b = Vec::new();
            scan.fire_at(now, |t, rng| a.push((t, rng.next_u64())));
            event.fire_at(now, |t, rng| b.push((t, rng.next_u64())));
            prop_assert_eq!(a, b, "cycle {} of {} (p {}): schedules diverge", now, cycles, p);
        }
    }

    /// Lemma 1 edge: `rate == 0` fires nothing, `packet_prob >= 1`
    /// fires every tile every cycle — under both policies.
    #[test]
    fn degenerate_probabilities_fire_never_or_always(
        seed in 0u64..1_000_000,
        tiles in 1usize..16,
    ) {
        for policy in [InjectionPolicy::EventDriven, InjectionPolicy::PerCycleScan] {
            let mut silent = Injector::new(policy, seed, tiles, 0.0, 50);
            let mut saturated = Injector::new(policy, seed, tiles, 1.0, 50);
            for now in 0..50 {
                silent.fire_at(now, |t, _| panic!("tile {t} fired at rate 0"));
                let mut fired = Vec::new();
                saturated.fire_at(now, |t, _| fired.push(t));
                prop_assert_eq!(&fired, &(0..tiles).collect::<Vec<_>>(), "cycle {}", now);
            }
        }
    }

    /// Lemma 2: the sampler's gaps follow the same law as Bernoulli
    /// failure runs — compared on the empirical mean (within a few
    /// standard errors) and on the zero-gap frequency (≈ p).
    #[test]
    fn gap_distribution_matches_bernoulli_failure_runs(
        seed in 0u64..1_000_000,
        p in 0.02f64..0.9,
    ) {
        let n = 4_000u32;
        let mut sampler_rng = SmallRng::seed_from_u64(seed);
        let mut bernoulli_rng = SmallRng::seed_from_u64(seed ^ 0xdead_beef);
        let mut sampler_sum = 0u64;
        let mut bernoulli_sum = 0u64;
        let mut sampler_zeros = 0u32;
        for _ in 0..n {
            let g = geometric_gap(&mut sampler_rng, p).expect("p > 0");
            sampler_sum += g;
            sampler_zeros += u32::from(g == 0);
            bernoulli_sum += bernoulli_gap(&mut bernoulli_rng, p, 1 << 24).expect("p >= 0.02");
        }
        let sampler_mean = sampler_sum as f64 / f64::from(n);
        let bernoulli_mean = bernoulli_sum as f64 / f64::from(n);
        // Two independent empirical means, each with standard error
        // σ/√n where σ = √(1−p)/p; allow 8 combined standard errors.
        let tolerance = 8.0 * (2.0f64).sqrt() * (1.0 - p).sqrt() / (p * f64::from(n).sqrt());
        prop_assert!(
            (sampler_mean - bernoulli_mean).abs() <= tolerance.max(0.01),
            "p {}: sampler mean {} vs bernoulli mean {} (tolerance {})",
            p, sampler_mean, bernoulli_mean, tolerance
        );
        let zero_rate = f64::from(sampler_zeros) / f64::from(n);
        let zero_tolerance = 8.0 * (p * (1.0 - p) / f64::from(n)).sqrt();
        prop_assert!(
            (zero_rate - p).abs() <= zero_tolerance.max(0.005),
            "p {}: zero-gap rate {} should approximate p", p, zero_rate
        );
    }

    /// Per-tile stream seeds derive from `(root, tile)` alone and never
    /// collide across the tiles of one run or between nearby roots.
    #[test]
    fn tile_seeds_never_collide(root in 0u64..1_000_000, tiles in 2u32..512) {
        let mut seen = std::collections::HashSet::new();
        for t in 0..tiles {
            prop_assert!(
                seen.insert(tile_stream_seed(root, t)),
                "collision at tile {} of root {}", t, root
            );
        }
        prop_assert!(
            !seen.contains(&tile_stream_seed(root + 1, 0)),
            "adjacent root collides with root {}'s tiles", root
        );
    }
}
