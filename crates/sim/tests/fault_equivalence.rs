//! Equivalence and conservation suite for fault injection
//! (`SimConfig::faults`): a faulted sweep must be byte-identical
//! across execution backends, thread counts, injection and allocation
//! policies — faults are one more sweep axis, not a second simulator —
//! while the empty plan stays bit-identical to a build that never
//! heard of faults. The conservation law under faults: every packet
//! injected in the measurement window is delivered, dropped by a fault,
//! or still in flight (and only unstable runs keep any in flight).

use proptest::prelude::*;
use shg_sim::{
    AllocPolicy, ExecBackend, Experiment, FaultPlan, InjectionPolicy, Network, ScanPolicy,
    SimConfig, SimOutcome, SweepSpec, TrafficPattern,
};
use shg_topology::db::TopologyDb;
use shg_topology::{generators, routing, Grid, Topology};
use shg_units::Cycles;

const INJECTIONS: [InjectionPolicy; 3] = [
    InjectionPolicy::EventDriven,
    InjectionPolicy::PerCycleScan,
    InjectionPolicy::SharedScan,
];
const ALLOCS: [AllocPolicy; 2] = [AllocPolicy::RequestQueue, AllocPolicy::FullScan];

/// A drain-policy plan that exercises every fault path on a 4x4 grid:
/// tile 0 loses both its links (unroutable injections + in-flight
/// packets sunk mid-route), then a router dies (buffered flits lost,
/// incident channels discard arrivals).
const DRAIN_PLAN: &str = "drain,600:link:0-1,600:link:0-4,900:router:5";
/// The same kills under the pessimistic drop policy (whole-fabric
/// state discard at each epoch).
const DROP_PLAN: &str = "600:link:0-1,600:link:0-4,900:router:5";

fn faulted_config(plan: &str, injection: InjectionPolicy, alloc: AllocPolicy) -> SimConfig {
    SimConfig {
        injection,
        alloc,
        faults: FaultPlan::parse(plan).expect("plan parses"),
        ..SimConfig::fast_test()
    }
}

fn experiment<'a>(
    spec: SweepSpec,
    cases: &[(&str, &'a Topology)],
    backend: ExecBackend,
    lanes: usize,
) -> Experiment<'a> {
    let mut experiment = Experiment::new(spec)
        .with_backend(backend)
        .with_lanes(lanes);
    for &(name, topology) in cases {
        experiment = experiment
            .with_unit_latency_case(name, topology)
            .expect("routes build");
    }
    experiment
}

/// The headline matrix: for every injection × allocation pair and both
/// in-flight policies, a faulted sweep serializes byte-identically
/// across {per-cell, reuse, batched} backends and 1-vs-N threads.
#[test]
fn faulted_sweeps_match_across_backends_and_threads() {
    let grid = Grid::new(4, 4);
    let mesh = generators::mesh(grid);
    let fb = generators::flattened_butterfly(grid);
    let cases = [("mesh", &mesh), ("fb", &fb)];
    for plan in [DROP_PLAN, DRAIN_PLAN] {
        for injection in INJECTIONS {
            for alloc in ALLOCS {
                let spec = || {
                    SweepSpec::new(faulted_config(plan, injection, alloc))
                        .rates([0.05, 0.25])
                        .patterns([TrafficPattern::UniformRandom, TrafficPattern::Transpose])
                };
                let reference = experiment(spec(), &cases, ExecBackend::PerCell, 1);
                let reference_json = reference.run_parallel().to_json();
                assert_eq!(
                    reference_json,
                    reference.run_with_threads(1).to_json(),
                    "{plan}/{injection}/{alloc}: thread count changed the sweep bytes"
                );
                for (backend, lanes) in [
                    (ExecBackend::Reuse, 1),
                    (ExecBackend::Batched, 1),
                    (ExecBackend::Batched, 4),
                ] {
                    let other = experiment(spec(), &cases, backend, lanes)
                        .run_parallel()
                        .to_json();
                    assert_eq!(
                        reference_json, other,
                        "{plan}/{injection}/{alloc}: {backend} K={lanes} changed the sweep bytes"
                    );
                }
            }
        }
    }
}

/// Every faulted batched point must reproduce `Network::run_validated`
/// — the reference engine with its cross-structure invariants (buffer
/// accounting, credit conservation, the sinking-VC invariant) asserted
/// every cycle — under both scan policies.
#[test]
fn faulted_points_match_validated_reference() {
    let mesh = generators::mesh(Grid::new(4, 4));
    for plan in [DROP_PLAN, DRAIN_PLAN] {
        let config = faulted_config(
            plan,
            InjectionPolicy::EventDriven,
            AllocPolicy::RequestQueue,
        );
        let spec = SweepSpec::new(config.clone())
            .rates([0.05, 0.3])
            .patterns([TrafficPattern::UniformRandom, TrafficPattern::Hotspot(20)]);
        let result = experiment(spec, &[("mesh", &mesh)], ExecBackend::Batched, 4).run_parallel();
        let routes = routing::default_routes(&mesh).expect("routes");
        let latencies = vec![Cycles::one(); mesh.num_links()];
        for point in &result.points {
            for scan in [ScanPolicy::ActiveSet, ScanPolicy::FullScan] {
                let config = SimConfig {
                    seed: point.seed,
                    ..config.clone()
                };
                let reference = Network::new(&mesh, &routes, &latencies, config).run_validated(
                    point.rate,
                    point.pattern,
                    scan,
                );
                assert_eq!(
                    reference, point.outcome,
                    "{plan}/{scan:?}: batched lane diverged from the validated \
                     reference at rate {} {:?}",
                    point.rate, point.pattern
                );
            }
        }
        // The kills isolate tile 0 mid-run: the plan must actually have
        // touched traffic for this test to bite.
        assert!(
            result.points.iter().any(|p| !p.outcome.faults.is_zero()),
            "{plan}: no point recorded any fault effect"
        );
    }
}

/// An explicitly-empty fault plan is the default: same sweep bytes,
/// same plan fingerprint — so `--faults ''` and no flag share cache
/// entries and coordinator handshakes.
#[test]
fn empty_plan_is_bit_identical_to_no_flag() {
    let mesh = generators::mesh(Grid::new(4, 4));
    let cases = [("mesh", &mesh)];
    let no_flag = || {
        SweepSpec::new(SimConfig::fast_test())
            .rates([0.05, 0.3])
            .patterns([TrafficPattern::UniformRandom])
    };
    let empty = || {
        SweepSpec::new(SimConfig {
            faults: FaultPlan::parse("").expect("empty plan parses"),
            ..SimConfig::fast_test()
        })
        .rates([0.05, 0.3])
        .patterns([TrafficPattern::UniformRandom])
    };
    let reference = experiment(no_flag(), &cases, ExecBackend::PerCell, 1);
    let with_empty = experiment(empty(), &cases, ExecBackend::Batched, 4);
    assert_eq!(
        reference.plan().fingerprint(),
        with_empty.plan().fingerprint(),
        "an empty fault plan changed the plan fingerprint"
    );
    let json = reference.run_parallel().to_json();
    assert_eq!(
        json,
        with_empty.run_parallel().to_json(),
        "an empty fault plan changed the sweep bytes"
    );
    assert!(
        !json.contains("faults"),
        "fault-free sweep output must not mention faults"
    );
}

/// A non-empty plan changes the plan fingerprint (faulty and
/// fault-free cells must never collide in caches or shard merges), and
/// its effects serialize into the sweep output.
#[test]
fn faulted_plans_fingerprint_and_serialize_distinctly() {
    let mesh = generators::mesh(Grid::new(4, 4));
    let cases = [("mesh", &mesh)];
    let spec = |plan: &str| {
        SweepSpec::new(faulted_config(
            plan,
            InjectionPolicy::EventDriven,
            AllocPolicy::RequestQueue,
        ))
        .rates([0.25])
        .patterns([TrafficPattern::UniformRandom])
    };
    let clean = experiment(spec(""), &cases, ExecBackend::PerCell, 1);
    let faulted = experiment(spec(DRAIN_PLAN), &cases, ExecBackend::PerCell, 1);
    assert_ne!(
        clean.plan().fingerprint(),
        faulted.plan().fingerprint(),
        "a fault plan must change the plan fingerprint"
    );
    let json = faulted.run_parallel().to_json();
    assert!(
        json.contains("dropped_packets") || json.contains("unroutable_packets"),
        "faulted sweep output must carry the fault accounting: {json}"
    );
}

/// Packets injected in the measurement window, recovered from the
/// outcome's offered rate (exact: the product round-trips the integer
/// flit count).
fn injected_packets(outcome: &SimOutcome, config: &SimConfig, nodes: f64) -> u64 {
    let flits = (outcome.offered_rate * config.measure as f64 * nodes).round() as u64;
    assert_eq!(flits % u64::from(config.packet_len), 0, "whole packets");
    flits / u64::from(config.packet_len)
}

/// Conservation on a fixed topology: injected = delivered + dropped
/// (+ in-flight, which stable runs reduce to zero).
#[test]
fn faulted_runs_conserve_packets() {
    let mesh = generators::mesh(Grid::new(4, 4));
    let routes = routing::default_routes(&mesh).expect("routes");
    let latencies = vec![Cycles::one(); mesh.num_links()];
    for plan in [DROP_PLAN, DRAIN_PLAN] {
        let config = faulted_config(
            plan,
            InjectionPolicy::EventDriven,
            AllocPolicy::RequestQueue,
        );
        let outcome = Network::new(&mesh, &routes, &latencies, config.clone())
            .run(0.1, TrafficPattern::UniformRandom);
        let injected = injected_packets(&outcome, &config, mesh.num_tiles() as f64);
        let accounted = outcome.measured_packets + outcome.faults.dropped_packets;
        assert!(
            accounted <= injected,
            "{plan}: delivered+dropped {accounted} exceeds injected {injected}"
        );
        assert_eq!(
            accounted == injected,
            outcome.stable,
            "{plan}: in-flight packets and stability disagree ({outcome:?})"
        );
        assert!(
            outcome.faults.dropped_packets > 0,
            "{plan}: the kills must actually drop traffic for this test to bite"
        );
    }
}

/// A deterministic splitmix stream for the proptest's derived choices.
fn mix(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Random kill sets on random 2-die databases: whatever dies —
    /// seam links, SHG skips, whole routers, possibly partitioning the
    /// network — conservation holds, and the batched core agrees with
    /// the reference engine bit for bit.
    #[test]
    fn random_kill_sets_on_two_die_dbs_conserve_packets(
        seed in 0u64..100_000,
        drain_bit in 0u8..2,
        kills in 1usize..4,
    ) {
        let drain = drain_bit == 1;
        let mut stream = seed;
        let bases = ["mesh", "torus", "fb"];
        let left = bases[(mix(&mut stream) % 3) as usize];
        let right = bases[(mix(&mut stream) % 3) as usize];
        let rows = 3 + (mix(&mut stream) % 2) as u16; // 3 or 4
        let cols = 3 + (mix(&mut stream) % 2) as u16;
        let every = 1 + (mix(&mut stream) % 2) as u16;
        let db = TopologyDb::parse(&format!(
            "die a {rows}x{cols} {left}; die b {rows}x{cols} {right}; \
             boundary every={every} latency=2"
        ))
        .expect("db parses");
        let topology = db.instantiate().expect("db instantiates");
        let n = topology.num_tiles() as u32;
        // Random kill set: links drawn from the instantiated link list
        // (so they exist), routers from the tile range; duplicates are
        // skipped rather than re-drawn to keep the plan valid.
        let mut spec_events = Vec::new();
        for _ in 0..kills {
            let cycle = 300 + mix(&mut stream) % 1200;
            if mix(&mut stream).is_multiple_of(2) {
                let link = topology.links()[(mix(&mut stream) as usize) % topology.num_links()];
                spec_events.push(format!("{cycle}:link:{}-{}", link.a.index(), link.b.index()));
            } else {
                spec_events.push(format!("{cycle}:router:{}", mix(&mut stream) % u64::from(n)));
            }
        }
        let mut spec_text = if drain { String::from("drain,") } else { String::new() };
        spec_text.push_str(&spec_events.join(","));
        let mut parsed = FaultPlan::parse(&spec_text).expect("spec parses");
        // Drop duplicate kills (the validator rejects them by design).
        let mut seen = std::collections::BTreeSet::new();
        parsed.events.retain(|e| seen.insert(format!("{:?}", e.kill.canonical())));
        let plan = parsed;
        prop_assert!(plan.validate(&topology).is_ok(), "constructed plan validates");
        let config = SimConfig {
            faults: plan,
            ..SimConfig::fast_test()
        };
        let spec = SweepSpec::new(config.clone())
            .rates([0.08])
            .patterns([TrafficPattern::UniformRandom]);
        let cases = [("db", &topology)];
        let reference = experiment(spec.clone(), &cases, ExecBackend::PerCell, 1).run_parallel();
        let batched = experiment(spec, &cases, ExecBackend::Batched, 2).run_parallel();
        prop_assert_eq!(
            reference.to_json(),
            batched.to_json(),
            "batched diverged from per-cell on a random faulted 2-die db"
        );
        for point in &reference.points {
            let injected = injected_packets(&point.outcome, &config, topology.num_tiles() as f64);
            let accounted = point.outcome.measured_packets + point.outcome.faults.dropped_packets;
            prop_assert!(accounted <= injected, "delivered+dropped exceeds injected");
            prop_assert_eq!(
                accounted == injected,
                point.outcome.stable,
                "in-flight packets and stability disagree: {:?}",
                point.outcome
            );
        }
    }
}
