//! Determinism regression for the sweep engine: the same `SweepSpec`
//! run with 1 thread and with N threads must produce byte-identical
//! JSON output — the contract every future scaling PR (sharding,
//! batching, remote backends) builds on.

use shg_sim::sweep::ALL_PATTERNS;
use shg_sim::{Experiment, SimConfig, SweepSpec, TrafficPattern};
use shg_topology::{generators, Grid};

#[test]
fn one_thread_and_many_threads_produce_identical_json() {
    let grid = Grid::new(4, 4);
    let mesh = generators::mesh(grid);
    let torus = generators::torus(grid);
    let spec = SweepSpec::new(SimConfig::fast_test())
        .rates([0.02, 0.1, 0.3])
        .all_patterns();
    let experiment = Experiment::new(spec)
        .with_unit_latency_case("mesh", &mesh)
        .expect("mesh routes")
        .with_unit_latency_case("torus", &torus)
        .expect("torus routes");
    let single = experiment.run_with_threads(1);
    for threads in [2, 4, 8] {
        let parallel = experiment.run_with_threads(threads);
        assert_eq!(
            single, parallel,
            "outcomes differ between 1 and {threads} threads"
        );
        assert_eq!(
            single.to_json(),
            parallel.to_json(),
            "JSON bytes differ between 1 and {threads} threads"
        );
    }
    // Re-running the whole experiment reproduces the bytes too.
    assert_eq!(single.to_json(), experiment.run_parallel().to_json());
    assert_eq!(single.points.len(), 2 * ALL_PATTERNS.len() * 3);
}

#[test]
fn distinct_seeds_change_results_but_stay_deterministic() {
    let grid = Grid::new(4, 4);
    let mesh = generators::mesh(grid);
    let spec = |seed: u64| {
        SweepSpec::new(SimConfig {
            seed,
            ..SimConfig::fast_test()
        })
        .rates([0.1])
        .patterns([TrafficPattern::UniformRandom])
    };
    let run = |seed: u64| {
        Experiment::new(spec(seed))
            .with_unit_latency_case("mesh", &mesh)
            .expect("routes")
            .run_parallel()
    };
    let a1 = run(1);
    let a2 = run(1);
    let b = run(2);
    assert_eq!(a1, a2, "same root seed reproduces");
    assert_ne!(
        a1.points[0].outcome.measured_packets, b.points[0].outcome.measured_packets,
        "different root seeds should measure different packet counts"
    );
}
