//! Determinism regression for the sweep engine: the same `SweepSpec`
//! run with 1 thread and with N threads must produce byte-identical
//! JSON output — the contract every future scaling PR (sharding,
//! batching, remote backends) builds on. The per-tile injection
//! streams must preserve it: every tile seed derives from the
//! per-point seed, which derives from grid coordinates alone.
//!
//! The sharding consequence is pinned here too: any N-way shard split
//! of a sweep, merged, serializes to the single-shot bytes — across
//! shard counts and every injection/allocation policy (proptest).

use proptest::prelude::*;
use rayon::ThreadPool;
use shg_sim::sweep::ALL_PATTERNS;
use shg_sim::{
    AllocPolicy, ExecBackend, Experiment, InjectionPolicy, ShardSpec, SimConfig, SweepResult,
    SweepSpec, TrafficPattern,
};
use shg_topology::{generators, Grid};

/// One pool per thread count, built once — `run_with_threads` would
/// rebuild the pool on every invocation inside the policy loop.
fn pool(threads: usize) -> ThreadPool {
    rayon::ThreadPoolBuilder::new()
        .num_threads(threads)
        .build()
        .expect("thread pool builds")
}

#[test]
fn one_thread_and_many_threads_produce_identical_json() {
    let grid = Grid::new(4, 4);
    let mesh = generators::mesh(grid);
    let torus = generators::torus(grid);
    let single_pool = pool(1);
    let pools: Vec<ThreadPool> = [2, 4, 8].into_iter().map(pool).collect();
    // Pairs cover both injection policies and both allocation policies
    // without paying for the full cross product.
    for (injection, alloc) in [
        (InjectionPolicy::EventDriven, AllocPolicy::RequestQueue),
        (InjectionPolicy::EventDriven, AllocPolicy::FullScan),
        (InjectionPolicy::PerCycleScan, AllocPolicy::RequestQueue),
    ] {
        let spec = SweepSpec::new(SimConfig {
            injection,
            alloc,
            ..SimConfig::fast_test()
        })
        .rates([0.02, 0.1, 0.3])
        .all_patterns();
        let experiment = Experiment::new(spec)
            .with_unit_latency_case("mesh", &mesh)
            .expect("mesh routes")
            .with_unit_latency_case("torus", &torus)
            .expect("torus routes");
        let single = experiment.run_in_pool(&single_pool);
        for parallel_pool in &pools {
            let parallel = experiment.run_in_pool(parallel_pool);
            assert_eq!(
                single, parallel,
                "{injection}/{alloc}: outcomes differ between 1 and N threads"
            );
            assert_eq!(
                single.to_json(),
                parallel.to_json(),
                "{injection}/{alloc}: JSON bytes differ between 1 and N threads"
            );
        }
        // Re-running the whole experiment reproduces the bytes too.
        assert_eq!(single.to_json(), experiment.run_parallel().to_json());
        assert_eq!(single.points.len(), 2 * ALL_PATTERNS.len() * 3);
    }
}

/// The batched core under the same contract: a batched sweep run with
/// 1 thread and with N threads — different group fan-out, different
/// lane fill patterns — serializes to the same bytes, which are the
/// per-cell reference's bytes.
#[test]
fn batched_sweeps_serialize_identically_at_one_and_many_threads() {
    let grid = Grid::new(4, 4);
    let mesh = generators::mesh(grid);
    let torus = generators::torus(grid);
    let single_pool = pool(1);
    let pools: Vec<ThreadPool> = [2, 8].into_iter().map(pool).collect();
    let spec = || {
        SweepSpec::new(SimConfig::fast_test())
            .rates([0.02, 0.1, 0.3])
            .patterns([TrafficPattern::UniformRandom, TrafficPattern::Hotspot(20)])
    };
    let experiment = |backend: ExecBackend, lanes: usize| {
        Experiment::new(spec())
            .with_backend(backend)
            .with_lanes(lanes)
            .with_unit_latency_case("mesh", &mesh)
            .expect("mesh routes")
            .with_unit_latency_case("torus", &torus)
            .expect("torus routes")
    };
    let reference = experiment(ExecBackend::PerCell, 1)
        .run_in_pool(&single_pool)
        .to_json();
    for lanes in [3, 8] {
        let batched = experiment(ExecBackend::Batched, lanes);
        assert_eq!(
            reference,
            batched.run_in_pool(&single_pool).to_json(),
            "K={lanes}: batched bytes differ from the reference at 1 thread"
        );
        for parallel_pool in &pools {
            assert_eq!(
                reference,
                batched.run_in_pool(parallel_pool).to_json(),
                "K={lanes}: batched bytes differ between 1 and N threads"
            );
        }
    }
}

/// The whole-sweep consequence of the injection bit-identity: since
/// event-driven and per-cycle scan agree on every outcome and the
/// derived seeds don't depend on the policy, the *serialized sweeps*
/// are byte-identical too (the config is not part of the result).
#[test]
fn event_driven_and_per_cycle_scan_sweeps_serialize_identically() {
    let mesh = generators::mesh(Grid::new(4, 4));
    let run = |injection: InjectionPolicy| {
        let spec = SweepSpec::new(SimConfig {
            injection,
            ..SimConfig::fast_test()
        })
        .rates([0.05, 0.25])
        .all_patterns()
        .hotspot_low_rates(2, 0.01);
        Experiment::new(spec)
            .with_unit_latency_case("mesh", &mesh)
            .expect("mesh routes")
            .run_parallel()
    };
    assert_eq!(
        run(InjectionPolicy::EventDriven).to_json(),
        run(InjectionPolicy::PerCycleScan).to_json(),
        "injection policies leaked into sweep results"
    );
}

/// The whole-sweep consequence of the allocator bit-identity: since the
/// request queue and the exhaustive scan agree on every outcome and the
/// derived seeds don't depend on the policy, the serialized sweeps are
/// byte-identical too (the allocator twin of the injection test above).
#[test]
fn request_queue_and_full_scan_sweeps_serialize_identically() {
    let fb = generators::flattened_butterfly(Grid::new(4, 4));
    let run = |alloc: AllocPolicy| {
        let spec = SweepSpec::new(SimConfig {
            alloc,
            ..SimConfig::fast_test()
        })
        .rates([0.05, 0.25])
        .all_patterns()
        .hotspot_low_rates(2, 0.01);
        Experiment::new(spec)
            .with_unit_latency_case("fb", &fb)
            .expect("fb routes")
            .run_parallel()
    };
    assert_eq!(
        run(AllocPolicy::RequestQueue).to_json(),
        run(AllocPolicy::FullScan).to_json(),
        "allocation policies leaked into sweep results"
    );
}

#[test]
fn distinct_seeds_change_results_but_stay_deterministic() {
    let grid = Grid::new(4, 4);
    let mesh = generators::mesh(grid);
    let spec = |seed: u64| {
        SweepSpec::new(SimConfig {
            seed,
            ..SimConfig::fast_test()
        })
        .rates([0.1])
        .patterns([TrafficPattern::UniformRandom])
    };
    let run = |seed: u64| {
        Experiment::new(spec(seed))
            .with_unit_latency_case("mesh", &mesh)
            .expect("routes")
            .run_parallel()
    };
    let a1 = run(1);
    let a2 = run(1);
    let b = run(2);
    assert_eq!(a1, a2, "same root seed reproduces");
    assert_ne!(
        a1.points[0].outcome.measured_packets, b.points[0].outcome.measured_packets,
        "different root seeds should measure different packet counts"
    );
}

const SHARD_COUNTS: [u32; 5] = [1, 2, 3, 5, 8];
const INJECTIONS: [InjectionPolicy; 3] = [
    InjectionPolicy::EventDriven,
    InjectionPolicy::PerCycleScan,
    InjectionPolicy::SharedScan,
];
const ALLOCS: [AllocPolicy; 2] = [AllocPolicy::RequestQueue, AllocPolicy::FullScan];

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// Shard-union byte-identity: for any shard count and any
    /// injection/allocation policy pair, merging the N shard runs
    /// serializes to exactly the bytes of the single-shot
    /// `run_parallel` JSON.
    #[test]
    fn sharded_runs_merge_to_the_single_shot_bytes(
        count_idx in 0..SHARD_COUNTS.len(),
        injection_idx in 0..INJECTIONS.len(),
        alloc_idx in 0..ALLOCS.len(),
        seed in 0u64..1_000,
    ) {
        let count = SHARD_COUNTS[count_idx];
        let mesh = generators::mesh(Grid::new(4, 4));
        let spec = SweepSpec::new(SimConfig {
            injection: INJECTIONS[injection_idx],
            alloc: ALLOCS[alloc_idx],
            seed,
            ..SimConfig::fast_test()
        })
        .rates([0.05, 0.3])
        .patterns([TrafficPattern::UniformRandom, TrafficPattern::Hotspot(20)])
        .hotspot_low_rates(2, 0.01);
        let experiment = Experiment::new(spec)
            .with_unit_latency_case("mesh", &mesh)
            .expect("mesh routes");
        let single = experiment.run_parallel().to_json();
        // Merge in a scrambled order: canonical re-ordering is merge's job.
        let mut shards: Vec<_> = (0..count)
            .map(|i| experiment.run_shard(ShardSpec::new(i, count)))
            .collect();
        shards.rotate_left(count as usize / 2);
        let merged = SweepResult::merge(shards).expect("disjoint, complete shards merge");
        prop_assert_eq!(merged.to_json(), single);
    }
}
