//! Sparse Hamming graph: topology, prediction toolchain and customization.
//!
//! This crate implements the three contributions of *"Sparse Hamming
//! Graph: A Customizable Network-on-Chip Topology"* (DAC 2023) on top of
//! the substrate crates:
//!
//! 1. **Design principles** — computed compliance lives in
//!    [`shg_topology::compliance`]; this crate applies them through the
//!    customization strategy.
//! 2. **The sparse Hamming graph topology** — [`SparseHammingConfig`]
//!    with its `2^(R+C−4)` design space (Section III).
//! 3. **The prediction toolchain** — [`Toolchain`] combines the
//!    floorplan model ([`shg_floorplan`]) with the cycle-accurate
//!    simulator ([`shg_sim`]) exactly as in Fig. 3, and [`customize`]
//!    drives it through the Section V-a loop.
//!
//! [`Scenario`] reproduces the four KNC-like target architectures of the
//! evaluation, and [`MempoolReference`] the Table III validation.
//!
//! # Examples
//!
//! ```no_run
//! use shg_core::{Scenario, Toolchain};
//!
//! let scenario = Scenario::knc_a();
//! let toolchain = Toolchain::default();
//! let shg = scenario.shg.build();
//! let eval = toolchain.evaluate(&scenario.params, &shg)?;
//! println!(
//!     "area overhead {:.1}%, saturation throughput {:.1}%",
//!     eval.area_overhead * 100.0,
//!     eval.saturation_throughput * 100.0
//! );
//! # Ok::<(), shg_core::EvaluateError>(())
//! ```

mod customize;
pub mod report;
mod scenario;
mod sparse_hamming;
mod toolchain;

pub use customize::{customize, CustomizationStep, CustomizationTrace, DesignGoals};
pub use scenario::{MempoolReference, Scenario};
pub use sparse_hamming::SparseHammingConfig;
pub use toolchain::{
    analytic_saturation, AnnotatedTopology, EvaluateError, Evaluation, PatternPerformance,
    PerformanceMode, Toolchain,
};
