//! The NoC topology customization strategy of Section V-a.
//!
//! Starting from the simplest sparse Hamming graph (the mesh), the loop
//! repeatedly: estimates cost and performance with the prediction
//! toolchain, compares them to the design goals, and grows the skip sets
//! `SR`/`SC` to eliminate the identified insufficiency — until the area
//! budget (40% in the paper) is exhausted.

use serde::{Deserialize, Serialize};

use shg_floorplan::ArchParams;

use crate::sparse_hamming::SparseHammingConfig;
use crate::toolchain::{EvaluateError, Evaluation, Toolchain};

/// The optimization goal, mirroring the paper's evaluation: maximize
/// saturation throughput (priority 1) and minimize zero-load latency
/// (priority 2) without exceeding the area budget.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DesignGoals {
    /// Maximum acceptable NoC area overhead (fraction of chip area).
    pub area_budget: f64,
}

impl Default for DesignGoals {
    fn default() -> Self {
        Self { area_budget: 0.4 }
    }
}

/// One accepted step of the customization loop.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CustomizationStep {
    /// The configuration after this step.
    pub config: SparseHammingConfig,
    /// Its toolchain evaluation.
    pub evaluation: Evaluation,
}

/// The full trace of a customization run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CustomizationTrace {
    /// Every accepted configuration, starting with the mesh.
    pub steps: Vec<CustomizationStep>,
}

impl CustomizationTrace {
    /// The final (best) step.
    ///
    /// # Panics
    ///
    /// Panics if the trace is empty, which `customize` never produces.
    #[must_use]
    pub fn best(&self) -> &CustomizationStep {
        self.steps.last().expect("trace contains at least the mesh")
    }
}

/// Ranks an evaluation against the goals: feasible first, then higher
/// throughput, then lower latency — the paper's priority order.
fn score(eval: &Evaluation, goals: &DesignGoals) -> (bool, f64, f64) {
    (
        eval.area_overhead <= goals.area_budget,
        eval.saturation_throughput,
        -eval.zero_load_latency,
    )
}

/// Runs the customization strategy.
///
/// Greedy hill climbing over the `2^(R+C−4)` design space: each iteration
/// evaluates every single-skip extension of the current configuration
/// (step 4 of the paper's strategy) with the (typically fast/analytic)
/// toolchain, and accepts the best one that stays within the area budget
/// and improves the goal score.
///
/// # Errors
///
/// Returns [`EvaluateError`] if the toolchain fails on a candidate, which
/// indicates a routing problem.
pub fn customize(
    toolchain: &Toolchain,
    params: &ArchParams,
    goals: DesignGoals,
) -> Result<CustomizationTrace, EvaluateError> {
    let grid = params.grid;
    let mut current = SparseHammingConfig::mesh(grid.rows(), grid.cols());
    let mut current_eval = toolchain.evaluate(params, &current.build())?;
    let mut steps = vec![CustomizationStep {
        config: current.clone(),
        evaluation: current_eval.clone(),
    }];
    loop {
        let mut best: Option<(SparseHammingConfig, Evaluation)> = None;
        for candidate in current.grow_moves() {
            let eval = toolchain.evaluate(params, &candidate.build())?;
            if eval.area_overhead > goals.area_budget {
                continue;
            }
            let better_than_best = best
                .as_ref()
                .map(|(_, b)| score(&eval, &goals) > score(b, &goals))
                .unwrap_or(true);
            if better_than_best {
                best = Some((candidate, eval));
            }
        }
        match best {
            Some((config, eval)) if score(&eval, &goals) > score(&current_eval, &goals) => {
                current = config;
                current_eval = eval;
                steps.push(CustomizationStep {
                    config: current.clone(),
                    evaluation: current_eval.clone(),
                });
            }
            _ => break,
        }
    }
    Ok(CustomizationTrace { steps })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::Scenario;
    use crate::toolchain::PerformanceMode;
    use shg_floorplan::ModelOptions;
    use shg_sim::SimConfig;

    fn fast_toolchain() -> Toolchain {
        Toolchain {
            model_options: ModelOptions {
                cell_scale: 6.0,
                ..ModelOptions::default()
            },
            sim: SimConfig::fast_test(),
            mode: PerformanceMode::Analytic,
            ..Toolchain::default()
        }
    }

    #[test]
    fn customization_starts_at_mesh_and_improves() {
        let scenario = Scenario::knc_a();
        let trace = customize(
            &fast_toolchain(),
            &scenario.params,
            DesignGoals { area_budget: 0.4 },
        )
        .expect("customization runs");
        assert!(trace.steps[0].config.is_mesh());
        assert!(trace.steps.len() > 1, "should add at least one skip set");
        let first = &trace.steps[0].evaluation;
        let last = trace.best();
        assert!(
            last.evaluation.saturation_throughput > first.saturation_throughput,
            "throughput should improve: {} → {}",
            first.saturation_throughput,
            last.evaluation.saturation_throughput
        );
        assert!(last.evaluation.area_overhead <= 0.4);
    }

    #[test]
    fn tight_budget_stays_near_mesh() {
        let scenario = Scenario::knc_a();
        let toolchain = fast_toolchain();
        let mesh_eval = toolchain
            .evaluate(&scenario.params, &SparseHammingConfig::mesh(8, 8).build())
            .expect("mesh evaluates");
        // Budget barely above the mesh's own overhead: few or no skips fit.
        let budget = mesh_eval.area_overhead + 0.02;
        let trace = customize(
            &toolchain,
            &scenario.params,
            DesignGoals {
                area_budget: budget,
            },
        )
        .expect("customization runs");
        let last = trace.best();
        assert!(last.evaluation.area_overhead <= budget);
        assert!(last.config.sr().len() + last.config.sc().len() <= 2);
    }

    #[test]
    fn steps_monotonically_improve_score() {
        let scenario = Scenario::knc_a();
        let goals = DesignGoals { area_budget: 0.4 };
        let trace = customize(&fast_toolchain(), &scenario.params, goals).expect("runs");
        for pair in trace.steps.windows(2) {
            assert!(
                score(&pair[1].evaluation, &goals) > score(&pair[0].evaluation, &goals),
                "non-improving step"
            );
        }
    }
}
