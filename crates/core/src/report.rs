//! Plain-text table rendering for the experiment harness.
//!
//! Keeps the bench binaries' output aligned with the rows/series the
//! paper reports, so EXPERIMENTS.md can be filled in by copy-paste.

use crate::toolchain::Evaluation;

/// Renders a Fig. 6-style comparison table: one row per topology with the
/// four metrics of the cost and performance panels.
///
/// # Examples
///
/// ```
/// use shg_core::report;
/// let table = report::evaluation_table(&[]);
/// assert!(table.contains("Topology"));
/// ```
#[must_use]
pub fn evaluation_table(evaluations: &[Evaluation]) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "{:<24} {:>6} {:>12} {:>12} {:>14} {:>14}\n",
        "Topology", "Radix", "AreaOvh[%]", "Power[W]", "ZLL[cycles]", "SatThr[%]"
    ));
    out.push_str(&"-".repeat(88));
    out.push('\n');
    for e in evaluations {
        out.push_str(&format!(
            "{:<24} {:>6} {:>12.1} {:>12.2} {:>14.1} {:>14.1}\n",
            e.name,
            e.router_radix,
            e.area_overhead * 100.0,
            e.noc_power.value(),
            e.zero_load_latency,
            e.saturation_throughput * 100.0,
        ));
    }
    out
}

/// Renders a Table III-style validation row: metric, published value,
/// prediction and relative error.
#[must_use]
pub fn validation_row(metric: &str, correct: f64, predicted: f64, unit: &str) -> String {
    let error = if correct.abs() < f64::EPSILON {
        f64::INFINITY
    } else {
        ((predicted - correct) / correct * 100.0).abs()
    };
    format!("{metric:<12} {correct:>12.3} {predicted:>12.3} {unit:<8} {error:>8.0}%")
}

/// Renders a compliance grade table (Table I) from the computed rows.
#[must_use]
pub fn compliance_table(rows: &[shg_topology::compliance::ComplianceRow]) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "{:<24} {:>6} {:>6} {:>6} {:>6} {:>6} {:>9} {:>8} {:>6} {:>14}\n",
        "Topology", "Radix", "SL", "AL", "ULD", "OPP", "Diameter", "MinPres", "MinUse", "#Configs"
    ));
    out.push_str(&"-".repeat(100));
    out.push('\n');
    for r in rows {
        out.push_str(&format!(
            "{:<24} {:>6} {:>6} {:>6} {:>6} {:>6} {:>9} {:>8} {:>6} {:>14}\n",
            r.name,
            r.router_radix,
            r.short_links.to_string(),
            r.aligned_links.to_string(),
            r.uniform_density.to_string(),
            r.port_placement.to_string(),
            r.diameter,
            if r.minimal_paths_present { "yes" } else { "no" },
            if r.minimal_paths_used { "yes" } else { "no" },
            r.num_configurations,
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn validation_row_computes_relative_error() {
        let row = validation_row("Area", 21.16, 24.26, "mm2");
        assert!(row.contains("15%"), "row: {row}");
    }

    #[test]
    fn compliance_table_renders() {
        let grid = shg_topology::Grid::new(4, 4);
        let rows = shg_topology::compliance::table1(grid, None);
        let table = compliance_table(&rows);
        assert!(table.contains("2D Mesh"));
        assert!(table.contains("Flattened Butterfly"));
    }
}
