//! Evaluation scenarios — the target architectures of Section V-b and the
//! MemPool validation target of Section IV-C.

use serde::{Deserialize, Serialize};

use shg_floorplan::ArchParams;
use shg_sim::SimConfig;
use shg_topology::Grid;
use shg_units::{
    AspectRatio, BitsPerCycle, GateEquivalents, Hertz, RouterAreaModel, Technology, Transport,
};

use crate::sparse_hamming::SparseHammingConfig;

/// One evaluation scenario: an architecture plus the sparse Hamming graph
/// configuration the paper selected for it.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Scenario {
    /// Scenario identifier, e.g. `"a"`.
    pub name: String,
    /// Human-readable description.
    pub description: String,
    /// Architectural parameters (Table II inputs).
    pub params: ArchParams,
    /// The customized sparse Hamming configuration from Fig. 6.
    pub shg: SparseHammingConfig,
    /// Simulator configuration (8 VCs, 32-flit buffers per Section V-b).
    pub sim: SimConfig,
    /// The paper's NoC area budget: 40% of total chip area.
    pub area_budget: f64,
}

fn knc_base(grid: Grid, endpoint_mge: f64, cores_per_tile: u32) -> ArchParams {
    ArchParams {
        grid,
        endpoint_area: GateEquivalents::mega(endpoint_mge),
        endpoints_per_tile: cores_per_tile,
        aspect_ratio: AspectRatio::square(),
        frequency: Hertz::giga(1.2),
        bandwidth: BitsPerCycle::new(512),
        technology: Technology::example_22nm(),
        transport: Transport::axi_like(),
        router_model: RouterAreaModel::input_queued(8, 32),
    }
}

impl Scenario {
    /// Scenario (a): KNC-like — 64 tiles (8×8) of 35 MGE with 1 core each,
    /// 512 bits/cycle links at 1.2 GHz. SHG parameters: SR = {4},
    /// SC = {2, 5}.
    ///
    /// # Examples
    ///
    /// ```
    /// use shg_core::Scenario;
    /// let s = Scenario::knc_a();
    /// assert_eq!(s.params.grid.num_tiles(), 64);
    /// ```
    #[must_use]
    pub fn knc_a() -> Self {
        Self {
            name: "a".to_owned(),
            description: "64 tiles with 35MGE and 1 core each".to_owned(),
            params: knc_base(Grid::new(8, 8), 35.0, 1),
            shg: SparseHammingConfig::new(8, 8, [4], [2, 5]).expect("paper parameters"),
            sim: SimConfig::default(),
            area_budget: 0.4,
        }
    }

    /// Scenario (b): 2× cores per tile — 64 tiles of 70 MGE with 2 cores.
    /// SHG parameters: SR = {2, 4}, SC = {2, 4}.
    #[must_use]
    pub fn knc_b() -> Self {
        Self {
            name: "b".to_owned(),
            description: "64 tiles with 70MGE and 2 cores each".to_owned(),
            params: knc_base(Grid::new(8, 8), 70.0, 2),
            shg: SparseHammingConfig::new(8, 8, [2, 4], [2, 4]).expect("paper parameters"),
            sim: SimConfig::default(),
            area_budget: 0.4,
        }
    }

    /// Scenario (c): 2× tiles — 128 tiles (16×8) of 35 MGE.
    /// SHG parameters: SR = {3}, SC = {2, 5}. SlimNoC becomes applicable
    /// (128 = 2·8²).
    #[must_use]
    pub fn knc_c() -> Self {
        Self {
            name: "c".to_owned(),
            description: "128 tiles with 35MGE and 1 core each".to_owned(),
            params: knc_base(Grid::new(16, 8), 35.0, 1),
            shg: SparseHammingConfig::new(16, 8, [3], [2, 5]).expect("paper parameters"),
            sim: SimConfig::default(),
            area_budget: 0.4,
        }
    }

    /// Scenario (d): 2× tiles and 2× cores — 128 tiles of 70 MGE.
    /// SHG parameters: SR = {2, 4}, SC = {2, 4}.
    #[must_use]
    pub fn knc_d() -> Self {
        Self {
            name: "d".to_owned(),
            description: "128 tiles with 70MGE and 2 cores each".to_owned(),
            params: knc_base(Grid::new(16, 8), 70.0, 2),
            shg: SparseHammingConfig::new(16, 8, [2, 4], [2, 4]).expect("paper parameters"),
            sim: SimConfig::default(),
            area_budget: 0.4,
        }
    }

    /// All four Fig. 6 scenarios, in order.
    #[must_use]
    pub fn all_knc() -> Vec<Self> {
        vec![Self::knc_a(), Self::knc_b(), Self::knc_c(), Self::knc_d()]
    }

    /// Looks a scenario up by name (`"a"`–`"d"`).
    #[must_use]
    pub fn by_name(name: &str) -> Option<Self> {
        match name {
            "a" => Some(Self::knc_a()),
            "b" => Some(Self::knc_b()),
            "c" => Some(Self::knc_c()),
            "d" => Some(Self::knc_d()),
            _ => None,
        }
    }
}

/// The MemPool validation target (Section IV-C, Table III): published
/// implementation numbers against which the toolchain's predictions are
/// compared.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MempoolReference {
    /// Architecture parameters approximating MemPool: 64 tiles (8×8) of
    /// 4 Snitch cores + 16 SPM banks each, lean single-cycle transport at
    /// 500 MHz in 22FDX.
    pub params: ArchParams,
    /// Simulator configuration mirroring MemPool's shallow, low-latency
    /// interconnect.
    pub sim: SimConfig,
    /// Published area in mm².
    pub correct_area_mm2: f64,
    /// Published power in W.
    pub correct_power_w: f64,
    /// Published zero-load latency in cycles.
    pub correct_latency_cycles: f64,
    /// Published saturation throughput (fraction).
    pub correct_throughput: f64,
}

impl MempoolReference {
    /// Builds the MemPool-like validation target.
    ///
    /// MemPool routes tile→group→global through a multi-hop hierarchical
    /// interconnect; we model it as a multi-hop mesh fabric over the 8×8
    /// tile grid with a low-power 22FDX-like technology (0.07 W/mm² at
    /// 500 MHz) — see `DESIGN.md`, substitution #4.
    #[must_use]
    pub fn new() -> Self {
        let technology = Technology {
            name: "22FDX-LP".to_owned(),
            logic_watts_per_mm2: 0.07,
            wire_watts_per_mm2: 0.02,
            ..Technology::example_22nm()
        };
        let params = ArchParams {
            grid: Grid::new(8, 8),
            endpoint_area: GateEquivalents::mega(1.0),
            endpoints_per_tile: 4,
            aspect_ratio: AspectRatio::square(),
            frequency: Hertz::giga(0.5),
            bandwidth: BitsPerCycle::new(64),
            technology,
            transport: Transport::lean(),
            router_model: RouterAreaModel::input_queued(2, 4),
        };
        let sim = SimConfig {
            num_vcs: 8,
            buffer_depth: 4,
            packet_len: 1,
            router_overhead: 1,
            ..SimConfig::default()
        };
        Self {
            params,
            sim,
            correct_area_mm2: 21.16,
            correct_power_w: 1.55,
            correct_latency_cycles: 5.0,
            correct_throughput: 0.38,
        }
    }

    /// The topology used for validation: a mesh stand-in for MemPool's
    /// multi-hop hierarchical interconnect.
    #[must_use]
    pub fn topology(&self) -> shg_topology::Topology {
        shg_topology::generators::mesh(self.params.grid)
    }
}

impl Default for MempoolReference {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scenarios_match_paper_parameters() {
        let a = Scenario::knc_a();
        assert_eq!(a.params.grid, Grid::new(8, 8));
        assert_eq!(a.params.endpoint_area.as_mega(), 35.0);
        assert_eq!(a.params.bandwidth.value(), 512);
        assert!((a.params.frequency.value() - 1.2e9).abs() < 1.0);
        let d = Scenario::knc_d();
        assert_eq!(d.params.grid.num_tiles(), 128);
        assert_eq!(d.params.endpoint_area.as_mega(), 70.0);
        assert_eq!(d.params.endpoints_per_tile, 2);
    }

    #[test]
    fn scenario_lookup() {
        for name in ["a", "b", "c", "d"] {
            assert!(Scenario::by_name(name).is_some());
        }
        assert!(Scenario::by_name("e").is_none());
    }

    #[test]
    fn all_scenarios_have_40_percent_budget() {
        for s in Scenario::all_knc() {
            assert!((s.area_budget - 0.4).abs() < 1e-12);
        }
    }

    #[test]
    fn mempool_published_values() {
        let m = MempoolReference::new();
        assert!((m.correct_area_mm2 - 21.16).abs() < 1e-9);
        assert!((m.correct_power_w - 1.55).abs() < 1e-9);
        assert!((m.correct_latency_cycles - 5.0).abs() < 1e-9);
        assert!((m.correct_throughput - 0.38).abs() < 1e-9);
    }

    #[test]
    fn mempool_chip_is_small() {
        // MemPool is a ~21 mm² chip; the no-NoC silicon of our stand-in
        // should be in that ballpark (64 MGE endpoint logic total).
        let m = MempoolReference::new();
        let silicon = m.params.technology.ge_to_mm2(m.params.endpoint_area * 64.0);
        assert!(
            silicon.value() > 10.0 && silicon.value() < 30.0,
            "MemPool-like silicon {silicon}"
        );
    }
}
