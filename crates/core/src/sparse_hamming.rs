//! The sparse Hamming graph configuration — the paper's contribution #2.
//!
//! A sparse Hamming graph over an `R × C` grid is defined by two sets
//! (Section III-b):
//!
//! * `SR ⊆ {x ∈ ℕ | 2 ≤ x < C}` — row skip distances,
//! * `SC ⊆ {x ∈ ℕ | 2 ≤ x < R}` — column skip distances.
//!
//! `SR = SC = ∅` is the 2D mesh; the full sets give the flattened
//! butterfly; everything in between trades cost for performance. The
//! design space has `2^(R+C−4)` configurations (Table I).

use std::collections::BTreeSet;
use std::fmt;

use serde::{Deserialize, Serialize};

use shg_topology::generators::{self, SkipLinkError};
use shg_topology::{Grid, Topology, TopologyKind};

/// A validated sparse Hamming graph configuration.
///
/// # Examples
///
/// ```
/// use shg_core::SparseHammingConfig;
///
/// // Paper scenario (a): 8×8 tiles, SR = {4}, SC = {2, 5}.
/// let config = SparseHammingConfig::new(8, 8, [4], [2, 5])?;
/// let topology = config.build();
/// assert_eq!(topology.num_tiles(), 64);
/// assert!(config.num_extra_links() > 0);
/// # Ok::<(), shg_topology::generators::SkipLinkError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct SparseHammingConfig {
    grid: Grid,
    sr: BTreeSet<u16>,
    sc: BTreeSet<u16>,
}

impl SparseHammingConfig {
    /// Creates a configuration, validating the skip sets against the grid.
    ///
    /// # Errors
    ///
    /// Returns [`SkipLinkError`] if any skip distance is outside `[2, C)`
    /// for rows or `[2, R)` for columns.
    pub fn new(
        rows: u16,
        cols: u16,
        sr: impl IntoIterator<Item = u16>,
        sc: impl IntoIterator<Item = u16>,
    ) -> Result<Self, SkipLinkError> {
        let grid = Grid::new(rows, cols);
        let sr: BTreeSet<u16> = sr.into_iter().collect();
        let sc: BTreeSet<u16> = sc.into_iter().collect();
        // Validate by performing a (cheap) construction.
        let _ = generators::row_column_skip(grid, &sr, &sc)?;
        Ok(Self { grid, sr, sc })
    }

    /// The mesh configuration (`SR = SC = ∅`) — customization step 1.
    #[must_use]
    pub fn mesh(rows: u16, cols: u16) -> Self {
        Self {
            grid: Grid::new(rows, cols),
            sr: BTreeSet::new(),
            sc: BTreeSet::new(),
        }
    }

    /// The densest configuration — the flattened butterfly.
    #[must_use]
    pub fn flattened_butterfly(rows: u16, cols: u16) -> Self {
        Self {
            grid: Grid::new(rows, cols),
            sr: (2..cols).collect(),
            sc: (2..rows).collect(),
        }
    }

    /// The underlying grid.
    #[must_use]
    pub fn grid(&self) -> Grid {
        self.grid
    }

    /// Number of rows `R`.
    #[must_use]
    pub fn rows(&self) -> u16 {
        self.grid.rows()
    }

    /// Number of columns `C`.
    #[must_use]
    pub fn cols(&self) -> u16 {
        self.grid.cols()
    }

    /// The row skip set `SR`.
    #[must_use]
    pub fn sr(&self) -> &BTreeSet<u16> {
        &self.sr
    }

    /// The column skip set `SC`.
    #[must_use]
    pub fn sc(&self) -> &BTreeSet<u16> {
        &self.sc
    }

    /// `true` for the mesh configuration.
    #[must_use]
    pub fn is_mesh(&self) -> bool {
        self.sr.is_empty() && self.sc.is_empty()
    }

    /// `true` for the flattened-butterfly configuration.
    #[must_use]
    pub fn is_flattened_butterfly(&self) -> bool {
        self.sr.len() == (self.cols() as usize).saturating_sub(2)
            && self.sc.len() == (self.rows() as usize).saturating_sub(2)
    }

    /// Number of links added on top of the mesh base.
    #[must_use]
    pub fn num_extra_links(&self) -> usize {
        let row_links: usize = self
            .sr
            .iter()
            .map(|&x| self.rows() as usize * (self.cols() as usize - x as usize))
            .sum();
        let col_links: usize = self
            .sc
            .iter()
            .map(|&x| self.cols() as usize * (self.rows() as usize - x as usize))
            .sum();
        row_links + col_links
    }

    /// Builds the topology.
    #[must_use]
    pub fn build(&self) -> Topology {
        let topology = generators::row_column_skip(self.grid, &self.sr, &self.sc)
            .expect("configuration was validated at construction");
        if self.is_mesh() {
            topology
        } else {
            // Keep the SparseHamming kind even for the densest instance so
            // routing and reporting treat the whole family uniformly.
            Topology::new(
                self.grid,
                TopologyKind::SparseHamming,
                topology.links().iter().copied(),
            )
        }
    }

    /// All configurations reachable by adding one skip distance — the
    /// neighborhood explored by the customization strategy (Section V-a,
    /// step 4: "change the parameters SR and SC such that the
    /// insufficiencies are eliminated").
    #[must_use]
    pub fn grow_moves(&self) -> Vec<Self> {
        let mut moves = Vec::new();
        for x in 2..self.cols() {
            if !self.sr.contains(&x) {
                let mut next = self.clone();
                next.sr.insert(x);
                moves.push(next);
            }
        }
        for x in 2..self.rows() {
            if !self.sc.contains(&x) {
                let mut next = self.clone();
                next.sc.insert(x);
                moves.push(next);
            }
        }
        moves
    }

    /// All configurations reachable by removing one skip distance.
    #[must_use]
    pub fn shrink_moves(&self) -> Vec<Self> {
        let mut moves = Vec::new();
        for &x in &self.sr {
            let mut next = self.clone();
            next.sr.remove(&x);
            moves.push(next);
        }
        for &x in &self.sc {
            let mut next = self.clone();
            next.sc.remove(&x);
            moves.push(next);
        }
        moves
    }

    /// Size of the design space for a grid: `2^(R+C−4)` (Table I).
    #[must_use]
    pub fn design_space_size(rows: u16, cols: u16) -> u128 {
        let exponent = (rows as u32 + cols as u32).saturating_sub(4);
        1u128 << exponent.min(127)
    }
}

impl fmt::Display for SparseHammingConfig {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let set = |s: &BTreeSet<u16>| -> String {
            let items: Vec<String> = s.iter().map(u16::to_string).collect();
            format!("{{{}}}", items.join(", "))
        };
        write!(
            f,
            "SHG {}x{} SR={} SC={}",
            self.rows(),
            self.cols(),
            set(&self.sr),
            set(&self.sc)
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use shg_topology::metrics;

    #[test]
    fn scenario_configs_are_valid() {
        // The four configurations from Fig. 6.
        assert!(SparseHammingConfig::new(8, 8, [4], [2, 5]).is_ok());
        assert!(SparseHammingConfig::new(8, 8, [2, 4], [2, 4]).is_ok());
        assert!(SparseHammingConfig::new(16, 8, [3], [2, 5]).is_ok());
        assert!(SparseHammingConfig::new(16, 8, [2, 4], [2, 4]).is_ok());
    }

    #[test]
    fn invalid_skip_is_rejected() {
        assert!(SparseHammingConfig::new(8, 8, [8], []).is_err());
        assert!(SparseHammingConfig::new(8, 8, [], [1]).is_err());
    }

    #[test]
    fn mesh_and_butterfly_extremes() {
        let mesh = SparseHammingConfig::mesh(8, 8);
        assert!(mesh.is_mesh());
        assert_eq!(mesh.num_extra_links(), 0);
        let fb = SparseHammingConfig::flattened_butterfly(8, 8);
        assert!(fb.is_flattened_butterfly());
        let fb_topology = fb.build();
        let reference = shg_topology::generators::flattened_butterfly(Grid::new(8, 8));
        assert_eq!(fb_topology.links(), reference.links());
        assert_eq!(metrics::diameter(&fb_topology), 2);
    }

    #[test]
    fn extra_link_count_matches_construction() {
        let config = SparseHammingConfig::new(8, 8, [4], [2, 5]).expect("valid");
        let mesh_links = SparseHammingConfig::mesh(8, 8).build().num_links();
        assert_eq!(
            config.build().num_links(),
            mesh_links + config.num_extra_links()
        );
    }

    #[test]
    fn grow_moves_cover_all_missing_skips() {
        let config = SparseHammingConfig::new(8, 8, [4], [2, 5]).expect("valid");
        // 6 possible SR values minus 1 present, 6 SC minus 2 present.
        assert_eq!(config.grow_moves().len(), 5 + 4);
        for next in config.grow_moves() {
            assert_eq!(
                next.sr().len() + next.sc().len(),
                config.sr().len() + config.sc().len() + 1
            );
        }
    }

    #[test]
    fn shrink_moves_invert_grow_moves() {
        let config = SparseHammingConfig::new(8, 8, [4], [2]).expect("valid");
        let shrunk = config.shrink_moves();
        assert_eq!(shrunk.len(), 2);
        for s in &shrunk {
            assert!(s.grow_moves().contains(&config));
        }
    }

    #[test]
    fn design_space_matches_table1() {
        assert_eq!(SparseHammingConfig::design_space_size(8, 8), 1 << 12);
        assert_eq!(SparseHammingConfig::design_space_size(16, 8), 1 << 20);
        assert_eq!(SparseHammingConfig::design_space_size(2, 2), 1);
    }

    #[test]
    fn display_is_readable() {
        let config = SparseHammingConfig::new(8, 8, [4], [2, 5]).expect("valid");
        assert_eq!(config.to_string(), "SHG 8x8 SR={4} SC={2, 5}");
    }

    #[test]
    fn build_kind_is_sparse_hamming() {
        let config = SparseHammingConfig::new(8, 8, [4], []).expect("valid");
        assert_eq!(config.build().kind(), TopologyKind::SparseHamming);
        assert_eq!(
            SparseHammingConfig::mesh(4, 4).build().kind(),
            TopologyKind::Mesh
        );
    }
}
