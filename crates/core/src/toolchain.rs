//! The prediction toolchain — the paper's contribution #3 (Fig. 3).
//!
//! Inputs: architectural parameters, a topology, a routing algorithm and
//! a traffic pattern. The floorplan model produces area and power
//! estimates plus per-link latencies; the annotated topology is fed to
//! the cycle-accurate simulator, which produces zero-load latency and
//! saturation throughput.

use serde::{Deserialize, Serialize};

use shg_floorplan::{predict, ArchParams, ModelOptions, Prediction};
use shg_sim::{
    saturation_throughput, zero_load_latency, Experiment, SaturationSearch, SimConfig, SweepCase,
    SweepResult, SweepSpec, TrafficPattern,
};
use shg_topology::routing::{self, BuildRoutesError, Routes};
use shg_topology::{Topology, TopologyKind};
use shg_units::{Cycles, Mm2, Watts};

/// How the toolchain obtains the saturation throughput.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum PerformanceMode {
    /// Cycle-accurate simulation with binary search (the paper's
    /// BookSim-based flow). Accurate but needs seconds per topology.
    Simulate,
    /// Channel-load bound: `λ_sat = (N−1) / max_c |{(s,d) : c ∈ path}|`.
    /// Instant; used inside the customization loop where thousands of
    /// candidates are ranked.
    Analytic,
}

/// Toolchain configuration.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Toolchain {
    /// Floorplan model options.
    pub model_options: ModelOptions,
    /// Simulator configuration.
    pub sim: SimConfig,
    /// Traffic pattern (the paper uses uniform random).
    pub pattern: TrafficPattern,
    /// Saturation search options.
    pub search: SaturationSearch,
    /// Throughput estimation mode.
    pub mode: PerformanceMode,
}

impl Default for Toolchain {
    fn default() -> Self {
        Self {
            model_options: ModelOptions::default(),
            sim: SimConfig::default(),
            pattern: TrafficPattern::UniformRandom,
            search: SaturationSearch::default(),
            mode: PerformanceMode::Simulate,
        }
    }
}

/// The combined cost/performance estimate of one topology on one
/// architecture — one point in Fig. 6.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Evaluation {
    /// Topology display name.
    pub name: String,
    /// Topology kind.
    pub kind: TopologyKind,
    /// Router radix (network ports).
    pub router_radix: usize,
    /// NoC area overhead, fraction of total chip area.
    pub area_overhead: f64,
    /// Total chip area.
    pub total_area: Mm2,
    /// NoC power consumption.
    pub noc_power: Watts,
    /// Total chip power (logic + wires).
    pub total_power: Watts,
    /// Zero-load latency in cycles.
    pub zero_load_latency: f64,
    /// Saturation throughput, fraction of injection capacity.
    pub saturation_throughput: f64,
    /// Mean floorplan link latency in cycles.
    pub mean_link_latency: f64,
    /// Maximum floorplan link latency in cycles.
    pub max_link_latency: u64,
    /// Detailed-routing collisions.
    pub collisions: u64,
}

/// Error returned by [`Toolchain::evaluate`].
#[derive(Debug)]
pub enum EvaluateError {
    /// No deadlock-free minimal routing could be built.
    Routing(BuildRoutesError),
}

impl std::fmt::Display for EvaluateError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::Routing(e) => write!(f, "routing failed: {e}"),
        }
    }
}

impl std::error::Error for EvaluateError {}

impl From<BuildRoutesError> for EvaluateError {
    fn from(e: BuildRoutesError) -> Self {
        Self::Routing(e)
    }
}

impl Toolchain {
    /// A toolchain preset for fast exploration: analytic throughput and a
    /// coarser detailed-routing grid.
    #[must_use]
    pub fn fast() -> Self {
        Self {
            model_options: ModelOptions {
                cell_scale: 4.0,
                ..ModelOptions::default()
            },
            mode: PerformanceMode::Analytic,
            ..Self::default()
        }
    }

    /// Runs the full prediction pipeline on one topology.
    ///
    /// # Errors
    ///
    /// Returns [`EvaluateError::Routing`] if no deadlock-free hop-minimal
    /// routing applies to the topology.
    pub fn evaluate(
        &self,
        params: &ArchParams,
        topology: &Topology,
    ) -> Result<Evaluation, EvaluateError> {
        let routes = routing::default_routes(topology)?;
        let prediction = predict(params, topology, &self.model_options);
        Ok(self.evaluate_with(params, topology, &routes, &prediction))
    }

    /// Like [`Toolchain::evaluate`] but reuses precomputed routes and
    /// floorplan prediction (exposed per C-INTERMEDIATE for sweeps that
    /// vary only one stage).
    #[must_use]
    pub fn evaluate_with(
        &self,
        _params: &ArchParams,
        topology: &Topology,
        routes: &Routes,
        prediction: &Prediction,
    ) -> Evaluation {
        let latencies = &prediction.estimates.link_latencies;
        let zll = zero_load_latency(topology, routes, latencies, &self.sim);
        let sat = match self.mode {
            PerformanceMode::Simulate => saturation_throughput(
                topology,
                routes,
                latencies,
                &self.sim,
                self.pattern,
                self.search,
            ),
            PerformanceMode::Analytic => analytic_saturation(topology, routes),
        };
        Evaluation {
            name: topology.kind().to_string(),
            kind: topology.kind(),
            router_radix: topology.max_degree(),
            area_overhead: prediction.estimates.area_overhead,
            total_area: prediction.estimates.total_area,
            noc_power: prediction.estimates.noc_power,
            total_power: prediction.estimates.total_power,
            zero_load_latency: zll,
            saturation_throughput: sat,
            mean_link_latency: prediction.estimates.mean_link_latency(),
            max_link_latency: prediction.estimates.max_link_latency().value(),
            collisions: prediction.estimates.collisions,
        }
    }
}

/// Per-pattern performance extracted from a sweep — the wide-traffic
/// extension of [`Performance`](shg_sim::Performance).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PatternPerformance {
    /// The traffic pattern.
    pub pattern: TrafficPattern,
    /// Mean packet latency at the lowest swept rate, in cycles.
    pub low_load_latency: f64,
    /// Highest swept rate the network sustains (fraction of injection
    /// capacity), or 0 if even the lowest swept rate saturates.
    pub saturation_throughput: f64,
}

impl Toolchain {
    /// Evaluates one topology across all seven traffic patterns on the
    /// shared sweep engine: routes and the floorplan prediction are
    /// computed once, then the (pattern × rate) grid fans out in
    /// parallel. Returns per-pattern performance plus the raw sweep.
    ///
    /// `rate_points` linear rates in `(0, 1]` bound the
    /// saturation-estimate resolution at `1/rate_points`.
    ///
    /// # Errors
    ///
    /// Returns [`EvaluateError::Routing`] if no deadlock-free hop-minimal
    /// routing applies to the topology.
    pub fn evaluate_patterns(
        &self,
        params: &ArchParams,
        topology: &Topology,
        rate_points: usize,
    ) -> Result<(Vec<PatternPerformance>, SweepResult), EvaluateError> {
        let experiment = self.pattern_experiment(params, topology, rate_points)?;
        let result = experiment.run_parallel();
        let per_pattern = self.pattern_performance(&result, &topology.kind().to_string());
        Ok((per_pattern, result))
    }

    /// The experiment behind [`Toolchain::evaluate_patterns`], not yet
    /// run: one floorplan-annotated case for `topology` over the
    /// standard wide grid (all seven patterns, `rate_points` linear
    /// rates, the default hot-spot low end). Exposed so harnesses can
    /// run it through a shard- or journal-aware executor instead of a
    /// plain [`Experiment::run_parallel`].
    ///
    /// # Errors
    ///
    /// Returns [`EvaluateError::Routing`] if no deadlock-free hop-minimal
    /// routing applies to the topology.
    pub fn pattern_experiment<'a>(
        &self,
        params: &ArchParams,
        topology: &'a Topology,
        rate_points: usize,
    ) -> Result<Experiment<'a>, EvaluateError> {
        let routes = routing::default_routes(topology)?;
        let prediction = predict(params, topology, &self.model_options);
        let spec = SweepSpec::new(self.sim.clone())
            .linear_rates(rate_points.max(1), 1.0)
            .all_patterns()
            .default_hotspot_low_rates();
        Ok(Experiment::new(spec).with_case(SweepCase::annotated(
            topology.kind().to_string(),
            topology,
            routes,
            prediction.estimates.link_latencies,
        )))
    }

    /// Extracts per-pattern performance for case `name` from a sweep
    /// result (the summarization half of
    /// [`Toolchain::evaluate_patterns`]).
    #[must_use]
    pub fn pattern_performance(&self, result: &SweepResult, name: &str) -> Vec<PatternPerformance> {
        shg_sim::sweep::ALL_PATTERNS
            .iter()
            .map(|&pattern| {
                let low_load_latency = result
                    .points_for(name)
                    .filter(|p| p.pattern == pattern)
                    .map(|p| (p.rate, p.outcome.avg_packet_latency))
                    .fold(None::<(f64, f64)>, |best, (rate, lat)| match best {
                        Some((r, _)) if r <= rate => best,
                        _ => Some((rate, lat)),
                    })
                    .map_or(0.0, |(_, lat)| lat);
                let saturation_throughput = result
                    .saturation_estimate(name, pattern, self.search.slack)
                    .unwrap_or(0.0);
                PatternPerformance {
                    pattern,
                    low_load_latency,
                    saturation_throughput,
                }
            })
            .collect()
    }
}

/// Channel-load saturation bound under uniform traffic with deterministic
/// routing: each of the `N(N−1)` flows carries `λ/(N−1)`; the bottleneck
/// channel saturates first. Ejection bandwidth caps the result at 1.
#[must_use]
pub fn analytic_saturation(topology: &Topology, routes: &Routes) -> f64 {
    let n = topology.num_tiles();
    if n < 2 {
        return 1.0;
    }
    let max_load = routes
        .channel_loads(topology)
        .into_iter()
        .max()
        .unwrap_or(0);
    if max_load == 0 {
        return 1.0;
    }
    ((n as f64 - 1.0) / max_load as f64).min(1.0)
}

/// Annotated topology: the intermediate artifact of Fig. 3 (topology plus
/// link latency estimates) for callers that want to run their own
/// simulations.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AnnotatedTopology {
    /// The topology.
    pub topology: Topology,
    /// Per-link latency estimates from the floorplan model.
    pub link_latencies: Vec<Cycles>,
}

impl AnnotatedTopology {
    /// Runs the floorplan model and attaches the latency estimates.
    #[must_use]
    pub fn annotate(params: &ArchParams, topology: Topology, options: &ModelOptions) -> Self {
        let prediction = predict(params, &topology, options);
        Self {
            link_latencies: prediction.estimates.link_latencies,
            topology,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::Scenario;
    use shg_topology::generators;

    fn fast_toolchain() -> Toolchain {
        Toolchain {
            sim: SimConfig::fast_test(),
            ..Toolchain::fast()
        }
    }

    #[test]
    fn evaluate_mesh_scenario_a() {
        let scenario = Scenario::knc_a();
        let mesh = generators::mesh(scenario.params.grid);
        let eval = fast_toolchain()
            .evaluate(&scenario.params, &mesh)
            .expect("mesh evaluates");
        assert!(eval.area_overhead > 0.0 && eval.area_overhead < 0.2);
        assert!(eval.zero_load_latency > 5.0);
        assert!(eval.saturation_throughput > 0.0 && eval.saturation_throughput <= 1.0);
    }

    #[test]
    fn analytic_saturation_ordering() {
        let grid = shg_topology::Grid::new(8, 8);
        let sat = |t: &Topology| {
            let routes = routing::default_routes(t).expect("routes");
            analytic_saturation(t, &routes)
        };
        let ring = sat(&generators::ring(grid));
        let mesh = sat(&generators::mesh(grid));
        let fb = sat(&generators::flattened_butterfly(grid));
        assert!(fb > mesh, "fb {fb} > mesh {mesh}");
        assert!(mesh > ring, "mesh {mesh} > ring {ring}");
    }

    #[test]
    fn shg_beats_mesh_in_performance_costs_more() {
        let scenario = Scenario::knc_a();
        let toolchain = fast_toolchain();
        let mesh = generators::mesh(scenario.params.grid);
        let shg = scenario.shg.build();
        let mesh_eval = toolchain.evaluate(&scenario.params, &mesh).expect("mesh");
        let shg_eval = toolchain.evaluate(&scenario.params, &shg).expect("shg");
        assert!(shg_eval.zero_load_latency < mesh_eval.zero_load_latency);
        assert!(shg_eval.saturation_throughput > mesh_eval.saturation_throughput);
        assert!(shg_eval.area_overhead > mesh_eval.area_overhead);
    }

    #[test]
    fn annotated_topology_latencies_match_links() {
        let scenario = Scenario::knc_a();
        let shg = scenario.shg.build();
        let annotated = AnnotatedTopology::annotate(
            &scenario.params,
            shg,
            &ModelOptions {
                cell_scale: 4.0,
                ..ModelOptions::default()
            },
        );
        assert_eq!(
            annotated.link_latencies.len(),
            annotated.topology.num_links()
        );
    }
}
