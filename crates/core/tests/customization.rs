//! Integration tests of the customization strategy and toolchain at the
//! core-crate level.

use shg_core::{
    analytic_saturation, customize, DesignGoals, PerformanceMode, Scenario, SparseHammingConfig,
    Toolchain,
};
use shg_floorplan::ModelOptions;
use shg_sim::SimConfig;
use shg_topology::routing;

fn fast_toolchain() -> Toolchain {
    Toolchain {
        model_options: ModelOptions {
            cell_scale: 6.0,
            ..ModelOptions::default()
        },
        sim: SimConfig::fast_test(),
        mode: PerformanceMode::Analytic,
        ..Toolchain::default()
    }
}

#[test]
fn customized_topology_beats_established_within_budget() {
    // The paper's headline, at test scale: after customization, the SHG
    // has at least the throughput of every established topology that fits
    // the budget.
    let scenario = Scenario::knc_a();
    let toolchain = fast_toolchain();
    let goals = DesignGoals {
        area_budget: scenario.area_budget,
    };
    let trace = customize(&toolchain, &scenario.params, goals).expect("customization");
    let best = trace.best();
    assert!(best.evaluation.area_overhead <= goals.area_budget);
    let grid = scenario.params.grid;
    for topology in [
        shg_topology::generators::ring(grid),
        shg_topology::generators::mesh(grid),
        shg_topology::generators::torus(grid),
        shg_topology::generators::folded_torus(grid),
        shg_topology::generators::hypercube(grid).expect("8x8"),
    ] {
        let eval = toolchain
            .evaluate(&scenario.params, &topology)
            .expect("evaluates");
        if eval.area_overhead <= goals.area_budget {
            assert!(
                best.evaluation.saturation_throughput >= eval.saturation_throughput - 1e-9,
                "{}: {} beats customized SHG {}",
                topology,
                eval.saturation_throughput,
                best.evaluation.saturation_throughput
            );
        }
    }
}

#[test]
fn denser_configs_have_higher_analytic_saturation() {
    let configs = [
        SparseHammingConfig::mesh(8, 8),
        SparseHammingConfig::new(8, 8, [4], []).expect("valid"),
        SparseHammingConfig::new(8, 8, [2, 4], [2, 4]).expect("valid"),
        SparseHammingConfig::flattened_butterfly(8, 8),
    ];
    let mut last = 0.0;
    for config in configs {
        let topology = config.build();
        let routes = routing::default_routes(&topology).expect("routes");
        let sat = analytic_saturation(&topology, &routes);
        assert!(
            sat >= last - 1e-9,
            "{config}: saturation {sat} dropped below {last}"
        );
        last = sat;
    }
}

#[test]
fn scenario_shg_configs_dominate_mesh_on_both_axes() {
    // For all four scenarios, the paper's SR/SC choice improves *both*
    // latency and throughput over the mesh at higher cost.
    for scenario in Scenario::all_knc() {
        let toolchain = fast_toolchain();
        let mesh = toolchain
            .evaluate(
                &scenario.params,
                &SparseHammingConfig::mesh(
                    scenario.params.grid.rows(),
                    scenario.params.grid.cols(),
                )
                .build(),
            )
            .expect("mesh");
        let shg = toolchain
            .evaluate(&scenario.params, &scenario.shg.build())
            .expect("shg");
        assert!(shg.saturation_throughput > mesh.saturation_throughput);
        assert!(shg.zero_load_latency < mesh.zero_load_latency);
        assert!(shg.area_overhead > mesh.area_overhead);
        assert!(
            shg.area_overhead <= scenario.area_budget + 0.05,
            "scenario {}: paper config at {:.1}% (budget {:.0}%)",
            scenario.name,
            shg.area_overhead * 100.0,
            scenario.area_budget * 100.0
        );
    }
}

#[test]
fn toolchain_modes_agree_on_ordering() {
    // Analytic and simulated throughput must rank mesh vs SHG identically.
    let scenario = Scenario::knc_a();
    let shg = scenario.shg.build();
    let mesh = SparseHammingConfig::mesh(8, 8).build();
    let analytic = fast_toolchain();
    let simulated = Toolchain {
        sim: SimConfig::fast_test(),
        mode: PerformanceMode::Simulate,
        ..fast_toolchain()
    };
    let a_mesh = analytic.evaluate(&scenario.params, &mesh).expect("mesh");
    let a_shg = analytic.evaluate(&scenario.params, &shg).expect("shg");
    let s_mesh = simulated.evaluate(&scenario.params, &mesh).expect("mesh");
    let s_shg = simulated.evaluate(&scenario.params, &shg).expect("shg");
    assert_eq!(
        a_shg.saturation_throughput > a_mesh.saturation_throughput,
        s_shg.saturation_throughput > s_mesh.saturation_throughput,
        "mode disagreement: analytic ({} vs {}), simulated ({} vs {})",
        a_shg.saturation_throughput,
        a_mesh.saturation_throughput,
        s_shg.saturation_throughput,
        s_mesh.saturation_throughput
    );
}
