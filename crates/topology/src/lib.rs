//! NoC topology library: graph core, established topology generators,
//! metrics, routing tables and design-principle compliance analysis.
//!
//! This crate provides the topological substrate of the Sparse Hamming
//! Graph reproduction:
//!
//! * [`Grid`], [`TileId`], [`TileCoord`] — the R×C tile grid of
//!   Section II-A of the paper,
//! * [`Topology`] — a connected graph of bidirectional [`Link`]s with
//!   directed [`Channel`]s for the simulator,
//! * [`generators`] — ring, 2D mesh, 2D torus, folded 2D torus, hypercube,
//!   SlimNoC (MMS graphs over GF(q)), flattened butterfly, Ruche, and the
//!   generic row/column skip-link construction underlying sparse Hamming
//!   graphs (Fig. 1 and Section III), unified behind the declarative
//!   [`generators::GeneratorSpec`],
//! * [`db`] — the topology database ([`db::TopologyDb`]): tile classes,
//!   per-region rules and multi-die specs instantiated through an
//!   expanded grid into a flat [`Topology`],
//! * [`metrics`] — diameter, average hops, physical path lengths and link
//!   statistics (design principles ❸/❹),
//! * [`routing`] — deterministic hop-minimal, deadlock-free routing tables
//!   with virtual-channel classes,
//! * [`compliance`] — the computed Table I compliance matrix.
//!
//! # Examples
//!
//! ```
//! use shg_topology::{generators, metrics, routing, Grid};
//!
//! let grid = Grid::new(8, 8);
//! let sr = [4].into_iter().collect();
//! let sc = [2, 5].into_iter().collect();
//! let shg = generators::row_column_skip(grid, &sr, &sc).expect("scenario a");
//!
//! assert!(metrics::diameter(&shg) < metrics::diameter(&generators::mesh(grid)));
//! let routes = routing::default_routes(&shg).expect("row-column routing");
//! assert!(routes.is_deadlock_free(&shg));
//! ```

pub mod compliance;
pub mod db;
pub mod draw;
pub mod generators;
pub mod gf;
mod grid;
pub mod metrics;
pub mod mms;
pub mod routing;
mod topology;

pub use grid::{Grid, TileCoord, TileId};
pub use topology::{
    Channel, ChannelId, DieId, Link, LinkId, TileClass, Topology, TopologyError, TopologyKind,
    TopologyMeta,
};
