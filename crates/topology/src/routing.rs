//! Deterministic, deadlock-free, hop-minimal routing tables.
//!
//! The paper evaluates all topologies with "a routing algorithm that
//! minimizes the number of router-to-router hops" (Fig. 6 caption). This
//! module provides per-topology minimal routing that is *also* provably
//! deadlock-free via virtual-channel classes:
//!
//! * [`RoutingAlgorithm::RowColumn`] — route within the source row to the
//!   destination column, then within that column (mesh/XY, sparse Hamming,
//!   flattened butterfly). Within each 1D phase, paths are hop-minimal with
//!   at most two direction reversals; each reversal escalates the VC class,
//!   which makes the channel-dependency graph acyclic.
//! * [`RoutingAlgorithm::RingDateline`] — shorter way around the cycle,
//!   with a dateline VC-class bump (ring).
//! * [`RoutingAlgorithm::TorusDateline`] — dimension-ordered routing over
//!   the row/column cycles with a dateline class per dimension (torus,
//!   folded torus).
//! * [`RoutingAlgorithm::ECube`] — dimension-ordered bit-fixing (hypercube).
//! * [`RoutingAlgorithm::HopEscalation`] — generic minimal routing where
//!   the VC class equals the hop index (SlimNoC: diameter 2 ⇒ 2 classes).
//!
//! Every built [`Routes`] can be checked with [`Routes::is_deadlock_free`],
//! which constructs the channel/VC-class dependency graph and verifies
//! acyclicity.

use serde::{Deserialize, Serialize};

use crate::generators;
use crate::grid::{TileCoord, TileId};
use crate::topology::{ChannelId, Topology, TopologyKind};

/// One hop of a routed path.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Hop {
    /// The directed channel taken.
    pub channel: ChannelId,
    /// The tile reached after the hop.
    pub to: TileId,
    /// The virtual-channel class the flit must use on this channel.
    pub vc_class: u8,
}

/// The routing algorithm families provided by [`build_routes`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum RoutingAlgorithm {
    /// Row phase then column phase; reversal-escalating VC classes.
    RowColumn,
    /// Shorter way around the Hamiltonian cycle; dateline class.
    RingDateline,
    /// Dimension-ordered routing over row/column cycles; dateline classes.
    TorusDateline,
    /// Dimension-ordered bit fixing on the hypercube.
    ECube,
    /// Generic BFS-minimal paths; VC class = hop index.
    HopEscalation,
}

/// The natural deadlock-free minimal algorithm for each topology kind.
#[must_use]
pub fn default_algorithm(kind: TopologyKind) -> RoutingAlgorithm {
    match kind {
        TopologyKind::Ring => RoutingAlgorithm::RingDateline,
        TopologyKind::Torus | TopologyKind::FoldedTorus => RoutingAlgorithm::TorusDateline,
        TopologyKind::Hypercube => RoutingAlgorithm::ECube,
        TopologyKind::SlimNoc | TopologyKind::Custom => RoutingAlgorithm::HopEscalation,
        TopologyKind::Mesh
        | TopologyKind::FlattenedButterfly
        | TopologyKind::Ruche
        | TopologyKind::SparseHamming => RoutingAlgorithm::RowColumn,
    }
}

/// Error returned when a routing table cannot be built.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BuildRoutesError {
    /// The algorithm does not apply to this topology (e.g. `RowColumn` on a
    /// graph whose rows are not connected within themselves).
    NotApplicable {
        /// The algorithm that failed.
        algorithm: RoutingAlgorithm,
        /// Explanation of the failure.
        reason: String,
    },
}

impl std::fmt::Display for BuildRoutesError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::NotApplicable { algorithm, reason } => {
                write!(f, "{algorithm:?} routing not applicable: {reason}")
            }
        }
    }
}

impl std::error::Error for BuildRoutesError {}

/// A complete deterministic routing table: one path per ordered tile pair.
///
/// # Examples
///
/// ```
/// use shg_topology::{generators, routing, Grid, TileId};
///
/// let mesh = generators::mesh(Grid::new(4, 4));
/// let routes = routing::build_routes(&mesh, routing::RoutingAlgorithm::RowColumn)
///     .expect("mesh routes");
/// assert_eq!(routes.path(TileId::new(0), TileId::new(15)).len(), 6);
/// assert!(routes.is_deadlock_free(&mesh));
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Routes {
    n: usize,
    algorithm: RoutingAlgorithm,
    num_vc_classes: u8,
    paths: Vec<Vec<Hop>>,
}

impl Routes {
    /// The path from `src` to `dst` (empty when `src == dst`).
    ///
    /// # Panics
    ///
    /// Panics if either id is out of range.
    #[must_use]
    pub fn path(&self, src: TileId, dst: TileId) -> &[Hop] {
        &self.paths[src.index() * self.n + dst.index()]
    }

    /// Number of VC classes the table requires. The simulator partitions
    /// its virtual channels into this many classes.
    #[must_use]
    pub fn num_vc_classes(&self) -> u8 {
        self.num_vc_classes
    }

    /// The algorithm that produced this table.
    #[must_use]
    pub fn algorithm(&self) -> RoutingAlgorithm {
        self.algorithm
    }

    /// Hop count from `src` to `dst`.
    #[must_use]
    pub fn hop_count(&self, src: TileId, dst: TileId) -> usize {
        self.path(src, dst).len()
    }

    /// Maximum hop count over all pairs (the routed diameter).
    #[must_use]
    pub fn max_hops(&self) -> usize {
        self.paths.iter().map(Vec::len).max().unwrap_or(0)
    }

    /// Mean hop count over all ordered pairs of distinct tiles.
    #[must_use]
    pub fn average_hops(&self) -> f64 {
        if self.n < 2 {
            return 0.0;
        }
        let total: usize = self.paths.iter().map(Vec::len).sum();
        total as f64 / (self.n * (self.n - 1)) as f64
    }

    /// Physical length of the routed path, in tile units.
    #[must_use]
    pub fn physical_length(&self, topology: &Topology, src: TileId, dst: TileId) -> u32 {
        self.path(src, dst)
            .iter()
            .map(|hop| topology.link_length(hop.channel.link()))
            .sum()
    }

    /// `true` if every routed path is hop-minimal (equals the BFS
    /// distance).
    #[must_use]
    pub fn is_hop_minimal(&self, topology: &Topology) -> bool {
        for src in topology.grid().tiles() {
            let dist = topology.bfs_distances(src);
            for dst in topology.grid().tiles() {
                if self.hop_count(src, dst) as u32 != dist[dst.index()] {
                    return false;
                }
            }
        }
        true
    }

    /// `true` if every routed path's physical length equals the Manhattan
    /// distance between its endpoints — the "minimal paths used" column of
    /// Table I (design principle ❹b).
    #[must_use]
    pub fn minimal_paths_used(&self, topology: &Topology) -> bool {
        let grid = topology.grid();
        grid.tiles().all(|src| {
            grid.tiles()
                .all(|dst| self.physical_length(topology, src, dst) == grid.manhattan(src, dst))
        })
    }

    /// Number of routed paths crossing each directed channel. Under
    /// uniform random traffic this is proportional to the expected channel
    /// load; the maximum entry bounds the saturation throughput.
    #[must_use]
    pub fn channel_loads(&self, topology: &Topology) -> Vec<u32> {
        let mut loads = vec![0u32; topology.num_channels()];
        for path in &self.paths {
            for hop in path {
                loads[hop.channel.index()] += 1;
            }
        }
        loads
    }

    /// Verifies the structural integrity of every path: hops traverse real
    /// channels, consecutive hops connect, the path starts at `src` and
    /// ends at `dst`, and VC classes stay below `num_vc_classes`.
    #[must_use]
    pub fn validate(&self, topology: &Topology) -> bool {
        for src in topology.grid().tiles() {
            for dst in topology.grid().tiles() {
                let path = self.path(src, dst);
                if src == dst {
                    if !path.is_empty() {
                        return false;
                    }
                    continue;
                }
                let mut at = src;
                for hop in path {
                    let channel = topology.channel(hop.channel);
                    if channel.from != at
                        || channel.to != hop.to
                        || hop.vc_class >= self.num_vc_classes
                    {
                        return false;
                    }
                    at = hop.to;
                }
                if at != dst {
                    return false;
                }
            }
        }
        true
    }

    /// Builds the channel/VC-class dependency graph induced by all paths
    /// and checks it for cycles. Acyclicity implies the routing cannot
    /// deadlock under wormhole/VC flow control (Dally & Towles).
    #[must_use]
    pub fn is_deadlock_free(&self, topology: &Topology) -> bool {
        let classes = self.num_vc_classes as usize;
        let nodes = topology.num_channels() * classes;
        let key = |c: ChannelId, class: u8| c.index() * classes + class as usize;
        let mut edges: Vec<std::collections::BTreeSet<usize>> = vec![Default::default(); nodes];
        for path in &self.paths {
            for pair in path.windows(2) {
                edges[key(pair[0].channel, pair[0].vc_class)]
                    .insert(key(pair[1].channel, pair[1].vc_class));
            }
        }
        // Iterative three-color DFS cycle detection.
        let mut state = vec![0u8; nodes]; // 0 = white, 1 = gray, 2 = black
        for start in 0..nodes {
            if state[start] != 0 {
                continue;
            }
            let mut stack = vec![(start, false)];
            while let Some((node, processed)) = stack.pop() {
                if processed {
                    state[node] = 2;
                    continue;
                }
                if state[node] == 1 {
                    continue;
                }
                state[node] = 1;
                stack.push((node, true));
                for &next in &edges[node] {
                    match state[next] {
                        0 => stack.push((next, false)),
                        1 => return false, // back edge: cycle
                        _ => {}
                    }
                }
            }
        }
        true
    }
}

/// Builds a deterministic routing table for `topology` with `algorithm`.
///
/// # Errors
///
/// Returns [`BuildRoutesError`] if the algorithm does not apply to the
/// topology's structure.
pub fn build_routes(
    topology: &Topology,
    algorithm: RoutingAlgorithm,
) -> Result<Routes, BuildRoutesError> {
    match algorithm {
        RoutingAlgorithm::RowColumn => build_row_column(topology),
        RoutingAlgorithm::RingDateline => build_ring_dateline(topology),
        RoutingAlgorithm::TorusDateline => build_torus_dateline(topology),
        RoutingAlgorithm::ECube => build_ecube(topology),
        RoutingAlgorithm::HopEscalation => Ok(build_hop_escalation(topology)),
    }
}

/// Builds the default routing for the topology's kind.
///
/// # Errors
///
/// Returns [`BuildRoutesError`] if the default algorithm fails, which only
/// happens for custom topologies with exotic structure.
pub fn default_routes(topology: &Topology) -> Result<Routes, BuildRoutesError> {
    build_routes(topology, default_algorithm(topology.kind()))
}

// ---------------------------------------------------------------------------
// Row-column routing (mesh, sparse Hamming, flattened butterfly, Ruche).
// ---------------------------------------------------------------------------

const MAX_REVERSALS: u8 = 2;
const CLASSES_PER_PHASE: u8 = MAX_REVERSALS + 1;

/// A 1D move along a row or column.
#[derive(Debug, Clone, Copy)]
struct Move1D {
    to_pos: u16,
    reversals: u8,
}

/// Hop-minimal 1D paths with at most [`MAX_REVERSALS`] direction changes,
/// computed by Dijkstra over `(position, direction)` states with
/// lexicographic `(hops, reversals)` cost.
fn min_1d_paths(adjacency: &[Vec<u16>], from: u16) -> Vec<Option<Vec<Move1D>>> {
    let n = adjacency.len();
    // State: (pos, dir) with dir: 0 = none yet, 1 = increasing, 2 = decreasing.
    let state = |pos: u16, dir: u8| pos as usize * 3 + dir as usize;
    let mut best = vec![(u32::MAX, u8::MAX); n * 3];
    let mut parent: Vec<Option<(u16, u8)>> = vec![None; n * 3];
    let mut heap = std::collections::BinaryHeap::new();
    best[state(from, 0)] = (0, 0);
    heap.push(std::cmp::Reverse((0u32, 0u8, from, 0u8)));
    while let Some(std::cmp::Reverse((hops, revs, pos, dir))) = heap.pop() {
        if (hops, revs) > best[state(pos, dir)] {
            continue;
        }
        for &next in &adjacency[pos as usize] {
            let ndir = if next > pos { 1 } else { 2 };
            let nrevs = if dir != 0 && ndir != dir {
                revs + 1
            } else {
                revs
            };
            if nrevs > MAX_REVERSALS {
                continue;
            }
            let cost = (hops + 1, nrevs);
            if cost < best[state(next, ndir)] {
                best[state(next, ndir)] = cost;
                parent[state(next, ndir)] = Some((pos, dir));
                heap.push(std::cmp::Reverse((hops + 1, nrevs, next, ndir)));
            }
        }
    }
    (0..n as u16)
        .map(|target| {
            if target == from {
                return Some(Vec::new());
            }
            // Best terminal state for this target.
            let (dir, &(hops, _)) = [1u8, 2u8]
                .iter()
                .map(|&d| (d, &best[state(target, d)]))
                .min_by_key(|&(_, cost)| *cost)?;
            if hops == u32::MAX {
                return None;
            }
            // Walk parents back to the source.
            let mut moves = Vec::new();
            let (mut pos, mut d) = (target, dir);
            while pos != from || d != 0 {
                let (ppos, pdir) = parent[state(pos, d)]?;
                // Reversal count at this state, relative to the parent.
                let revs_here = best[state(pos, d)].1;
                moves.push(Move1D {
                    to_pos: pos,
                    reversals: revs_here,
                });
                pos = ppos;
                d = pdir;
            }
            moves.reverse();
            Some(moves)
        })
        .collect()
}

fn build_row_column(topology: &Topology) -> Result<Routes, BuildRoutesError> {
    let grid = topology.grid();
    let (rows, cols) = (grid.rows(), grid.cols());
    let not_applicable = |reason: String| BuildRoutesError::NotApplicable {
        algorithm: RoutingAlgorithm::RowColumn,
        reason,
    };
    // 1D adjacency per row (positions = columns) and per column.
    let mut row_adj: Vec<Vec<Vec<u16>>> = vec![vec![Vec::new(); cols as usize]; rows as usize];
    let mut col_adj: Vec<Vec<Vec<u16>>> = vec![vec![Vec::new(); rows as usize]; cols as usize];
    for link in topology.links() {
        let (ca, cb) = (grid.coord(link.a), grid.coord(link.b));
        if ca.same_row(cb) {
            row_adj[ca.row as usize][ca.col as usize].push(cb.col);
            row_adj[ca.row as usize][cb.col as usize].push(ca.col);
        } else if ca.same_col(cb) {
            col_adj[ca.col as usize][ca.row as usize].push(cb.row);
            col_adj[ca.col as usize][cb.row as usize].push(ca.row);
        } else {
            return Err(not_applicable(format!(
                "link {ca} ↔ {cb} is not row/column aligned"
            )));
        }
    }
    let n = topology.num_tiles();
    let mut paths = vec![Vec::new(); n * n];
    for src_coord in grid.coords() {
        let src = grid.id(src_coord);
        // Row phase paths from the source column within the source row.
        let row_paths = min_1d_paths(&row_adj[src_coord.row as usize], src_coord.col);
        for dst_col in 0..cols {
            let Some(row_moves) = &row_paths[dst_col as usize] else {
                return Err(not_applicable(format!(
                    "row {} disconnected between columns {} and {dst_col}",
                    src_coord.row, src_coord.col
                )));
            };
            // Column phase within the destination column.
            let col_paths = min_1d_paths(&col_adj[dst_col as usize], src_coord.row);
            for dst_row in 0..rows {
                let dst = grid.id(TileCoord::new(dst_row, dst_col));
                if dst == src {
                    continue;
                }
                let Some(col_moves) = &col_paths[dst_row as usize] else {
                    return Err(not_applicable(format!(
                        "column {dst_col} disconnected between rows {} and {dst_row}",
                        src_coord.row
                    )));
                };
                let mut hops = Vec::with_capacity(row_moves.len() + col_moves.len());
                let mut at = src;
                for mv in row_moves {
                    let next = grid.id(TileCoord::new(src_coord.row, mv.to_pos));
                    hops.push(make_hop(
                        topology,
                        at,
                        next,
                        mv.reversals.min(MAX_REVERSALS),
                    ));
                    at = next;
                }
                for mv in col_moves {
                    let next = grid.id(TileCoord::new(mv.to_pos, dst_col));
                    hops.push(make_hop(
                        topology,
                        at,
                        next,
                        CLASSES_PER_PHASE + mv.reversals.min(MAX_REVERSALS),
                    ));
                    at = next;
                }
                paths[src.index() * n + dst.index()] = hops;
            }
        }
    }
    Ok(Routes {
        n,
        algorithm: RoutingAlgorithm::RowColumn,
        num_vc_classes: CLASSES_PER_PHASE * 2,
        paths,
    })
}

fn make_hop(topology: &Topology, from: TileId, to: TileId, vc_class: u8) -> Hop {
    let (_, link) = topology
        .neighbors(from)
        .iter()
        .find(|&&(n, _)| n == to)
        .copied()
        .unwrap_or_else(|| panic!("no link {from} → {to}"));
    let channel = topology.channel_from(from, link);
    Hop {
        channel: channel.id,
        to,
        vc_class,
    }
}

// ---------------------------------------------------------------------------
// Ring routing with a dateline.
// ---------------------------------------------------------------------------

fn build_ring_dateline(topology: &Topology) -> Result<Routes, BuildRoutesError> {
    let grid = topology.grid();
    let order =
        generators::cycle_order_of(topology).ok_or_else(|| BuildRoutesError::NotApplicable {
            algorithm: RoutingAlgorithm::RingDateline,
            reason: "topology is not a single cycle".to_owned(),
        })?;
    let n = topology.num_tiles();
    // position of each tile along the cycle
    let mut pos = vec![0usize; n];
    for (i, &coord) in order.iter().enumerate() {
        pos[grid.id(coord).index()] = i;
    }
    let mut paths = vec![Vec::new(); n * n];
    for src in grid.tiles() {
        for dst in grid.tiles() {
            if src == dst {
                continue;
            }
            let (ps, pd) = (pos[src.index()], pos[dst.index()]);
            let forward = (pd + n - ps) % n;
            let backward = n - forward;
            let step: isize = if forward <= backward { 1 } else { -1 };
            let mut hops = Vec::new();
            let mut at = src;
            let mut p = ps as isize;
            let mut class = 0u8;
            while at != dst {
                let np = (p + step).rem_euclid(n as isize) as usize;
                // Crossing the dateline (cycle position 0 boundary) bumps
                // the VC class.
                if (step == 1 && np == 0) || (step == -1 && p == 0) {
                    class = 1;
                }
                let next = grid.id(order[np]);
                hops.push(make_hop(topology, at, next, class));
                at = next;
                p = np as isize;
            }
            paths[src.index() * n + dst.index()] = hops;
        }
    }
    Ok(Routes {
        n,
        algorithm: RoutingAlgorithm::RingDateline,
        num_vc_classes: 2,
        paths,
    })
}

// ---------------------------------------------------------------------------
// Torus routing: dimension order over row/column cycles with datelines.
// ---------------------------------------------------------------------------

fn build_torus_dateline(topology: &Topology) -> Result<Routes, BuildRoutesError> {
    let grid = topology.grid();
    let (rows, cols) = (grid.rows() as usize, grid.cols() as usize);
    // The cycle order of each row/column in *physical positions*: natural
    // order for the torus, interleaved order for the folded torus.
    let (row_cycle, col_cycle): (Vec<u16>, Vec<u16>) =
        if topology.kind() == TopologyKind::FoldedTorus {
            (
                generators::folded_cycle_order(grid.cols()),
                generators::folded_cycle_order(grid.rows()),
            )
        } else {
            ((0..grid.cols()).collect(), (0..grid.rows()).collect())
        };
    // Logical index of each physical position along its cycle.
    let invert = |cycle: &[u16]| {
        let mut inv = vec![0usize; cycle.len()];
        for (logical, &phys) in cycle.iter().enumerate() {
            inv[phys as usize] = logical;
        }
        inv
    };
    let row_logical = invert(&row_cycle);
    let col_logical = invert(&col_cycle);
    let n = topology.num_tiles();
    let mut paths = vec![Vec::new(); n * n];
    // Route along a 1D cycle from logical position a to b, shorter way,
    // bumping the class when wrapping past logical 0.
    let route_cycle = |a: usize, b: usize, len: usize| -> Vec<(usize, bool)> {
        if len <= 1 || a == b {
            return Vec::new();
        }
        let forward = (b + len - a) % len;
        let backward = len - forward;
        let step_fwd = forward <= backward;
        let mut moves = Vec::new();
        let mut p = a;
        while p != b {
            let np = if step_fwd {
                (p + 1) % len
            } else {
                (p + len - 1) % len
            };
            let crossed = (step_fwd && np == 0) || (!step_fwd && p == 0);
            moves.push((np, crossed));
            p = np;
        }
        moves
    };
    for src_coord in grid.coords() {
        let src = grid.id(src_coord);
        for dst_coord in grid.coords() {
            let dst = grid.id(dst_coord);
            if src == dst {
                continue;
            }
            let mut hops = Vec::new();
            let mut at = src;
            let mut class = 0u8;
            // Row dimension first (move along the row cycle).
            let a = row_logical[src_coord.col as usize];
            let b = row_logical[dst_coord.col as usize];
            for (logical, crossed) in route_cycle(a, b, cols) {
                if crossed {
                    class = 1;
                }
                let next = grid.id(TileCoord::new(src_coord.row, row_cycle[logical]));
                hops.push(make_hop(topology, at, next, class));
                at = next;
            }
            // Column dimension second.
            class = 2;
            let a = col_logical[src_coord.row as usize];
            let b = col_logical[dst_coord.row as usize];
            for (logical, crossed) in route_cycle(a, b, rows) {
                if crossed {
                    class = 3;
                }
                let next = grid.id(TileCoord::new(col_cycle[logical], dst_coord.col));
                hops.push(make_hop(topology, at, next, class));
                at = next;
            }
            paths[src.index() * n + dst.index()] = hops;
        }
    }
    Ok(Routes {
        n,
        algorithm: RoutingAlgorithm::TorusDateline,
        num_vc_classes: 4,
        paths,
    })
}

// ---------------------------------------------------------------------------
// Hypercube e-cube routing.
// ---------------------------------------------------------------------------

fn build_ecube(topology: &Topology) -> Result<Routes, BuildRoutesError> {
    let grid = topology.grid();
    if !grid.rows().is_power_of_two() || !grid.cols().is_power_of_two() {
        return Err(BuildRoutesError::NotApplicable {
            algorithm: RoutingAlgorithm::ECube,
            reason: "grid dimensions are not powers of two".to_owned(),
        });
    }
    let col_bits = grid.cols().trailing_zeros();
    let hid = |coord: TileCoord| -> u32 {
        ((generators::gray(coord.row) as u32) << col_bits) | generators::gray(coord.col) as u32
    };
    let mut by_hid = vec![TileId::new(0); grid.num_tiles()];
    for coord in grid.coords() {
        by_hid[hid(coord) as usize] = grid.id(coord);
    }
    let n = topology.num_tiles();
    let mut paths = vec![Vec::new(); n * n];
    for src_coord in grid.coords() {
        let src = grid.id(src_coord);
        for dst_coord in grid.coords() {
            let dst = grid.id(dst_coord);
            if src == dst {
                continue;
            }
            let mut hops = Vec::new();
            let mut at = src;
            let mut h = hid(src_coord);
            let target = hid(dst_coord);
            // Fix differing bits from least to most significant.
            while h != target {
                let bit = (h ^ target).trailing_zeros();
                h ^= 1 << bit;
                let next = by_hid[h as usize];
                hops.push(make_hop(topology, at, next, 0));
                at = next;
            }
            paths[src.index() * n + dst.index()] = hops;
        }
    }
    Ok(Routes {
        n,
        algorithm: RoutingAlgorithm::ECube,
        num_vc_classes: 1,
        paths,
    })
}

// ---------------------------------------------------------------------------
// Generic minimal routing with hop-index VC escalation.
// ---------------------------------------------------------------------------

fn build_hop_escalation(topology: &Topology) -> Routes {
    let n = topology.num_tiles();
    let mut paths = vec![Vec::new(); n * n];
    let mut max_len = 0usize;
    for src in topology.grid().tiles() {
        // BFS with deterministic parent choice (lowest tile id first, which
        // the sorted adjacency lists provide).
        let mut parent: Vec<Option<TileId>> = vec![None; n];
        let mut dist = vec![u32::MAX; n];
        let mut queue = std::collections::VecDeque::new();
        dist[src.index()] = 0;
        queue.push_back(src);
        while let Some(t) = queue.pop_front() {
            for &(next, _) in topology.neighbors(t) {
                if dist[next.index()] == u32::MAX {
                    dist[next.index()] = dist[t.index()] + 1;
                    parent[next.index()] = Some(t);
                    queue.push_back(next);
                }
            }
        }
        for dst in topology.grid().tiles() {
            if dst == src {
                continue;
            }
            let mut rev = Vec::new();
            let mut at = dst;
            while at != src {
                let p = parent[at.index()].expect("topology is connected");
                rev.push((p, at));
                at = p;
            }
            rev.reverse();
            let hops: Vec<Hop> = rev
                .into_iter()
                .enumerate()
                .map(|(i, (from, to))| {
                    let mut hop = make_hop(topology, from, to, 0);
                    hop.vc_class = i.min(u8::MAX as usize) as u8;
                    hop
                })
                .collect();
            max_len = max_len.max(hops.len());
            paths[src.index() * n + dst.index()] = hops;
        }
    }
    Routes {
        n,
        algorithm: RoutingAlgorithm::HopEscalation,
        num_vc_classes: max_len.max(1) as u8,
        paths,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;
    use crate::grid::Grid;

    fn all_checks(topology: &Topology, routes: &Routes) {
        assert!(routes.validate(topology), "{topology}: invalid paths");
        assert!(
            routes.is_hop_minimal(topology),
            "{topology}: paths are not hop-minimal"
        );
        assert!(
            routes.is_deadlock_free(topology),
            "{topology}: channel dependency cycle"
        );
    }

    #[test]
    fn mesh_row_column_is_xy() {
        let grid = Grid::new(4, 4);
        let mesh = generators::mesh(grid);
        let routes = build_routes(&mesh, RoutingAlgorithm::RowColumn).expect("mesh");
        all_checks(&mesh, &routes);
        assert!(routes.minimal_paths_used(&mesh), "XY on mesh is minimal");
    }

    #[test]
    fn sparse_hamming_routes() {
        let grid = Grid::new(8, 8);
        let sr = [4].into_iter().collect();
        let sc = [2, 5].into_iter().collect();
        let shg = generators::row_column_skip(grid, &sr, &sc).expect("valid");
        let routes = build_routes(&shg, RoutingAlgorithm::RowColumn).expect("shg");
        all_checks(&shg, &routes);
    }

    #[test]
    fn flattened_butterfly_routes_use_minimal_paths() {
        let grid = Grid::new(8, 8);
        let fb = generators::flattened_butterfly(grid);
        let routes = build_routes(&fb, RoutingAlgorithm::RowColumn).expect("fb");
        all_checks(&fb, &routes);
        // Table I: minimal paths used ✓ for the flattened butterfly.
        assert!(routes.minimal_paths_used(&fb));
        assert_eq!(routes.max_hops(), 2);
    }

    #[test]
    fn ring_routes() {
        let grid = Grid::new(4, 4);
        let ring = generators::ring(grid);
        let routes = build_routes(&ring, RoutingAlgorithm::RingDateline).expect("ring");
        all_checks(&ring, &routes);
        assert_eq!(routes.max_hops(), 8); // R·C/2
        assert!(!routes.minimal_paths_used(&ring));
    }

    #[test]
    fn torus_routes() {
        let grid = Grid::new(4, 4);
        let torus = generators::torus(grid);
        let routes = build_routes(&torus, RoutingAlgorithm::TorusDateline).expect("torus");
        all_checks(&torus, &routes);
        assert_eq!(routes.max_hops(), 4); // R/2 + C/2
                                          // Table I: torus min-hop routing does not use physically minimal
                                          // paths (wrap links are physically long).
        assert!(!routes.minimal_paths_used(&torus));
    }

    #[test]
    fn folded_torus_routes() {
        let grid = Grid::new(8, 8);
        let ft = generators::folded_torus(grid);
        let routes = build_routes(&ft, RoutingAlgorithm::TorusDateline).expect("folded");
        all_checks(&ft, &routes);
        assert_eq!(routes.max_hops(), 8);
    }

    #[test]
    fn hypercube_routes() {
        let grid = Grid::new(8, 8);
        let hc = generators::hypercube(grid).expect("8x8");
        let routes = build_routes(&hc, RoutingAlgorithm::ECube).expect("ecube");
        all_checks(&hc, &routes);
        assert_eq!(routes.max_hops(), 6); // log2(64)
    }

    #[test]
    fn slimnoc_routes() {
        let grid = Grid::new(16, 8);
        let slim = generators::slim_noc(grid).expect("128 tiles");
        let routes = build_routes(&slim, RoutingAlgorithm::HopEscalation).expect("slim");
        all_checks(&slim, &routes);
        assert_eq!(routes.max_hops(), 2);
        assert_eq!(routes.num_vc_classes(), 2);
    }

    #[test]
    fn default_algorithms_cover_all_kinds() {
        let grid = Grid::new(8, 8);
        for topology in [
            generators::ring(grid),
            generators::mesh(grid),
            generators::torus(grid),
            generators::folded_torus(grid),
            generators::hypercube(grid).expect("8x8"),
            generators::flattened_butterfly(grid),
        ] {
            let routes = default_routes(&topology).expect("default routing");
            all_checks(&topology, &routes);
        }
    }

    #[test]
    fn channel_loads_sum_to_total_hops() {
        let grid = Grid::new(4, 4);
        let mesh = generators::mesh(grid);
        let routes = default_routes(&mesh).expect("mesh");
        let loads = routes.channel_loads(&mesh);
        let total: u32 = loads.iter().sum();
        let hops: usize = grid
            .tiles()
            .flat_map(|a| grid.tiles().map(move |b| (a, b)))
            .map(|(a, b)| routes.hop_count(a, b))
            .sum();
        assert_eq!(total as usize, hops);
    }

    #[test]
    fn average_hops_matches_metric() {
        let grid = Grid::new(6, 6);
        let mesh = generators::mesh(grid);
        let routes = default_routes(&mesh).expect("mesh");
        let metric = crate::metrics::average_hops(&mesh);
        assert!((routes.average_hops() - metric).abs() < 1e-9);
    }
}
