//! McKay–Miller–Širáň (MMS) graphs for SlimNoC.
//!
//! SlimNoC \[26\] uses MMS graphs: vertex-rich, diameter-2 graphs on
//! `N = 2q²` vertices for a prime power `q`, with degree `(3q − ε)/2` where
//! `ε ∈ {1, 0, −1}` depends on `q mod 4`.
//!
//! Structure: vertices are triples `(s, g, e)` with part `s ∈ {0, 1}`,
//! group `g ∈ F_q`, element `e ∈ F_q`.
//!
//! * part-0 intra-group edges: `(0, x, y) ~ (0, x, y')` iff `y − y' ∈ X`,
//! * part-1 intra-group edges: `(1, m, c) ~ (1, m, c')` iff `c − c' ∈ X'`,
//! * cross edges: `(0, x, y) ~ (1, m, c)` iff `y = m·x + c`.
//!
//! For `q ≡ 1 (mod 4)` the classic choice `X` = quadratic residues,
//! `X'` = non-residues yields diameter 2 (this is the construction from the
//! original MMS paper). For other `q` (notably `q = 8`, needed for the
//! paper's 128-tile scenarios) we select symmetric generator sets by a
//! deterministic search and *verify* the diameter-2 property by BFS at
//! construction — see `DESIGN.md`, substitution #5.

use crate::gf::{Element, Field};

/// An MMS graph instance on `2q²` vertices.
///
/// # Examples
///
/// ```
/// use shg_topology::mms::MmsGraph;
///
/// let g = MmsGraph::new(5).expect("q = 5 is a prime power with q ≡ 1 mod 4");
/// assert_eq!(g.num_vertices(), 50);
/// assert_eq!(g.diameter(), 2);
/// // Degree (3q − 1)/2 = 7 for q = 5.
/// assert!(g.degrees().iter().all(|&d| d == 7));
/// ```
#[derive(Debug, Clone)]
pub struct MmsGraph {
    q: usize,
    adjacency: Vec<Vec<usize>>,
}

/// Error returned when an MMS graph cannot be constructed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BuildMmsError {
    /// `q` is not a prime power.
    NotPrimePower(usize),
    /// No generator sets achieving diameter 2 were found (should not occur
    /// for prime powers in the supported range).
    NoGeneratorSets(usize),
}

impl std::fmt::Display for BuildMmsError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::NotPrimePower(q) => write!(f, "{q} is not a prime power"),
            Self::NoGeneratorSets(q) => {
                write!(f, "no diameter-2 generator sets found for q = {q}")
            }
        }
    }
}

impl std::error::Error for BuildMmsError {}

/// A vertex of the MMS graph: `(part, group, element)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct MmsVertex {
    /// Part `s ∈ {0, 1}`.
    pub part: u8,
    /// Group `g ∈ F_q` (column `x` for part 0, slope `m` for part 1).
    pub group: usize,
    /// Element `e ∈ F_q` (row `y` for part 0, intercept `c` for part 1).
    pub element: usize,
}

impl MmsGraph {
    /// Builds the MMS graph for prime power `q`.
    ///
    /// # Errors
    ///
    /// Returns an error if `q` is not a prime power or no diameter-2
    /// generator sets exist in the searched family.
    pub fn new(q: usize) -> Result<Self, BuildMmsError> {
        let field = Field::new(q).map_err(|_| BuildMmsError::NotPrimePower(q))?;
        // Preferred generator sets: quadratic residues / non-residues
        // (exact MMS construction for q ≡ 1 mod 4).
        let candidates = Self::generator_candidates(&field);
        for (x_set, xp_set) in candidates {
            let graph = Self::build(&field, &x_set, &xp_set);
            if graph.has_diameter_at_most_two() {
                return Ok(graph);
            }
        }
        Err(BuildMmsError::NoGeneratorSets(q))
    }

    /// Vertex index of `(part, group, element)` in `0..2q²`.
    #[must_use]
    pub fn vertex_index(&self, v: MmsVertex) -> usize {
        (v.part as usize) * self.q * self.q + v.group * self.q + v.element
    }

    /// The vertex corresponding to a dense index.
    #[must_use]
    pub fn vertex(&self, index: usize) -> MmsVertex {
        let q2 = self.q * self.q;
        MmsVertex {
            part: (index / q2) as u8,
            group: (index % q2) / self.q,
            element: index % self.q,
        }
    }

    /// The field order `q`.
    #[must_use]
    pub fn q(&self) -> usize {
        self.q
    }

    /// Number of vertices `2q²`.
    #[must_use]
    pub fn num_vertices(&self) -> usize {
        2 * self.q * self.q
    }

    /// Adjacency lists, indexed by dense vertex index.
    #[must_use]
    pub fn adjacency(&self) -> &[Vec<usize>] {
        &self.adjacency
    }

    /// All edges as `(u, v)` pairs with `u < v`.
    #[must_use]
    pub fn edges(&self) -> Vec<(usize, usize)> {
        let mut edges = Vec::new();
        for (u, nbrs) in self.adjacency.iter().enumerate() {
            for &v in nbrs {
                if u < v {
                    edges.push((u, v));
                }
            }
        }
        edges
    }

    /// Per-vertex degrees.
    #[must_use]
    pub fn degrees(&self) -> Vec<usize> {
        self.adjacency.iter().map(Vec::len).collect()
    }

    /// Fast check that every pair of vertices is within two hops.
    ///
    /// Uses 128-bit adjacency bitmasks when the graph fits (`n ≤ 128`,
    /// which covers every SlimNoC instance in the paper's scenarios), and
    /// falls back to BFS otherwise.
    #[must_use]
    pub fn has_diameter_at_most_two(&self) -> bool {
        let n = self.num_vertices();
        if n <= 128 {
            let masks: Vec<u128> = self
                .adjacency
                .iter()
                .enumerate()
                .map(|(u, nbrs)| nbrs.iter().fold(1u128 << u, |mask, &v| mask | (1u128 << v)))
                .collect();
            let all = if n == 128 {
                u128::MAX
            } else {
                (1u128 << n) - 1
            };
            masks.iter().enumerate().all(|(u, &direct)| {
                let two_hop = self.adjacency[u]
                    .iter()
                    .fold(direct, |mask, &v| mask | masks[v]);
                two_hop == all
            })
        } else {
            self.diameter() <= 2
        }
    }

    /// Graph diameter by all-pairs BFS.
    #[must_use]
    pub fn diameter(&self) -> u32 {
        let n = self.num_vertices();
        let mut diameter = 0;
        for s in 0..n {
            let mut dist = vec![u32::MAX; n];
            let mut queue = std::collections::VecDeque::new();
            dist[s] = 0;
            queue.push_back(s);
            while let Some(u) = queue.pop_front() {
                for &v in &self.adjacency[u] {
                    if dist[v] == u32::MAX {
                        dist[v] = dist[u] + 1;
                        queue.push_back(v);
                    }
                }
            }
            let ecc = *dist.iter().max().expect("nonempty");
            if ecc == u32::MAX {
                return u32::MAX; // disconnected
            }
            diameter = diameter.max(ecc);
        }
        diameter
    }

    /// Candidate `(X, X')` generator-set pairs, best-first.
    fn generator_candidates(field: &Field) -> Vec<(Vec<Element>, Vec<Element>)> {
        let q = field.order();
        let mut candidates = Vec::new();
        if q % 4 == 1 {
            // Exact construction: X = quadratic residues, X' = non-residues.
            let residues = field.quadratic_residues();
            let non_residues: Vec<Element> = (1..q).filter(|e| !residues.contains(e)).collect();
            candidates.push((residues, non_residues));
        }
        // Search fallback: symmetric subsets of size ⌈(q−ε)/2⌉ where the
        // target degree is (3q−ε)/2. For even q every subset is symmetric
        // (char 2); for odd q we enumerate unions of {±a} pairs.
        let target = match q % 4 {
            1 => (q - 1) / 2,
            3 => q.div_ceil(2),
            _ => q / 2, // even q: ε = 0
        };
        if field.characteristic() == 2 {
            let nonzero: Vec<Element> = (1..q).collect();
            let subsets = k_subsets(&nonzero, target);
            // Deterministic, lexicographic pairing of subsets.
            for x_set in &subsets {
                for xp_set in &subsets {
                    candidates.push((x_set.clone(), xp_set.clone()));
                    if candidates.len() > 4096 {
                        return candidates;
                    }
                }
            }
        } else if q % 4 != 1 {
            // Odd q ≢ 1 (mod 4): enumerate inverse-closed subsets built
            // from {a, −a} pairs.
            let mut pairs = Vec::new();
            let mut used = vec![false; q];
            for a in 1..q {
                if !used[a] {
                    let na = field.neg(a);
                    used[a] = true;
                    used[na] = true;
                    pairs.push(if a <= na { (a, na) } else { (na, a) });
                }
            }
            let pair_count = target / 2;
            if pair_count * 2 == target {
                let pair_sets = k_subsets(&pairs, pair_count);
                let expand = |set: &Vec<(Element, Element)>| -> Vec<Element> {
                    let mut out = Vec::new();
                    for &(a, b) in set {
                        out.push(a);
                        if b != a {
                            out.push(b);
                        }
                    }
                    out.sort_unstable();
                    out.dedup();
                    out
                };
                for xs in &pair_sets {
                    for xps in &pair_sets {
                        candidates.push((expand(xs), expand(xps)));
                        if candidates.len() > 4096 {
                            return candidates;
                        }
                    }
                }
            }
        }
        candidates
    }

    fn build(field: &Field, x_set: &[Element], xp_set: &[Element]) -> Self {
        let q = field.order();
        let n = 2 * q * q;
        let index = |s: usize, g: usize, e: usize| s * q * q + g * q + e;
        let mut adjacency: Vec<Vec<usize>> = vec![Vec::new(); n];
        let push_edge = |adj: &mut Vec<Vec<usize>>, u: usize, v: usize| {
            if !adj[u].contains(&v) {
                adj[u].push(v);
                adj[v].push(u);
            }
        };
        // Intra-group edges.
        for g in 0..q {
            for y in 0..q {
                for yp in 0..q {
                    if y < yp {
                        let diff = field.sub(y, yp);
                        if x_set.contains(&diff) || x_set.contains(&field.neg(diff)) {
                            push_edge(&mut adjacency, index(0, g, y), index(0, g, yp));
                        }
                        if xp_set.contains(&diff) || xp_set.contains(&field.neg(diff)) {
                            push_edge(&mut adjacency, index(1, g, y), index(1, g, yp));
                        }
                    }
                }
            }
        }
        // Cross edges: (0, x, y) ~ (1, m, c) iff y = m·x + c.
        for x in 0..q {
            for m in 0..q {
                for c in 0..q {
                    let y = field.add(field.mul(m, x), c);
                    push_edge(&mut adjacency, index(0, x, y), index(1, m, c));
                }
            }
        }
        for list in &mut adjacency {
            list.sort_unstable();
        }
        Self { q, adjacency }
    }
}

/// All k-element subsets of `items`, in lexicographic order.
fn k_subsets<T: Clone>(items: &[T], k: usize) -> Vec<Vec<T>> {
    let mut result = Vec::new();
    let n = items.len();
    if k > n {
        return result;
    }
    let mut idx: Vec<usize> = (0..k).collect();
    loop {
        result.push(idx.iter().map(|&i| items[i].clone()).collect());
        // Advance to the next combination.
        let mut i = k;
        loop {
            if i == 0 {
                return result;
            }
            i -= 1;
            if idx[i] != i + n - k {
                break;
            }
        }
        idx[i] += 1;
        for j in i + 1..k {
            idx[j] = idx[j - 1] + 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn k_subsets_counts() {
        let items = [1, 2, 3, 4];
        assert_eq!(k_subsets(&items, 2).len(), 6);
        assert_eq!(k_subsets(&items, 0).len(), 1);
        assert_eq!(k_subsets(&items, 5).len(), 0);
    }

    #[test]
    fn mms_q5_matches_theory() {
        // q = 5 ≡ 1 mod 4: N = 50, degree (3·5−1)/2 = 7, diameter 2.
        // This is the Hoffman–Singleton graph.
        let g = MmsGraph::new(5).expect("q = 5");
        assert_eq!(g.num_vertices(), 50);
        assert!(g.degrees().iter().all(|&d| d == 7));
        assert_eq!(g.diameter(), 2);
    }

    #[test]
    fn mms_q8_has_diameter_two() {
        // q = 8 (needed for 128-tile SlimNoC): N = 128, degree 3·8/2 = 12.
        let g = MmsGraph::new(8).expect("q = 8");
        assert_eq!(g.num_vertices(), 128);
        assert_eq!(g.diameter(), 2);
        let degrees = g.degrees();
        assert!(
            degrees.iter().all(|&d| d == 12),
            "expected uniform degree 12, got {:?}",
            degrees.iter().collect::<std::collections::HashSet<_>>()
        );
    }

    #[test]
    fn mms_rejects_non_prime_power() {
        assert!(matches!(
            MmsGraph::new(6),
            Err(BuildMmsError::NotPrimePower(6))
        ));
    }

    #[test]
    fn vertex_index_roundtrip() {
        let g = MmsGraph::new(5).expect("q = 5");
        for i in 0..g.num_vertices() {
            assert_eq!(g.vertex_index(g.vertex(i)), i);
        }
    }

    #[test]
    fn edges_are_consistent_with_adjacency() {
        let g = MmsGraph::new(5).expect("q = 5");
        let edges = g.edges();
        let degree_sum: usize = g.degrees().iter().sum();
        assert_eq!(edges.len() * 2, degree_sum);
    }
}
