//! The R×C tile grid underlying every topology.
//!
//! The paper assumes a chip organized as an `R × C` grid of identical tiles
//! (Section II-A). Tiles are identified either by [`TileCoord`] (row,
//! column) or by a dense row-major [`TileId`] used as an index into
//! per-tile arrays.

use std::fmt;

use serde::{Deserialize, Serialize};

/// Dense, row-major tile identifier: `id = row * cols + col`.
///
/// # Examples
///
/// ```
/// use shg_topology::{Grid, TileCoord};
///
/// let grid = Grid::new(4, 8);
/// let id = grid.id(TileCoord::new(1, 2));
/// assert_eq!(id.index(), 10);
/// assert_eq!(grid.coord(id), TileCoord::new(1, 2));
/// ```
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
#[serde(transparent)]
pub struct TileId(u32);

impl TileId {
    /// Creates a tile id from a raw row-major index.
    #[must_use]
    pub const fn new(index: u32) -> Self {
        Self(index)
    }

    /// The raw row-major index.
    #[must_use]
    pub const fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for TileId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "T{}", self.0)
    }
}

/// A (row, column) tile coordinate.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct TileCoord {
    /// Row index, `0 ≤ row < R`.
    pub row: u16,
    /// Column index, `0 ≤ col < C`.
    pub col: u16,
}

impl TileCoord {
    /// Creates a coordinate from row and column indices.
    #[must_use]
    pub const fn new(row: u16, col: u16) -> Self {
        Self { row, col }
    }

    /// Manhattan distance to `other`, in tile units.
    ///
    /// # Examples
    ///
    /// ```
    /// use shg_topology::TileCoord;
    /// let a = TileCoord::new(0, 0);
    /// let b = TileCoord::new(2, 3);
    /// assert_eq!(a.manhattan(b), 5);
    /// ```
    #[must_use]
    pub fn manhattan(self, other: Self) -> u32 {
        self.row.abs_diff(other.row) as u32 + self.col.abs_diff(other.col) as u32
    }

    /// `true` if both coordinates lie in the same row.
    #[must_use]
    pub fn same_row(self, other: Self) -> bool {
        self.row == other.row
    }

    /// `true` if both coordinates lie in the same column.
    #[must_use]
    pub fn same_col(self, other: Self) -> bool {
        self.col == other.col
    }
}

impl fmt::Display for TileCoord {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({}, {})", self.row, self.col)
    }
}

/// An `R × C` grid of tiles.
///
/// # Examples
///
/// ```
/// use shg_topology::Grid;
///
/// let grid = Grid::new(8, 8);
/// assert_eq!(grid.num_tiles(), 64);
/// assert_eq!(grid.tiles().count(), 64);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Grid {
    rows: u16,
    cols: u16,
}

impl Grid {
    /// Creates an `rows × cols` grid.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero.
    #[must_use]
    pub fn new(rows: u16, cols: u16) -> Self {
        assert!(rows > 0 && cols > 0, "grid dimensions must be positive");
        Self { rows, cols }
    }

    /// Number of rows `R`.
    #[must_use]
    pub const fn rows(&self) -> u16 {
        self.rows
    }

    /// Number of columns `C`.
    #[must_use]
    pub const fn cols(&self) -> u16 {
        self.cols
    }

    /// Total number of tiles `R × C`.
    #[must_use]
    pub const fn num_tiles(&self) -> usize {
        self.rows as usize * self.cols as usize
    }

    /// Converts a coordinate into the dense row-major id.
    ///
    /// # Panics
    ///
    /// Panics if the coordinate lies outside the grid.
    #[must_use]
    pub fn id(&self, coord: TileCoord) -> TileId {
        assert!(
            coord.row < self.rows && coord.col < self.cols,
            "coordinate {coord} outside {self}"
        );
        TileId::new(coord.row as u32 * self.cols as u32 + coord.col as u32)
    }

    /// Converts a dense id back into its coordinate.
    ///
    /// # Panics
    ///
    /// Panics if the id lies outside the grid.
    #[must_use]
    pub fn coord(&self, id: TileId) -> TileCoord {
        assert!(id.index() < self.num_tiles(), "{id} outside {self}");
        TileCoord::new(
            (id.index() / self.cols as usize) as u16,
            (id.index() % self.cols as usize) as u16,
        )
    }

    /// Iterates over all tile ids in row-major order.
    pub fn tiles(&self) -> impl Iterator<Item = TileId> {
        (0..self.num_tiles() as u32).map(TileId::new)
    }

    /// Iterates over all coordinates in row-major order.
    pub fn coords(&self) -> impl Iterator<Item = TileCoord> + '_ {
        let cols = self.cols;
        (0..self.rows).flat_map(move |r| (0..cols).map(move |c| TileCoord::new(r, c)))
    }

    /// Manhattan distance between two tiles, in tile units.
    #[must_use]
    pub fn manhattan(&self, a: TileId, b: TileId) -> u32 {
        self.coord(a).manhattan(self.coord(b))
    }
}

impl fmt::Display for Grid {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}x{} grid", self.rows, self.cols)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn id_coord_roundtrip() {
        let grid = Grid::new(5, 7);
        for coord in grid.coords() {
            assert_eq!(grid.coord(grid.id(coord)), coord);
        }
    }

    #[test]
    fn row_major_order() {
        let grid = Grid::new(3, 4);
        assert_eq!(grid.id(TileCoord::new(0, 0)).index(), 0);
        assert_eq!(grid.id(TileCoord::new(0, 3)).index(), 3);
        assert_eq!(grid.id(TileCoord::new(1, 0)).index(), 4);
        assert_eq!(grid.id(TileCoord::new(2, 3)).index(), 11);
    }

    #[test]
    fn tiles_iterator_covers_grid() {
        let grid = Grid::new(4, 4);
        let ids: Vec<_> = grid.tiles().collect();
        assert_eq!(ids.len(), 16);
        assert_eq!(ids[0], TileId::new(0));
        assert_eq!(ids[15], TileId::new(15));
    }

    #[test]
    fn manhattan_is_symmetric() {
        let grid = Grid::new(6, 6);
        let a = grid.id(TileCoord::new(1, 2));
        let b = grid.id(TileCoord::new(4, 0));
        assert_eq!(grid.manhattan(a, b), grid.manhattan(b, a));
        assert_eq!(grid.manhattan(a, b), 5);
    }

    #[test]
    #[should_panic(expected = "outside")]
    fn out_of_range_coord_panics() {
        let grid = Grid::new(2, 2);
        let _ = grid.id(TileCoord::new(2, 0));
    }

    #[test]
    #[should_panic(expected = "dimensions must be positive")]
    fn zero_dimension_panics() {
        let _ = Grid::new(0, 4);
    }
}
