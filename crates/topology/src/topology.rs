//! The [`Topology`] graph: tiles connected by bidirectional links.
//!
//! A topology is a set of bidirectional links between tiles of a [`Grid`].
//! Each bidirectional link corresponds to two directed [`Channel`]s, which
//! is the granularity at which the simulator and the routing tables operate.

use std::collections::BTreeSet;
use std::fmt;

use serde::{Deserialize, Serialize};

use crate::grid::{Grid, TileCoord, TileId};

/// Identifier of a bidirectional link within a [`Topology`].
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
#[serde(transparent)]
pub struct LinkId(u32);

impl LinkId {
    /// Creates a link id from a raw index.
    #[must_use]
    pub const fn new(index: u32) -> Self {
        Self(index)
    }

    /// The raw index into [`Topology::links`].
    #[must_use]
    pub const fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for LinkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "L{}", self.0)
    }
}

/// Identifier of a directed channel. Each [`LinkId`] `l` yields channels
/// `2l` (from the lower-id endpoint to the higher) and `2l + 1` (reverse).
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
#[serde(transparent)]
pub struct ChannelId(u32);

impl ChannelId {
    /// Creates a channel id from a raw index.
    #[must_use]
    pub const fn new(index: u32) -> Self {
        Self(index)
    }

    /// The raw index.
    #[must_use]
    pub const fn index(self) -> usize {
        self.0 as usize
    }

    /// The bidirectional link this channel belongs to.
    #[must_use]
    pub const fn link(self) -> LinkId {
        LinkId::new(self.0 / 2)
    }
}

impl fmt::Display for ChannelId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "C{}", self.0)
    }
}

/// Typed construction failure of a [`Topology`] (or a [`Link`]).
///
/// [`Topology::try_new`] returns these; [`Topology::new`] panics with
/// their [`Display`](fmt::Display) rendering. CLI layers route them
/// through their usage-error path instead of unwinding.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TopologyError {
    /// Both endpoints of a link are the same tile (self-loops are not
    /// meaningful in a NoC).
    SelfLoop {
        /// The looping tile.
        tile: TileId,
    },
    /// A link references a tile outside the grid.
    LinkOutOfGrid {
        /// The offending link.
        link: Link,
        /// The grid it does not fit.
        grid: Grid,
    },
    /// The resulting graph is not connected (a NoC must provide
    /// connectivity between all tiles).
    Disconnected {
        /// The kind the topology was being built as.
        kind: TopologyKind,
        /// The grid it was being built on.
        grid: Grid,
    },
}

impl fmt::Display for TopologyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::SelfLoop { tile } => write!(f, "self-loop link at {tile}"),
            Self::LinkOutOfGrid { link, grid } => {
                write!(f, "link {link:?} outside {grid}")
            }
            Self::Disconnected { kind, grid } => {
                write!(f, "{kind} topology on {grid} is not connected")
            }
        }
    }
}

impl std::error::Error for TopologyError {}

/// A bidirectional link between two distinct tiles.
///
/// Links are stored with `a < b` (by tile id) so that a link has a unique
/// canonical representation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct Link {
    /// Lower-id endpoint.
    pub a: TileId,
    /// Higher-id endpoint.
    pub b: TileId,
}

impl Link {
    /// Canonicalizes a pair of endpoints into a link (`a < b`).
    ///
    /// # Panics
    ///
    /// Panics if both endpoints are the same tile (self-loops are not
    /// meaningful in a NoC).
    #[must_use]
    pub fn new(x: TileId, y: TileId) -> Self {
        Self::try_new(x, y).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Canonicalizes a pair of endpoints into a link (`a < b`).
    ///
    /// # Errors
    ///
    /// Returns [`TopologyError::SelfLoop`] if both endpoints are the
    /// same tile.
    pub fn try_new(x: TileId, y: TileId) -> Result<Self, TopologyError> {
        if x == y {
            return Err(TopologyError::SelfLoop { tile: x });
        }
        Ok(if x < y {
            Self { a: x, b: y }
        } else {
            Self { a: y, b: x }
        })
    }

    /// The endpoint opposite to `from`.
    ///
    /// # Panics
    ///
    /// Panics if `from` is not an endpoint of this link.
    #[must_use]
    pub fn opposite(&self, from: TileId) -> TileId {
        if from == self.a {
            self.b
        } else if from == self.b {
            self.a
        } else {
            panic!("{from} is not an endpoint of link {self:?}")
        }
    }
}

/// A directed channel: one direction of a bidirectional [`Link`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Channel {
    /// Channel identifier.
    pub id: ChannelId,
    /// Source tile.
    pub from: TileId,
    /// Destination tile.
    pub to: TileId,
}

/// The class of topology a [`Topology`] instance was generated as.
///
/// Carried along for reporting; all algorithms operate on the generic graph.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum TopologyKind {
    /// Hamiltonian-cycle ring (Fig. 1a).
    Ring,
    /// 2D mesh (Fig. 1b).
    Mesh,
    /// 2D torus with wrap-around links (Fig. 1c).
    Torus,
    /// Folded 2D torus: torus connectivity with interleaved placement
    /// avoiding long wrap links (Fig. 1d).
    FoldedTorus,
    /// Hypercube with Gray-code placement (Fig. 1e).
    Hypercube,
    /// SlimNoC based on MMS graphs (Fig. 1f).
    SlimNoc,
    /// Flattened butterfly: fully connected rows and columns (Fig. 1g).
    FlattenedButterfly,
    /// Ruche network: mesh plus fixed-length skip links (related work).
    Ruche,
    /// Sparse Hamming graph (the paper's contribution, Section III).
    SparseHamming,
    /// Anything assembled manually.
    Custom,
}

impl fmt::Display for TopologyKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            Self::Ring => "Ring",
            Self::Mesh => "2D Mesh",
            Self::Torus => "2D Torus",
            Self::FoldedTorus => "Folded 2D Torus",
            Self::Hypercube => "Hypercube",
            Self::SlimNoc => "SlimNoC",
            Self::FlattenedButterfly => "Flattened Butterfly",
            Self::Ruche => "Ruche",
            Self::SparseHamming => "Sparse Hamming Graph",
            Self::Custom => "Custom",
        };
        f.write_str(name)
    }
}

/// The functional class of a tile — the heterogeneity axis of the
/// paper's MemPool validation (compute vs memory vs IO rows).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize)]
pub enum TileClass {
    /// A processing-element tile (the default).
    #[default]
    Compute,
    /// A memory/bank tile.
    Memory,
    /// An IO/peripheral tile.
    Io,
}

impl fmt::Display for TileClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Self::Compute => "compute",
            Self::Memory => "memory",
            Self::Io => "io",
        })
    }
}

impl std::str::FromStr for TileClass {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "compute" => Ok(Self::Compute),
            "memory" => Ok(Self::Memory),
            "io" => Ok(Self::Io),
            other => Err(format!(
                "unknown tile class '{other}' (use compute|memory|io)"
            )),
        }
    }
}

/// Identifier of a die in a multi-die (chiplet) instantiation.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
#[serde(transparent)]
pub struct DieId(u16);

impl DieId {
    /// Creates a die id from a raw index.
    #[must_use]
    pub const fn new(index: u16) -> Self {
        Self(index)
    }

    /// The raw index.
    #[must_use]
    pub const fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for DieId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "D{}", self.0)
    }
}

/// Expanded-grid instantiation metadata carried by a [`Topology`] built
/// from a topology database: per-tile class and die membership, plus the
/// extra latency of die-boundary crossings.
///
/// The metadata is deliberately *outside* every structural fingerprint
/// (sweep plans and cell caches hash grid dimensions, links and
/// latencies) — it annotates the instantiated product for traffic
/// patterns and the floorplan model without invalidating existing
/// sweeps.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct TopologyMeta {
    /// Per-tile class, row-major over the grid.
    tile_classes: Vec<TileClass>,
    /// Per-tile die membership, row-major over the grid.
    tile_dies: Vec<DieId>,
    /// Die names, indexed by [`DieId`].
    die_names: Vec<String>,
    /// Extra cycles a flit pays to cross a die boundary.
    boundary_latency: u32,
}

impl TopologyMeta {
    /// Assembles instantiation metadata.
    ///
    /// # Panics
    ///
    /// Panics if the class and die vectors disagree in length, or a die
    /// index is out of range of `die_names`.
    #[must_use]
    pub fn new(
        tile_classes: Vec<TileClass>,
        tile_dies: Vec<DieId>,
        die_names: Vec<String>,
        boundary_latency: u32,
    ) -> Self {
        assert_eq!(
            tile_classes.len(),
            tile_dies.len(),
            "per-tile class and die vectors must cover the same tiles"
        );
        assert!(
            tile_dies.iter().all(|d| d.index() < die_names.len()),
            "tile die out of range of the die table"
        );
        Self {
            tile_classes,
            tile_dies,
            die_names,
            boundary_latency,
        }
    }

    /// Number of dies.
    #[must_use]
    pub fn num_dies(&self) -> usize {
        self.die_names.len()
    }

    /// The name of a die.
    ///
    /// # Panics
    ///
    /// Panics if the die id is out of range.
    #[must_use]
    pub fn die_name(&self, die: DieId) -> &str {
        &self.die_names[die.index()]
    }

    /// Extra cycles a flit pays to cross a die boundary.
    #[must_use]
    pub fn boundary_latency(&self) -> u32 {
        self.boundary_latency
    }
}

/// A NoC topology: a connected graph of bidirectional links over an R×C
/// tile grid.
///
/// # Examples
///
/// ```
/// use shg_topology::{generators, Grid};
///
/// let mesh = generators::mesh(Grid::new(4, 4));
/// assert_eq!(mesh.num_tiles(), 16);
/// assert_eq!(mesh.num_links(), 24); // 2 × 4×3 mesh edges
/// assert_eq!(mesh.max_degree(), 4);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Topology {
    grid: Grid,
    kind: TopologyKind,
    links: Vec<Link>,
    /// `adjacency[tile] = (neighbor, link)` pairs, sorted by neighbor id.
    adjacency: Vec<Vec<(TileId, LinkId)>>,
    /// Expanded-grid instantiation metadata (`None` for the flat
    /// homogeneous topologies the generators build directly).
    meta: Option<TopologyMeta>,
}

impl Topology {
    /// Builds a topology from a set of links.
    ///
    /// Duplicate links are merged; endpoints may be given in either order.
    ///
    /// # Panics
    ///
    /// Panics if a link references a tile outside the grid, if a link is a
    /// self-loop, or if the resulting graph is not connected (a NoC must
    /// provide connectivity between all tiles).
    #[must_use]
    pub fn new(grid: Grid, kind: TopologyKind, links: impl IntoIterator<Item = Link>) -> Self {
        Self::try_new(grid, kind, links).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Builds a topology from a set of links.
    ///
    /// Duplicate links are merged; endpoints may be given in either order.
    ///
    /// # Errors
    ///
    /// Returns [`TopologyError::LinkOutOfGrid`] if a link references a
    /// tile outside the grid, or [`TopologyError::Disconnected`] if the
    /// resulting graph is not connected (a NoC must provide connectivity
    /// between all tiles).
    pub fn try_new(
        grid: Grid,
        kind: TopologyKind,
        links: impl IntoIterator<Item = Link>,
    ) -> Result<Self, TopologyError> {
        let canonical: BTreeSet<Link> = links.into_iter().collect();
        let links: Vec<Link> = canonical.into_iter().collect();
        for &link in &links {
            if link.b.index() >= grid.num_tiles() {
                return Err(TopologyError::LinkOutOfGrid { link, grid });
            }
        }
        let mut adjacency = vec![Vec::new(); grid.num_tiles()];
        for (i, link) in links.iter().enumerate() {
            let id = LinkId::new(i as u32);
            adjacency[link.a.index()].push((link.b, id));
            adjacency[link.b.index()].push((link.a, id));
        }
        for list in &mut adjacency {
            list.sort_unstable();
        }
        let topology = Self {
            grid,
            kind,
            links,
            adjacency,
            meta: None,
        };
        if !topology.is_connected() {
            return Err(TopologyError::Disconnected { kind, grid });
        }
        Ok(topology)
    }

    /// The underlying tile grid.
    #[must_use]
    pub fn grid(&self) -> Grid {
        self.grid
    }

    /// The topology class this instance was generated as.
    #[must_use]
    pub fn kind(&self) -> TopologyKind {
        self.kind
    }

    /// Attaches expanded-grid instantiation metadata.
    ///
    /// # Panics
    ///
    /// Panics if the metadata does not cover exactly this grid's tiles.
    #[must_use]
    pub fn with_meta(mut self, meta: TopologyMeta) -> Self {
        assert_eq!(
            meta.tile_classes.len(),
            self.num_tiles(),
            "metadata must cover every tile of {}",
            self.grid
        );
        self.meta = Some(meta);
        self
    }

    /// Expanded-grid instantiation metadata, when this topology was
    /// materialized from a topology database.
    #[must_use]
    pub fn meta(&self) -> Option<&TopologyMeta> {
        self.meta.as_ref()
    }

    /// The functional class of a tile ([`TileClass::Compute`] for flat
    /// topologies without metadata).
    ///
    /// # Panics
    ///
    /// Panics if the tile is out of range.
    #[must_use]
    pub fn tile_class(&self, tile: TileId) -> TileClass {
        self.meta
            .as_ref()
            .map_or(TileClass::Compute, |m| m.tile_classes[tile.index()])
    }

    /// The die a tile belongs to (die 0 for flat topologies without
    /// metadata).
    ///
    /// # Panics
    ///
    /// Panics if the tile is out of range.
    #[must_use]
    pub fn tile_die(&self, tile: TileId) -> DieId {
        self.meta
            .as_ref()
            .map_or(DieId::new(0), |m| m.tile_dies[tile.index()])
    }

    /// Number of dies this topology spans (1 without metadata).
    #[must_use]
    pub fn num_dies(&self) -> usize {
        self.meta.as_ref().map_or(1, TopologyMeta::num_dies)
    }

    /// `true` if the link's endpoints sit on different dies.
    ///
    /// # Panics
    ///
    /// Panics if the id is out of range.
    #[must_use]
    pub fn link_crosses_die(&self, id: LinkId) -> bool {
        let link = self.links[id.index()];
        self.tile_die(link.a) != self.tile_die(link.b)
    }

    /// Extra cycles a flit pays on die-boundary links (0 without
    /// metadata).
    #[must_use]
    pub fn boundary_latency(&self) -> u32 {
        self.meta.as_ref().map_or(0, TopologyMeta::boundary_latency)
    }

    /// Number of rows `R`.
    #[must_use]
    pub fn rows(&self) -> u16 {
        self.grid.rows()
    }

    /// Number of columns `C`.
    #[must_use]
    pub fn cols(&self) -> u16 {
        self.grid.cols()
    }

    /// Number of tiles.
    #[must_use]
    pub fn num_tiles(&self) -> usize {
        self.grid.num_tiles()
    }

    /// Number of bidirectional links.
    #[must_use]
    pub fn num_links(&self) -> usize {
        self.links.len()
    }

    /// Number of directed channels (twice the number of links).
    #[must_use]
    pub fn num_channels(&self) -> usize {
        self.links.len() * 2
    }

    /// The bidirectional links, sorted canonically.
    #[must_use]
    pub fn links(&self) -> &[Link] {
        &self.links
    }

    /// Looks up a link by id.
    ///
    /// # Panics
    ///
    /// Panics if the id is out of range.
    #[must_use]
    pub fn link(&self, id: LinkId) -> Link {
        self.links[id.index()]
    }

    /// The directed channel with the given id.
    ///
    /// # Panics
    ///
    /// Panics if the id is out of range.
    #[must_use]
    pub fn channel(&self, id: ChannelId) -> Channel {
        let link = self.links[id.link().index()];
        let (from, to) = if id.index().is_multiple_of(2) {
            (link.a, link.b)
        } else {
            (link.b, link.a)
        };
        Channel { id, from, to }
    }

    /// The directed channel from `from` across `link`.
    ///
    /// # Panics
    ///
    /// Panics if `from` is not an endpoint of `link`.
    #[must_use]
    pub fn channel_from(&self, from: TileId, link: LinkId) -> Channel {
        let l = self.links[link.index()];
        let id = if from == l.a {
            ChannelId::new(link.index() as u32 * 2)
        } else if from == l.b {
            ChannelId::new(link.index() as u32 * 2 + 1)
        } else {
            panic!("{from} is not an endpoint of {link}")
        };
        Channel {
            id,
            from,
            to: l.opposite(from),
        }
    }

    /// Iterates over all directed channels.
    pub fn channels(&self) -> impl Iterator<Item = Channel> + '_ {
        (0..self.num_channels() as u32).map(|i| self.channel(ChannelId::new(i)))
    }

    /// Neighbors of `tile` with the connecting link, sorted by neighbor id.
    ///
    /// # Panics
    ///
    /// Panics if the tile is out of range.
    #[must_use]
    pub fn neighbors(&self, tile: TileId) -> &[(TileId, LinkId)] {
        &self.adjacency[tile.index()]
    }

    /// Degree (number of incident links) of `tile`. This equals the number
    /// of network ports of the tile's router.
    #[must_use]
    pub fn degree(&self, tile: TileId) -> usize {
        self.adjacency[tile.index()].len()
    }

    /// Maximum degree over all tiles — the *router radix* of Table I
    /// (network ports only, excluding the endpoint port).
    #[must_use]
    pub fn max_degree(&self) -> usize {
        (0..self.num_tiles())
            .map(|t| self.adjacency[t].len())
            .max()
            .unwrap_or(0)
    }

    /// Average degree over all tiles.
    #[must_use]
    pub fn avg_degree(&self) -> f64 {
        2.0 * self.num_links() as f64 / self.num_tiles() as f64
    }

    /// `true` if a link between `x` and `y` exists.
    #[must_use]
    pub fn has_link(&self, x: TileId, y: TileId) -> bool {
        self.adjacency[x.index()]
            .binary_search_by_key(&y, |&(n, _)| n)
            .is_ok()
    }

    /// Physical length of a link in tile units (Manhattan distance between
    /// the endpoints' grid positions).
    #[must_use]
    pub fn link_length(&self, id: LinkId) -> u32 {
        let link = self.links[id.index()];
        self.grid.manhattan(link.a, link.b)
    }

    /// `true` if the link stays within one row or one column of the grid
    /// (an *aligned* link in the sense of design principle ❷).
    #[must_use]
    pub fn link_aligned(&self, id: LinkId) -> bool {
        let link = self.links[id.index()];
        let (ca, cb) = (self.grid.coord(link.a), self.grid.coord(link.b));
        ca.same_row(cb) || ca.same_col(cb)
    }

    /// Coordinate of a tile (convenience for `self.grid().coord(tile)`).
    #[must_use]
    pub fn coord(&self, tile: TileId) -> TileCoord {
        self.grid.coord(tile)
    }

    /// Breadth-first hop distances from `source` to every tile.
    ///
    /// Unreachable tiles would be reported as `u32::MAX`, but constructed
    /// topologies are always connected.
    #[must_use]
    pub fn bfs_distances(&self, source: TileId) -> Vec<u32> {
        let mut dist = vec![u32::MAX; self.num_tiles()];
        let mut queue = std::collections::VecDeque::new();
        dist[source.index()] = 0;
        queue.push_back(source);
        while let Some(t) = queue.pop_front() {
            let d = dist[t.index()];
            for &(n, _) in self.neighbors(t) {
                if dist[n.index()] == u32::MAX {
                    dist[n.index()] = d + 1;
                    queue.push_back(n);
                }
            }
        }
        dist
    }

    fn is_connected(&self) -> bool {
        if self.num_tiles() == 1 {
            return true;
        }
        let dist = self.bfs_distances(TileId::new(0));
        dist.iter().all(|&d| d != u32::MAX)
    }
}

impl fmt::Display for Topology {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} on {} ({} links)",
            self.kind,
            self.grid,
            self.num_links()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn path_topology() -> Topology {
        // 1×4 path: 0-1-2-3.
        let grid = Grid::new(1, 4);
        Topology::new(
            grid,
            TopologyKind::Custom,
            (0..3).map(|i| Link::new(TileId::new(i), TileId::new(i + 1))),
        )
    }

    #[test]
    fn link_canonicalizes_endpoints() {
        let l1 = Link::new(TileId::new(3), TileId::new(1));
        let l2 = Link::new(TileId::new(1), TileId::new(3));
        assert_eq!(l1, l2);
        assert_eq!(l1.a, TileId::new(1));
    }

    #[test]
    #[should_panic(expected = "self-loop")]
    fn self_loop_panics() {
        let _ = Link::new(TileId::new(2), TileId::new(2));
    }

    #[test]
    fn duplicate_links_are_merged() {
        let grid = Grid::new(1, 2);
        let t = Topology::new(
            grid,
            TopologyKind::Custom,
            vec![
                Link::new(TileId::new(0), TileId::new(1)),
                Link::new(TileId::new(1), TileId::new(0)),
            ],
        );
        assert_eq!(t.num_links(), 1);
    }

    #[test]
    #[should_panic(expected = "not connected")]
    fn disconnected_topology_panics() {
        let grid = Grid::new(1, 4);
        let _ = Topology::new(
            grid,
            TopologyKind::Custom,
            vec![Link::new(TileId::new(0), TileId::new(1))],
        );
    }

    #[test]
    fn channels_pair_up() {
        let t = path_topology();
        assert_eq!(t.num_channels(), 6);
        let c0 = t.channel(ChannelId::new(0));
        let c1 = t.channel(ChannelId::new(1));
        assert_eq!(c0.from, c1.to);
        assert_eq!(c0.to, c1.from);
    }

    #[test]
    fn channel_from_picks_direction() {
        let t = path_topology();
        let link = t.neighbors(TileId::new(1))[0].1;
        let fwd = t.channel_from(TileId::new(0), link);
        assert_eq!(fwd.from, TileId::new(0));
        assert_eq!(fwd.to, TileId::new(1));
        let bwd = t.channel_from(TileId::new(1), link);
        assert_eq!(bwd.from, TileId::new(1));
        assert_eq!(bwd.to, TileId::new(0));
    }

    #[test]
    fn bfs_distances_on_path() {
        let t = path_topology();
        let dist = t.bfs_distances(TileId::new(0));
        assert_eq!(dist, vec![0, 1, 2, 3]);
    }

    #[test]
    fn degree_and_has_link() {
        let t = path_topology();
        assert_eq!(t.degree(TileId::new(0)), 1);
        assert_eq!(t.degree(TileId::new(1)), 2);
        assert_eq!(t.max_degree(), 2);
        assert!(t.has_link(TileId::new(0), TileId::new(1)));
        assert!(!t.has_link(TileId::new(0), TileId::new(2)));
    }

    #[test]
    fn link_length_and_alignment() {
        let grid = Grid::new(2, 2);
        let t = Topology::new(
            grid,
            TopologyKind::Custom,
            vec![
                Link::new(TileId::new(0), TileId::new(1)), // same row
                Link::new(TileId::new(0), TileId::new(2)), // same col
                Link::new(TileId::new(0), TileId::new(3)), // diagonal
                Link::new(TileId::new(1), TileId::new(2)), // diagonal
            ],
        );
        let find = |a: u32, b: u32| {
            let want = Link::new(TileId::new(a), TileId::new(b));
            LinkId::new(t.links().iter().position(|&l| l == want).unwrap() as u32)
        };
        assert_eq!(t.link_length(find(0, 1)), 1);
        assert!(t.link_aligned(find(0, 1)));
        assert!(t.link_aligned(find(0, 2)));
        assert!(!t.link_aligned(find(0, 3)));
        assert_eq!(t.link_length(find(0, 3)), 2);
    }
}
