//! ASCII rendering of topologies — the textual equivalent of Fig. 1/2.
//!
//! Tiles are drawn as `o` on a grid; unit-length links as `-`/`|`; longer
//! aligned links as arcs listed below the grid (they cannot be drawn
//! inline without crossing tiles, mirroring the physical routing
//! constraint of Section II-A).

use crate::grid::TileCoord;
use crate::topology::Topology;

/// Renders the mesh-drawable part of a topology: tiles plus unit links.
///
/// # Examples
///
/// ```
/// use shg_topology::{draw, generators, Grid};
///
/// let mesh = generators::mesh(Grid::new(2, 3));
/// let art = draw::grid_art(&mesh);
/// assert_eq!(art.lines().count(), 3); // 2 tile rows + 1 link row
/// assert!(art.contains("o---o---o"));
/// ```
#[must_use]
pub fn grid_art(topology: &Topology) -> String {
    let grid = topology.grid();
    let (rows, cols) = (grid.rows(), grid.cols());
    let mut out = String::new();
    for r in 0..rows {
        // Tile row with horizontal unit links.
        for c in 0..cols {
            out.push('o');
            if c + 1 < cols {
                let a = grid.id(TileCoord::new(r, c));
                let b = grid.id(TileCoord::new(r, c + 1));
                out.push_str(if topology.has_link(a, b) {
                    "---"
                } else {
                    "   "
                });
            }
        }
        out.push('\n');
        // Vertical unit links.
        if r + 1 < rows {
            for c in 0..cols {
                let a = grid.id(TileCoord::new(r, c));
                let b = grid.id(TileCoord::new(r + 1, c));
                out.push(if topology.has_link(a, b) { '|' } else { ' ' });
                if c + 1 < cols {
                    out.push_str("   ");
                }
            }
            out.push('\n');
        }
    }
    out
}

/// Lists the non-unit (skip/wrap/diagonal) links as arcs, grouped by
/// length, e.g. `len 4: (0,0)<->(0,4) (0,1)<->(0,5) …`.
#[must_use]
pub fn long_link_listing(topology: &Topology) -> String {
    use std::collections::BTreeMap;
    let grid = topology.grid();
    let mut by_length: BTreeMap<u32, Vec<String>> = BTreeMap::new();
    for (i, link) in topology.links().iter().enumerate() {
        let id = crate::topology::LinkId::new(i as u32);
        let len = topology.link_length(id);
        if len > 1 {
            by_length.entry(len).or_default().push(format!(
                "{}<->{}",
                grid.coord(link.a),
                grid.coord(link.b)
            ));
        }
    }
    let mut out = String::new();
    for (len, links) in by_length {
        out.push_str(&format!("len {len}: {}\n", links.join(" ")));
    }
    out
}

/// Full rendering: the grid art plus the long-link listing.
///
/// # Examples
///
/// ```
/// use shg_topology::{draw, generators, Grid};
///
/// let torus = generators::torus(Grid::new(3, 3));
/// let art = draw::render(&torus);
/// assert!(art.contains("len 2:")); // wrap links
/// ```
#[must_use]
pub fn render(topology: &Topology) -> String {
    let mut out = format!("{topology}\n");
    out.push_str(&grid_art(topology));
    let long = long_link_listing(topology);
    if !long.is_empty() {
        out.push_str("long links:\n");
        out.push_str(&long);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;
    use crate::grid::Grid;

    #[test]
    fn mesh_art_has_all_unit_links() {
        let art = grid_art(&generators::mesh(Grid::new(3, 3)));
        let expected = "\
o---o---o
|   |   |
o---o---o
|   |   |
o---o---o
";
        assert_eq!(art, expected);
    }

    #[test]
    fn mesh_has_no_long_links() {
        let listing = long_link_listing(&generators::mesh(Grid::new(4, 4)));
        assert!(listing.is_empty());
    }

    #[test]
    fn torus_lists_wrap_links() {
        let listing = long_link_listing(&generators::torus(Grid::new(4, 4)));
        assert!(listing.contains("len 3:"), "{listing}");
        // 4 row wraps + 4 column wraps.
        assert_eq!(listing.matches("<->").count(), 8);
    }

    #[test]
    fn sparse_hamming_render_shows_base_and_skips() {
        let sr = [3].into_iter().collect();
        let sc = std::collections::BTreeSet::new();
        let shg = generators::row_column_skip(Grid::new(2, 4), &sr, &sc).expect("valid");
        let art = render(&shg);
        assert!(art.contains("o---o---o---o"));
        assert!(art.contains("len 3:"));
    }

    #[test]
    fn ring_art_omits_missing_mesh_links() {
        // A 2×2 ring is exactly the 2×2 mesh cycle.
        let art = grid_art(&generators::ring(Grid::new(2, 2)));
        assert_eq!(art, "o---o\n|   |\no---o\n");
    }
}
