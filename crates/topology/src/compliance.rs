//! Design-principle compliance analysis — the computed Table I.
//!
//! Section II of the paper identifies four NoC topology design principles:
//! ❶ low-radix topologies, ❷ design for routability (short links, aligned
//! links, uniform link density, optimized port placement), ❸ minimal
//! network diameter, ❹ minimal physical path length. Table I grades every
//! topology against these criteria.
//!
//! This module *computes* each cell from the topology structure rather
//! than hard-coding the paper's grades, so the Table I reproduction is an
//! actual experiment: quantitative metrics are thresholded into the
//! ✓ / ∼ / ✗ grades the paper prints.

use serde::{Deserialize, Serialize};

use crate::generators;
use crate::grid::Grid;
use crate::metrics;
use crate::routing;
use crate::topology::{Topology, TopologyKind};

/// A qualitative grade matching the paper's ✓ / (✓) / ∼ / ✗ notation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Grade {
    /// Fully satisfied (✓).
    Yes,
    /// Satisfied only for some parametrizations ((✓)).
    Conditional,
    /// Partially satisfied (∼).
    Partial,
    /// Not satisfied (✗).
    No,
}

impl std::fmt::Display for Grade {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            Self::Yes => "yes",
            Self::Conditional => "(yes)",
            Self::Partial => "~",
            Self::No => "no",
        };
        f.write_str(s)
    }
}

/// One row of the computed Table I.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ComplianceRow {
    /// Topology name.
    pub name: String,
    /// Topology kind.
    pub kind: TopologyKind,
    /// Router radix (maximum degree) — principle ❶.
    pub router_radix: usize,
    /// Short links grade (❷ SL) and the underlying fraction of links with
    /// length ≤ 1.
    pub short_links: Grade,
    /// Fraction of unit-length links.
    pub short_fraction: f64,
    /// Aligned links grade (❷ AL).
    pub aligned_links: Grade,
    /// Fraction of row/column-aligned links.
    pub aligned_fraction: f64,
    /// Uniform link density grade (❷ ULD).
    pub uniform_density: Grade,
    /// Max-to-mean channel-segment load ratio (1.0 = perfectly uniform).
    pub density_ratio: f64,
    /// Optimized port placement grade (❷ OPP).
    pub port_placement: Grade,
    /// Maximum number of links leaving one tile toward the same grid face.
    pub max_links_per_face: usize,
    /// Network diameter in hops — principle ❸.
    pub diameter: u32,
    /// Physically minimal paths present for all pairs (❹a).
    pub minimal_paths_present: bool,
    /// Fraction of pairs with a physically minimal path.
    pub minimal_path_coverage: f64,
    /// Hop-minimal routing uses physically minimal paths (❹b).
    pub minimal_paths_used: bool,
    /// Number of distinct configurations for the given R and C.
    pub num_configurations: u128,
}

/// Grades the short-links criterion: all-unit links are a ✓; a topology
/// whose longest link still spans at most two tiles (the folded torus) is
/// a ∼; anything with genuinely long links (torus wraps, butterfly
/// express links) is a ✗.
fn grade_short(stats: &metrics::LinkStats) -> Grade {
    if stats.short_fraction >= 0.99 {
        Grade::Yes
    } else if stats.max_length <= 2 {
        Grade::Partial
    } else {
        Grade::No
    }
}

/// Grades the aligned-links criterion.
fn grade_aligned(fraction: f64) -> Grade {
    if fraction >= 0.99 {
        Grade::Yes
    } else if fraction >= 0.5 {
        Grade::Partial
    } else {
        Grade::No
    }
}

/// Grades the uniform-link-density criterion from the max/mean channel
/// load ratio.
fn grade_density(ratio: f64) -> Grade {
    if ratio <= 1.6 {
        Grade::Yes
    } else if ratio <= 3.0 {
        Grade::Partial
    } else {
        Grade::No
    }
}

/// Grades port placement: a port placement is optimizable when every link
/// has a *natural face* — it leaves the tile toward its destination's row
/// or column. Aligned links always do; diagonal links (SlimNoC's cross
/// edges) do not, which forces detoured entry/exit wiring no matter where
/// the ports sit.
fn grade_ports(aligned_fraction: f64) -> Grade {
    if aligned_fraction >= 0.99 {
        Grade::Yes
    } else if aligned_fraction >= 0.5 {
        Grade::Partial
    } else {
        Grade::No
    }
}

/// Maximum number of links a single tile sends toward one of its four
/// faces, assigning each link to the face it leaves through (dominant
/// direction for diagonal links).
#[must_use]
pub fn max_links_per_face(topology: &Topology) -> usize {
    let grid = topology.grid();
    let mut max = 0;
    for tile in grid.tiles() {
        let mut per_face = [0usize; 4]; // N, S, E, W
        let c = grid.coord(tile);
        for &(neighbor, _) in topology.neighbors(tile) {
            let nc = grid.coord(neighbor);
            let dr = nc.row as i32 - c.row as i32;
            let dc = nc.col as i32 - c.col as i32;
            let face = if dr.abs() >= dc.abs() {
                if dr < 0 {
                    0
                } else {
                    1
                }
            } else if dc > 0 {
                2
            } else {
                3
            };
            per_face[face] += 1;
        }
        max = max.max(*per_face.iter().max().expect("4 faces"));
    }
    max
}

/// Number of distinct configurations of a topology kind for a given grid
/// (the rightmost column of Table I).
#[must_use]
pub fn num_configurations(kind: TopologyKind, grid: Grid) -> u128 {
    let (r, c) = (grid.rows() as u32, grid.cols() as u32);
    match kind {
        TopologyKind::Ring
        | TopologyKind::Mesh
        | TopologyKind::Torus
        | TopologyKind::FoldedTorus
        | TopologyKind::FlattenedButterfly => 1,
        TopologyKind::Hypercube => {
            u128::from(grid.rows().is_power_of_two() && grid.cols().is_power_of_two())
        }
        TopologyKind::SlimNoc => u128::from(crate::generators::slim_noc(grid).is_ok()),
        // SR ⊆ {2..C−1} (C−2 choices), SC ⊆ {2..R−1} (R−2 choices):
        // 2^(R+C−4) subsets.
        TopologyKind::SparseHamming => {
            let exponent = (r + c).saturating_sub(4);
            1u128 << exponent.min(127)
        }
        // Ruche: one factor per dimension within [2, dim), plus the plain
        // mesh. (A coarse count; the paper only notes it is "quite limited".)
        TopologyKind::Ruche => u128::from(r.saturating_sub(2) * c.saturating_sub(2)) + 1,
        TopologyKind::Custom => 1,
    }
}

/// Computes a full compliance row for one topology.
///
/// # Examples
///
/// ```
/// use shg_topology::{compliance, generators, Grid};
///
/// let mesh = generators::mesh(Grid::new(8, 8));
/// let row = compliance::analyze(&mesh);
/// assert_eq!(row.router_radix, 4);
/// assert_eq!(row.diameter, 14); // R + C − 2
/// assert!(row.minimal_paths_present && row.minimal_paths_used);
/// ```
#[must_use]
pub fn analyze(topology: &Topology) -> ComplianceRow {
    let stats = metrics::link_stats(topology);
    let density = metrics::gap_density(topology).max_to_mean();
    let max_per_face = max_links_per_face(topology);
    let radix = topology.max_degree();
    let minimal_used = routing::default_routes(topology)
        .map(|routes| routes.minimal_paths_used(topology))
        .unwrap_or(false);
    ComplianceRow {
        name: topology.kind().to_string(),
        kind: topology.kind(),
        router_radix: radix,
        short_links: grade_short(&stats),
        short_fraction: stats.short_fraction,
        aligned_links: grade_aligned(stats.aligned_fraction),
        aligned_fraction: stats.aligned_fraction,
        uniform_density: grade_density(density),
        density_ratio: density,
        port_placement: grade_ports(stats.aligned_fraction),
        max_links_per_face: max_per_face,
        diameter: metrics::diameter(topology),
        minimal_paths_present: metrics::minimal_paths_present(topology),
        minimal_path_coverage: metrics::minimal_path_coverage(topology),
        minimal_paths_used: minimal_used,
        num_configurations: num_configurations(topology.kind(), topology.grid()),
    }
}

/// Builds every applicable established topology for `grid` plus the given
/// sparse Hamming instance, and analyzes them all — the full Table I.
#[must_use]
pub fn table1(grid: Grid, sparse_hamming: Option<&Topology>) -> Vec<ComplianceRow> {
    let mut rows = vec![
        analyze(&generators::ring(grid)),
        analyze(&generators::mesh(grid)),
        analyze(&generators::torus(grid)),
        analyze(&generators::folded_torus(grid)),
    ];
    if let Ok(hc) = generators::hypercube(grid) {
        rows.push(analyze(&hc));
    }
    if let Ok(slim) = generators::slim_noc(grid) {
        rows.push(analyze(&slim));
    }
    rows.push(analyze(&generators::flattened_butterfly(grid)));
    if let Some(shg) = sparse_hamming {
        rows.push(analyze(shg));
    }
    rows
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mesh_row_matches_table1() {
        let row = analyze(&generators::mesh(Grid::new(8, 8)));
        assert_eq!(row.router_radix, 4);
        assert_eq!(row.short_links, Grade::Yes);
        assert_eq!(row.aligned_links, Grade::Yes);
        assert_eq!(row.uniform_density, Grade::Yes);
        assert_eq!(row.port_placement, Grade::Yes);
        assert_eq!(row.diameter, 14);
        assert!(row.minimal_paths_present);
        assert!(row.minimal_paths_used);
        assert_eq!(row.num_configurations, 1);
    }

    #[test]
    fn torus_row_matches_table1() {
        let row = analyze(&generators::torus(Grid::new(8, 8)));
        assert_eq!(row.router_radix, 4);
        // Long wrap links: SL ✗ in the paper.
        assert_eq!(row.short_links, Grade::No);
        assert_eq!(row.aligned_links, Grade::Yes);
        assert_eq!(row.diameter, 8);
        assert!(row.minimal_paths_present);
        assert!(!row.minimal_paths_used);
    }

    #[test]
    fn flattened_butterfly_row_matches_table1() {
        let row = analyze(&generators::flattened_butterfly(Grid::new(8, 8)));
        assert_eq!(row.router_radix, 14); // R + C − 2
        assert_eq!(row.short_links, Grade::No);
        assert_eq!(row.aligned_links, Grade::Yes);
        assert_eq!(row.diameter, 2);
        assert!(row.minimal_paths_present);
        assert!(row.minimal_paths_used);
    }

    #[test]
    fn ring_row_matches_table1() {
        let row = analyze(&generators::ring(Grid::new(8, 8)));
        assert_eq!(row.router_radix, 2);
        assert_eq!(row.short_links, Grade::Yes);
        assert_eq!(row.diameter, 32); // R·C/2
        assert!(!row.minimal_paths_present);
        assert!(!row.minimal_paths_used);
    }

    #[test]
    fn hypercube_row_matches_table1() {
        let row = analyze(&generators::hypercube(Grid::new(8, 8)).expect("8x8"));
        assert_eq!(row.router_radix, 6);
        assert_eq!(row.diameter, 6);
        assert_eq!(row.aligned_links, Grade::Yes);
        assert_eq!(row.short_links, Grade::No);
        assert!(row.minimal_paths_present);
        assert!(!row.minimal_paths_used);
    }

    #[test]
    fn slimnoc_row_matches_table1() {
        let row = analyze(&generators::slim_noc(Grid::new(16, 8)).expect("128 tiles"));
        assert_eq!(row.diameter, 2);
        assert_eq!(row.short_links, Grade::No);
        assert_ne!(row.aligned_links, Grade::Yes);
        assert!(!row.minimal_paths_present);
        assert!(!row.minimal_paths_used);
    }

    #[test]
    fn sparse_hamming_configuration_count() {
        // Table I: 2^(R+C−4) configurations.
        let grid = Grid::new(8, 8);
        assert_eq!(
            num_configurations(TopologyKind::SparseHamming, grid),
            1 << 12
        );
        let grid = Grid::new(16, 8);
        assert_eq!(
            num_configurations(TopologyKind::SparseHamming, grid),
            1 << 20
        );
    }

    #[test]
    fn hypercube_configuration_count_conditional() {
        assert_eq!(
            num_configurations(TopologyKind::Hypercube, Grid::new(8, 8)),
            1
        );
        assert_eq!(
            num_configurations(TopologyKind::Hypercube, Grid::new(6, 8)),
            0
        );
    }

    #[test]
    fn slimnoc_configuration_count_conditional() {
        assert_eq!(
            num_configurations(TopologyKind::SlimNoc, Grid::new(16, 8)),
            1
        );
        assert_eq!(
            num_configurations(TopologyKind::SlimNoc, Grid::new(8, 8)),
            0
        );
    }

    #[test]
    fn full_table_covers_topologies() {
        let grid = Grid::new(8, 8);
        let sr = [4].into_iter().collect();
        let sc = [2, 5].into_iter().collect();
        let shg = generators::row_column_skip(grid, &sr, &sc).expect("valid");
        let rows = table1(grid, Some(&shg));
        // 64 tiles: no SlimNoC; ring, mesh, torus, folded, hypercube, FB, SHG.
        assert_eq!(rows.len(), 7);
        let shg_row = rows.last().expect("SHG row");
        assert!(shg_row.router_radix >= 4 && shg_row.router_radix <= 14);
        assert!(shg_row.diameter >= 2 && shg_row.diameter <= 14);
    }
}
