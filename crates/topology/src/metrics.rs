//! Graph metrics for topologies: hop distances, diameter, physical path
//! lengths, and link statistics.
//!
//! These metrics feed design principle ❸ (network diameter) and ❹
//! (physical path length) as well as the Table I compliance analysis.

use serde::{Deserialize, Serialize};

use crate::grid::TileId;
use crate::topology::Topology;

/// All-pairs hop-distance matrix.
///
/// # Examples
///
/// ```
/// use shg_topology::{generators, metrics::DistanceMatrix, Grid, TileId};
///
/// let mesh = generators::mesh(Grid::new(4, 4));
/// let dist = DistanceMatrix::hops(&mesh);
/// assert_eq!(dist.distance(TileId::new(0), TileId::new(15)), 6);
/// assert_eq!(dist.diameter(), 6);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct DistanceMatrix {
    n: usize,
    dist: Vec<u32>,
}

impl DistanceMatrix {
    /// Computes hop distances by BFS from every tile.
    #[must_use]
    pub fn hops(topology: &Topology) -> Self {
        let n = topology.num_tiles();
        let mut dist = Vec::with_capacity(n * n);
        for source in topology.grid().tiles() {
            dist.extend(topology.bfs_distances(source));
        }
        Self { n, dist }
    }

    /// Computes *physical* distances: the shortest path where each link
    /// costs its physical length (Manhattan distance between endpoints).
    ///
    /// Uses Dijkstra per source; link weights are small non-negative
    /// integers.
    #[must_use]
    pub fn physical(topology: &Topology) -> Self {
        let n = topology.num_tiles();
        let mut dist = Vec::with_capacity(n * n);
        for source in topology.grid().tiles() {
            dist.extend(dijkstra_physical(topology, source));
        }
        Self { n, dist }
    }

    /// Distance from `a` to `b`.
    ///
    /// # Panics
    ///
    /// Panics if either id is out of range.
    #[must_use]
    pub fn distance(&self, a: TileId, b: TileId) -> u32 {
        self.dist[a.index() * self.n + b.index()]
    }

    /// The largest pairwise distance — for hop distances this is the
    /// *network diameter* of design principle ❸.
    #[must_use]
    pub fn diameter(&self) -> u32 {
        self.dist.iter().copied().max().unwrap_or(0)
    }

    /// Mean distance over all ordered pairs of distinct tiles.
    #[must_use]
    pub fn average(&self) -> f64 {
        if self.n < 2 {
            return 0.0;
        }
        let total: u64 = self.dist.iter().map(|&d| d as u64).sum();
        total as f64 / (self.n * (self.n - 1)) as f64
    }

    /// Number of tiles.
    #[must_use]
    pub fn len(&self) -> usize {
        self.n
    }

    /// `true` if the matrix covers no tiles.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }
}

fn dijkstra_physical(topology: &Topology, source: TileId) -> Vec<u32> {
    use std::cmp::Reverse;
    use std::collections::BinaryHeap;
    let n = topology.num_tiles();
    let mut dist = vec![u32::MAX; n];
    let mut heap = BinaryHeap::new();
    dist[source.index()] = 0;
    heap.push(Reverse((0u32, source)));
    while let Some(Reverse((d, t))) = heap.pop() {
        if d > dist[t.index()] {
            continue;
        }
        for &(neighbor, link) in topology.neighbors(t) {
            let nd = d + topology.link_length(link);
            if nd < dist[neighbor.index()] {
                dist[neighbor.index()] = nd;
                heap.push(Reverse((nd, neighbor)));
            }
        }
    }
    dist
}

/// Network diameter in router-to-router hops (design principle ❸).
#[must_use]
pub fn diameter(topology: &Topology) -> u32 {
    DistanceMatrix::hops(topology).diameter()
}

/// Average hop distance over all ordered pairs.
#[must_use]
pub fn average_hops(topology: &Topology) -> f64 {
    DistanceMatrix::hops(topology).average()
}

/// `true` if for *every* pair of tiles there exists a path whose physical
/// length equals the Manhattan distance between the tiles — the
/// "minimal paths present" column of Table I (design principle ❹a).
#[must_use]
pub fn minimal_paths_present(topology: &Topology) -> bool {
    let phys = DistanceMatrix::physical(topology);
    let grid = topology.grid();
    grid.tiles().all(|a| {
        grid.tiles()
            .all(|b| phys.distance(a, b) == grid.manhattan(a, b))
    })
}

/// Fraction of ordered tile pairs whose physically shortest path through
/// the topology equals their Manhattan distance.
///
/// `1.0` means minimal paths are present for all pairs; useful as a
/// quantitative refinement of [`minimal_paths_present`].
#[must_use]
pub fn minimal_path_coverage(topology: &Topology) -> f64 {
    let phys = DistanceMatrix::physical(topology);
    let grid = topology.grid();
    let mut minimal = 0usize;
    let mut total = 0usize;
    for a in grid.tiles() {
        for b in grid.tiles() {
            if a != b {
                total += 1;
                if phys.distance(a, b) == grid.manhattan(a, b) {
                    minimal += 1;
                }
            }
        }
    }
    if total == 0 {
        1.0
    } else {
        minimal as f64 / total as f64
    }
}

/// Summary statistics over the links of a topology.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LinkStats {
    /// Number of bidirectional links.
    pub count: usize,
    /// Total physical length, in tile units.
    pub total_length: u64,
    /// Longest link, in tile units.
    pub max_length: u32,
    /// Mean link length, in tile units.
    pub mean_length: f64,
    /// Fraction of links connecting grid-adjacent tiles (length 1).
    pub short_fraction: f64,
    /// Fraction of links that stay within one row or column.
    pub aligned_fraction: f64,
}

/// Computes [`LinkStats`] for a topology.
///
/// # Examples
///
/// ```
/// use shg_topology::{generators, metrics, Grid};
///
/// let stats = metrics::link_stats(&generators::mesh(Grid::new(4, 4)));
/// assert_eq!(stats.short_fraction, 1.0);
/// assert_eq!(stats.aligned_fraction, 1.0);
/// ```
#[must_use]
pub fn link_stats(topology: &Topology) -> LinkStats {
    let count = topology.num_links();
    let mut total_length = 0u64;
    let mut max_length = 0u32;
    let mut short = 0usize;
    let mut aligned = 0usize;
    for i in 0..count {
        let id = crate::topology::LinkId::new(i as u32);
        let len = topology.link_length(id);
        total_length += len as u64;
        max_length = max_length.max(len);
        if len <= 1 {
            short += 1;
        }
        if topology.link_aligned(id) {
            aligned += 1;
        }
    }
    LinkStats {
        count,
        total_length,
        max_length,
        mean_length: if count == 0 {
            0.0
        } else {
            total_length as f64 / count as f64
        },
        short_fraction: if count == 0 {
            1.0
        } else {
            short as f64 / count as f64
        },
        aligned_fraction: if count == 0 {
            1.0
        } else {
            aligned as f64 / count as f64
        },
    }
}

/// Per-gap parallel-link counts used by the uniform-link-density analysis.
///
/// For every horizontal gap between two adjacent rows (and vertical gap
/// between two adjacent columns), counts the aligned links that must cross
/// that gap when routed in their own row/column channel. Non-aligned links
/// are charged to the gaps their bounding box crosses in both dimensions.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct GapDensity {
    /// `row_gaps[r]` = links crossing the horizontal channel below row `r`…
    /// indexed per (row gap, column position): `[gap][col]`.
    pub row_gaps: Vec<Vec<u32>>,
    /// `col_gaps[c][row]` = links crossing the vertical channel right of
    /// column `c` at row position `row`.
    pub col_gaps: Vec<Vec<u32>>,
}

impl GapDensity {
    /// Ratio of the maximum to the mean channel-segment load, per
    /// direction, combined by taking the worse of the two. `1.0` is
    /// perfectly uniform.
    #[must_use]
    pub fn max_to_mean(&self) -> f64 {
        fn ratio(gaps: &[Vec<u32>]) -> f64 {
            let all: Vec<u32> = gaps.iter().flatten().copied().collect();
            if all.is_empty() {
                return 1.0;
            }
            let max = *all.iter().max().expect("nonempty") as f64;
            let mean = all.iter().map(|&x| x as f64).sum::<f64>() / all.len() as f64;
            if mean == 0.0 {
                1.0
            } else {
                max / mean
            }
        }
        ratio(&self.row_gaps).max(ratio(&self.col_gaps))
    }
}

/// Computes the gap-density profile of a topology.
///
/// A row link from `(r, c1)` to `(r, c2)` loads the vertical channel
/// segments right of columns `c1..c2` in row `r`'s horizontal track; we
/// model it as loading the *horizontal* channel segments it passes over.
/// The model here is intentionally simple — the real congestion analysis
/// happens in the floorplan crate — but it suffices to distinguish uniform
/// (mesh, torus) from clustered (SlimNoC) densities as in Table I.
#[must_use]
pub fn gap_density(topology: &Topology) -> GapDensity {
    let grid = topology.grid();
    let (rows, cols) = (grid.rows() as usize, grid.cols() as usize);
    // Row links travel in the horizontal channel *below* their row
    // (except the last row, which uses the channel above): the channel is
    // shared by all links of that row. We track, per channel and per
    // column-gap crossed, how many links pass.
    let mut row_gaps = vec![vec![0u32; cols.saturating_sub(1)]; rows];
    let mut col_gaps = vec![vec![0u32; rows.saturating_sub(1)]; cols];
    for link in topology.links() {
        let (ca, cb) = (grid.coord(link.a), grid.coord(link.b));
        if ca.same_row(cb) {
            let (c1, c2) = (ca.col.min(cb.col) as usize, ca.col.max(cb.col) as usize);
            if c2 - c1 > 1 {
                // Skip links occupy the row channel across the gaps they span.
                for gap in row_gaps[ca.row as usize].iter_mut().take(c2).skip(c1) {
                    *gap += 1;
                }
            }
        } else if ca.same_col(cb) {
            let (r1, r2) = (ca.row.min(cb.row) as usize, ca.row.max(cb.row) as usize);
            if r2 - r1 > 1 {
                for gap in col_gaps[ca.col as usize].iter_mut().take(r2).skip(r1) {
                    *gap += 1;
                }
            }
        } else {
            // Diagonal link: charge both dimensions of its bounding box.
            let (c1, c2) = (ca.col.min(cb.col) as usize, ca.col.max(cb.col) as usize);
            let (r1, r2) = (ca.row.min(cb.row) as usize, ca.row.max(cb.row) as usize);
            for gap in row_gaps[r1].iter_mut().take(c2).skip(c1) {
                *gap += 1;
            }
            for gap in col_gaps[c2].iter_mut().take(r2).skip(r1) {
                *gap += 1;
            }
        }
    }
    GapDensity { row_gaps, col_gaps }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;
    use crate::grid::Grid;

    #[test]
    fn mesh_distances_are_manhattan() {
        let grid = Grid::new(5, 5);
        let mesh = generators::mesh(grid);
        let dist = DistanceMatrix::hops(&mesh);
        for a in grid.tiles() {
            for b in grid.tiles() {
                assert_eq!(dist.distance(a, b), grid.manhattan(a, b));
            }
        }
    }

    #[test]
    fn average_hops_mesh_vs_fb() {
        let grid = Grid::new(8, 8);
        let mesh = generators::mesh(grid);
        let fb = generators::flattened_butterfly(grid);
        assert!(average_hops(&fb) < average_hops(&mesh));
        // FB average is below its diameter of 2.
        assert!(average_hops(&fb) < 2.0);
    }

    #[test]
    fn minimal_paths_present_per_table1() {
        let grid = Grid::new(8, 8);
        assert!(minimal_paths_present(&generators::mesh(grid)));
        assert!(minimal_paths_present(&generators::torus(grid)));
        assert!(minimal_paths_present(&generators::flattened_butterfly(
            grid
        )));
        assert!(minimal_paths_present(
            &generators::hypercube(grid).expect("8x8")
        ));
        assert!(!minimal_paths_present(&generators::ring(grid)));
        assert!(!minimal_paths_present(&generators::folded_torus(grid)));
    }

    #[test]
    fn sparse_hamming_minimal_paths_present() {
        // SHG contains the mesh ⇒ minimal paths are always present
        // (Table I: ✓ unconditionally in the "present" column).
        let grid = Grid::new(8, 8);
        let sr = [4].into_iter().collect();
        let sc = [2, 5].into_iter().collect();
        let shg = generators::row_column_skip(grid, &sr, &sc).expect("valid");
        assert!(minimal_paths_present(&shg));
    }

    #[test]
    fn minimal_path_coverage_bounds() {
        let grid = Grid::new(6, 6);
        let ring = generators::ring(grid);
        let cov = minimal_path_coverage(&ring);
        assert!(cov > 0.0 && cov < 1.0, "ring coverage {cov}");
        assert_eq!(minimal_path_coverage(&generators::mesh(grid)), 1.0);
    }

    #[test]
    fn link_stats_mesh() {
        let stats = link_stats(&generators::mesh(Grid::new(4, 4)));
        assert_eq!(stats.count, 24);
        assert_eq!(stats.max_length, 1);
        assert_eq!(stats.total_length, 24);
    }

    #[test]
    fn gap_density_uniform_for_torus_like() {
        // Mesh has no skip links at all: densities are all zero → ratio 1.
        let mesh_density = gap_density(&generators::mesh(Grid::new(8, 8)));
        assert!((mesh_density.max_to_mean() - 1.0).abs() < 1e-9);
        // SlimNoC clusters links: ratio should be clearly worse than the
        // sparse Hamming graph's.
        let slim = generators::slim_noc(Grid::new(16, 8)).expect("128 tiles");
        let sr = [3].into_iter().collect();
        let sc = [2, 5].into_iter().collect();
        let shg = generators::row_column_skip(Grid::new(16, 8), &sr, &sc).expect("valid");
        let slim_ratio = gap_density(&slim).max_to_mean();
        let shg_ratio = gap_density(&shg).max_to_mean();
        assert!(
            slim_ratio > shg_ratio,
            "SlimNoC {slim_ratio} should be less uniform than SHG {shg_ratio}"
        );
    }

    #[test]
    fn physical_distance_on_folded_torus_exceeds_manhattan() {
        let grid = Grid::new(8, 8);
        let ft = generators::folded_torus(grid);
        let phys = DistanceMatrix::physical(&ft);
        // Grid-adjacent interior tiles have Manhattan distance 1 but need
        // length-2 links.
        let a = grid.id(crate::grid::TileCoord::new(3, 3));
        let b = grid.id(crate::grid::TileCoord::new(3, 4));
        assert!(phys.distance(a, b) > 1);
    }
}
