//! Small finite fields GF(p^k) for the McKay–Miller–Širáň construction.
//!
//! SlimNoC \[26\] builds its topology from MMS graphs over GF(q) for a prime
//! power q. The fields needed here are tiny (q ≤ a few dozen), so the
//! implementation favors clarity: elements are represented by their index
//! into precomputed addition/multiplication tables built from polynomial
//! arithmetic over GF(p).

use serde::{Deserialize, Serialize};

/// An element of a [`Field`], identified by its index in the field's tables.
pub type Element = usize;

/// A finite field GF(p^k) with precomputed operation tables.
///
/// # Examples
///
/// ```
/// use shg_topology::gf::Field;
///
/// let f = Field::new(8).expect("8 = 2^3 is a prime power");
/// assert_eq!(f.order(), 8);
/// let x = f.primitive_element();
/// // A primitive element generates all q-1 nonzero elements.
/// let mut seen = std::collections::HashSet::new();
/// let mut y = f.one();
/// for _ in 0..7 {
///     seen.insert(y);
///     y = f.mul(y, x);
/// }
/// assert_eq!(seen.len(), 7);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Field {
    p: usize,
    k: u32,
    q: usize,
    add: Vec<Vec<Element>>,
    mul: Vec<Vec<Element>>,
    neg: Vec<Element>,
    primitive: Element,
}

/// Error returned when a [`Field`] cannot be constructed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BuildFieldError {
    q: usize,
}

impl std::fmt::Display for BuildFieldError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{} is not a prime power", self.q)
    }
}

impl std::error::Error for BuildFieldError {}

fn factor_prime_power(q: usize) -> Option<(usize, u32)> {
    if q < 2 {
        return None;
    }
    let mut p = 2;
    while p * p <= q {
        if q.is_multiple_of(p) {
            let mut n = q;
            let mut k = 0;
            while n.is_multiple_of(p) {
                n /= p;
                k += 1;
            }
            return (n == 1).then_some((p, k));
        }
        p += 1;
    }
    Some((q, 1)) // q itself is prime
}

/// Multiplies two polynomials over GF(p), reducing modulo `modulus`
/// (a monic polynomial of degree k, coefficients little-endian).
fn poly_mulmod(a: &[usize], b: &[usize], modulus: &[usize], p: usize) -> Vec<usize> {
    let k = modulus.len() - 1;
    let mut prod = vec![0usize; a.len() + b.len() - 1];
    for (i, &ai) in a.iter().enumerate() {
        for (j, &bj) in b.iter().enumerate() {
            prod[i + j] = (prod[i + j] + ai * bj) % p;
        }
    }
    // Reduce: repeatedly cancel the leading term using the monic modulus.
    for d in (k..prod.len()).rev() {
        let coef = prod[d];
        if coef == 0 {
            continue;
        }
        prod[d] = 0;
        for (i, &mi) in modulus.iter().enumerate().take(k) {
            let idx = d - k + i;
            prod[idx] = (prod[idx] + coef * (p - mi % p)) % p;
        }
    }
    prod.truncate(k.max(1));
    prod.resize(k.max(1), 0);
    prod
}

/// Finds a monic irreducible polynomial of degree k over GF(p) by brute
/// force (k and p are tiny here).
fn find_irreducible(p: usize, k: u32) -> Vec<usize> {
    let k = k as usize;
    // Candidate: x^k + c_{k-1} x^{k-1} + … + c_0, encoded little-endian
    // with the implicit leading 1 appended.
    let total = p.pow(k as u32);
    'cand: for code in 0..total {
        let mut coeffs = Vec::with_capacity(k + 1);
        let mut c = code;
        for _ in 0..k {
            coeffs.push(c % p);
            c /= p;
        }
        coeffs.push(1);
        // Irreducible ⇔ no root expansion works for our sizes only if we
        // check divisibility by all monic polynomials of degree 1..=k/2.
        for deg in 1..=k / 2 {
            let dtotal = p.pow(deg as u32);
            for dcode in 0..dtotal {
                let mut div = Vec::with_capacity(deg + 1);
                let mut dc = dcode;
                for _ in 0..deg {
                    div.push(dc % p);
                    dc /= p;
                }
                div.push(1);
                if poly_divisible(&coeffs, &div, p) {
                    continue 'cand;
                }
            }
        }
        return coeffs;
    }
    unreachable!("an irreducible polynomial of degree {k} over GF({p}) always exists")
}

/// `true` if polynomial `a` is divisible by monic polynomial `d` over GF(p).
fn poly_divisible(a: &[usize], d: &[usize], p: usize) -> bool {
    let mut rem: Vec<usize> = a.to_vec();
    let dd = d.len() - 1;
    while rem.len() > dd {
        let lead = *rem.last().expect("nonempty");
        let shift = rem.len() - 1 - dd;
        if lead != 0 {
            for (i, &di) in d.iter().enumerate() {
                let idx = shift + i;
                rem[idx] = (rem[idx] + lead * (p - di % p)) % p;
            }
        }
        rem.pop();
    }
    rem.iter().all(|&c| c == 0)
}

impl Field {
    /// Constructs GF(q) for a prime power `q = p^k`.
    ///
    /// # Errors
    ///
    /// Returns [`BuildFieldError`] if `q` is not a prime power.
    pub fn new(q: usize) -> Result<Self, BuildFieldError> {
        let (p, k) = factor_prime_power(q).ok_or(BuildFieldError { q })?;
        // Elements are polynomials of degree < k over GF(p), encoded as
        // base-p digit strings: element e has coefficients e % p, (e/p) % p…
        let decode = |e: usize| -> Vec<usize> {
            let mut coeffs = Vec::with_capacity(k as usize);
            let mut v = e;
            for _ in 0..k {
                coeffs.push(v % p);
                v /= p;
            }
            coeffs
        };
        let encode = |coeffs: &[usize]| -> usize {
            coeffs
                .iter()
                .rev()
                .fold(0usize, |acc, &c| acc * p + (c % p))
        };
        let modulus = if k == 1 {
            vec![0, 1] // x (unused for k = 1; arithmetic is mod p)
        } else {
            find_irreducible(p, k)
        };
        let mut add = vec![vec![0; q]; q];
        let mut mul = vec![vec![0; q]; q];
        let mut neg = vec![0; q];
        for x in 0..q {
            let cx = decode(x);
            let negc: Vec<usize> = cx.iter().map(|&c| (p - c) % p).collect();
            neg[x] = encode(&negc);
            for y in 0..q {
                let cy = decode(y);
                let sum: Vec<usize> = cx.iter().zip(&cy).map(|(&a, &b)| (a + b) % p).collect();
                add[x][y] = encode(&sum);
                if k == 1 {
                    mul[x][y] = (x * y) % p;
                } else {
                    let prod = poly_mulmod(&cx, &cy, &modulus, p);
                    mul[x][y] = encode(&prod);
                }
            }
        }
        let mut field = Self {
            p,
            k,
            q,
            add,
            mul,
            neg,
            primitive: 0,
        };
        field.primitive = field
            .find_primitive()
            .expect("every finite field has a primitive element");
        Ok(field)
    }

    fn find_primitive(&self) -> Option<Element> {
        (1..self.q).find(|&g| {
            let mut x = g;
            let mut count = 1;
            while x != 1 {
                x = self.mul[x][g];
                count += 1;
                if count > self.q {
                    return false;
                }
            }
            count == self.q - 1
        })
    }

    /// The field order q.
    #[must_use]
    pub fn order(&self) -> usize {
        self.q
    }

    /// The field characteristic p.
    #[must_use]
    pub fn characteristic(&self) -> usize {
        self.p
    }

    /// The additive identity.
    #[must_use]
    pub fn zero(&self) -> Element {
        0
    }

    /// The multiplicative identity.
    #[must_use]
    pub fn one(&self) -> Element {
        1.min(self.q - 1)
    }

    /// A fixed primitive element (generator of the multiplicative group).
    #[must_use]
    pub fn primitive_element(&self) -> Element {
        self.primitive
    }

    /// Field addition.
    #[must_use]
    pub fn add(&self, x: Element, y: Element) -> Element {
        self.add[x][y]
    }

    /// Field subtraction `x − y`.
    #[must_use]
    pub fn sub(&self, x: Element, y: Element) -> Element {
        self.add[x][self.neg[y]]
    }

    /// Additive inverse.
    #[must_use]
    pub fn neg(&self, x: Element) -> Element {
        self.neg[x]
    }

    /// Field multiplication.
    #[must_use]
    pub fn mul(&self, x: Element, y: Element) -> Element {
        self.mul[x][y]
    }

    /// `x` raised to the power `e`.
    #[must_use]
    pub fn pow(&self, x: Element, e: u32) -> Element {
        let mut result = self.one();
        for _ in 0..e {
            result = self.mul(result, x);
        }
        result
    }

    /// All field elements, `0..q`.
    pub fn elements(&self) -> impl Iterator<Item = Element> {
        0..self.q
    }

    /// The nonzero squares (quadratic residues) of the field.
    #[must_use]
    pub fn quadratic_residues(&self) -> Vec<Element> {
        let mut set: Vec<Element> = (1..self.q).map(|x| self.mul(x, x)).collect();
        set.sort_unstable();
        set.dedup();
        set.retain(|&x| x != 0);
        set
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn prime_power_factoring() {
        assert_eq!(factor_prime_power(8), Some((2, 3)));
        assert_eq!(factor_prime_power(9), Some((3, 2)));
        assert_eq!(factor_prime_power(13), Some((13, 1)));
        assert_eq!(factor_prime_power(12), None);
        assert_eq!(factor_prime_power(1), None);
    }

    #[test]
    fn gf5_is_integers_mod_5() {
        let f = Field::new(5).expect("prime");
        assert_eq!(f.add(3, 4), 2);
        assert_eq!(f.mul(3, 4), 2);
        assert_eq!(f.sub(1, 3), 3);
        assert_eq!(f.neg(2), 3);
    }

    #[test]
    fn gf8_has_characteristic_2() {
        let f = Field::new(8).expect("prime power");
        assert_eq!(f.characteristic(), 2);
        for x in f.elements() {
            assert_eq!(f.add(x, x), 0, "x + x must vanish in char 2");
            assert_eq!(f.neg(x), x);
        }
    }

    #[test]
    fn field_axioms_hold_for_small_fields() {
        for q in [2, 3, 4, 5, 7, 8, 9, 13] {
            let f = Field::new(q).expect("prime power");
            for x in f.elements() {
                for y in f.elements() {
                    // Commutativity.
                    assert_eq!(f.add(x, y), f.add(y, x));
                    assert_eq!(f.mul(x, y), f.mul(y, x));
                    // Identity and inverse.
                    assert_eq!(f.add(x, f.zero()), x);
                    assert_eq!(f.mul(x, f.one()), x);
                    assert_eq!(f.add(x, f.neg(x)), f.zero());
                    // No zero divisors.
                    if x != 0 && y != 0 {
                        assert_ne!(f.mul(x, y), 0, "zero divisor in GF({q}): {x}·{y}");
                    }
                }
            }
            // Distributivity (spot-check all triples for small q).
            for x in f.elements() {
                for y in f.elements() {
                    for z in f.elements() {
                        assert_eq!(f.mul(x, f.add(y, z)), f.add(f.mul(x, y), f.mul(x, z)));
                    }
                }
            }
        }
    }

    #[test]
    fn primitive_element_generates_group() {
        for q in [4, 5, 8, 9] {
            let f = Field::new(q).expect("prime power");
            let g = f.primitive_element();
            let mut seen = std::collections::HashSet::new();
            let mut x = f.one();
            for _ in 0..q - 1 {
                assert!(seen.insert(x), "cycle shorter than q-1 in GF({q})");
                x = f.mul(x, g);
            }
            assert_eq!(x, f.one());
        }
    }

    #[test]
    fn quadratic_residues_count() {
        // Odd q: exactly (q-1)/2 residues; even q: squaring is a bijection.
        let f5 = Field::new(5).expect("prime");
        assert_eq!(f5.quadratic_residues().len(), 2);
        let f8 = Field::new(8).expect("prime power");
        assert_eq!(f8.quadratic_residues().len(), 7);
    }

    #[test]
    fn non_prime_power_is_rejected() {
        assert!(Field::new(6).is_err());
        assert!(Field::new(12).is_err());
    }
}
