//! The topology **database**: a compact, declarative description of a
//! (possibly heterogeneous, possibly multi-die) network, and the
//! expanded-grid instantiation layer that materializes it into a flat
//! [`Topology`].
//!
//! Modelled on interconnect databases of real-chip toolchains: a
//! target-independent description — tile classes, per-region rules, die
//! specs with boundary connection rules — is *instantiated* into an
//! expanded grid of `(die, row, col)` cells. The description stays a
//! few lines even when the instantiated device has tens of thousands of
//! tiles; the product is today's [`Topology`], so the simulator, sweep
//! and cache machinery run it unchanged.
//!
//! A [`TopologyDb`] is:
//!
//! * one or more [`DieSpec`]s, laid out left-to-right and sharing the
//!   row dimension, each built from a base [`GeneratorSpec`];
//! * per-die [`RegionRule`]s that paint a rectangle with a
//!   [`TileClass`] and may add region-local SHG skip links;
//! * one [`BoundaryRule`] connecting every k-th row across each die
//!   seam, with an extra boundary-crossing latency for the floorplan
//!   model.
//!
//! # Spec text
//!
//! Databases have a stable textual form (`parse`/`Display` round-trip).
//! Statements are separated by newlines or `;`, fields by whitespace or
//! `/` (the latter makes a whole database a single whitespace-free
//! token — the form the sweep service ships as a request param):
//!
//! ```text
//! # 2-die heterogeneous SHG
//! die left 8x8 shg:sr=4:sc=2,5
//! die right 8x8 mesh
//! region left r0..2 c0..8 memory sr=2
//! region right r6..8 c0..8 io
//! boundary every=2 latency=3
//! ```
//!
//! # Examples
//!
//! ```
//! use shg_topology::db::TopologyDb;
//!
//! let db = TopologyDb::parse(
//!     "die a 4x4 mesh; die b 4x4 mesh; boundary every=2 latency=1",
//! )
//! .unwrap();
//! let topology = db.instantiate().unwrap();
//! assert_eq!(topology.num_tiles(), 32);
//! assert_eq!(topology.num_dies(), 2);
//! ```

use std::collections::BTreeSet;
use std::fmt;

use serde::Serialize;

use crate::generators::{GeneratorError, GeneratorSpec};
use crate::grid::{Grid, TileCoord, TileId};
use crate::topology::{
    DieId, Link, TileClass, Topology, TopologyError, TopologyKind, TopologyMeta,
};

/// A rectangular per-die rule: paints the rectangle's tiles with a
/// [`TileClass`] and optionally adds region-local skip links (the
/// paper's per-region SHG customization).
///
/// Row/column ranges are half-open and local to the die.
#[derive(Debug, Clone, PartialEq, Eq, Serialize)]
pub struct RegionRule {
    /// First row of the rectangle.
    pub row_start: u16,
    /// One past the last row.
    pub row_end: u16,
    /// First column of the rectangle.
    pub col_start: u16,
    /// One past the last column.
    pub col_end: u16,
    /// The class painted onto the rectangle's tiles (later rules win
    /// on overlap).
    pub class: TileClass,
    /// Extra row-skip distances applied within the rectangle.
    pub skip_rows: BTreeSet<u16>,
    /// Extra column-skip distances applied within the rectangle.
    pub skip_cols: BTreeSet<u16>,
}

impl RegionRule {
    /// A class-only region rule over the given half-open ranges.
    #[must_use]
    pub fn class(rows: std::ops::Range<u16>, cols: std::ops::Range<u16>, class: TileClass) -> Self {
        Self {
            row_start: rows.start,
            row_end: rows.end,
            col_start: cols.start,
            col_end: cols.end,
            class,
            skip_rows: BTreeSet::new(),
            skip_cols: BTreeSet::new(),
        }
    }

    fn width(&self) -> u16 {
        self.col_end - self.col_start
    }

    fn height(&self) -> u16 {
        self.row_end - self.row_start
    }
}

/// One die of a [`TopologyDb`]: a named R×C sub-grid built from a base
/// [`GeneratorSpec`], refined by [`RegionRule`]s.
#[derive(Debug, Clone, PartialEq, Eq, Serialize)]
pub struct DieSpec {
    /// The die's name (referenced by region statements).
    pub name: String,
    /// Rows of the die (all dies of a database must agree).
    pub rows: u16,
    /// Columns of the die.
    pub cols: u16,
    /// The base generator the die's link structure starts from.
    pub base: GeneratorSpec,
    /// Region rules, applied in order.
    pub regions: Vec<RegionRule>,
}

/// How adjacent dies are stitched together: every `every`-th row gets a
/// link across the seam, and crossing it costs `latency` extra cycles
/// in the floorplan model.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub struct BoundaryRule {
    /// Connect rows `0, every, 2·every, …` across each seam.
    pub every: u16,
    /// Extra cycles a flit pays to cross a die boundary.
    pub latency: u32,
}

impl Default for BoundaryRule {
    fn default() -> Self {
        Self {
            every: 1,
            latency: 0,
        }
    }
}

/// The serializable topology database: die specs, region rules and the
/// boundary rule. See the [module docs](self) for the textual form.
#[derive(Debug, Clone, PartialEq, Eq, Serialize)]
pub struct TopologyDb {
    /// The dies, laid out left-to-right.
    pub dies: Vec<DieSpec>,
    /// The die-seam connection rule (ignored for single-die databases).
    pub boundary: BoundaryRule,
}

/// Error validating or instantiating a [`TopologyDb`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DbError {
    /// The database has no dies.
    NoDies,
    /// A die disagrees with the first die's row count.
    RowMismatch {
        /// The offending die's name.
        die: String,
        /// Its row count.
        rows: u16,
        /// The row count of the first die.
        expected: u16,
    },
    /// A die has zero rows or columns.
    EmptyDie {
        /// The offending die's name.
        die: String,
    },
    /// Two dies share a name.
    DuplicateDie {
        /// The duplicated name.
        die: String,
    },
    /// A region rectangle is empty or exceeds its die.
    BadRegion {
        /// The die the region belongs to.
        die: String,
        /// What is wrong with it.
        reason: String,
    },
    /// A region skip distance does not fit the region rectangle
    /// (row skips need `2 ≤ x <` width, column skips `2 ≤ x <` height).
    RegionSkipOutOfRange {
        /// The die the region belongs to.
        die: String,
        /// The offending skip distance.
        skip: u16,
        /// The region extent it must stay under.
        extent: u16,
    },
    /// `boundary every` must satisfy `1 ≤ every ≤ rows`.
    BoundaryEveryOutOfRange {
        /// The offending value.
        every: u16,
        /// The shared row count.
        rows: u16,
    },
    /// A die's base generator does not admit the die's grid.
    Generator {
        /// The offending die's name.
        die: String,
        /// The underlying generator error.
        error: GeneratorError,
    },
    /// The instantiated graph failed topology construction.
    Topology(TopologyError),
}

impl fmt::Display for DbError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::NoDies => f.write_str("a topology database needs at least one die"),
            Self::RowMismatch {
                die,
                rows,
                expected,
            } => write!(
                f,
                "die '{die}' has {rows} rows but the first die has {expected} \
                 (dies are laid out side by side and must share rows)"
            ),
            Self::EmptyDie { die } => write!(f, "die '{die}' has zero rows or columns"),
            Self::DuplicateDie { die } => write!(f, "duplicate die name '{die}'"),
            Self::BadRegion { die, reason } => write!(f, "region on die '{die}': {reason}"),
            Self::RegionSkipOutOfRange { die, skip, extent } => write!(
                f,
                "region on die '{die}': skip {skip} outside 2 ≤ x < {extent}"
            ),
            Self::BoundaryEveryOutOfRange { every, rows } => write!(
                f,
                "boundary every={every} outside 1 ≤ every ≤ rows = {rows}"
            ),
            Self::Generator { die, error } => write!(f, "die '{die}': {error}"),
            Self::Topology(error) => error.fmt(f),
        }
    }
}

impl std::error::Error for DbError {}

impl From<TopologyError> for DbError {
    fn from(error: TopologyError) -> Self {
        Self::Topology(error)
    }
}

/// Error parsing the textual form of a [`TopologyDb`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseDbError(String);

impl fmt::Display for ParseDbError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "topology db: {}", self.0)
    }
}

impl std::error::Error for ParseDbError {}

/// The expanded grid: every `(die, row, col)` cell of a validated
/// [`TopologyDb`] resolved to a global [`TileId`] with its class and
/// die membership — the intermediate the instantiation builds links
/// over, and a queryable map in its own right.
#[derive(Debug, Clone, PartialEq)]
pub struct ExpandedGrid {
    grid: Grid,
    die_names: Vec<String>,
    die_cols: Vec<u16>,
    /// Global column of each die's local column 0.
    col_offsets: Vec<u16>,
    tile_dies: Vec<DieId>,
    tile_classes: Vec<TileClass>,
}

impl ExpandedGrid {
    /// The flat global grid (shared rows × summed columns).
    #[must_use]
    pub fn grid(&self) -> Grid {
        self.grid
    }

    /// Number of dies.
    #[must_use]
    pub fn num_dies(&self) -> usize {
        self.die_names.len()
    }

    /// The name of a die.
    ///
    /// # Panics
    ///
    /// Panics if the die id is out of range.
    #[must_use]
    pub fn die_name(&self, die: DieId) -> &str {
        &self.die_names[die.index()]
    }

    /// The local grid of a die.
    ///
    /// # Panics
    ///
    /// Panics if the die id is out of range.
    #[must_use]
    pub fn die_grid(&self, die: DieId) -> Grid {
        Grid::new(self.grid.rows(), self.die_cols[die.index()])
    }

    /// The global tile of a die-local coordinate.
    ///
    /// # Panics
    ///
    /// Panics if the die or the coordinate is out of range.
    #[must_use]
    pub fn global_id(&self, die: DieId, local: TileCoord) -> TileId {
        assert!(
            local.col < self.die_cols[die.index()],
            "{local} outside die {die}"
        );
        self.grid.id(TileCoord::new(
            local.row,
            self.col_offsets[die.index()] + local.col,
        ))
    }

    /// The die a global tile belongs to.
    ///
    /// # Panics
    ///
    /// Panics if the tile is out of range.
    #[must_use]
    pub fn die_of(&self, tile: TileId) -> DieId {
        self.tile_dies[tile.index()]
    }

    /// The class of a global tile.
    ///
    /// # Panics
    ///
    /// Panics if the tile is out of range.
    #[must_use]
    pub fn class_of(&self, tile: TileId) -> TileClass {
        self.tile_classes[tile.index()]
    }

    /// Iterates over all cells as `(die, local coordinate, global
    /// tile)`, die by die in row-major local order.
    pub fn cells(&self) -> impl Iterator<Item = (DieId, TileCoord, TileId)> + '_ {
        (0..self.num_dies()).flat_map(move |d| {
            let die = DieId::new(d as u16);
            let (rows, cols) = (self.grid.rows(), self.die_cols[d]);
            (0..rows)
                .flat_map(move |r| (0..cols).map(move |c| TileCoord::new(r, c)))
                .map(move |local| (die, local, self.global_id(die, local)))
        })
    }

    /// The instantiation metadata this expansion annotates a
    /// [`Topology`] with.
    #[must_use]
    pub fn meta(&self, boundary_latency: u32) -> TopologyMeta {
        TopologyMeta::new(
            self.tile_classes.clone(),
            self.tile_dies.clone(),
            self.die_names.clone(),
            boundary_latency,
        )
    }
}

impl TopologyDb {
    /// A single-die, single-class database: the database form of one
    /// legacy generator call.
    #[must_use]
    pub fn single(name: impl Into<String>, rows: u16, cols: u16, base: GeneratorSpec) -> Self {
        Self {
            dies: vec![DieSpec {
                name: name.into(),
                rows,
                cols,
                base,
                regions: Vec::new(),
            }],
            boundary: BoundaryRule::default(),
        }
    }

    /// Validates the database and lays out the expanded grid.
    ///
    /// # Errors
    ///
    /// Returns [`DbError`] on an empty database, mismatched die rows,
    /// out-of-die regions, out-of-range region skips or a bad boundary
    /// rule. Generator/grid mismatches surface later, from
    /// [`instantiate`](Self::instantiate).
    pub fn expand(&self) -> Result<ExpandedGrid, DbError> {
        let first = self.dies.first().ok_or(DbError::NoDies)?;
        let rows = first.rows;
        let mut total_cols = 0u16;
        let mut names: BTreeSet<&str> = BTreeSet::new();
        for die in &self.dies {
            if die.rows == 0 || die.cols == 0 {
                return Err(DbError::EmptyDie {
                    die: die.name.clone(),
                });
            }
            if die.rows != rows {
                return Err(DbError::RowMismatch {
                    die: die.name.clone(),
                    rows: die.rows,
                    expected: rows,
                });
            }
            if !names.insert(&die.name) {
                return Err(DbError::DuplicateDie {
                    die: die.name.clone(),
                });
            }
            total_cols = total_cols.checked_add(die.cols).ok_or(DbError::BadRegion {
                die: die.name.clone(),
                reason: "total columns overflow the grid coordinate space".to_owned(),
            })?;
            for region in &die.regions {
                if region.row_start >= region.row_end || region.col_start >= region.col_end {
                    return Err(DbError::BadRegion {
                        die: die.name.clone(),
                        reason: format!(
                            "empty rectangle r{}..{} c{}..{}",
                            region.row_start, region.row_end, region.col_start, region.col_end
                        ),
                    });
                }
                if region.row_end > die.rows || region.col_end > die.cols {
                    return Err(DbError::BadRegion {
                        die: die.name.clone(),
                        reason: format!(
                            "rectangle r{}..{} c{}..{} exceeds the {}x{} die",
                            region.row_start,
                            region.row_end,
                            region.col_start,
                            region.col_end,
                            die.rows,
                            die.cols
                        ),
                    });
                }
                for &skip in &region.skip_rows {
                    if skip < 2 || skip >= region.width() {
                        return Err(DbError::RegionSkipOutOfRange {
                            die: die.name.clone(),
                            skip,
                            extent: region.width(),
                        });
                    }
                }
                for &skip in &region.skip_cols {
                    if skip < 2 || skip >= region.height() {
                        return Err(DbError::RegionSkipOutOfRange {
                            die: die.name.clone(),
                            skip,
                            extent: region.height(),
                        });
                    }
                }
            }
        }
        if self.dies.len() > 1 && (self.boundary.every == 0 || self.boundary.every > rows) {
            return Err(DbError::BoundaryEveryOutOfRange {
                every: self.boundary.every,
                rows,
            });
        }
        let grid = Grid::new(rows, total_cols);
        let mut die_names = Vec::with_capacity(self.dies.len());
        let mut die_cols = Vec::with_capacity(self.dies.len());
        let mut col_offsets = Vec::with_capacity(self.dies.len());
        let mut offset = 0u16;
        for die in &self.dies {
            die_names.push(die.name.clone());
            die_cols.push(die.cols);
            col_offsets.push(offset);
            offset += die.cols;
        }
        let mut tile_dies = vec![DieId::new(0); grid.num_tiles()];
        let mut tile_classes = vec![TileClass::Compute; grid.num_tiles()];
        for (d, die) in self.dies.iter().enumerate() {
            let id = DieId::new(d as u16);
            for r in 0..rows {
                for c in 0..die.cols {
                    let tile = grid.id(TileCoord::new(r, col_offsets[d] + c));
                    tile_dies[tile.index()] = id;
                }
            }
            for region in &die.regions {
                for r in region.row_start..region.row_end {
                    for c in region.col_start..region.col_end {
                        let tile = grid.id(TileCoord::new(r, col_offsets[d] + c));
                        tile_classes[tile.index()] = region.class;
                    }
                }
            }
        }
        Ok(ExpandedGrid {
            grid,
            die_names,
            die_cols,
            col_offsets,
            tile_dies,
            tile_classes,
        })
    }

    /// Materializes the database into a flat [`Topology`].
    ///
    /// A single-die database without regions delegates straight to its
    /// base generator, so it reproduces the legacy constructor
    /// link-for-link *and kind-for-kind* (identical structural
    /// fingerprints, no metadata attached). Any heterogeneous or
    /// multi-die database instantiates through the expanded grid: base
    /// links per die, region skip links inside their rectangles, and
    /// seam links every k-th row between adjacent dies; the result
    /// carries [`TopologyMeta`].
    ///
    /// # Errors
    ///
    /// Returns [`DbError`] on validation failure, a base generator that
    /// does not admit its die grid, or a disconnected product (possible
    /// only for degenerate single-die bases — seam rules keep multi-die
    /// products connected).
    pub fn instantiate(&self) -> Result<Topology, DbError> {
        let expanded = self.expand()?;
        let build_base = |die: &DieSpec| {
            die.base
                .build(Grid::new(die.rows, die.cols))
                .map_err(|error| DbError::Generator {
                    die: die.name.clone(),
                    error,
                })
        };
        // The trivial database is the legacy constructor, bit for bit.
        if self.dies.len() == 1 && self.dies[0].regions.is_empty() {
            return build_base(&self.dies[0]);
        }
        let grid = expanded.grid();
        let mut links: Vec<Link> = Vec::new();
        let mut adds_links = false;
        for (d, die) in self.dies.iter().enumerate() {
            let id = DieId::new(d as u16);
            let local_grid = expanded.die_grid(id);
            let base = build_base(die)?;
            for link in base.links() {
                links.push(Link::new(
                    expanded.global_id(id, local_grid.coord(link.a)),
                    expanded.global_id(id, local_grid.coord(link.b)),
                ));
            }
            for region in &die.regions {
                adds_links |= !region.skip_rows.is_empty() || !region.skip_cols.is_empty();
                for r in region.row_start..region.row_end {
                    for &x in &region.skip_rows {
                        for i in region.col_start..region.col_end - x {
                            links.push(Link::new(
                                expanded.global_id(id, TileCoord::new(r, i)),
                                expanded.global_id(id, TileCoord::new(r, i + x)),
                            ));
                        }
                    }
                }
                for c in region.col_start..region.col_end {
                    for &x in &region.skip_cols {
                        for i in region.row_start..region.row_end - x {
                            links.push(Link::new(
                                expanded.global_id(id, TileCoord::new(i, c)),
                                expanded.global_id(id, TileCoord::new(i + x, c)),
                            ));
                        }
                    }
                }
            }
        }
        for d in 1..self.dies.len() {
            let left = DieId::new(d as u16 - 1);
            let right = DieId::new(d as u16);
            let left_edge = expanded.die_grid(left).cols() - 1;
            for r in (0..grid.rows()).step_by(self.boundary.every as usize) {
                links.push(Link::new(
                    expanded.global_id(left, TileCoord::new(r, left_edge)),
                    expanded.global_id(right, TileCoord::new(r, 0)),
                ));
            }
        }
        // A link set beyond one base generator's gets the generic kind
        // (and so the generic deadlock-free routing); class-only
        // databases keep their base's kind and routing.
        let kind = if self.dies.len() > 1 || adds_links {
            TopologyKind::Custom
        } else {
            build_base(&self.dies[0])?.kind()
        };
        let topology = Topology::try_new(grid, kind, links)?;
        Ok(topology.with_meta(expanded.meta(self.boundary.latency)))
    }

    /// Parses the textual form (see the [module docs](self)): `die`,
    /// `region` and `boundary` statements separated by newlines or `;`,
    /// fields separated by whitespace or `/`, `#` comments to end of
    /// line.
    ///
    /// # Errors
    ///
    /// Returns [`ParseDbError`] naming the offending statement.
    pub fn parse(text: &str) -> Result<Self, ParseDbError> {
        let mut dies: Vec<DieSpec> = Vec::new();
        let mut boundary: Option<BoundaryRule> = None;
        for line in text.lines() {
            let line = line.split('#').next().unwrap_or_default();
            for statement in line.split(';') {
                let fields: Vec<&str> = statement
                    .split(|ch: char| ch.is_whitespace() || ch == '/')
                    .filter(|f| !f.is_empty())
                    .collect();
                let Some((&keyword, args)) = fields.split_first() else {
                    continue;
                };
                match keyword {
                    "die" => dies.push(parse_die(args)?),
                    "region" => {
                        let (die_name, rule) = parse_region(args)?;
                        let die =
                            dies.iter_mut()
                                .find(|d| d.name == die_name)
                                .ok_or_else(|| {
                                    ParseDbError(format!(
                                        "region references unknown die '{die_name}' \
                                     (declare dies before their regions)"
                                    ))
                                })?;
                        die.regions.push(rule);
                    }
                    "boundary" => {
                        if boundary.is_some() {
                            return Err(ParseDbError(
                                "more than one boundary statement".to_owned(),
                            ));
                        }
                        boundary = Some(parse_boundary(args)?);
                    }
                    other => {
                        return Err(ParseDbError(format!(
                            "unknown statement '{other}' (use die|region|boundary)"
                        )))
                    }
                }
            }
        }
        if dies.is_empty() {
            return Err(ParseDbError("no die statements".to_owned()));
        }
        Ok(Self {
            dies,
            boundary: boundary.unwrap_or_default(),
        })
    }

    /// The single-token wire form: the same statements as `Display`,
    /// but `/`-separated fields joined by `;` — no whitespace, so a
    /// whole database fits one `key=value` request param.
    #[must_use]
    pub fn wire(&self) -> String {
        self.render("/", ";")
    }

    fn render(&self, field_sep: &str, statement_sep: &str) -> String {
        let mut statements: Vec<String> = Vec::new();
        for die in &self.dies {
            statements.push(format!(
                "die{field_sep}{}{field_sep}{}x{}{field_sep}{}",
                die.name, die.rows, die.cols, die.base
            ));
            for region in &die.regions {
                let mut s = format!(
                    "region{field_sep}{}{field_sep}r{}..{}{field_sep}c{}..{}{field_sep}{}",
                    die.name,
                    region.row_start,
                    region.row_end,
                    region.col_start,
                    region.col_end,
                    region.class
                );
                if !region.skip_rows.is_empty() {
                    s.push_str(&format!("{field_sep}sr={}", skip_list(&region.skip_rows)));
                }
                if !region.skip_cols.is_empty() {
                    s.push_str(&format!("{field_sep}sc={}", skip_list(&region.skip_cols)));
                }
                statements.push(s);
            }
        }
        if self.dies.len() > 1 || self.boundary != BoundaryRule::default() {
            statements.push(format!(
                "boundary{field_sep}every={}{field_sep}latency={}",
                self.boundary.every, self.boundary.latency
            ));
        }
        statements.join(statement_sep)
    }
}

impl fmt::Display for TopologyDb {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.render(" ", "\n"))
    }
}

fn skip_list(set: &BTreeSet<u16>) -> String {
    set.iter()
        .map(ToString::to_string)
        .collect::<Vec<_>>()
        .join(",")
}

fn parse_skip_list(list: &str) -> Result<BTreeSet<u16>, ParseDbError> {
    list.split(',')
        .map(|item| {
            item.parse()
                .map_err(|e| ParseDbError(format!("skip distance '{item}': {e}")))
        })
        .collect()
}

fn parse_die(args: &[&str]) -> Result<DieSpec, ParseDbError> {
    let [name, dims, base] = args else {
        return Err(ParseDbError(format!(
            "die statement needs '<name> <rows>x<cols> <generator>', got {} fields",
            args.len()
        )));
    };
    let (rows, cols) = dims
        .split_once('x')
        .ok_or_else(|| ParseDbError(format!("die dimensions '{dims}' are not <rows>x<cols>")))?;
    let parse_dim = |text: &str| {
        text.parse::<u16>()
            .map_err(|e| ParseDbError(format!("die dimension '{text}': {e}")))
    };
    Ok(DieSpec {
        name: (*name).to_owned(),
        rows: parse_dim(rows)?,
        cols: parse_dim(cols)?,
        base: base
            .parse()
            .map_err(|e| ParseDbError(format!("die '{name}': {e}")))?,
        regions: Vec::new(),
    })
}

fn parse_range(field: &str, prefix: char) -> Result<(u16, u16), ParseDbError> {
    let body = field
        .strip_prefix(prefix)
        .ok_or_else(|| ParseDbError(format!("range '{field}' does not start with '{prefix}'")))?;
    let (start, end) = body
        .split_once("..")
        .ok_or_else(|| ParseDbError(format!("range '{field}' is not {prefix}<a>..<b>")))?;
    let parse_bound = |text: &str| {
        text.parse::<u16>()
            .map_err(|e| ParseDbError(format!("range bound '{text}': {e}")))
    };
    Ok((parse_bound(start)?, parse_bound(end)?))
}

fn parse_region(args: &[&str]) -> Result<(String, RegionRule), ParseDbError> {
    let [name, rows, cols, class, options @ ..] = args else {
        return Err(ParseDbError(format!(
            "region statement needs '<die> r<a>..<b> c<a>..<b> <class> [sr=..] [sc=..]', \
             got {} fields",
            args.len()
        )));
    };
    let (row_start, row_end) = parse_range(rows, 'r')?;
    let (col_start, col_end) = parse_range(cols, 'c')?;
    let class: TileClass = class.parse().map_err(ParseDbError)?;
    let mut rule = RegionRule {
        row_start,
        row_end,
        col_start,
        col_end,
        class,
        skip_rows: BTreeSet::new(),
        skip_cols: BTreeSet::new(),
    };
    for option in options {
        if let Some(list) = option.strip_prefix("sr=") {
            rule.skip_rows = parse_skip_list(list)?;
        } else if let Some(list) = option.strip_prefix("sc=") {
            rule.skip_cols = parse_skip_list(list)?;
        } else {
            return Err(ParseDbError(format!("unknown region option '{option}'")));
        }
    }
    Ok(((*name).to_owned(), rule))
}

fn parse_boundary(args: &[&str]) -> Result<BoundaryRule, ParseDbError> {
    let mut rule = BoundaryRule::default();
    for arg in args {
        if let Some(value) = arg.strip_prefix("every=") {
            rule.every = value
                .parse()
                .map_err(|e| ParseDbError(format!("boundary every '{value}': {e}")))?;
        } else if let Some(value) = arg.strip_prefix("latency=") {
            rule.latency = value
                .parse()
                .map_err(|e| ParseDbError(format!("boundary latency '{value}': {e}")))?;
        } else {
            return Err(ParseDbError(format!("unknown boundary option '{arg}'")));
        }
    }
    Ok(rule)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;

    #[test]
    fn single_die_db_is_the_legacy_constructor() {
        let db = TopologyDb::single("only", 8, 8, GeneratorSpec::Mesh);
        let t = db.instantiate().unwrap();
        assert_eq!(t, generators::mesh(Grid::new(8, 8)));
        assert!(t.meta().is_none());
    }

    #[test]
    fn two_die_mesh_stitches_at_the_seam() {
        let db = TopologyDb::parse("die a 4x4 mesh; die b 4x3 mesh; boundary every=2 latency=5")
            .unwrap();
        let t = db.instantiate().unwrap();
        assert_eq!(t.grid(), Grid::new(4, 7));
        assert_eq!(t.kind(), TopologyKind::Custom);
        assert_eq!(t.num_dies(), 2);
        // Per-die mesh links (2·4·3 + (4·2 + 3·3)) plus 2 seam links
        // (rows 0 and 2).
        let die_links = 24 + 17;
        assert_eq!(t.num_links(), die_links + 2);
        let grid = t.grid();
        let seam = Link::new(grid.id(TileCoord::new(0, 3)), grid.id(TileCoord::new(0, 4)));
        assert!(t.links().contains(&seam), "row-0 seam link missing");
        let crossing = (0..t.num_links())
            .filter(|&i| t.link_crosses_die(crate::LinkId::new(i as u32)))
            .count();
        assert_eq!(crossing, 2);
        assert_eq!(t.boundary_latency(), 5);
        assert_eq!(t.tile_die(grid.id(TileCoord::new(3, 3))), DieId::new(0));
        assert_eq!(t.tile_die(grid.id(TileCoord::new(3, 4))), DieId::new(1));
    }

    #[test]
    fn regions_paint_classes_and_add_links() {
        let db = TopologyDb::parse(
            "die a 6x6 mesh\nregion a r0..2 c0..6 memory sr=3\nregion a r4..6 c0..6 io",
        )
        .unwrap();
        let t = db.instantiate().unwrap();
        let grid = t.grid();
        assert_eq!(t.kind(), TopologyKind::Custom);
        assert_eq!(
            t.tile_class(grid.id(TileCoord::new(0, 0))),
            TileClass::Memory
        );
        assert_eq!(
            t.tile_class(grid.id(TileCoord::new(3, 0))),
            TileClass::Compute
        );
        assert_eq!(t.tile_class(grid.id(TileCoord::new(5, 5))), TileClass::Io);
        // Mesh (2·6·5 = 60) plus region row skips: 2 rows × (6−3) = 6.
        assert_eq!(t.num_links(), 60 + 6);
        assert!(t.has_link(grid.id(TileCoord::new(0, 0)), grid.id(TileCoord::new(0, 3))));
        assert!(!t.has_link(grid.id(TileCoord::new(3, 0)), grid.id(TileCoord::new(3, 3))));
    }

    #[test]
    fn class_only_region_keeps_base_kind_and_links() {
        let db = TopologyDb::parse("die a 4x4 torus; region a r0..1 c0..4 memory").unwrap();
        let t = db.instantiate().unwrap();
        let legacy = generators::torus(Grid::new(4, 4));
        assert_eq!(t.kind(), TopologyKind::Torus);
        assert_eq!(t.links(), legacy.links());
        assert!(t.meta().is_some());
    }

    #[test]
    fn display_and_wire_round_trip() {
        let text = "die left 8x8 shg:sr=4:sc=2,5\ndie right 8x8 mesh\n\
                    region left r0..2 c0..8 memory sr=2\nregion right r6..8 c0..8 io\n\
                    boundary every=2 latency=3";
        let db = TopologyDb::parse(text).unwrap();
        assert_eq!(TopologyDb::parse(&db.to_string()).unwrap(), db);
        let wire = db.wire();
        assert!(!wire.contains(char::is_whitespace), "wire form: {wire}");
        assert_eq!(TopologyDb::parse(&wire).unwrap(), db);
    }

    #[test]
    fn comments_and_blank_statements_are_ignored() {
        let db = TopologyDb::parse("# heterogeneous\n\ndie a 4x4 mesh; ; # trailing\n").unwrap();
        assert_eq!(db.dies.len(), 1);
    }

    #[test]
    fn validation_errors_are_typed() {
        assert!(matches!(
            TopologyDb {
                dies: Vec::new(),
                boundary: BoundaryRule::default()
            }
            .expand(),
            Err(DbError::NoDies)
        ));
        assert!(matches!(
            TopologyDb::parse("die a 4x4 mesh; die b 5x4 mesh")
                .unwrap()
                .expand(),
            Err(DbError::RowMismatch { .. })
        ));
        assert!(matches!(
            TopologyDb::parse("die a 4x4 mesh; die a 4x4 torus")
                .unwrap()
                .expand(),
            Err(DbError::DuplicateDie { .. })
        ));
        assert!(matches!(
            TopologyDb::parse("die a 4x4 mesh; region a r0..9 c0..4 io")
                .unwrap()
                .expand(),
            Err(DbError::BadRegion { .. })
        ));
        assert!(matches!(
            TopologyDb::parse("die a 4x8 mesh; region a r0..4 c0..8 io sr=9")
                .unwrap()
                .expand(),
            Err(DbError::RegionSkipOutOfRange { skip: 9, .. })
        ));
        assert!(matches!(
            TopologyDb::parse("die a 4x4 mesh; die b 4x4 mesh; boundary every=9")
                .unwrap()
                .expand(),
            Err(DbError::BoundaryEveryOutOfRange { .. })
        ));
        assert!(matches!(
            TopologyDb::parse("die a 3x3 hypercube; die b 3x3 mesh")
                .unwrap()
                .instantiate(),
            Err(DbError::Generator { .. })
        ));
    }

    #[test]
    fn parse_errors_name_the_problem() {
        for bad in [
            "",
            "wall a 4x4 mesh",
            "die a 4 mesh",
            "die a 4x4 hexagon",
            "region a r0..2 c0..2 io",
            "die a 4x4 mesh; region b r0..2 c0..2 io",
            "die a 4x4 mesh; region a 0..2 c0..2 io",
            "die a 4x4 mesh; region a r0..2 c0..2 turbo",
            "die a 4x4 mesh; region a r0..2 c0..2 io zz=1",
            "die a 4x4 mesh; boundary every=x",
            "die a 4x4 mesh; boundary every=1; boundary every=2",
        ] {
            assert!(TopologyDb::parse(bad).is_err(), "{bad:?} parsed");
        }
    }

    #[test]
    fn expanded_grid_cells_cover_every_tile_once() {
        let db = TopologyDb::parse("die a 3x2 mesh; die b 3x4 mesh").unwrap();
        let expanded = db.expand().unwrap();
        let mut seen = vec![false; expanded.grid().num_tiles()];
        for (die, local, global) in expanded.cells() {
            assert!(!seen[global.index()], "{global} visited twice");
            seen[global.index()] = true;
            assert_eq!(expanded.die_of(global), die);
            assert_eq!(expanded.global_id(die, local), global);
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn ten_thousand_tile_spec_instantiates() {
        // The headline compactness claim: a few statements, 10k+ tiles.
        let db = TopologyDb::parse(
            "die left 64x80 shg:sr=8,16:sc=8,16\n\
             die right 64x80 shg:sr=8,16:sc=8,16\n\
             region left r0..8 c0..80 memory sr=2\n\
             region right r56..64 c0..80 io\n\
             boundary every=4 latency=3",
        )
        .unwrap();
        let t = db.instantiate().unwrap();
        assert_eq!(t.num_tiles(), 64 * 160);
        assert!(t.num_tiles() >= 10_000);
        assert_eq!(t.num_dies(), 2);
        assert_eq!(t.boundary_latency(), 3);
    }
}
