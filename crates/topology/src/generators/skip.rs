//! The generic row/column skip-link construction (Section III-b of the
//! paper) and the Ruche network special case.
//!
//! Starting from a 2D mesh, for every row `r`, every `x ∈ SR` and every
//! `1 ≤ i ≤ C − x`, a link `T(r,i) ↔ T(r,i+x)` is added; columns are
//! handled symmetrically with `SC`. All resulting topologies are subgraphs
//! of the 2D Hamming graph — hence *sparse Hamming graphs*.
//!
//! This module provides the raw construction; the first-class
//! `SparseHammingConfig` API (validation, design-space enumeration,
//! customization) lives in the `shg-core` crate.

use std::collections::BTreeSet;

use crate::grid::{Grid, TileCoord};
use crate::topology::{Link, Topology, TopologyKind};

/// Error returned when skip-link parameters are out of range.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SkipLinkError {
    /// A row skip `x ∈ SR` violates `2 ≤ x < C`.
    RowSkipOutOfRange {
        /// Offending skip distance.
        skip: u16,
        /// Number of grid columns.
        cols: u16,
    },
    /// A column skip `x ∈ SC` violates `2 ≤ x < R`.
    ColSkipOutOfRange {
        /// Offending skip distance.
        skip: u16,
        /// Number of grid rows.
        rows: u16,
    },
}

impl std::fmt::Display for SkipLinkError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::RowSkipOutOfRange { skip, cols } => {
                write!(f, "row skip {skip} outside 2 ≤ x < C = {cols}")
            }
            Self::ColSkipOutOfRange { skip, rows } => {
                write!(f, "column skip {skip} outside 2 ≤ x < R = {rows}")
            }
        }
    }
}

impl std::error::Error for SkipLinkError {}

/// Builds the sparse-Hamming construction: a mesh plus skip links of
/// distances `sr` along rows and `sc` along columns.
///
/// `SR = {}` and `SC = {}` yield the mesh; `SR = {2…C−1}`,
/// `SC = {2…R−1}` yield the flattened butterfly.
///
/// # Errors
///
/// Returns [`SkipLinkError`] if any skip distance is outside the valid
/// interval `[2, C)` (rows) or `[2, R)` (columns).
///
/// # Examples
///
/// ```
/// use shg_topology::{generators, Grid};
///
/// // Scenario (a) of the paper: SR = {4}, SC = {2, 5} on 8×8 tiles.
/// let shg = generators::row_column_skip(
///     Grid::new(8, 8),
///     &[4].into_iter().collect(),
///     &[2, 5].into_iter().collect(),
/// )
/// .expect("valid skips");
/// assert!(shg.num_links() > generators::mesh(Grid::new(8, 8)).num_links());
/// ```
pub fn row_column_skip(
    grid: Grid,
    sr: &BTreeSet<u16>,
    sc: &BTreeSet<u16>,
) -> Result<Topology, SkipLinkError> {
    if let Some(&skip) = sr.iter().find(|&&x| x < 2 || x >= grid.cols()) {
        return Err(SkipLinkError::RowSkipOutOfRange {
            skip,
            cols: grid.cols(),
        });
    }
    if let Some(&skip) = sc.iter().find(|&&x| x < 2 || x >= grid.rows()) {
        return Err(SkipLinkError::ColSkipOutOfRange {
            skip,
            rows: grid.rows(),
        });
    }
    let kind = if sr.is_empty() && sc.is_empty() {
        TopologyKind::Mesh
    } else {
        TopologyKind::SparseHamming
    };
    Ok(Topology::new(grid, kind, skip_links(grid, sr, sc)))
}

/// The link set of the construction (mesh base plus skip links).
fn skip_links(grid: Grid, sr: &BTreeSet<u16>, sc: &BTreeSet<u16>) -> Vec<Link> {
    let mut links = Vec::new();
    // Mesh base: distance-1 links. Skip links: distances from SR / SC.
    let mut row_dists: Vec<u16> = vec![1];
    row_dists.extend(sr.iter().copied());
    let mut col_dists: Vec<u16> = vec![1];
    col_dists.extend(sc.iter().copied());
    for r in 0..grid.rows() {
        for &x in &row_dists {
            for i in 0..grid.cols().saturating_sub(x) {
                links.push(Link::new(
                    grid.id(TileCoord::new(r, i)),
                    grid.id(TileCoord::new(r, i + x)),
                ));
            }
        }
    }
    for c in 0..grid.cols() {
        for &x in &col_dists {
            for i in 0..grid.rows().saturating_sub(x) {
                links.push(Link::new(
                    grid.id(TileCoord::new(i, c)),
                    grid.id(TileCoord::new(i + x, c)),
                ));
            }
        }
    }
    links
}

/// Builds a Ruche network \[41\]: a mesh plus skip links of one fixed length
/// (the *ruche factor*) in both dimensions.
///
/// Ruche networks are the subfamily of sparse Hamming graphs with
/// `SR = SC = {factor}`; the paper positions sparse Hamming graphs as
/// their superset with a much larger configuration space.
///
/// # Errors
///
/// Returns [`SkipLinkError`] if the factor is out of range for the grid.
///
/// # Examples
///
/// ```
/// use shg_topology::{generators, Grid};
///
/// let ruche = generators::ruche(Grid::new(8, 8), 3).expect("factor 3 fits");
/// assert_eq!(ruche.max_degree(), 8);
/// ```
pub fn ruche(grid: Grid, factor: u16) -> Result<Topology, SkipLinkError> {
    let set: BTreeSet<u16> = [factor].into_iter().collect();
    let topology = row_column_skip(grid, &set, &set)?;
    Ok(Topology::new(
        grid,
        TopologyKind::Ruche,
        topology.links().iter().copied(),
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators::{flattened_butterfly, mesh};
    use crate::metrics;

    fn set(values: &[u16]) -> BTreeSet<u16> {
        values.iter().copied().collect()
    }

    #[test]
    fn empty_sets_give_mesh() {
        let grid = Grid::new(4, 4);
        let shg = row_column_skip(grid, &set(&[]), &set(&[])).expect("mesh");
        let m = mesh(grid);
        assert_eq!(shg.links(), m.links());
        assert_eq!(shg.kind(), TopologyKind::Mesh);
    }

    #[test]
    fn full_sets_give_flattened_butterfly() {
        let grid = Grid::new(4, 4);
        let shg = row_column_skip(grid, &set(&[2, 3]), &set(&[2, 3])).expect("full");
        let fb = flattened_butterfly(grid);
        assert_eq!(shg.links(), fb.links());
    }

    #[test]
    fn scenario_a_parameters() {
        // SR = {4}, SC = {2, 5} on 8×8 (paper Fig. 6a).
        let grid = Grid::new(8, 8);
        let shg = row_column_skip(grid, &set(&[4]), &set(&[2, 5])).expect("scenario a");
        // Links: mesh 2·8·7 = 112, row skips 8·(8−4) = 32,
        // col skips 8·(8−2) + 8·(8−5) = 48 + 24 = 72.
        assert_eq!(shg.num_links(), 112 + 32 + 72);
        assert!(metrics::diameter(&shg) < metrics::diameter(&mesh(grid)));
    }

    #[test]
    fn skip_out_of_range_is_rejected() {
        let grid = Grid::new(4, 8);
        assert!(matches!(
            row_column_skip(grid, &set(&[8]), &set(&[])),
            Err(SkipLinkError::RowSkipOutOfRange { skip: 8, cols: 8 })
        ));
        assert!(matches!(
            row_column_skip(grid, &set(&[]), &set(&[1])),
            Err(SkipLinkError::ColSkipOutOfRange { skip: 1, rows: 4 })
        ));
    }

    #[test]
    fn all_links_are_aligned() {
        let grid = Grid::new(8, 8);
        let shg = row_column_skip(grid, &set(&[3, 5]), &set(&[2])).expect("valid");
        for i in 0..shg.num_links() {
            assert!(shg.link_aligned(crate::LinkId::new(i as u32)));
        }
    }

    #[test]
    fn diameter_shrinks_monotonically_with_more_skips() {
        let grid = Grid::new(8, 8);
        let d0 = metrics::diameter(&row_column_skip(grid, &set(&[]), &set(&[])).unwrap());
        let d1 = metrics::diameter(&row_column_skip(grid, &set(&[4]), &set(&[])).unwrap());
        let d2 = metrics::diameter(&row_column_skip(grid, &set(&[4]), &set(&[4])).unwrap());
        let d3 = metrics::diameter(&row_column_skip(grid, &set(&[2, 4]), &set(&[2, 4])).unwrap());
        assert!(d0 >= d1 && d1 >= d2 && d2 >= d3);
        assert!(d3 < d0);
    }

    #[test]
    fn ruche_is_sparse_hamming_subfamily() {
        let grid = Grid::new(8, 8);
        let ruche_net = ruche(grid, 3).expect("factor 3");
        let shg = row_column_skip(grid, &set(&[3]), &set(&[3])).expect("same");
        assert_eq!(ruche_net.links(), shg.links());
        assert_eq!(ruche_net.kind(), TopologyKind::Ruche);
    }
}
