//! Folded 2D torus generator (Fig. 1d): torus connectivity without long
//! wrap-around links.
//!
//! A folded (interleaved) torus places the logical ring
//! `0 → 1 → … → n−1 → 0` of each row/column so that consecutive logical
//! nodes sit at most two physical positions apart. In physical grid
//! coordinates this yields, per row of length `n`:
//!
//! * skip links `(i, i+2)` for `i ∈ [0, n−2)`, plus
//! * the two end links `(0, 1)` and `(n−2, n−1)`,
//!
//! which together form a single cycle isomorphic to the logical torus ring,
//! with every link of physical length ≤ 2 (design principle ❷ SL ∼).

use crate::grid::{Grid, TileCoord};
use crate::topology::{Link, Topology, TopologyKind};

/// Builds a folded 2D torus.
///
/// Graph-isomorphic to the [`torus`](super::torus): router radix 4 and
/// diameter `⌊R/2⌋ + ⌊C/2⌋`, but all links have physical length ≤ 2. The
/// price is that no unit-length links remain, so physically minimal paths
/// are absent (Table I: minimal paths present ✘).
///
/// # Examples
///
/// ```
/// use shg_topology::{generators, Grid};
///
/// let ft = generators::folded_torus(Grid::new(4, 4));
/// assert_eq!(ft.max_degree(), 4);
/// ```
#[must_use]
pub fn folded_torus(grid: Grid) -> Topology {
    let mut links = Vec::new();
    // Horizontal folded rings (per row).
    for r in 0..grid.rows() {
        for (c1, c2) in folded_ring_pairs(grid.cols()) {
            links.push(Link::new(
                grid.id(TileCoord::new(r, c1)),
                grid.id(TileCoord::new(r, c2)),
            ));
        }
    }
    // Vertical folded rings (per column).
    for c in 0..grid.cols() {
        for (r1, r2) in folded_ring_pairs(grid.rows()) {
            links.push(Link::new(
                grid.id(TileCoord::new(r1, c)),
                grid.id(TileCoord::new(r2, c)),
            ));
        }
    }
    Topology::new(grid, TopologyKind::FoldedTorus, links)
}

/// Physical link pairs of a folded 1D ring over `n` positions.
fn folded_ring_pairs(n: u16) -> Vec<(u16, u16)> {
    if n < 2 {
        return Vec::new();
    }
    if n == 2 {
        return vec![(0, 1)];
    }
    let mut pairs: Vec<(u16, u16)> = (0..n - 2).map(|i| (i, i + 2)).collect();
    pairs.push((0, 1));
    pairs.push((n - 2, n - 1));
    pairs
}

/// The logical cycle order of a folded 1D ring, as physical positions.
///
/// Exposed for torus routing on the folded embedding: the folded torus is
/// routed exactly like a torus along this cycle.
#[must_use]
pub fn folded_cycle_order(n: u16) -> Vec<u16> {
    // Interleaved placement: logical 0,1,2,…  at physical 0,2,4,…,5,3,1.
    let mut order: Vec<u16> = (0..n).filter(|p| p % 2 == 0).collect();
    order.extend((0..n).filter(|p| p % 2 == 1).rev());
    order
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics;

    #[test]
    fn folded_ring_is_a_cycle() {
        // The per-row links form one cycle through all n positions.
        for n in [3u16, 4, 5, 8, 16] {
            let pairs = folded_ring_pairs(n);
            assert_eq!(pairs.len(), n as usize, "a cycle over n nodes has n edges");
            let mut degree = vec![0u32; n as usize];
            for &(a, b) in &pairs {
                degree[a as usize] += 1;
                degree[b as usize] += 1;
            }
            assert!(degree.iter().all(|&d| d == 2), "n={n}: degrees {degree:?}");
        }
    }

    #[test]
    fn folded_cycle_order_matches_links() {
        for n in [4u16, 8, 16] {
            let order = folded_cycle_order(n);
            let pairs: std::collections::HashSet<(u16, u16)> = folded_ring_pairs(n)
                .into_iter()
                .map(|(a, b)| if a < b { (a, b) } else { (b, a) })
                .collect();
            for i in 0..order.len() {
                let a = order[i];
                let b = order[(i + 1) % order.len()];
                let key = if a < b { (a, b) } else { (b, a) };
                assert!(pairs.contains(&key), "n={n}: cycle edge {key:?} missing");
            }
        }
    }

    #[test]
    fn folded_torus_is_isomorphic_to_torus_in_diameter() {
        // Same connectivity as the torus ⇒ same diameter (Table I).
        assert_eq!(metrics::diameter(&folded_torus(Grid::new(8, 8))), 8);
        assert_eq!(metrics::diameter(&folded_torus(Grid::new(16, 8))), 12);
    }

    #[test]
    fn folded_torus_links_are_short() {
        let t = folded_torus(Grid::new(8, 8));
        for i in 0..t.num_links() {
            assert!(t.link_length(crate::LinkId::new(i as u32)) <= 2);
        }
    }

    #[test]
    fn folded_torus_has_no_unit_paths_for_neighbors() {
        // No unit links ⇒ physically adjacent tiles are ≥ 2 apart in wire
        // length (minimal paths present: ✘ in Table I) — except on tiny
        // grids where the (0,1) end links are unit-length by construction.
        let t = folded_torus(Grid::new(8, 8));
        let unit_links = (0..t.num_links())
            .filter(|&i| t.link_length(crate::LinkId::new(i as u32)) == 1)
            .count();
        // Only the folded end-pairs (0,1) and (n−2, n−1) are unit length:
        // 2 per row and 2 per column.
        assert_eq!(unit_links, 2 * 8 + 2 * 8);
    }

    #[test]
    fn folded_torus_regular_degree_4() {
        let t = folded_torus(Grid::new(8, 8));
        for tile in t.grid().tiles() {
            assert_eq!(t.degree(tile), 4);
        }
    }
}
