//! SlimNoC generator (Fig. 1f): the MMS-graph-based low-diameter topology.
//!
//! SlimNoC \[26\] requires `R·C = 2q²` tiles for a prime power `q`
//! (Table I footnote ‡). MMS vertices `(s, g, e)` are placed on the grid
//! group-by-group: group `(s, g)` occupies a contiguous vertical strip so
//! that intra-group links stay column-aligned, mirroring the grouped
//! layout of the SlimNoC paper. Cross-group links generally change both
//! row and column, which is why SlimNoC scores ✘ on the aligned-links and
//! uniform-link-density criteria of design principle ❷.

use crate::grid::{Grid, TileCoord, TileId};
use crate::mms::{BuildMmsError, MmsGraph};
use crate::topology::{Link, Topology, TopologyKind};

/// Error returned when SlimNoC is not applicable to a grid.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BuildSlimNocError {
    /// `R·C ≠ 2q²` for any prime power `q`.
    NotTwoQSquared {
        /// Number of tiles in the grid.
        tiles: usize,
    },
    /// The underlying MMS graph could not be constructed.
    Mms(BuildMmsError),
}

impl std::fmt::Display for BuildSlimNocError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::NotTwoQSquared { tiles } => {
                write!(
                    f,
                    "SlimNoC requires R·C = 2q² for a prime power q, got {tiles} tiles"
                )
            }
            Self::Mms(e) => write!(f, "MMS construction failed: {e}"),
        }
    }
}

impl std::error::Error for BuildSlimNocError {}

impl From<BuildMmsError> for BuildSlimNocError {
    fn from(e: BuildMmsError) -> Self {
        Self::Mms(e)
    }
}

/// Checks SlimNoC applicability: returns `q` if `tiles = 2q²` for a prime
/// power `q`.
///
/// # Examples
///
/// ```
/// use shg_topology::generators::slim_noc;
/// use shg_topology::Grid;
///
/// assert!(slim_noc(Grid::new(16, 8)).is_ok()); // 128 = 2·8²
/// assert!(slim_noc(Grid::new(8, 8)).is_err()); // 64 ≠ 2q²
/// ```
#[must_use]
pub(crate) fn slim_noc_q(tiles: usize) -> Option<usize> {
    if !tiles.is_multiple_of(2) {
        return None;
    }
    let half = tiles / 2;
    let q = (half as f64).sqrt().round() as usize;
    if q * q != half {
        return None;
    }
    crate::gf::Field::new(q).ok().map(|_| q)
}

/// Builds a SlimNoC topology over the grid.
///
/// Router radix ≈ √(R·C) (the MMS degree `(3q−ε)/2`), diameter 2.
///
/// # Errors
///
/// Returns [`BuildSlimNocError`] if the tile count is not `2q²` for a prime
/// power `q`, or the MMS construction fails.
pub fn slim_noc(grid: Grid) -> Result<Topology, BuildSlimNocError> {
    let tiles = grid.num_tiles();
    let q = slim_noc_q(tiles).ok_or(BuildSlimNocError::NotTwoQSquared { tiles })?;
    let mms = MmsGraph::new(q)?;
    let place = placement(grid, q);
    let links = mms
        .edges()
        .into_iter()
        .map(|(u, v)| Link::new(place[u], place[v]));
    Ok(Topology::new(grid, TopologyKind::SlimNoc, links))
}

/// Maps dense MMS vertex indices to tiles: group `(s, g)` fills a vertical
/// strip of `q` consecutive tiles in column-major order.
fn placement(grid: Grid, q: usize) -> Vec<TileId> {
    let n = 2 * q * q;
    let mut place = Vec::with_capacity(n);
    for idx in 0..n {
        // Flatten (part, group) into a strip number, then fill strips in
        // column-major order across the grid.
        let strip = idx / q;
        let offset = idx % q;
        let flat = strip * q + offset;
        let col = (flat / grid.rows() as usize) as u16;
        let row = (flat % grid.rows() as usize) as u16;
        place.push(grid.id(TileCoord::new(row, col)));
    }
    place
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics;

    #[test]
    fn applicability_check() {
        assert_eq!(slim_noc_q(128), Some(8)); // 2·8²
        assert_eq!(slim_noc_q(50), Some(5)); // 2·5²
        assert_eq!(slim_noc_q(64), None);
        assert_eq!(slim_noc_q(72), None); // 72 = 2·6², but 6 is not a prime power
        assert_eq!(slim_noc_q(2), None); // 2 = 2·1², but GF(1) does not exist
    }

    #[test]
    fn slimnoc_128_tiles() {
        // The paper's scenarios c/d: 128 tiles on 16×8, q = 8.
        let t = slim_noc(Grid::new(16, 8)).expect("128 = 2·8²");
        assert_eq!(t.num_tiles(), 128);
        assert_eq!(metrics::diameter(&t), 2, "SlimNoC has diameter 2 (Table I)");
        // Radix ≈ √(R·C): (3·8 − 0)/2 = 12 vs √128 ≈ 11.3.
        assert_eq!(t.max_degree(), 12);
    }

    #[test]
    fn slimnoc_50_tiles() {
        let t = slim_noc(Grid::new(10, 5)).expect("50 = 2·5²");
        assert_eq!(metrics::diameter(&t), 2);
        assert_eq!(t.max_degree(), 7); // (3·5 − 1)/2
    }

    #[test]
    fn slimnoc_rejects_64_tiles() {
        // Table I footnote ‡ and Fig. 6: SlimNoC is only applicable for
        // scenarios c/d (128 tiles), not a/b (64 tiles).
        assert!(matches!(
            slim_noc(Grid::new(8, 8)),
            Err(BuildSlimNocError::NotTwoQSquared { tiles: 64 })
        ));
    }

    #[test]
    fn placement_is_a_bijection() {
        let grid = Grid::new(16, 8);
        let place = placement(grid, 8);
        let unique: std::collections::HashSet<_> = place.iter().collect();
        assert_eq!(unique.len(), 128);
    }

    #[test]
    fn intra_group_links_are_column_aligned() {
        let t = slim_noc(Grid::new(16, 8)).expect("128 tiles");
        // Count aligned links: all 2q² intra-group links are vertical by
        // construction; cross links mostly are not.
        let aligned = (0..t.num_links())
            .filter(|&i| t.link_aligned(crate::LinkId::new(i as u32)))
            .count();
        // Intra-group links: 2 parts × q groups × q·|X|/2 edges = 2·8·16 = 256.
        assert!(aligned >= 256, "at least the intra-group links are aligned");
    }
}
