//! 2D torus generator (Fig. 1c): mesh plus wrap-around links.

use crate::grid::{Grid, TileCoord};
use crate::topology::{Link, Topology, TopologyKind};

/// Builds a 2D torus: each row and each column forms a cycle.
///
/// Router radix 4, diameter `⌊R/2⌋ + ⌊C/2⌋`. The wrap-around links are
/// physically long (violating the short-links criterion of ❷), which is
/// why the paper grades the torus SL ✘ while the folded variant fixes it.
///
/// # Examples
///
/// ```
/// use shg_topology::{generators, Grid};
///
/// let torus = generators::torus(Grid::new(4, 4));
/// assert_eq!(torus.num_links(), 32); // 2 links per tile
/// assert_eq!(torus.max_degree(), 4);
/// ```
#[must_use]
pub fn torus(grid: Grid) -> Topology {
    let mut links = Vec::new();
    for coord in grid.coords() {
        let right = TileCoord::new(coord.row, (coord.col + 1) % grid.cols());
        let down = TileCoord::new((coord.row + 1) % grid.rows(), coord.col);
        if grid.cols() > 1 && right != coord {
            links.push(Link::new(grid.id(coord), grid.id(right)));
        }
        if grid.rows() > 1 && down != coord {
            links.push(Link::new(grid.id(coord), grid.id(down)));
        }
    }
    Topology::new(grid, TopologyKind::Torus, links)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics;

    #[test]
    fn torus_is_regular_degree_4() {
        let t = torus(Grid::new(4, 4));
        for tile in t.grid().tiles() {
            assert_eq!(t.degree(tile), 4);
        }
    }

    #[test]
    fn torus_diameter_matches_table1() {
        // Table I: diameter R/2 + C/2.
        assert_eq!(metrics::diameter(&torus(Grid::new(4, 4))), 4);
        assert_eq!(metrics::diameter(&torus(Grid::new(8, 8))), 8);
        assert_eq!(metrics::diameter(&torus(Grid::new(16, 8))), 12);
    }

    #[test]
    fn torus_has_long_wrap_links() {
        let t = torus(Grid::new(8, 8));
        let max_len = (0..t.num_links())
            .map(|i| t.link_length(crate::LinkId::new(i as u32)))
            .max()
            .expect("links exist");
        assert_eq!(max_len, 7, "wrap-around links span the full row/column");
    }

    #[test]
    fn torus_contains_mesh() {
        let grid = Grid::new(6, 6);
        let t = torus(grid);
        let m = super::super::mesh(grid);
        for link in m.links() {
            assert!(t.has_link(link.a, link.b));
        }
    }

    #[test]
    fn two_by_two_torus_collapses_to_mesh_links() {
        // Wrap link (0,1)→(0,0) duplicates the mesh link; dedup keeps 4.
        let t = torus(Grid::new(2, 2));
        assert_eq!(t.num_links(), 4);
    }
}
