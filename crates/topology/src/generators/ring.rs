//! Ring generator (Fig. 1a): a Hamiltonian cycle through all tiles.
//!
//! The cycle is laid out so that links stay short (design principle ❷, SL):
//! one edge column/row forms the "return path" and the rest of the grid is
//! traversed in a serpentine. When `R` or `C` is even, every link connects
//! grid-adjacent tiles; an odd×odd grid admits no unit-length Hamiltonian
//! cycle (the grid graph is bipartite with unbalanced parts), so a single
//! longer closing link remains.

use crate::grid::{Grid, TileCoord};
use crate::topology::{Link, Topology, TopologyKind};

/// Builds a ring: links form a single cycle through all tiles.
///
/// Router radix 2, diameter `R·C / 2`.
///
/// # Panics
///
/// Panics if the grid has fewer than 3 tiles (a cycle needs at least 3).
///
/// # Examples
///
/// ```
/// use shg_topology::{generators, Grid};
///
/// let ring = generators::ring(Grid::new(4, 4));
/// assert_eq!(ring.num_links(), 16);
/// assert_eq!(ring.max_degree(), 2);
/// ```
#[must_use]
pub fn ring(grid: Grid) -> Topology {
    assert!(grid.num_tiles() >= 3, "a ring needs at least 3 tiles");
    let order = cycle_order(grid);
    let links = (0..order.len()).map(|i| {
        let a = grid.id(order[i]);
        let b = grid.id(order[(i + 1) % order.len()]);
        Link::new(a, b)
    });
    Topology::new(grid, TopologyKind::Ring, links)
}

/// The Hamiltonian cycle order used by [`ring`]. Exposed for tests and for
/// routing (ring routing follows the cycle).
#[must_use]
pub fn cycle_order(grid: Grid) -> Vec<TileCoord> {
    let (rows, cols) = (grid.rows(), grid.cols());
    if cols == 1 || rows == 1 {
        // Degenerate 1D grid: path forward, closing link jumps back.
        return grid.coords().collect();
    }
    if rows % 2 != 0 && cols % 2 == 0 {
        // Transpose so the serpentine runs along the even dimension.
        let transposed = cycle_order(Grid::new(cols, rows));
        return transposed
            .into_iter()
            .map(|c| TileCoord::new(c.col, c.row))
            .collect();
    }
    let mut order = Vec::with_capacity(grid.num_tiles());
    // Down column 0…
    for r in 0..rows {
        order.push(TileCoord::new(r, 0));
    }
    // …then serpentine back up through columns 1..C, bottom row first.
    for i in 0..rows {
        let r = rows - 1 - i;
        if i % 2 == 0 {
            for c in 1..cols {
                order.push(TileCoord::new(r, c));
            }
        } else {
            for c in (1..cols).rev() {
                order.push(TileCoord::new(r, c));
            }
        }
    }
    order
}

/// Recovers the cycle order of a ring topology by walking it.
///
/// Returns `None` if the topology is not a single cycle (some tile has a
/// degree other than 2, or the walk does not visit every tile).
///
/// # Examples
///
/// ```
/// use shg_topology::{generators, Grid};
///
/// let ring = generators::ring(Grid::new(4, 4));
/// let order = generators::cycle_order_of(&ring).expect("a ring is a cycle");
/// assert_eq!(order.len(), 16);
/// ```
#[must_use]
pub fn cycle_order_of(topology: &Topology) -> Option<Vec<TileCoord>> {
    let n = topology.num_tiles();
    if n < 3 {
        return None;
    }
    if topology.grid().tiles().any(|t| topology.degree(t) != 2) {
        return None;
    }
    let grid = topology.grid();
    let start = crate::grid::TileId::new(0);
    let mut order = vec![grid.coord(start)];
    let mut prev = start;
    let mut current = topology.neighbors(start)[0].0;
    while current != start {
        order.push(grid.coord(current));
        let next = topology
            .neighbors(current)
            .iter()
            .map(|&(neighbor, _)| neighbor)
            .find(|&neighbor| neighbor != prev)?;
        prev = current;
        current = next;
    }
    (order.len() == n).then_some(order)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics;

    #[test]
    fn ring_is_a_single_cycle() {
        let t = ring(Grid::new(4, 4));
        assert_eq!(t.num_links(), 16);
        for tile in t.grid().tiles() {
            assert_eq!(t.degree(tile), 2, "every tile has exactly two links");
        }
    }

    #[test]
    fn ring_diameter_matches_table1() {
        // Table I: diameter R·C / 2.
        let t = ring(Grid::new(4, 4));
        assert_eq!(metrics::diameter(&t), 8);
        let t = ring(Grid::new(8, 8));
        assert_eq!(metrics::diameter(&t), 32);
    }

    #[test]
    fn even_grid_ring_has_unit_links() {
        // With R even, the serpentine construction yields all-unit links
        // (design principle ❷ SL, matching Table I's ✓ for the ring).
        for (r, c) in [(4, 4), (8, 8), (4, 5), (16, 8)] {
            let t = ring(Grid::new(r, c));
            let long: Vec<_> = (0..t.num_links())
                .map(|i| t.link_length(crate::LinkId::new(i as u32)))
                .filter(|&l| l > 1)
                .collect();
            assert!(long.is_empty(), "{r}x{c} ring has long links: {long:?}");
        }
    }

    #[test]
    fn odd_odd_grid_ring_has_one_longer_link() {
        let t = ring(Grid::new(3, 3));
        let lengths: Vec<_> = (0..t.num_links())
            .map(|i| t.link_length(crate::LinkId::new(i as u32)))
            .collect();
        let long = lengths.iter().filter(|&&l| l > 1).count();
        assert!(long <= 1, "at most one non-unit link, got {lengths:?}");
    }

    #[test]
    fn cycle_order_visits_every_tile_once() {
        let grid = Grid::new(5, 4);
        let order = cycle_order(grid);
        assert_eq!(order.len(), grid.num_tiles());
        let unique: std::collections::HashSet<_> = order.iter().collect();
        assert_eq!(unique.len(), grid.num_tiles());
    }
}
