//! 2D mesh (Fig. 1b) and flattened butterfly (Fig. 1g) generators.
//!
//! The two topologies bound the sparse Hamming graph design space from
//! below (mesh: lowest cost) and above (flattened butterfly: highest
//! performance).

use crate::grid::{Grid, TileCoord};
use crate::topology::{Link, Topology, TopologyKind};

/// Builds a 2D mesh: neighboring tiles in the same row or column are
/// connected.
///
/// Router radix 4, diameter `R + C − 2`, all links short and aligned —
/// the mesh satisfies every routability criterion of design principle ❷.
///
/// # Examples
///
/// ```
/// use shg_topology::{generators, Grid};
///
/// let mesh = generators::mesh(Grid::new(3, 3));
/// assert_eq!(mesh.num_links(), 12);
/// assert_eq!(mesh.max_degree(), 4);
/// ```
#[must_use]
pub fn mesh(grid: Grid) -> Topology {
    let mut links = Vec::new();
    for coord in grid.coords() {
        if coord.col + 1 < grid.cols() {
            links.push(Link::new(
                grid.id(coord),
                grid.id(TileCoord::new(coord.row, coord.col + 1)),
            ));
        }
        if coord.row + 1 < grid.rows() {
            links.push(Link::new(
                grid.id(coord),
                grid.id(TileCoord::new(coord.row + 1, coord.col)),
            ));
        }
    }
    Topology::new(grid, TopologyKind::Mesh, links)
}

/// Builds a flattened butterfly \[34\]: every pair of tiles in the same row
/// and every pair in the same column is connected.
///
/// Router radix `R + C − 2`, diameter 2. This is the densest sparse
/// Hamming graph (`SR = {2, …, C−1}`, `SC = {2, …, R−1}` plus the mesh
/// base) and the 2D Hamming graph over the grid.
///
/// # Examples
///
/// ```
/// use shg_topology::{generators, Grid};
///
/// let fb = generators::flattened_butterfly(Grid::new(4, 4));
/// assert_eq!(fb.max_degree(), 6); // (R−1) + (C−1)
/// ```
#[must_use]
pub fn flattened_butterfly(grid: Grid) -> Topology {
    let mut links = Vec::new();
    for r in 0..grid.rows() {
        for c1 in 0..grid.cols() {
            for c2 in c1 + 1..grid.cols() {
                links.push(Link::new(
                    grid.id(TileCoord::new(r, c1)),
                    grid.id(TileCoord::new(r, c2)),
                ));
            }
        }
    }
    for c in 0..grid.cols() {
        for r1 in 0..grid.rows() {
            for r2 in r1 + 1..grid.rows() {
                links.push(Link::new(
                    grid.id(TileCoord::new(r1, c)),
                    grid.id(TileCoord::new(r2, c)),
                ));
            }
        }
    }
    Topology::new(grid, TopologyKind::FlattenedButterfly, links)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics;

    #[test]
    fn mesh_link_count() {
        // R(C−1) horizontal + C(R−1) vertical links.
        let t = mesh(Grid::new(4, 5));
        assert_eq!(t.num_links(), 4 * 4 + 5 * 3);
    }

    #[test]
    fn mesh_degrees() {
        let t = mesh(Grid::new(3, 3));
        let corner = t.grid().id(TileCoord::new(0, 0));
        let edge = t.grid().id(TileCoord::new(0, 1));
        let center = t.grid().id(TileCoord::new(1, 1));
        assert_eq!(t.degree(corner), 2);
        assert_eq!(t.degree(edge), 3);
        assert_eq!(t.degree(center), 4);
    }

    #[test]
    fn mesh_diameter_matches_table1() {
        // Table I: diameter R + C − 2.
        for (r, c) in [(4, 4), (8, 8), (16, 8)] {
            let t = mesh(Grid::new(r, c));
            assert_eq!(metrics::diameter(&t), u32::from(r + c) - 2);
        }
    }

    #[test]
    fn mesh_links_all_short_and_aligned() {
        let t = mesh(Grid::new(5, 5));
        for i in 0..t.num_links() {
            let id = crate::LinkId::new(i as u32);
            assert_eq!(t.link_length(id), 1);
            assert!(t.link_aligned(id));
        }
    }

    #[test]
    fn flattened_butterfly_link_count() {
        // R·C(C−1)/2 horizontal + C·R(R−1)/2 vertical.
        let t = flattened_butterfly(Grid::new(4, 4));
        assert_eq!(t.num_links(), 4 * 6 + 4 * 6);
    }

    #[test]
    fn flattened_butterfly_diameter_is_two() {
        // Table I: diameter 2.
        for (r, c) in [(4, 4), (8, 8), (16, 8)] {
            let t = flattened_butterfly(Grid::new(r, c));
            assert_eq!(metrics::diameter(&t), 2);
        }
    }

    #[test]
    fn flattened_butterfly_radix_matches_table1() {
        // Table I: router radix R + C − 2.
        let t = flattened_butterfly(Grid::new(8, 8));
        assert_eq!(t.max_degree(), 14);
    }

    #[test]
    fn mesh_is_subgraph_of_flattened_butterfly() {
        let grid = Grid::new(4, 4);
        let m = mesh(grid);
        let fb = flattened_butterfly(grid);
        for link in m.links() {
            assert!(fb.has_link(link.a, link.b));
        }
    }
}
