//! [`GeneratorSpec`]: the serializable, declarative name of a generator.
//!
//! Every free generator function of this module has a spec form with a
//! stable textual syntax (`FromStr`/`Display` round-trip), so binaries,
//! config files and the sweep service's wire params can name topologies
//! declaratively instead of each re-implementing flag parsing:
//!
//! | text                  | topology                                  |
//! |-----------------------|-------------------------------------------|
//! | `ring`                | Hamiltonian-cycle ring                    |
//! | `mesh`                | 2D mesh                                   |
//! | `torus`               | 2D torus                                  |
//! | `folded-torus`        | folded 2D torus                           |
//! | `hypercube`           | hypercube (power-of-two dims)             |
//! | `slimnoc`             | SlimNoC (needs 2q² tiles)                 |
//! | `fb`                  | flattened butterfly                       |
//! | `ruche:3`             | Ruche network, factor 3                   |
//! | `shg:sr=4:sc=2,5`     | sparse Hamming graph, SR={4}, SC={2,5}    |
//!
//! The `shg` arguments are optional and order-independent; `shg` alone
//! is the empty skip sets (the mesh base).

use std::collections::BTreeSet;
use std::fmt;
use std::str::FromStr;

use serde::Serialize;

use crate::generators::{self, BuildHypercubeError, BuildSlimNocError, SkipLinkError};
use crate::grid::Grid;
use crate::topology::Topology;

/// A declarative, serializable description of one topology generator
/// and its parameters — the unified entry point behind the
/// `generators::*` free functions.
///
/// # Examples
///
/// ```
/// use shg_topology::{generators::GeneratorSpec, Grid};
///
/// let spec: GeneratorSpec = "shg:sr=4:sc=2,5".parse().unwrap();
/// assert_eq!(spec.to_string(), "shg:sr=4:sc=2,5");
/// let shg = spec.build(Grid::new(8, 8)).unwrap();
/// assert_eq!(shg.num_links(), 112 + 32 + 72);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize)]
pub enum GeneratorSpec {
    /// Hamiltonian-cycle ring.
    Ring,
    /// 2D mesh.
    Mesh,
    /// 2D torus.
    Torus,
    /// Folded 2D torus.
    FoldedTorus,
    /// Hypercube (requires power-of-two dimensions).
    Hypercube,
    /// SlimNoC (requires 2q² tiles).
    SlimNoc,
    /// Flattened butterfly.
    FlattenedButterfly,
    /// Ruche network with the given skip factor.
    Ruche {
        /// The fixed skip length in both dimensions.
        factor: u16,
    },
    /// Sparse Hamming graph: mesh plus row skips `SR` and column skips
    /// `SC` (Section III of the paper).
    Shg {
        /// Row skip distances `SR`.
        skip_rows: BTreeSet<u16>,
        /// Column skip distances `SC`.
        skip_cols: BTreeSet<u16>,
    },
}

/// Error building a topology from a [`GeneratorSpec`] on a concrete
/// grid.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GeneratorError {
    /// A skip distance is out of range for the grid (SHG / Ruche).
    Skip(SkipLinkError),
    /// The grid dimensions do not admit a hypercube.
    Hypercube(BuildHypercubeError),
    /// The grid does not hold 2q² tiles.
    SlimNoc(BuildSlimNocError),
    /// A ring needs at least three tiles.
    RingTooSmall {
        /// Tiles the grid actually holds.
        tiles: usize,
    },
}

impl fmt::Display for GeneratorError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Skip(e) => e.fmt(f),
            Self::Hypercube(e) => e.fmt(f),
            Self::SlimNoc(e) => e.fmt(f),
            Self::RingTooSmall { tiles } => {
                write!(f, "a ring needs at least 3 tiles, grid has {tiles}")
            }
        }
    }
}

impl std::error::Error for GeneratorError {}

/// Error parsing a [`GeneratorSpec`] from its textual form.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseGeneratorSpecError(String);

impl fmt::Display for ParseGeneratorSpecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} (use ring|mesh|torus|folded-torus|hypercube|slimnoc|fb|ruche:<k>|shg[:sr=..][:sc=..])",
            self.0
        )
    }
}

impl std::error::Error for ParseGeneratorSpecError {}

fn parse_skip_set(list: &str) -> Result<BTreeSet<u16>, ParseGeneratorSpecError> {
    list.split(',')
        .map(|item| {
            item.trim()
                .parse()
                .map_err(|e| ParseGeneratorSpecError(format!("skip distance '{item}': {e}")))
        })
        .collect()
}

impl FromStr for GeneratorSpec {
    type Err = ParseGeneratorSpecError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let mut segments = s.split(':');
        let head = segments.next().unwrap_or_default();
        let spec = match head {
            "ring" => Self::Ring,
            "mesh" => Self::Mesh,
            "torus" => Self::Torus,
            "folded-torus" => Self::FoldedTorus,
            "hypercube" => Self::Hypercube,
            "slimnoc" => Self::SlimNoc,
            "fb" => Self::FlattenedButterfly,
            "ruche" => {
                let arg = segments
                    .next()
                    .ok_or_else(|| ParseGeneratorSpecError("ruche needs a factor".to_owned()))?;
                let factor = arg
                    .parse()
                    .map_err(|e| ParseGeneratorSpecError(format!("ruche factor '{arg}': {e}")))?;
                Self::Ruche { factor }
            }
            "shg" => {
                let mut skip_rows = BTreeSet::new();
                let mut skip_cols = BTreeSet::new();
                for segment in segments.by_ref() {
                    if let Some(list) = segment.strip_prefix("sr=") {
                        skip_rows = parse_skip_set(list)?;
                    } else if let Some(list) = segment.strip_prefix("sc=") {
                        skip_cols = parse_skip_set(list)?;
                    } else {
                        return Err(ParseGeneratorSpecError(format!(
                            "unknown shg argument '{segment}'"
                        )));
                    }
                }
                Self::Shg {
                    skip_rows,
                    skip_cols,
                }
            }
            other => {
                return Err(ParseGeneratorSpecError(format!(
                    "unknown generator '{other}'"
                )))
            }
        };
        if let Some(extra) = segments.next() {
            return Err(ParseGeneratorSpecError(format!(
                "trailing argument '{extra}' after {head}"
            )));
        }
        Ok(spec)
    }
}

impl fmt::Display for GeneratorSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fn skip_list(f: &mut fmt::Formatter<'_>, set: &BTreeSet<u16>) -> fmt::Result {
            for (i, x) in set.iter().enumerate() {
                if i > 0 {
                    f.write_str(",")?;
                }
                write!(f, "{x}")?;
            }
            Ok(())
        }
        match self {
            Self::Ring => f.write_str("ring"),
            Self::Mesh => f.write_str("mesh"),
            Self::Torus => f.write_str("torus"),
            Self::FoldedTorus => f.write_str("folded-torus"),
            Self::Hypercube => f.write_str("hypercube"),
            Self::SlimNoc => f.write_str("slimnoc"),
            Self::FlattenedButterfly => f.write_str("fb"),
            Self::Ruche { factor } => write!(f, "ruche:{factor}"),
            Self::Shg {
                skip_rows,
                skip_cols,
            } => {
                f.write_str("shg")?;
                if !skip_rows.is_empty() {
                    f.write_str(":sr=")?;
                    skip_list(f, skip_rows)?;
                }
                if !skip_cols.is_empty() {
                    f.write_str(":sc=")?;
                    skip_list(f, skip_cols)?;
                }
                Ok(())
            }
        }
    }
}

impl GeneratorSpec {
    /// Builds the topology this spec describes on a concrete grid by
    /// dispatching to the corresponding generator function — the DB
    /// path therefore reproduces each legacy constructor link-for-link
    /// (and kind-for-kind).
    ///
    /// # Errors
    ///
    /// Returns [`GeneratorError`] when the grid does not admit the
    /// construction (skip distance out of range, non-power-of-two
    /// hypercube, non-2q² SlimNoC, sub-3-tile ring).
    pub fn build(&self, grid: Grid) -> Result<Topology, GeneratorError> {
        match self {
            Self::Ring => {
                if grid.num_tiles() < 3 {
                    return Err(GeneratorError::RingTooSmall {
                        tiles: grid.num_tiles(),
                    });
                }
                Ok(generators::ring(grid))
            }
            Self::Mesh => Ok(generators::mesh(grid)),
            Self::Torus => Ok(generators::torus(grid)),
            Self::FoldedTorus => Ok(generators::folded_torus(grid)),
            Self::Hypercube => generators::hypercube(grid).map_err(GeneratorError::Hypercube),
            Self::SlimNoc => generators::slim_noc(grid).map_err(GeneratorError::SlimNoc),
            Self::FlattenedButterfly => Ok(generators::flattened_butterfly(grid)),
            Self::Ruche { factor } => {
                generators::ruche(grid, *factor).map_err(GeneratorError::Skip)
            }
            Self::Shg {
                skip_rows,
                skip_cols,
            } => generators::row_column_skip(grid, skip_rows, skip_cols)
                .map_err(GeneratorError::Skip),
        }
    }

    /// All parameterless specs, in Fig. 6's comparison order.
    #[must_use]
    pub fn fixed() -> [Self; 7] {
        [
            Self::Ring,
            Self::Mesh,
            Self::Torus,
            Self::FoldedTorus,
            Self::Hypercube,
            Self::SlimNoc,
            Self::FlattenedButterfly,
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn set(values: &[u16]) -> BTreeSet<u16> {
        values.iter().copied().collect()
    }

    #[test]
    fn display_round_trips_through_from_str() {
        let specs = [
            GeneratorSpec::Ring,
            GeneratorSpec::Mesh,
            GeneratorSpec::Torus,
            GeneratorSpec::FoldedTorus,
            GeneratorSpec::Hypercube,
            GeneratorSpec::SlimNoc,
            GeneratorSpec::FlattenedButterfly,
            GeneratorSpec::Ruche { factor: 3 },
            GeneratorSpec::Shg {
                skip_rows: set(&[4]),
                skip_cols: set(&[2, 5]),
            },
            GeneratorSpec::Shg {
                skip_rows: set(&[]),
                skip_cols: set(&[3]),
            },
            GeneratorSpec::Shg {
                skip_rows: set(&[]),
                skip_cols: set(&[]),
            },
        ];
        for spec in specs {
            let text = spec.to_string();
            assert_eq!(text.parse::<GeneratorSpec>().unwrap(), spec, "{text}");
        }
    }

    #[test]
    fn build_matches_the_free_functions() {
        let grid = Grid::new(8, 8);
        assert_eq!(
            GeneratorSpec::Mesh.build(grid).unwrap(),
            generators::mesh(grid)
        );
        assert_eq!(
            GeneratorSpec::Ruche { factor: 3 }.build(grid).unwrap(),
            generators::ruche(grid, 3).unwrap()
        );
        assert_eq!(
            "shg:sr=4:sc=2,5"
                .parse::<GeneratorSpec>()
                .unwrap()
                .build(grid)
                .unwrap(),
            generators::row_column_skip(grid, &set(&[4]), &set(&[2, 5])).unwrap()
        );
    }

    #[test]
    fn malformed_specs_are_rejected() {
        for bad in [
            "",
            "hexagon",
            "ruche",
            "ruche:x",
            "ruche:3:4",
            "shg:sd=4",
            "shg:sr=a",
            "mesh:2",
        ] {
            assert!(bad.parse::<GeneratorSpec>().is_err(), "{bad:?} parsed");
        }
    }

    #[test]
    fn grid_mismatches_are_typed_errors() {
        assert!(matches!(
            GeneratorSpec::Ring.build(Grid::new(1, 2)),
            Err(GeneratorError::RingTooSmall { tiles: 2 })
        ));
        assert!(matches!(
            GeneratorSpec::Hypercube.build(Grid::new(3, 3)),
            Err(GeneratorError::Hypercube(_))
        ));
        assert!(matches!(
            GeneratorSpec::SlimNoc.build(Grid::new(4, 4)),
            Err(GeneratorError::SlimNoc(_))
        ));
        assert!(matches!(
            GeneratorSpec::Ruche { factor: 9 }.build(Grid::new(8, 8)),
            Err(GeneratorError::Skip(_))
        ));
    }
}
