//! Hypercube generator (Fig. 1e): tiles are connected iff their IDs differ
//! in exactly one bit.
//!
//! Following the figure, tile IDs are assigned by *Gray code* along rows
//! and columns, so that grid-adjacent tiles differ in exactly one bit and
//! the hypercube contains all mesh links. IDs split into `log2(C)` column
//! bits and `log2(R)` row bits; the topology is only applicable when both
//! dimensions are powers of two (Table I footnote †).

use crate::grid::{Grid, TileCoord};
use crate::topology::{Link, Topology, TopologyKind};

/// Error returned when the hypercube is not applicable to a grid.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BuildHypercubeError {
    rows: u16,
    cols: u16,
}

impl std::fmt::Display for BuildHypercubeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "hypercube requires power-of-two dimensions, got {}x{}",
            self.rows, self.cols
        )
    }
}

impl std::error::Error for BuildHypercubeError {}

/// The binary-reflected Gray code of `x`.
#[must_use]
pub fn gray(x: u16) -> u16 {
    x ^ (x >> 1)
}

/// Builds a hypercube over the grid, if both dimensions are powers of two.
///
/// Router radix `log2(R·C)`, diameter `log2(R·C)`.
///
/// # Errors
///
/// Returns [`BuildHypercubeError`] if `R` or `C` is not a power of two
/// (Table I: 0 or 1 configurations).
///
/// # Examples
///
/// ```
/// use shg_topology::{generators, Grid};
///
/// let hc = generators::hypercube(Grid::new(4, 4)).expect("4x4 is a power of two");
/// assert_eq!(hc.max_degree(), 4); // log2(16)
/// assert!(generators::hypercube(Grid::new(3, 4)).is_err());
/// ```
pub fn hypercube(grid: Grid) -> Result<Topology, BuildHypercubeError> {
    let (rows, cols) = (grid.rows(), grid.cols());
    if !rows.is_power_of_two() || !cols.is_power_of_two() || grid.num_tiles() < 2 {
        return Err(BuildHypercubeError { rows, cols });
    }
    let col_bits = cols.trailing_zeros();
    // Hypercube ID of a coordinate: gray(row) in the high bits,
    // gray(col) in the low bits.
    let hid = |coord: TileCoord| -> u32 {
        ((gray(coord.row) as u32) << col_bits) | gray(coord.col) as u32
    };
    // Invert: map each hypercube ID back to its tile.
    let mut by_hid = vec![None; grid.num_tiles()];
    for coord in grid.coords() {
        by_hid[hid(coord) as usize] = Some(grid.id(coord));
    }
    let dims = (grid.num_tiles() as u32).trailing_zeros();
    let mut links = Vec::new();
    for coord in grid.coords() {
        let h = hid(coord);
        for bit in 0..dims {
            let other = h ^ (1 << bit);
            if other > h {
                let a = grid.id(coord);
                let b = by_hid[other as usize].expect("gray code is a bijection");
                links.push(Link::new(a, b));
            }
        }
    }
    Ok(Topology::new(grid, TopologyKind::Hypercube, links))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics;

    #[test]
    fn gray_code_neighbors_differ_in_one_bit() {
        for x in 0u16..15 {
            let diff = gray(x) ^ gray(x + 1);
            assert_eq!(diff.count_ones(), 1, "gray({x}) vs gray({})", x + 1);
        }
    }

    #[test]
    fn hypercube_radix_and_diameter_match_table1() {
        // Table I: radix = diameter = log2(R·C).
        let t = hypercube(Grid::new(8, 8)).expect("8x8");
        assert_eq!(t.max_degree(), 6);
        assert_eq!(metrics::diameter(&t), 6);
        let t = hypercube(Grid::new(16, 8)).expect("16x8");
        assert_eq!(t.max_degree(), 7);
        assert_eq!(metrics::diameter(&t), 7);
    }

    #[test]
    fn hypercube_is_regular() {
        let t = hypercube(Grid::new(4, 4)).expect("4x4");
        for tile in t.grid().tiles() {
            assert_eq!(t.degree(tile), 4);
        }
    }

    #[test]
    fn hypercube_contains_mesh() {
        // Gray-code placement makes grid neighbors hypercube neighbors.
        let grid = Grid::new(8, 8);
        let hc = hypercube(grid).expect("8x8");
        let mesh = super::super::mesh(grid);
        for link in mesh.links() {
            assert!(
                hc.has_link(link.a, link.b),
                "mesh link {link:?} missing from hypercube"
            );
        }
    }

    #[test]
    fn hypercube_links_are_aligned() {
        // Each link flips either a row bit or a column bit, so it stays in
        // one row or one column (Table I: AL ✓).
        let t = hypercube(Grid::new(8, 8)).expect("8x8");
        for i in 0..t.num_links() {
            assert!(t.link_aligned(crate::LinkId::new(i as u32)));
        }
    }

    #[test]
    fn non_power_of_two_is_rejected() {
        assert!(hypercube(Grid::new(3, 4)).is_err());
        assert!(hypercube(Grid::new(4, 6)).is_err());
        assert!(hypercube(Grid::new(1, 1)).is_err());
    }

    #[test]
    fn figure_1e_ids_match() {
        // Fig. 1e, top row: 0000, 0100, 1100, 1000 — the Gray sequence in
        // the high two bits for a 4×4 grid.
        let col_bits = 2;
        let ids: Vec<u16> = (0..4).map(|c| (gray(0) << col_bits) | gray(c)).collect();
        assert_eq!(ids, vec![0b0000, 0b0001, 0b0011, 0b0010]);
        // The figure lists the column code in the *high* bits; either
        // assignment yields an isomorphic topology. What matters is the
        // Gray property along rows:
        let row_ids: Vec<u16> = (0..4).map(|r| (gray(r) << col_bits) | gray(0)).collect();
        assert_eq!(row_ids, vec![0b0000, 0b0100, 0b1100, 0b1000]);
    }
}
