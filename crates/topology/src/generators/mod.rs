//! Generators for the established NoC topologies of Fig. 1 and the generic
//! row/column skip-link construction underlying the sparse Hamming graph.
//!
//! All generators place tiles on the same R×C grid, so topologies are
//! directly comparable by the floorplan model and simulator.
//!
//! # Examples
//!
//! ```
//! use shg_topology::{generators, Grid};
//!
//! let grid = Grid::new(8, 8);
//! let mesh = generators::mesh(grid);
//! let fb = generators::flattened_butterfly(grid);
//! assert!(fb.num_links() > mesh.num_links());
//! ```

mod folded_torus;
mod hypercube;
mod mesh;
mod ring;
mod skip;
mod slimnoc;
mod spec;
mod torus;

pub use folded_torus::{folded_cycle_order, folded_torus};
pub use hypercube::{gray, hypercube, BuildHypercubeError};
pub use mesh::{flattened_butterfly, mesh};
pub use ring::{cycle_order, cycle_order_of, ring};
pub use skip::{row_column_skip, ruche, SkipLinkError};
pub use slimnoc::{slim_noc, BuildSlimNocError};
pub use spec::{GeneratorError, GeneratorSpec, ParseGeneratorSpecError};
pub use torus::torus;
